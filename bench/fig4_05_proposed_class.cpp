// Figure 4.5 — per-class cumulative drops with the proposed method
// (buffer = 20 per AR) and classification ENABLED.
//
// Paper claim: the high-priority flow (F2) is protected — its drop rate is
// greatly reduced at the cost of real-time (evicted when stale) and best
// effort, while the TOTAL stays close to the unclassified run ("the QoS
// function does not result in additional packet drops").

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.5",
                "proposed method, buffer=20 per AR, classification enabled");
  bench::note(bench::flow_legend());

  QosDropParams p;
  p.mode = BufferMode::kDual;
  p.classify = true;
  p.pool_pkts = 20;
  p.request_pkts = 20;
  p.handoffs = 100;
  const auto r = run_qos_drop_experiment(p);
  print_series_table("Proposed method, buffer=20 (class enabled)",
                     "handoffs", r.per_flow_drops);
  const auto f1 = r.flows[0].dropped, f2 = r.flows[1].dropped,
             f3 = r.flows[2].dropped;
  std::printf("\nfinal drops: F1=%llu F2=%llu F3=%llu — F2 lowest; "
              "total=%llu\n",
              static_cast<unsigned long long>(f1),
              static_cast<unsigned long long>(f2),
              static_cast<unsigned long long>(f3),
              static_cast<unsigned long long>(f1 + f2 + f3));
  return 0;
}
