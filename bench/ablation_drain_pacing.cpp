// Ablation — buffer-release pacing (§4.2.3: the router "cannot dump all
// the buffered packets at the same time").
//
// The drain gap is the per-packet processing delay when releasing a
// handoff buffer. Zero = dump everything into the wireless queue at once
// (burst); larger gaps smooth the burst but extend the tail delay.

#include "bench_common.hpp"

using namespace fhmip;

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation", "buffer release pacing (drain gap)");
  bench::note(bench::flow_legend());

  std::vector<std::int64_t> gaps = {0, 100, 200, 500, 1000, 2000};
  if (opts.smoke) gaps = {0, 500};

  std::vector<
      sweep::SweepRunner::Job<std::pair<DelayCaptureResult, std::string>>>
      grid;
  for (const std::int64_t gap_us : gaps) {
    grid.push_back({"gap=" + std::to_string(gap_us) + "us",
                    [gap_us, metrics = opts.metrics] {
                      DelayCaptureParams p;
                      p.classify = false;
                      p.drain_gap = SimTime::micros(gap_us);
                      p.pool_pkts = 30;
                      p.request_pkts = 30;
                      std::pair<DelayCaptureResult, std::string> pr;
                      pr.first = run_delay_capture(
                          p, metrics ? &pr.second : nullptr);
                      return pr;
                    }});
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);

  Series max_d("max_delay_s"), mean_d("mean_delay_s"), drops("drops");
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const std::int64_t gap_us = gaps[i];
    const DelayCaptureResult& r = results[i];
    const auto series = delay_series(r);
    double mx = 0, sum = 0;
    std::size_t n = 0;
    std::uint64_t dropped = 0;
    for (const auto& s : series) {
      mx = std::max(mx, s.max_y());
      for (const auto& [x, y] : s.points()) {
        sum += y;
        ++n;
      }
    }
    for (const auto& f : r.flows) dropped += f.dropped;
    max_d.add(static_cast<double>(gap_us), mx);
    mean_d.add(static_cast<double>(gap_us), n > 0 ? sum / n : 0);
    drops.add(static_cast<double>(gap_us), static_cast<double>(dropped));
  }
  print_series_table("release pacing vs. delay/drops", "gap (us)",
                     {max_d, mean_d, drops});
  std::printf("\nexpected: longer gaps inflate the buffered packets' tail "
              "delay; pacing has little effect on loss at these rates\n");

  bench::report_sweep("ablation_drain_pacing", runner, opts);
  return 0;
}
