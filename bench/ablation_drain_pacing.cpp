// Ablation — buffer-release pacing (§4.2.3: the router "cannot dump all
// the buffered packets at the same time").
//
// The drain gap is the per-packet processing delay when releasing a
// handoff buffer. Zero = dump everything into the wireless queue at once
// (burst); larger gaps smooth the burst but extend the tail delay.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Ablation", "buffer release pacing (drain gap)");
  bench::note(bench::flow_legend());

  Series max_d("max_delay_s"), mean_d("mean_delay_s"), drops("drops");
  for (std::int64_t gap_us : {0LL, 100LL, 200LL, 500LL, 1000LL, 2000LL}) {
    DelayCaptureParams p;
    p.classify = false;
    p.drain_gap = SimTime::micros(gap_us);
    p.pool_pkts = 30;
    p.request_pkts = 30;
    const auto r = run_delay_capture(p);
    const auto series = delay_series(r);
    double mx = 0, sum = 0;
    std::size_t n = 0;
    std::uint64_t dropped = 0;
    for (const auto& s : series) {
      mx = std::max(mx, s.max_y());
      for (const auto& [x, y] : s.points()) {
        sum += y;
        ++n;
      }
    }
    for (const auto& f : r.flows) dropped += f.dropped;
    max_d.add(static_cast<double>(gap_us), mx);
    mean_d.add(static_cast<double>(gap_us), n > 0 ? sum / n : 0);
    drops.add(static_cast<double>(gap_us), static_cast<double>(dropped));
  }
  print_series_table("release pacing vs. delay/drops", "gap (us)",
                     {max_d, mean_d, drops});
  std::printf("\nexpected: longer gaps inflate the buffered packets' tail "
              "delay; pacing has little effect on loss at these rates\n");
  return 0;
}
