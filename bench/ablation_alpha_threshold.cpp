// Ablation — the `a` reserve constant of Table 3.3 cases 1.c/3.c.
//
// Best-effort packets are buffered at the PAR only while more than `a`
// slots stay free; the reserve is what the overflowing high-priority
// packets land in (Case 1.b). Sweeping `a` trades best-effort loss against
// high-priority loss: a = 0 lets best effort squat the whole PAR buffer,
// large `a` starves best effort for headroom that may go unused.

#include "bench_common.hpp"

using namespace fhmip;

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation", "the `a` headroom constant (Case 1.c/3.c)");
  bench::note(bench::flow_legend());

  std::vector<std::uint32_t> reserves = {0, 2, 5, 8, 12, 16, 20};
  if (opts.smoke) reserves = {0, 5};

  std::vector<sweep::SweepRunner::Job<std::pair<QosDropResult, std::string>>>
      grid;
  for (const std::uint32_t a : reserves) {
    grid.push_back({"a=" + std::to_string(a), [a, metrics = opts.metrics] {
                      QosDropParams p;
                      p.classify = true;
                      p.reserve_a = a;
                      p.handoffs = 30;
                      std::pair<QosDropResult, std::string> pr;
                      pr.first = run_qos_drop_experiment(
                          p, metrics ? &pr.second : nullptr);
                      return pr;
                    }});
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);

  Series f1("F1_drops"), f2("F2_drops"), f3("F3_drops");
  for (std::size_t i = 0; i < reserves.size(); ++i) {
    const QosDropResult& r = results[i];
    f1.add(reserves[i], static_cast<double>(r.flows[0].dropped));
    f2.add(reserves[i], static_cast<double>(r.flows[1].dropped));
    f3.add(reserves[i], static_cast<double>(r.flows[2].dropped));
  }
  print_series_table("drops after 30 handoffs vs. reserve a", "a (packets)",
                     {f1, f2, f3});
  std::printf("\nexpected: F2 (high priority) falls as a grows; F3 (best "
              "effort) rises; default a=5 balances them\n");

  bench::report_sweep("ablation_alpha_threshold", runner, opts);
  return 0;
}
