// Ablation — the `a` reserve constant of Table 3.3 cases 1.c/3.c.
//
// Best-effort packets are buffered at the PAR only while more than `a`
// slots stay free; the reserve is what the overflowing high-priority
// packets land in (Case 1.b). Sweeping `a` trades best-effort loss against
// high-priority loss: a = 0 lets best effort squat the whole PAR buffer,
// large `a` starves best effort for headroom that may go unused.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Ablation", "the `a` headroom constant (Case 1.c/3.c)");
  bench::note(bench::flow_legend());

  Series f1("F1_drops"), f2("F2_drops"), f3("F3_drops");
  for (std::uint32_t a : {0u, 2u, 5u, 8u, 12u, 16u, 20u}) {
    QosDropParams p;
    p.classify = true;
    p.reserve_a = a;
    p.handoffs = 30;
    const auto r = run_qos_drop_experiment(p);
    f1.add(a, static_cast<double>(r.flows[0].dropped));
    f2.add(a, static_cast<double>(r.flows[1].dropped));
    f3.add(a, static_cast<double>(r.flows[2].dropped));
  }
  print_series_table("drops after 30 handoffs vs. reserve a", "a (packets)",
                     {f1, f2, f3});
  std::printf("\nexpected: F2 (high priority) falls as a grows; F3 (best "
              "effort) rises; default a=5 balances them\n");
  return 0;
}
