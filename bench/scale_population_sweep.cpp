// Scale harness — population sweep over the city-scale scenario.
//
// Not a thesis figure: this sweep exists to flush out per-MH scaling bugs.
// One CityTopology run drives N mobile hosts on random-waypoint walks
// across an AR field sized to the population (rows = cols =
// ceil(sqrt(N/12)), clamped to [2,16]), with a quarter of the hosts
// carrying a classified CBR flow. The deterministic stdout table reports
// correctness aggregates per population size; throughput (handovers/sec)
// and peak RSS are wall-state and go to stderr + the JSON report only.
//
// The pass bar, at every N:
//   * every handover attempt resolves (completed or typed failure — the
//     per-attempt watchdog forbids wedges),
//   * per-flow packet conservation holds (sent == delivered + dropped),
//   * no buffer lease survives quiesce,
//   * the audit hub stays clean,
// and the process peak RSS stays under the budget (--rss-budget-mb,
// default 4096 MiB; 0 disables).
//
// Grid: N in {10, 100, 1000, 5000}; --smoke caps at 100. Stdout is
// byte-identical for every --jobs value.

#include <cmath>

#include "bench_common.hpp"
#include "scenario/city_topology.hpp"
#include "sim/check.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct RunResult {
  std::uint64_t ars = 0;
  std::uint64_t maps = 0;
  std::uint64_t handoffs = 0;       // L2 handoffs started (wlan layer)
  std::uint64_t attempts = 0;       // protocol-level handover attempts
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t unresolved = 0;     // must be 0: watchdog forbids wedges
  std::uint64_t flows = 0;
  std::uint64_t sent = 0, delivered = 0, dropped = 0;
  std::uint64_t conservation = 0;   // flows where sent != delivered+dropped
  std::uint64_t leaked_leases = 0;  // leases still held after quiesce
  std::string metrics_json;
};

// Field size that keeps the offered handover load per AR roughly constant
// as the population grows.
int field_cols(int n_mhs) {
  const int c = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n_mhs) / 12.0)));
  return std::min(16, std::max(2, c));
}

RunResult run_once(int n_mhs, std::uint64_t seed, bool metrics) {
  CityConfig cfg;
  cfg.seed = seed;
  cfg.ar_rows = cfg.ar_cols = field_cols(n_mhs);
  cfg.num_maps = std::max(1, cfg.ar_cols / 4);
  cfg.layout = CityConfig::Layout::kGrid;
  cfg.wlan.tick = 20_ms;
  cfg.watchdog = 2_s;  // wedged attempts become typed failures, not hangs
  cfg.scheme.classify = true;
  cfg.scheme.allow_partial_grant = true;
  cfg.scheme.quota_pkts = 2 * cfg.scheme.request_pkts;

  cfg.population.num_mhs = n_mhs;
  cfg.population.speed_min_mps = 5;
  cfg.population.speed_max_mps = 20;
  cfg.population.active_fraction = 0.25;
  cfg.population.flow_kbps = 16;
  cfg.population.packet_bytes = 160;
  cfg.population.horizon = 20_s;
  cfg.population.traffic_start = 1_s;
  cfg.population.traffic_stop = 20_s;

  CityTopology topo(cfg);
  Simulation& sim = topo.simulation();
  // Raw timeline records are only inspected on failure; cap them so
  // timeline memory stays flat across the population axis (the derived
  // attempts and metrics this report reads are unaffected).
  sim.timeline().set_record_cap(65536);
  topo.start();
  // Hosts freeze and sources stop at the horizon. Quiesce past the last
  // possible lease deadline (lifetime + grace) plus slack beyond the
  // watchdog, so every attempt has resolved and every lease either drained
  // gracefully or hit its lifetime teardown — anything still leased after
  // this point is a genuine leak.
  sim.run_until(cfg.population.horizon + cfg.scheme.lifetime +
                cfg.scheme.lease_grace + 3_s);

  RunResult r;
  r.ars = topo.num_ars();
  r.maps = topo.num_maps();
  r.handoffs = topo.wlan().handoffs_started();
  const HandoverOutcomeRecorder& rec = topo.outcomes();
  r.attempts = rec.attempts();
  r.completed = rec.completed();
  r.failed = rec.count(HandoverOutcome::kFailed);
  r.unresolved = r.attempts - r.completed - r.failed;
  for (std::size_t i = 0; i < topo.num_mobiles(); ++i) {
    const FlowId flow = topo.mobile(i).flow;
    if (flow == 0) continue;
    const FlowCounters& fc = sim.stats().flow(flow);
    ++r.flows;
    r.sent += fc.sent;
    r.delivered += fc.delivered;
    r.dropped += fc.dropped;
    if (fc.sent != fc.delivered + fc.dropped) ++r.conservation;
  }
  r.leaked_leases = topo.leased_total();
  if (metrics) r.metrics_json = sim.metrics().to_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Scale — population sweep",
                "city-scale scenario vs. population size");
  bench::note("random-waypoint walks over an AR field sized to the "
              "population; quarter of the hosts carry a classified flow; "
              "watchdog + ledger + lease books audited per run");

  std::vector<int> populations = {10, 100, 1000, 5000};
  if (opts.smoke) populations = {10, 100};
  const std::uint64_t seed = 1;

  const std::uint64_t audits_before = AuditHub::instance().violations();

  std::vector<sweep::SweepRunner::Job<RunResult>> grid;
  for (const int n : populations) {
    char label[32];
    std::snprintf(label, sizeof label, "mhs=%d", n);
    grid.push_back({label, [n, seed, metrics = opts.metrics] {
                      return run_once(n, seed, metrics);
                    }});
  }
  sweep::SweepRunner runner(opts.jobs);
  std::vector<RunResult> results = runner.run(std::move(grid));
  {
    std::vector<std::string> metrics;
    metrics.reserve(results.size());
    for (auto& r : results) metrics.push_back(std::move(r.metrics_json));
    runner.attach_metrics(std::move(metrics));
  }

  bool sound = true;
  std::printf("%8s %5s %5s %9s %9s %10s %7s %11s %7s %7s\n", "mhs", "ars",
              "maps", "handoffs", "attempts", "completed", "failed",
              "unresolved", "consrv", "leaked");
  for (std::size_t i = 0; i < populations.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("%8d %5llu %5llu %9llu %9llu %10llu %7llu %11llu %7llu "
                "%7llu\n",
                populations[i], static_cast<unsigned long long>(r.ars),
                static_cast<unsigned long long>(r.maps),
                static_cast<unsigned long long>(r.handoffs),
                static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.unresolved),
                static_cast<unsigned long long>(r.conservation),
                static_cast<unsigned long long>(r.leaked_leases));
    if (r.unresolved != 0 || r.conservation != 0 || r.leaked_leases != 0) {
      sound = false;
      std::printf("VIOLATION at mhs=%d: unresolved=%llu conservation=%llu "
                  "leaked=%llu\n",
                  populations[i],
                  static_cast<unsigned long long>(r.unresolved),
                  static_cast<unsigned long long>(r.conservation),
                  static_cast<unsigned long long>(r.leaked_leases));
    }
  }
  std::printf("\n");
  for (std::size_t i = 0; i < populations.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("mhs=%d: %llu flows, %llu sent, %llu delivered, %llu "
                "dropped\n",
                populations[i], static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.dropped));
  }

  const bool audits_clean =
      AuditHub::instance().violations() == audits_before;
  std::printf("scale soundness: %s (attempts all resolved, conservation "
              "holds, no leaked leases, audits %s)\n",
              sound && audits_clean ? "PASS" : "FAIL",
              audits_clean ? "clean" : "VIOLATED");

  // Throughput is wall-state: handovers/sec per run on stderr + JSON only.
  const sweep::SweepReport& rep = runner.report();
  for (std::size_t i = 0;
       i < rep.runs.size() && i < populations.size(); ++i) {
    const double secs = rep.runs[i].wall_ms / 1000.0;
    const double hps =
        secs > 0 ? static_cast<double>(results[i].handoffs) / secs : 0;
    std::fprintf(stderr,
                 "run %s: %llu handovers in %.0f ms => %.0f handovers/sec, "
                 "peak rss %.1f MiB\n",
                 rep.runs[i].label.c_str(),
                 static_cast<unsigned long long>(results[i].handoffs),
                 rep.runs[i].wall_ms, hps, rep.runs[i].peak_rss_mb);
  }

  const bool rss_ok = bench::report_sweep_gated("scale_population_sweep",
                                                runner, opts, 4096.0);
  return sound && audits_clean && rss_ok ? 0 : 1;
}
