// Extension figure — handover robustness vs. inter-AR control loss.
//
// Not part of the thesis evaluation: this sweep exercises the reliable
// control plane (per-message retransmission with exponential backoff plus
// the reactive §2.3.2 fallback) by applying seeded Bernoulli loss to the
// CONTROL packets crossing the PAR-NAR wire in both directions — HI/HAck
// and the tunneled FBack/BF/FNA traffic. Redirected data is untouched, so
// every delivery difference is attributable to the control plane. At each
// loss level the MH bounces between the cells for several round trips.
//
// Reported per loss level, averaged over 3 seeds:
//   success%    completed (predictive + reactive) / attempted handovers,
//               with retransmission on (attempts that exhaust their FBU
//               retries are honestly recorded as failed)
//   reactive%   share of completed handovers that needed the reactive FBU
//   recovered   buffered packets drained to the MH per run (PAR + NAR),
//               with retransmission on vs. off
//
// The rtx-off recorder resolves fire-and-forget reactive attempts
// optimistically, so its success column would read 100% at any loss; the
// recovered-packet count is the honest basis for comparison there.

#include "bench_common.hpp"
#include "fault/filters.hpp"
#include "fault/link_fault.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct RunResult {
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  std::uint64_t reactive = 0;
  std::uint64_t recovered = 0;  // drained from handoff buffers
  std::string outcome_table;    // per-outcome / per-cause census
  std::string metrics_json;     // only under --metrics
};

RunResult run_once(double loss, std::uint64_t seed, bool rtx_enabled,
                   bool metrics) {
  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  cfg.rtx.enabled = rtx_enabled;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // Seeded Bernoulli drops on the control packets of both directions of
  // the inter-AR link: the injector RNG is independent of the topology
  // seed, so the same packet schedule sees reproducible but uncorrelated
  // loss per direction.
  fault::LinkFaultInjector fwd(sim, topo.par_nar_link().a_to_b());
  fault::LinkFaultInjector rev(sim, topo.par_nar_link().b_to_a());
  if (loss > 0) {
    fwd.bernoulli(loss, seed * 7919 + 1, fault::control_only());
    rev.bernoulli(loss, seed * 104729 + 2, fault::control_only());
  }

  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.tclass = TrafficClass::kRealTime;  // buffered at the NAR when granted
  c.flow = 1;
  CbrSource source(topo.cn(), 5000, c);
  source.start(2_s);
  source.stop(40_s);
  topo.start();
  sim.run_until(50_s);

  RunResult r;
  const HandoverOutcomeRecorder& rec = topo.outcomes();
  r.attempts = rec.attempts();
  r.completed = rec.completed();
  r.reactive = rec.count(HandoverOutcome::kReactive);
  r.recovered = topo.par_agent().counters().drained +
                topo.nar_agent().counters().drained;
  r.outcome_table = rec.format_table("per-attempt outcomes");
  if (metrics) r.metrics_json = sim.metrics().to_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Extension — control-loss sweep",
                "handover completion vs. inter-AR control loss");
  bench::note("bidirectional Bernoulli loss on PAR-NAR control packets; "
              "bounce mobility; 3 seeds per point");

  std::vector<std::uint64_t> seeds = {3, 17, 41};
  std::vector<int> loss_pcts;
  for (int pct = 0; pct <= 50; pct += 5) loss_pcts.push_back(pct);
  if (opts.smoke) {
    seeds = {3};
    loss_pcts = {0, 30};
  }

  // Grid order: loss level, then seed, then rtx on/off — the aggregation
  // below walks the index-ordered results in the same nesting, so stdout
  // is byte-identical at any --jobs value.
  std::vector<sweep::SweepRunner::Job<RunResult>> grid;
  for (const int pct : loss_pcts) {
    const double loss = pct / 100.0;
    for (const std::uint64_t seed : seeds) {
      for (const bool rtx : {true, false}) {
        char label[64];
        std::snprintf(label, sizeof label, "loss=%d%% seed=%llu rtx=%s", pct,
                      static_cast<unsigned long long>(seed),
                      rtx ? "on" : "off");
        grid.push_back({label, [loss, seed, rtx, metrics = opts.metrics] {
                          return run_once(loss, seed, rtx, metrics);
                        }});
      }
    }
  }
  sweep::SweepRunner runner(opts.jobs);
  std::vector<RunResult> results = runner.run(std::move(grid));
  {
    std::vector<std::string> metrics;
    metrics.reserve(results.size());
    for (auto& r : results) metrics.push_back(std::move(r.metrics_json));
    runner.attach_metrics(std::move(metrics));
  }

  Series success("success% (rtx on)");
  Series reactive_share("reactive% (rtx on)");
  Series recovered_on("recovered/run (rtx on)");
  Series recovered_off("recovered/run (rtx off)");

  std::string table_at_30;
  std::size_t next = 0;
  for (const int pct : loss_pcts) {
    RunResult on, off;
    for (const std::uint64_t seed : seeds) {
      const RunResult& a = results[next++];
      if (pct == 30 && seed == seeds[0]) table_at_30 = a.outcome_table;
      on.attempts += a.attempts;
      on.completed += a.completed;
      on.reactive += a.reactive;
      on.recovered += a.recovered;
      const RunResult& b = results[next++];
      off.recovered += b.recovered;
    }
    const double n = static_cast<double>(seeds.size());
    success.add(pct, on.attempts == 0
                         ? 100.0
                         : 100.0 * static_cast<double>(on.completed) /
                               static_cast<double>(on.attempts));
    reactive_share.add(
        pct, on.completed == 0 ? 0.0
                               : 100.0 * static_cast<double>(on.reactive) /
                                     static_cast<double>(on.completed));
    recovered_on.add(pct, static_cast<double>(on.recovered) / n);
    recovered_off.add(pct, static_cast<double>(off.recovered) / n);
  }

  print_series_table("Control loss vs. handover completion", "loss %",
                     {success, reactive_share, recovered_on, recovered_off});

  std::printf("\nsample run at 30%% loss (seed %llu):\n%s",
              static_cast<unsigned long long>(seeds[0]),
              table_at_30.c_str());

  // The robustness acceptance bar: >= 95% of handovers must complete with
  // 30% loss in both directions of the control path.
  double at30 = 0;
  for (const auto& [x, y] : success.points()) {
    if (x == 30) at30 = y;
  }
  std::printf("\ncompletion at 30%% bidirectional loss: %.1f%% (%s)\n", at30,
              at30 >= 95.0 ? "meets the >=95% bar" : "BELOW the 95% bar");

  bench::report_sweep("fig_ext_control_loss_sweep", runner, opts);
  return 0;
}
