// Figure 4.6 — packet loss per class for one handoff as the per-flow data
// rate grows (the paper's x axis: 51.2 ... 426.7 kb/s).
//
// Paper claim: the high-priority flow (F2) always loses the least; when the
// buffers overflow, best-effort and real-time packets are sacrificed.

#include "bench_common.hpp"

using namespace fhmip;

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Figure 4.6", "packet loss vs. data rate (one handoff)");
  bench::note(bench::flow_legend());

  // The paper's rate ladder (kb/s per flow).
  std::vector<double> rates = {51.2, 55.7, 61.0,  67.4,  75.3,  85.3,
                               98.5, 116.4, 142.2, 182.9, 256.0, 426.7};
  if (opts.smoke) rates = {51.2, 426.7};
  QosDropParams base;
  base.mode = BufferMode::kDual;
  base.classify = true;
  base.pool_pkts = 20;
  base.request_pkts = 20;

  using Probe = std::pair<std::vector<FlowOutcome>, std::string>;
  std::vector<sweep::SweepRunner::Job<Probe>> grid;
  for (const double kbps : rates) {
    char label[32];
    std::snprintf(label, sizeof label, "rate=%.1fkbps", kbps);
    grid.push_back({label, [base, kbps, metrics = opts.metrics] {
                      Probe pr;
                      pr.first = run_rate_probe(base, kbps,
                                                metrics ? &pr.second : nullptr);
                      return pr;
                    }});
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto per_rate = bench::split_metrics(runner.run(std::move(grid)), runner);

  Series f1("F1"), f2("F2"), f3("F3");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& flows = per_rate[i];
    f1.add(rates[i], static_cast<double>(flows[0].dropped));
    f2.add(rates[i], static_cast<double>(flows[1].dropped));
    f3.add(rates[i], static_cast<double>(flows[2].dropped));
  }
  print_series_table("Data rate vs. drop", "kb/s", {f1, f2, f3});

  bool f2_lowest = true;
  for (std::size_t i = 0; i < f2.points().size(); ++i) {
    if (f2.points()[i].second > f1.points()[i].second ||
        f2.points()[i].second > f3.points()[i].second) {
      f2_lowest = false;
    }
  }
  std::printf("\nhigh-priority flow lowest at every rate: %s\n",
              f2_lowest ? "yes" : "NO (unexpected)");

  bench::report_sweep("fig4_06_datarate_sweep", runner, opts);
  return 0;
}
