// Figure 4.7 — per-packet end-to-end delay around one handoff, original
// Fast Handover (all packets buffered at the NAR, buffer = 40).
//
// Paper claim: the buffered packets show a linear delay ramp (oldest waited
// the full blackout) that decays back to the baseline; no PAR->NAR transfer
// delay because everything is already at the NAR.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.7", "end-to-end delay, fast handover (buffer=40)");
  bench::note(bench::flow_legend());

  DelayCaptureParams p;
  p.mode = BufferMode::kNarOnly;
  p.classify = false;
  p.pool_pkts = 40;
  p.request_pkts = 40;
  const auto r = run_delay_capture(p);
  const auto series = delay_series(r);
  print_series_table("Fast handover (buffer=40): delay (s) vs. seq",
                     "packet seq", series);
  std::printf("\nwindow: packets %u..%u; max delays F1=%.3f F2=%.3f F3=%.3f s\n",
              r.seq_begin, r.seq_end, series[0].max_y(), series[1].max_y(),
              series[2].max_y());
  return 0;
}
