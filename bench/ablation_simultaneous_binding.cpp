// Ablation — simultaneous binding (§3.1.1) vs. the proposed buffering.
//
// The thesis dismisses the bicast family because a single-radio 802.11
// host is deaf during the L2 handoff regardless of where packets are sent,
// and bicasting doubles core-network load. This harness quantifies both
// points on the Figure 4.1 network.

#include "bench_common.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct Outcome {
  std::uint64_t sent, delivered, dropped;
  std::uint64_t core_copies;  // MAP-emitted packets (tunneled + bicast)
};

std::pair<Outcome, std::string> run(bool buffering, bool bicast,
                                    bool metrics) {
  PaperTopologyConfig cfg;
  cfg.scheme.mode = buffering ? BufferMode::kDual : BufferMode::kNone;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 40;
  cfg.scheme.request_pkts = 40;
  cfg.use_fast_handover = buffering;
  cfg.request_buffers = buffering;
  cfg.simultaneous_binding = bicast;
  PaperTopology topo(cfg);
  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(2_s);
  src.stop(16_s);
  topo.start();
  topo.simulation().run_until(20_s);
  const FlowCounters& fc = topo.simulation().stats().flow(1);
  Outcome o{fc.sent, fc.delivered, fc.dropped,
            topo.map_agent().packets_tunneled() +
                topo.map_agent().packets_bicast()};
  return {o, metrics ? topo.simulation().metrics().to_json() : std::string()};
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation",
                "simultaneous binding (bicast) vs. the proposed buffering");
  bench::note("one 128 kb/s flow across one PAR->NAR handover (200 ms L2)");

  struct Row {
    const char* name;
    bool buffering;
    bool bicast;
  };
  std::vector<Row> rows = {
      {"nothing (plain handover)", false, false},
      {"simultaneous binding", false, true},
      {"proposed dual buffering", true, false},
      {"both", true, true},
  };
  if (opts.smoke) {
    rows = {{"simultaneous binding", false, true},
            {"proposed dual buffering", true, false}};
  }

  std::vector<sweep::SweepRunner::Job<std::pair<Outcome, std::string>>> grid;
  for (const Row& row : rows) {
    grid.push_back({row.name,
                    [buffering = row.buffering, bicast = row.bicast,
                     metrics = opts.metrics] {
                      return run(buffering, bicast, metrics);
                    }});
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);

  TextTable t({"scheme", "sent", "delivered", "lost", "MAP copies emitted"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Outcome& o = results[i];
    t.add_row({rows[i].name, std::to_string(o.sent),
               std::to_string(o.delivered),
               std::to_string(o.sent - std::min(o.sent, o.delivered)),
               std::to_string(o.core_copies)});
  }
  t.print("one-handover outcome per scheme");
  std::printf("\nexpected: bicast still loses the blackout packets (deaf "
              "radio) while emitting\nnearly 2x the copies during the "
              "anticipation window; buffering loses none.\n");

  bench::report_sweep("ablation_simultaneous_binding", runner, opts);
  return 0;
}
