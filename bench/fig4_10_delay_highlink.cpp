// Figure 4.10 — per-packet end-to-end delay, proposed method with
// classification enabled and a SLOW (50 ms) inter-AR link.
//
// Paper claim: packets buffered at the PAR (best effort, and high-priority
// overflow) pay the extra PAR->NAR forwarding delay, so the best-effort
// delay "increases significantly" while the NAR-buffered real-time flow is
// barely affected — the justification for buffering real-time at the NAR.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.10",
                "end-to-end delay, class enabled, PAR-NAR link delay = 50 ms");
  bench::note(bench::flow_legend());

  DelayCaptureParams p;
  p.mode = BufferMode::kDual;
  p.classify = true;
  p.pool_pkts = 20;
  p.request_pkts = 20;
  p.par_nar_delay = SimTime::millis(50);
  const auto r = run_delay_capture(p);
  const auto series = delay_series(r);
  print_series_table("Proposed (link delay=50ms): delay (s) vs. seq",
                     "packet seq", series);

  // Side-by-side with the 2 ms run for the comparison the text makes.
  p.par_nar_delay = SimTime::millis(2);
  const auto fast_series = delay_series(run_delay_capture(p));
  std::printf("\nmax delay (s):      F1      F2      F3\n");
  std::printf("  link =  2 ms:  %.3f  %.3f  %.3f\n", fast_series[0].max_y(),
              fast_series[1].max_y(), fast_series[2].max_y());
  std::printf("  link = 50 ms:  %.3f  %.3f  %.3f  <- F3 inflated\n",
              series[0].max_y(), series[1].max_y(), series[2].max_y());
  return 0;
}
