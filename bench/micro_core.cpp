// Microbenchmarks of the hot core data structures (google-benchmark):
// the event scheduler, drop-tail queue, handoff buffer and policy decision.

#include <benchmark/benchmark.h>

#include "buffer/buffer_manager.hpp"
#include "buffer/policy.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace fhmip {
namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      s.schedule_at(SimTime::micros((i * 7919) % 100000),
                    [&sink] { ++sink; });
    }
    s.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) {
      ids.push_back(s.schedule_at(SimTime::micros(i), [] {}));
    }
    for (int i = 0; i < n; i += 2) s.cancel(ids[i]);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10000);

void BM_DropTailQueuePushPop(benchmark::State& state) {
  Simulation sim;
  DropTailQueue q(1024);
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    q.push(p);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailQueuePushPop);

void BM_LinkTransmitDeliver(benchmark::State& state) {
  // Full link round: queue, serialize, propagate, deliver — the data-plane
  // hot path the observability layer must not slow down when no sinks are
  // attached.
  const int n = 64;
  Simulation sim;
  Node dst(sim, 2, "dst");
  SimplexLink link(sim, dst, 10e6, SimTime::micros(10), 256, "l");
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
      link.transmit(std::move(p));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(link.packets_delivered());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkTransmitDeliver);

void BM_PolicyDecision(benchmark::State& state) {
  BufferSchemeConfig cfg;
  int i = 0;
  for (auto _ : state) {
    const AllocationCase ac{(i & 1) != 0, (i & 2) != 0};
    const auto cls = static_cast<TrafficClass>(i % 4);
    benchmark::DoNotOptimize(decide_buffering(cfg, ac, cls));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyDecision);

void BM_HandoffBufferEvictingPush(benchmark::State& state) {
  Simulation sim;
  HandoffBuffer buf(64);
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = TrafficClass::kRealTime;
    PacketPtr evicted;
    buf.push_evict_oldest_realtime(p, evicted);
    benchmark::DoNotOptimize(evicted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandoffBufferEvictingPush);

void BM_BufferManagerAllocateRelease(benchmark::State& state) {
  BufferManager m(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto k = BufferManager::key(static_cast<MhId>(i % 64), ArRole::kNar);
    m.allocate(k, 16);
    m.release(k);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferManagerAllocateRelease);

}  // namespace
}  // namespace fhmip
