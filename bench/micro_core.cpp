// Microbenchmarks of the hot core data structures (google-benchmark):
// the event scheduler, drop-tail queue, handoff buffer, policy decision,
// and the per-MH scaling hot paths flushed out by scale_population_sweep
// (lease-reaper sweeps, the WLAN tick loop, waypoint position sampling).

#include <benchmark/benchmark.h>

#include <memory>

#include "buffer/buffer_manager.hpp"
#include "buffer/policy.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"
#include "wireless/mobility.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {
namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      s.schedule_at(SimTime::micros((i * 7919) % 100000),
                    [&sink] { ++sink; });
    }
    s.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) {
      ids.push_back(s.schedule_at(SimTime::micros(i), [] {}));
    }
    for (int i = 0; i < n; i += 2) s.cancel(ids[i]);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10000);

void BM_DropTailQueuePushPop(benchmark::State& state) {
  Simulation sim;
  DropTailQueue q(1024);
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    q.push(p);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailQueuePushPop);

void BM_LinkTransmitDeliver(benchmark::State& state) {
  // Full link round: queue, serialize, propagate, deliver — the data-plane
  // hot path the observability layer must not slow down when no sinks are
  // attached.
  const int n = 64;
  Simulation sim;
  Node dst(sim, 2, "dst");
  SimplexLink link(sim, dst, 10e6, SimTime::micros(10), 256, "l");
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
      link.transmit(std::move(p));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(link.packets_delivered());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkTransmitDeliver);

void BM_PacketForward(benchmark::State& state) {
  // The per-packet forward cycle at a MAP/AR at city scale: allocate a
  // data packet, encapsulate toward the care-of address, queue at the
  // inter-AR link, dequeue, decapsulate at the NAR, destroy on delivery.
  // This is the allocation-dominated path the packet pool targets.
  Simulation sim;
  DropTailQueue q(1024);
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = TrafficClass::kRealTime;
    p->encapsulate({3, 3});
    q.push(p);
    auto out = q.pop();
    out->decapsulate();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketForward);

void BM_TunnelEncapDecap(benchmark::State& state) {
  // MAP + inter-AR tunnel push/pop on a fresh packet each round, the way
  // the data plane actually runs it (every packet starts with an empty
  // tunnel stack, so the first encapsulate pays the stack's storage).
  Simulation sim;
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->encapsulate({3, 3});
    p->encapsulate({4, 4});
    p->decapsulate();
    p->decapsulate();
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TunnelEncapDecap);

void BM_QueueChurn(benchmark::State& state) {
  // Steady-state churn with live packets moving between two queues (the
  // PAR->NAR handoff pattern: drain one side, admit at the other) plus a
  // class-priority hop — no packet allocation inside the loop, so this
  // isolates the per-enqueue node cost.
  Simulation sim;
  DropTailQueue a(256), b(256);
  ClassPriorityQueue c(256);
  for (int i = 0; i < 128; ++i) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = static_cast<TrafficClass>(i % 4);
    a.push(p);
  }
  for (auto _ : state) {
    auto p = a.pop();
    b.push(p);
    auto q2 = b.pop();
    c.push(q2);
    auto r = c.pop();
    a.push(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueChurn);

void BM_PolicyDecision(benchmark::State& state) {
  BufferSchemeConfig cfg;
  int i = 0;
  for (auto _ : state) {
    const AllocationCase ac{(i & 1) != 0, (i & 2) != 0};
    const auto cls = static_cast<TrafficClass>(i % 4);
    benchmark::DoNotOptimize(decide_buffering(cfg, ac, cls));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyDecision);

void BM_HandoffBufferEvictingPush(benchmark::State& state) {
  Simulation sim;
  HandoffBuffer buf(64);
  for (auto _ : state) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = TrafficClass::kRealTime;
    PacketPtr evicted;
    buf.push_evict_oldest_realtime(p, evicted);
    benchmark::DoNotOptimize(evicted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandoffBufferEvictingPush);

void BM_BufferManagerAllocateRelease(benchmark::State& state) {
  BufferManager m(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto k = BufferManager::key(static_cast<MhId>(i % 64), ArRole::kNar);
    m.allocate(k, 16);
    m.release(k);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferManagerAllocateRelease);

void BM_BufferManagerReapIdleSweeps(benchmark::State& state) {
  // The common steady state of a big deployment: thousands of live leases,
  // none of them expiring. Sweep cost must scale with the leases that
  // actually expire, not with the watch-list size — this holds the reap
  // period's worth of sweeps against n far-future deadlines.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // Setup and teardown both happen under a paused timer: destroying n
    // leases is itself O(n) and would otherwise drown out the sweeps.
    state.PauseTiming();
    auto sim = std::make_unique<Simulation>();
    auto m = std::make_unique<BufferManager>(1 << 26);
    m->set_observer(sim.get(), "bench");
    for (int i = 0; i < n; ++i) {
      m->allocate(BufferManager::key(static_cast<MhId>(i), ArRole::kNar), 1,
                  SimTime::seconds(3600));
    }
    state.ResumeTiming();
    sim->run_until(SimTime::seconds(60));  // 120 sweeps at the 500ms period
    benchmark::DoNotOptimize(m->leased());
    state.PauseTiming();
    m.reset();  // before the simulation: the dtor cancels its reaper event
    sim.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 120);
}
BENCHMARK(BM_BufferManagerReapIdleSweeps)->Arg(50)->Arg(5000);

struct NullL2 final : L2Callbacks {
  void on_l2_trigger(NodeId, Node&) override {}
  void on_predisconnect(NodeId, Node&) override {}
  void on_attached(NodeId, Node&) override {}
  void on_detached() override {}
};

void BM_WlanTickStaticField(benchmark::State& state) {
  // One second of WLAN ticks over a 10x10 AP grid with n stationary,
  // attached hosts: the per-tick association scan that dominated the
  // city-scale runs. Hosts sit at cell centers, so no triggers or handoffs
  // fire — this isolates the evaluate() cost itself.
  const int n = static_cast<int>(state.range(0));
  const double spacing = 212, radius = 112;
  NullL2 cb;
  for (auto _ : state) {
    // Field construction and teardown stay outside the timed region; only
    // the tick loop is measured.
    state.PauseTiming();
    auto sim = std::make_unique<Simulation>();
    WlanConfig cfg;
    cfg.send_router_adv = false;
    auto wlan = std::make_unique<WlanManager>(*sim, cfg);
    std::vector<std::unique_ptr<Node>> nodes;
    for (int r = 0; r < 10; ++r) {
      for (int c = 0; c < 10; ++c) {
        nodes.push_back(std::make_unique<Node>(
            *sim, static_cast<NodeId>(nodes.size() + 1), "ar"));
        wlan->add_ap(*nodes.back(), Vec2{c * spacing, r * spacing}, radius,
                     nullptr);
      }
    }
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Node>(
          *sim, static_cast<NodeId>(1000 + i), "mh"));
      const Vec2 at{(i % 10) * spacing, ((i / 10) % 10) * spacing};
      wlan->add_mh(*nodes.back(), std::make_unique<StaticPosition>(at), &cb);
    }
    wlan->start();
    state.ResumeTiming();
    sim->run_until(SimTime::seconds(1));  // 100 ticks at the 10ms default
    benchmark::DoNotOptimize(wlan->handoffs_started());
    state.PauseTiming();
    wlan.reset();
    nodes.clear();
    sim.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 100 * n);
}
BENCHMARK(BM_WlanTickStaticField)->Arg(100)->Arg(1000);

void BM_WaypointMobilityPosition(benchmark::State& state) {
  // Random-waypoint walks hold hundreds of segments; position() runs once
  // per MH per tick, sampling later and later times as the run advances.
  const int n = static_cast<int>(state.range(0));
  std::vector<WaypointMobility::Leg> legs;
  legs.reserve(n);
  for (int i = 0; i < n; ++i) {
    legs.push_back({Vec2{static_cast<double>((i * 37) % 500),
                         static_cast<double>((i * 59) % 500)},
                    10.0});
  }
  const WaypointMobility walk(Vec2{0, 0}, std::move(legs));
  std::int64_t t = 0;
  for (auto _ : state) {
    t = (t + 7'919'000'000) % 10'000'000'000'000;  // hop around the walk
    benchmark::DoNotOptimize(walk.position(SimTime::nanos(t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaypointMobilityPosition)->Arg(16)->Arg(256);

}  // namespace
}  // namespace fhmip
