#pragma once

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// prints the series/rows of one table or figure from the thesis's
// evaluation (Chapter 4), in both aligned-table and CSV form.

#include <cstdio>

#include "scenario/experiment.hpp"
#include "stats/recorder.hpp"
#include "stats/table.hpp"

namespace fhmip::bench {

inline void header(const char* id, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, caption);
  std::printf("==============================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

/// The three flows used throughout §4.2.2-§4.2.3.
inline const char* flow_legend() {
  return "F1 = real-time, F2 = high priority, F3 = best effort";
}

}  // namespace fhmip::bench
