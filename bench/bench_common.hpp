#pragma once

// Shared helpers for the figure-reproduction harnesses. Each bench binary
// prints the series/rows of one table or figure from the thesis's
// evaluation (Chapter 4), in both aligned-table and CSV form.
//
// The sweep-shaped benches (multiple independent runs over a parameter
// grid) additionally take the shared sweep command line (--jobs/--json/
// --smoke, see sweep/cli.hpp) and fan their runs across a SweepRunner.
// Everything on stdout stays byte-identical across --jobs values; timing
// (which varies run to run) goes to stderr and the optional JSON report.

#include <cstdio>

#include "scenario/experiment.hpp"
#include "stats/recorder.hpp"
#include "stats/table.hpp"
#include "sweep/cli.hpp"
#include "sweep/json.hpp"
#include "sweep/sweep_runner.hpp"

namespace fhmip::bench {

inline void header(const char* id, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, caption);
  std::printf("==============================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

/// The three flows used throughout §4.2.2-§4.2.3.
inline const char* flow_legend() {
  return "F1 = real-time, F2 = high priority, F3 = best effort";
}

/// Parses the shared sweep flags; on bad usage prints the diagnostic to
/// stderr and returns false (mains then `return 2`).
inline bool parse_sweep_cli(int argc, char** argv, sweep::Options& opts) {
  const sweep::ParseResult r = sweep::parse_args(argc, argv);
  if (!r.error.empty()) {
    std::fprintf(stderr, "%s: %s\n%s", argv[0], r.error.c_str(),
                 sweep::usage(argv[0]).c_str());
    return false;
  }
  opts = r.options;
  return true;
}

/// Splits (value, metrics-json) run results: the metrics column is attached
/// to the runner's report (embedded in the --json payload) and the bare
/// values are returned for the bench's own aggregation. Under no --metrics
/// the second elements are empty strings and attach is a no-op per run.
template <typename R>
std::vector<R> split_metrics(std::vector<std::pair<R, std::string>> results,
                             sweep::SweepRunner& runner) {
  std::vector<R> values;
  std::vector<std::string> metrics;
  values.reserve(results.size());
  metrics.reserve(results.size());
  for (auto& r : results) {
    values.push_back(std::move(r.first));
    metrics.push_back(std::move(r.second));
  }
  runner.attach_metrics(std::move(metrics));
  return values;
}

/// Post-sweep reporting: wall-time summary to stderr (never stdout — it
/// differs between runs) and the machine-readable report to --json PATH.
inline void report_sweep(const char* bench_id, const sweep::SweepRunner& runner,
                         const sweep::Options& opts) {
  std::fputs(runner.report().format_summary().c_str(), stderr);
  if (!opts.json_path.empty() &&
      !sweep::write_json(opts.json_path, bench_id, runner.report())) {
    std::fprintf(stderr, "%s: failed to write %s\n", bench_id,
                 opts.json_path.c_str());
  }
}

/// report_sweep plus the peak-RSS gate: resolves --rss-budget-mb against
/// the bench's default budget (flag absent keeps the default; 0 disables),
/// stamps it into the report, and returns false when the sweep's process
/// peak RSS exceeded the budget (mains then exit nonzero). The verdict
/// itself is wall-state, so it never touches stdout.
inline bool report_sweep_gated(const char* bench_id,
                               sweep::SweepRunner& runner,
                               const sweep::Options& opts,
                               double default_budget_mb) {
  const double budget = opts.rss_budget_mb >= 0
                            ? static_cast<double>(opts.rss_budget_mb)
                            : default_budget_mb;
  runner.set_rss_budget_mb(budget);
  report_sweep(bench_id, runner, opts);
  if (!runner.report().rss_within_budget()) {
    std::fprintf(stderr, "%s: peak RSS %.1f MiB exceeds budget %.1f MiB\n",
                 bench_id, runner.report().peak_rss_mb,
                 runner.report().rss_budget_mb);
    return false;
  }
  return true;
}

}  // namespace fhmip::bench
