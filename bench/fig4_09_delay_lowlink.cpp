// Figure 4.9 — per-packet end-to-end delay, proposed method with
// classification ENABLED and a fast (2 ms) link between the two access
// routers.
//
// Paper claim: with a fast inter-AR link the per-class delays are similar;
// real-time (NAR-buffered, stale packets evicted) stays lowest.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.9",
                "end-to-end delay, class enabled, PAR-NAR link delay = 2 ms");
  bench::note(bench::flow_legend());

  DelayCaptureParams p;
  p.mode = BufferMode::kDual;
  p.classify = true;
  p.pool_pkts = 20;
  p.request_pkts = 20;
  p.par_nar_delay = SimTime::millis(2);
  const auto r = run_delay_capture(p);
  const auto series = delay_series(r);
  print_series_table("Proposed (link delay=2ms): delay (s) vs. seq",
                     "packet seq", series);
  std::printf("\nmax delays: F1=%.3f F2=%.3f F3=%.3f s (F1 lowest expected)\n",
              series[0].max_y(), series[1].max_y(), series[2].max_y());
  return 0;
}
