// Figure 4.2 — buffer utilization of different handoff mechanisms.
//
// N mobile hosts cross from the PAR to the NAR simultaneously, each
// receiving a 64 kb/s audio flow (160 B / 20 ms). Total packet drops are
// plotted against N for four buffering mechanisms:
//   NAR  — buffer at the new access router only (original Fast Handover)
//   PAR  — buffer at the previous access router only
//   DUAL — the proposed scheme, both routers
//   FH   — Fast Handover without buffering
//
// Paper claim: DUAL serves ~2x the simultaneous handoffs of NAR-only; with
// one buffer the proposed scheme matches the original protocol; FH drops
// every blackout packet.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.2", "buffer utilization of different handoff mechanisms");
  bench::note("pool = 36 packets per AR, request = 12 packets per MH, "
              "200 ms L2 handoff");

  struct Line {
    const char* name;
    BufferMode mode;
  };
  const Line lines[] = {{"NAR", BufferMode::kNarOnly},
                        {"PAR", BufferMode::kParOnly},
                        {"DUAL", BufferMode::kDual},
                        {"FH", BufferMode::kNone}};

  std::vector<Series> series;
  for (const Line& line : lines) {
    Series s(line.name);
    for (int n = 1; n <= 20; ++n) {
      SimultaneousHandoffParams p;
      p.mode = line.mode;
      p.classify = false;
      p.num_mhs = n;
      p.pool_pkts = 36;
      p.request_pkts = 12;
      const auto r = run_simultaneous_handoffs(p);
      s.add(n, static_cast<double>(r.total_dropped));
    }
    series.push_back(std::move(s));
  }
  print_series_table("Buffer type vs. packet drop", "mobile hosts", series);
  std::printf("\ncsv:\n");
  print_series_csv("mobile_hosts", series);

  // The headline capacity numbers.
  auto capacity = [&](const Series& s) {
    int last_zero = 0;
    for (const auto& [x, y] : s.points()) {
      if (y <= 0.5) last_zero = static_cast<int>(x);
    }
    return last_zero;
  };
  std::printf("\nmax simultaneous handoffs served without loss: "
              "NAR=%d PAR=%d DUAL=%d FH=%d\n",
              capacity(series[0]), capacity(series[1]), capacity(series[2]),
              capacity(series[3]));
  return 0;
}
