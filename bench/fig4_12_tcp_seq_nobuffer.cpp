// Figure 4.12 — TCP sequence trace across a pure link-layer handoff WITHOUT
// buffering (original protocol behaviour on an intra-subnet AP switch).
//
// Paper claim: every segment in flight during the 200 ms blackout is lost;
// with no duplicate ACKs arriving, the sender must wait for the coarse
// retransmission timeout (>= 1 s, 500 ms tick) — the connection stalls
// 1-1.5 s before resuming.

#include "bench_common.hpp"

using namespace fhmip;

namespace {

void print_trace(const TcpHandoffResult& r, double t0, double t1) {
  Series send_s("send_seq"), ack_s("ack_seq"), recv_s("recv_seq");
  for (const auto& p : r.send_trace) {
    if (p.at.sec() >= t0 && p.at.sec() <= t1) {
      send_s.add(p.at.sec(), static_cast<double>(p.seq) / r.mss);
    }
  }
  for (const auto& p : r.ack_trace) {
    if (p.at.sec() >= t0 && p.at.sec() <= t1) {
      ack_s.add(p.at.sec(), static_cast<double>(p.seq) / r.mss);
    }
  }
  for (const auto& p : r.recv_trace) {
    if (p.at.sec() >= t0 && p.at.sec() <= t1) {
      recv_s.add(p.at.sec(), static_cast<double>(p.seq) / r.mss);
    }
  }
  print_series_table("TCP sequence (segments) vs. time (s)", "time",
                     {send_s, ack_s, recv_s});
}

}  // namespace

int main() {
  bench::header("Figure 4.12", "TCP sequence during handoff (without buffering)");
  TcpHandoffParams p;
  p.buffering = false;
  const auto r = run_tcp_handoff(p);
  print_trace(r, 11.3, 13.4);
  std::printf("\ntimeouts=%d fast_retransmits=%d bytes_acked=%llu\n",
              r.timeouts, r.fast_retransmits,
              static_cast<unsigned long long>(r.bytes_acked));

  // Stall measurement (dead air at the receiver around the handoff).
  std::printf("receiver stall: %.3f s (expect 1..1.5 s: blackout + coarse RTO)\n",
              max_receiver_gap(r, 11.0, 14.0).sec());
  return 0;
}
