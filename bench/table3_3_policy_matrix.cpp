// Tables 3.2 + 3.3 — allocation cases and the per-class buffering
// operations, printed from the implemented policy (decide_buffering) so any
// drift from the thesis is visible.

#include "bench_common.hpp"
#include "buffer/policy.hpp"

using namespace fhmip;

int main() {
  bench::header("Table 3.2/3.3", "allocation cases and buffering operations");

  TextTable alloc({"", "PAR yes", "PAR no"});
  alloc.add_row({"NAR yes", "Case 1", "Case 2"});
  alloc.add_row({"NAR no", "Case 3", "Case 4"});
  alloc.print("Table 3.2 — allocation of buffer spaces");

  BufferSchemeConfig cfg;  // dual, classified — the proposed scheme
  TextTable ops({"Case", "Traffic type", "Buffering operation"});
  const TrafficClass classes[] = {TrafficClass::kRealTime,
                                  TrafficClass::kHighPriority,
                                  TrafficClass::kBestEffort};
  const char* cls_names[] = {"Real-time (a)", "High Priority (b)",
                             "Best effort (c)"};
  const AllocationCase cases[] = {
      {true, true}, {true, false}, {false, true}, {false, false}};
  for (const AllocationCase& ac : cases) {
    for (int i = 0; i < 3; ++i) {
      ops.add_row({"Case " + std::to_string(ac.case_number()), cls_names[i],
                   to_string(decide_buffering(cfg, ac, classes[i]))});
    }
  }
  ops.print("Table 3.3 — buffering operations (as implemented)");

  TextTable off({"Case", "Buffering operation (classification disabled)"});
  cfg.classify = false;
  for (const AllocationCase& ac : cases) {
    off.add_row({"Case " + std::to_string(ac.case_number()),
                 to_string(decide_buffering(cfg, ac,
                                            TrafficClass::kBestEffort))});
  }
  off.print("class-disabled variant (Figures 4.2/4.4/4.8 runs)");
  return 0;
}
