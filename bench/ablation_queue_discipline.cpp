// Ablation — forwarding-path queue discipline under congestion.
//
// §3.3 argues the scheme maps onto Diffserv PHBs; this harness shows what
// the class-priority link discipline buys on a congested wired hop,
// independent of handovers: three equal flows (RT/HP/BE) overload a
// bottleneck; with DropTail they suffer alike, with the priority queue the
// real-time band keeps low delay and the loss lands on best effort.

#include <memory>

#include "bench_common.hpp"
#include "net/network.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct Outcome {
  double mean_delay_ms[3];
  std::uint64_t dropped[3];
};

std::pair<Outcome, std::string> run(QueueDiscipline disc, bool metrics) {
  Simulation sim(1);
  sim.stats().set_keep_samples(true);
  Network net(sim);
  Node& cn = net.add_node("cn");
  Node& r = net.add_node("r");
  Node& host = net.add_node("host");
  cn.add_address({10, 1});
  r.add_address({20, 1});
  host.add_address({30, 1});
  net.connect(cn, r, 100e6, 1_ms, 200);
  // Bottleneck: 1 Mb/s against ~1.15 Mb/s of offered load.
  net.connect(r, host, 1e6, 5_ms, 30, disc);
  net.compute_routes();

  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (int i = 0; i < 3; ++i) {
    const auto port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(host, port));
    CbrSource::Config c;
    c.dst = {30, 1};
    c.dst_port = port;
    c.packet_bytes = 480;
    c.interval = 10_ms;  // 384 kb/s each
    c.jitter = 2_ms;     // break phase lock between the three sources
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        cn, static_cast<std::uint16_t>(5000 + i), c));
    // Stagger the phases so tail-drop victims are not decided by the
    // emission order within a tick.
    sources.back()->start(1_s + SimTime::micros(3'700) * i);
    sources.back()->stop(21_s);
  }
  sim.run_until(25_s);

  Outcome o{};
  for (int i = 0; i < 3; ++i) {
    const auto& samples = sim.stats().samples(i + 1);
    double sum = 0;
    for (const auto& s : samples) sum += s.delay.sec();
    o.mean_delay_ms[i] =
        samples.empty() ? 0 : sum / static_cast<double>(samples.size()) * 1e3;
    o.dropped[i] = sim.stats().flow(i + 1).dropped;
  }
  return {o, metrics ? sim.metrics().to_json() : std::string()};
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation", "DropTail vs. class-priority link discipline");
  bench::note("three 384 kb/s flows into a 1 Mb/s bottleneck (15% overload); "
              "F1 = real-time, F2 = high priority, F3 = best effort");

  // Two independent congested-bottleneck runs; --smoke keeps both (the
  // grid is already minimal), it only exists for CLI uniformity.
  std::vector<sweep::SweepRunner::Job<std::pair<Outcome, std::string>>> grid;
  grid.push_back({"DropTail", [metrics = opts.metrics] {
                    return run(QueueDiscipline::kDropTail, metrics);
                  }});
  grid.push_back({"ClassPriority", [metrics = opts.metrics] {
                    return run(QueueDiscipline::kClassPriority, metrics);
                  }});
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);
  const Outcome& dt = results[0];
  const Outcome& pq = results[1];

  TextTable t({"discipline", "flow", "mean delay (ms)", "dropped"});
  const char* flows[3] = {"F1 (RT)", "F2 (HP)", "F3 (BE)"};
  for (int i = 0; i < 3; ++i) {
    char d[32];
    std::snprintf(d, sizeof(d), "%.1f", dt.mean_delay_ms[i]);
    t.add_row({"DropTail", flows[i], d, std::to_string(dt.dropped[i])});
  }
  for (int i = 0; i < 3; ++i) {
    char d[32];
    std::snprintf(d, sizeof(d), "%.1f", pq.mean_delay_ms[i]);
    t.add_row({"ClassPriority", flows[i], d, std::to_string(pq.dropped[i])});
  }
  t.print("congested-bottleneck outcome by discipline");
  std::printf("\nexpected: DropTail treats classes alike; the priority "
              "discipline keeps real-time\ndelay near the propagation floor "
              "and concentrates the overload loss on best effort.\n");

  bench::report_sweep("ablation_queue_discipline", runner, opts);
  return 0;
}
