// Table 3.1 — values in the class-of-service field, as implemented.

#include "bench_common.hpp"
#include "buffer/traffic_class.hpp"

using namespace fhmip;

int main() {
  bench::header("Table 3.1", "values in class of service field");
  TextTable t({"Class of service field", "Type of service", "Diffserv PHB"});
  const TrafficClass classes[] = {
      TrafficClass::kUnspecified, TrafficClass::kRealTime,
      TrafficClass::kHighPriority, TrafficClass::kBestEffort};
  const char* phb_names[] = {"default/BE", "EF", "AF"};
  for (TrafficClass c : classes) {
    const char* desc = c == TrafficClass::kUnspecified
                           ? "Not specified, treated as Best effort packets"
                           : to_string(c);
    t.add_row({std::to_string(class_of_service_value(c)), desc,
               phb_names[static_cast<int>(phb_from_traffic_class(c))]});
  }
  t.print("class-of-service values (with the §3.3 Diffserv mapping)");
  return 0;
}
