// Ablation — precise (rate-adaptive) buffer allocation, the §5 extension.
//
// Hosts ask for a blanket 20-packet buffer regardless of their actual
// traffic; with the extension the PAR replaces the request with
// observed-rate × expected-blackout. With many low-rate hosts the pools
// stretch much further at no loss cost.

#include "bench_common.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

std::pair<std::uint64_t, std::string> run(bool adaptive, int hosts,
                                          double kbps, bool metrics) {
  PaperTopologyConfig cfg;
  cfg.num_mhs = hosts;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 40;
  cfg.scheme.request_pkts = 20;
  cfg.scheme.adaptive_request = adaptive;
  PaperTopology topo(cfg);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (int i = 0; i < hosts; ++i) {
    auto& m = topo.mobile(i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, 7000));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = CbrSource::interval_for_rate(kbps, 160);
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(16_s);
  }
  topo.start();
  topo.simulation().run_until(20_s);
  return {topo.simulation().stats().totals().dropped,
          metrics ? topo.simulation().metrics().to_json() : std::string()};
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation",
                "precise buffer allocation (§5) — blanket vs. adaptive");
  bench::note("pool 40/AR, blanket request 20/host, 32 kb/s flows");

  std::vector<int> host_counts = {2, 4, 6, 8, 10, 12};
  if (opts.smoke) host_counts = {2, 8};

  std::vector<sweep::SweepRunner::Job<std::pair<std::uint64_t, std::string>>>
      grid;
  for (const int hosts : host_counts) {
    for (const bool adaptive : {false, true}) {
      grid.push_back({(adaptive ? "adaptive " : "blanket ") +
                          std::to_string(hosts) + " hosts",
                      [adaptive, hosts, metrics = opts.metrics] {
                        return run(adaptive, hosts, 32, metrics);
                      }});
    }
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);

  Series blanket("blanket_drops"), adaptive("adaptive_drops");
  std::size_t next = 0;
  for (const int hosts : host_counts) {
    blanket.add(hosts, static_cast<double>(results[next++]));
    adaptive.add(hosts, static_cast<double>(results[next++]));
  }
  print_series_table("drops vs. simultaneous low-rate hosts", "hosts",
                     {blanket, adaptive});
  std::printf("\nexpected: blanket saturates both pools after 4 hosts; "
              "adaptive requests (~8 pkts)\nstretch the same pools to ~10 "
              "hosts before dropping.\n");

  bench::report_sweep("ablation_adaptive_allocation", runner, opts);
  return 0;
}
