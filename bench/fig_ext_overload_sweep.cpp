// Extension figure — overload-graceful buffering under pool pressure.
//
// Not part of the thesis evaluation: this sweep drives N mobile hosts
// through a *simultaneous* handover (identical mobility, so every BR hits
// the shared pool in the same anticipation window) while the per-router
// pool is sized to a fraction of the aggregate demand (N x request_pkts).
// Partial grants and per-MH quotas are on, so the routers degrade by
// shrinking or refusing grants instead of crashing or wedging; zero-grant
// hosts must still complete their handover through the no-buffer policy
// column, and the per-attempt watchdog converts anything that would wedge
// into a typed failure.
//
// Reported per pool level (averaged over the seeds), one table per N:
//   rt loss%     real-time packets dropped / sent, all hosts
//   be loss%     best-effort packets dropped / sent, all hosts
//   partial%     share of admission decisions that shrank the request
//   deny%        share refused outright (the zero-grant column)
//   failed%      failed handover attempts / attempts
//
// The graceful-degradation bar: at pool = 25% of demand every attempt
// still resolves, and classification keeps real-time loss below
// best-effort loss.

#include "bench_common.hpp"
#include "obs/timeline.hpp"
#include "scenario/paper_topology.hpp"
#include "sim/check.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct RunResult {
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t grants = 0, shrinks = 0, denies = 0;
  std::uint64_t rt_sent = 0, rt_dropped = 0;
  std::uint64_t be_sent = 0, be_dropped = 0;
  std::uint64_t unresolved = 0;      // attempts that never closed (must be 0)
  std::uint64_t conservation = 0;    // flows where sent != delivered+dropped
  std::uint64_t leaked_leases = 0;   // leases still held after quiesce
  std::string metrics_json;
};

RunResult run_once(int n_mhs, int pool_pct, std::uint64_t seed,
                   bool metrics) {
  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.num_mhs = n_mhs;
  cfg.watchdog = 2_s;  // wedges become typed failures, never hangs
  cfg.scheme.classify = true;
  cfg.scheme.allow_partial_grant = true;
  cfg.scheme.request_pkts = 20;
  // Quota: one host may hold both its PAR and NAR allocations, nothing
  // beyond — overload fairness without starving the dual-buffer scheme.
  cfg.scheme.quota_pkts = 2 * cfg.scheme.request_pkts;
  const std::uint32_t demand = n_mhs * cfg.scheme.request_pkts;
  cfg.scheme.pool_pkts =
      std::max<std::uint32_t>(1, demand * pool_pct / 100);
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // Two flows per host: real-time (flow 100+i) and best-effort (200+i).
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (int i = 0; i < n_mhs; ++i) {
    auto& m = topo.mobile(i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, 7000));
    for (const bool rt : {true, false}) {
      CbrSource::Config c;
      c.dst = m.regional;
      c.dst_port = 7000;
      c.packet_bytes = 160;
      c.interval = 10_ms;
      c.tclass = rt ? TrafficClass::kRealTime : TrafficClass::kBestEffort;
      c.flow = (rt ? 100 : 200) + i;
      sources.push_back(std::make_unique<CbrSource>(topo.cn(), 5000, c));
      sources.back()->start(2_s);
      sources.back()->stop(16_s);
    }
  }
  topo.start();
  sim.run_until(20_s);

  RunResult r;
  const HandoverOutcomeRecorder& rec = topo.outcomes();
  r.attempts = rec.attempts();
  r.completed = rec.completed();
  r.failed = rec.count(HandoverOutcome::kFailed);
  r.unresolved = rec.attempts() - rec.completed() -
                 rec.count(HandoverOutcome::kFailed);
  for (const obs::HoEventRecord& e : sim.timeline().records()) {
    switch (e.kind) {
      case obs::HoEventKind::kBufferGrant: ++r.grants; break;
      case obs::HoEventKind::kBufferShrink: ++r.shrinks; break;
      case obs::HoEventKind::kBufferDeny: ++r.denies; break;
      default: break;
    }
  }
  for (int i = 0; i < n_mhs; ++i) {
    const FlowCounters& rt = sim.stats().flow(100 + i);
    const FlowCounters& be = sim.stats().flow(200 + i);
    r.rt_sent += rt.sent;
    r.rt_dropped += rt.dropped;
    r.be_sent += be.sent;
    r.be_dropped += be.dropped;
    if (rt.sent != rt.delivered + rt.dropped) ++r.conservation;
    if (be.sent != be.delivered + be.dropped) ++r.conservation;
  }
  r.leaked_leases = topo.par_agent().buffers().leased() +
                    topo.nar_agent().buffers().leased();
  if (metrics) r.metrics_json = sim.metrics().to_json();
  return r;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Extension — overload sweep",
                "N simultaneous handovers vs. shared pool size");
  bench::note("partial grants + per-MH quotas on; pool sized to a % of the "
              "aggregate BR demand; identical mobility makes every BR "
              "contend in the same window");

  std::vector<std::uint64_t> seeds = {3, 17, 41};
  std::vector<int> mh_counts = {2, 4, 8};
  std::vector<int> pool_pcts = {25, 50, 100};
  if (opts.smoke) {
    seeds = {3};
    mh_counts = {4};
    pool_pcts = {25, 100};
  }

  const std::uint64_t audits_before = AuditHub::instance().violations();

  // Grid order: N, then pool %, then seed — the aggregation below walks
  // the index-ordered results in the same nesting, so stdout is
  // byte-identical at any --jobs value.
  std::vector<sweep::SweepRunner::Job<RunResult>> grid;
  for (const int n : mh_counts) {
    for (const int pool : pool_pcts) {
      for (const std::uint64_t seed : seeds) {
        char label[64];
        std::snprintf(label, sizeof label, "mhs=%d pool=%d%% seed=%llu", n,
                      pool, static_cast<unsigned long long>(seed));
        grid.push_back({label, [n, pool, seed, metrics = opts.metrics] {
                          return run_once(n, pool, seed, metrics);
                        }});
      }
    }
  }
  sweep::SweepRunner runner(opts.jobs);
  std::vector<RunResult> results = runner.run(std::move(grid));
  {
    std::vector<std::string> metrics;
    metrics.reserve(results.size());
    for (auto& r : results) metrics.push_back(std::move(r.metrics_json));
    runner.attach_metrics(std::move(metrics));
  }

  bool graceful = true;
  std::size_t next = 0;
  for (const int n : mh_counts) {
    Series rt_loss("rt loss%");
    Series be_loss("be loss%");
    Series partial("partial%");
    Series deny("deny%");
    Series failed("failed%");
    for (const int pool : pool_pcts) {
      RunResult sum;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        const RunResult& a = results[next++];
        sum.attempts += a.attempts;
        sum.completed += a.completed;
        sum.failed += a.failed;
        sum.grants += a.grants;
        sum.shrinks += a.shrinks;
        sum.denies += a.denies;
        sum.rt_sent += a.rt_sent;
        sum.rt_dropped += a.rt_dropped;
        sum.be_sent += a.be_sent;
        sum.be_dropped += a.be_dropped;
        sum.unresolved += a.unresolved;
        sum.conservation += a.conservation;
        sum.leaked_leases += a.leaked_leases;
      }
      rt_loss.add(pool, pct(sum.rt_dropped, sum.rt_sent));
      be_loss.add(pool, pct(sum.be_dropped, sum.be_sent));
      const std::uint64_t decisions = sum.grants + sum.shrinks + sum.denies;
      partial.add(pool, pct(sum.shrinks, decisions));
      deny.add(pool, pct(sum.denies, decisions));
      failed.add(pool, pct(sum.failed, sum.attempts));
      if (sum.unresolved != 0 || sum.conservation != 0 ||
          sum.leaked_leases != 0) {
        graceful = false;
        std::printf("VIOLATION at mhs=%d pool=%d%%: unresolved=%llu "
                    "conservation=%llu leaked=%llu\n",
                    n, pool,
                    static_cast<unsigned long long>(sum.unresolved),
                    static_cast<unsigned long long>(sum.conservation),
                    static_cast<unsigned long long>(sum.leaked_leases));
      }
      // The degradation bar at the tightest pool: per-class treatment must
      // still privilege real-time over best-effort when anything is lost.
      if (pool == pool_pcts.front() && sum.rt_sent > 0 &&
          sum.be_dropped > 0 &&
          pct(sum.rt_dropped, sum.rt_sent) >=
              pct(sum.be_dropped, sum.be_sent)) {
        graceful = false;
        std::printf("VIOLATION at mhs=%d pool=%d%%: rt loss not below be "
                    "loss\n", n, pool);
      }
    }
    char title[64];
    std::snprintf(title, sizeof title, "Overload degradation, %d hosts", n);
    print_series_table(title, "pool %",
                       {rt_loss, be_loss, partial, deny, failed});
    std::printf("\n");
  }

  const bool audits_clean =
      AuditHub::instance().violations() == audits_before;
  std::printf("graceful degradation: %s (attempts all resolved, "
              "conservation holds, no leaked leases, audits %s)\n",
              graceful && audits_clean ? "PASS" : "FAIL",
              audits_clean ? "clean" : "VIOLATED");

  bench::report_sweep("fig_ext_overload_sweep", runner, opts);
  return graceful && audits_clean ? 0 : 1;
}
