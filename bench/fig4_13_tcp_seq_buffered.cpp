// Figure 4.13 — TCP sequence trace across the same link-layer handoff WITH
// the proposed buffering (§3.2.2.4).
//
// Paper claim: packets arriving during the blackout are buffered at the
// access router and released after reattachment — no loss, no timeout; the
// transfer resumes right after the 200 ms handoff.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.13", "TCP sequence during handoff (proposed method)");
  TcpHandoffParams p;
  p.buffering = true;
  const auto r = run_tcp_handoff(p);

  Series send_s("send_seq"), ack_s("ack_seq"), recv_s("recv_seq");
  for (const auto& pt : r.send_trace) {
    if (pt.at.sec() >= 11.3 && pt.at.sec() <= 12.0) {
      send_s.add(pt.at.sec(), static_cast<double>(pt.seq) / r.mss);
    }
  }
  for (const auto& pt : r.ack_trace) {
    if (pt.at.sec() >= 11.3 && pt.at.sec() <= 12.0) {
      ack_s.add(pt.at.sec(), static_cast<double>(pt.seq) / r.mss);
    }
  }
  for (const auto& pt : r.recv_trace) {
    if (pt.at.sec() >= 11.3 && pt.at.sec() <= 12.0) {
      recv_s.add(pt.at.sec(), static_cast<double>(pt.seq) / r.mss);
    }
  }
  print_series_table("TCP sequence (segments) vs. time (s)", "time",
                     {send_s, ack_s, recv_s});

  std::printf("\ntimeouts=%d fast_retransmits=%d bytes_acked=%llu\n",
              r.timeouts, r.fast_retransmits,
              static_cast<unsigned long long>(r.bytes_acked));
  std::printf("receiver stall: %.3f s (expect ~0.2 s: just the blackout)\n",
              max_receiver_gap(r, 11.0, 14.0).sec());
  return 0;
}
