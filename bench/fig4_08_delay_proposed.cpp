// Figure 4.8 — per-packet end-to-end delay around one handoff with the
// proposed method at half the buffer (20+20) and classification disabled.
//
// Paper claim: the burst is split between the two routers — the NAR-half
// and PAR-half drain concurrently, producing the characteristic gap in the
// sequence/delay plot, and the total (summed) delay is smaller than the
// single 40-packet NAR buffer of Figure 4.7.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.8",
                "end-to-end delay, proposed (buffer=20, class disabled)");
  bench::note(bench::flow_legend());

  DelayCaptureParams p;
  p.mode = BufferMode::kDual;
  p.classify = false;
  p.pool_pkts = 20;
  p.request_pkts = 20;
  const auto r = run_delay_capture(p);
  const auto series = delay_series(r);
  print_series_table("Proposed (buffer=20, class disabled): delay (s) vs. seq",
                     "packet seq", series);

  double sum = 0;
  std::size_t n = 0;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points()) {
      sum += y;
      ++n;
    }
  }
  std::printf("\nwindow: packets %u..%u; mean delay %.4f s over %zu samples\n",
              r.seq_begin, r.seq_end, n > 0 ? sum / n : 0.0, n);
  return 0;
}
