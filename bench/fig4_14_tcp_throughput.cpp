// Figure 4.14 — TCP throughput during the link-layer handoff, proposed
// buffering vs. no buffering (100 ms bins).
//
// Paper claim: without buffering the throughput collapses to zero for over
// a second (timeout stall); with the proposed method only the 200 ms
// blackout dents the curve, followed by the buffered burst.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.14", "TCP throughput during link layer handoff");

  TcpHandoffParams p;
  p.buffering = true;
  const auto with_buf = run_tcp_handoff(p);
  p.buffering = false;
  const auto without = run_tcp_handoff(p);

  const Series buf = tcp_throughput_series(with_buf, "Buffer", 11.0, 14.0);
  const Series nobuf = tcp_throughput_series(without, "No buffer", 11.0, 14.0);
  print_series_table("TCP throughput (Mbit/s, 100 ms bins)", "time (s)",
                     {buf, nobuf});

  std::printf("\nbytes acked 1..16 s: with buffer %llu, without %llu "
              "(+%.1f%%)\n",
              static_cast<unsigned long long>(with_buf.bytes_acked),
              static_cast<unsigned long long>(without.bytes_acked),
              100.0 * (static_cast<double>(with_buf.bytes_acked) /
                           static_cast<double>(without.bytes_acked) -
                       1.0));
  return 0;
}
