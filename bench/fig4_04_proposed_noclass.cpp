// Figure 4.4 — per-class cumulative drops with the proposed method at HALF
// the buffer (20 per AR) and the classification function DISABLED.
//
// Paper claim: all flows still drop equally (no QoS), and the total is
// comparable to the original protocol at double the buffer (Figure 4.3) —
// the dual buffers make up for the smaller per-router pool.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.4",
                "proposed method, buffer=20 per AR, classification disabled");
  bench::note(bench::flow_legend());

  QosDropParams p;
  p.mode = BufferMode::kDual;
  p.classify = false;
  p.pool_pkts = 20;
  p.request_pkts = 20;
  p.handoffs = 100;
  const auto r = run_qos_drop_experiment(p);
  print_series_table("Proposed method, buffer=20 (class disabled)",
                     "handoffs", r.per_flow_drops);
  std::printf("\nfinal drops: F1=%llu F2=%llu F3=%llu (equal slopes expected)\n",
              static_cast<unsigned long long>(r.flows[0].dropped),
              static_cast<unsigned long long>(r.flows[1].dropped),
              static_cast<unsigned long long>(r.flows[2].dropped));
  return 0;
}
