// Ablation — anticipation (L2-ST-driven RtSolPr/FBU on the old link) vs.
// the non-anticipated fallback (FBU from the new link, §2.3.2).
//
// Anticipation is what makes the buffers useful: without it nothing is
// negotiated before the blackout, so the blackout's packets are gone by
// the time the FBU arrives. The sweep shows the loss across L2 blackout
// lengths for both paths.

#include "bench_common.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

std::pair<std::uint64_t, std::string> run(bool anticipate, int blackout_ms,
                                          bool metrics) {
  PaperTopologyConfig cfg;
  cfg.scheme.mode = BufferMode::kDual;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  cfg.anticipate = anticipate;
  cfg.wlan.l2_handoff_delay = SimTime::millis(blackout_ms);
  PaperTopology topo(cfg);
  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(2_s);
  src.stop(16_s);
  topo.start();
  topo.simulation().run_until(20_s);
  return {topo.simulation().stats().flow(1).dropped,
          metrics ? topo.simulation().metrics().to_json() : std::string()};
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Options opts;
  if (!bench::parse_sweep_cli(argc, argv, opts)) return 2;

  bench::header("Ablation", "anticipated vs. non-anticipated handover");
  bench::note("one 128 kb/s flow, dual buffers (60 pkts), blackout swept "
              "over the measured 60-400 ms range");

  std::vector<int> blackouts = {60, 100, 200, 300, 400};
  if (opts.smoke) blackouts = {60, 200};

  std::vector<sweep::SweepRunner::Job<std::pair<std::uint64_t, std::string>>>
      grid;
  for (const int ms : blackouts) {
    for (const bool anticipate : {true, false}) {
      grid.push_back({(anticipate ? "anticipated " : "non-anticipated ") +
                          std::to_string(ms) + "ms",
                      [anticipate, ms, metrics = opts.metrics] {
                        return run(anticipate, ms, metrics);
                      }});
    }
  }
  sweep::SweepRunner runner(opts.jobs);
  const auto results = bench::split_metrics(runner.run(std::move(grid)), runner);

  Series ant("anticipated"), nonant("non-anticipated");
  std::size_t next = 0;
  for (const int ms : blackouts) {
    ant.add(ms, static_cast<double>(results[next++]));
    nonant.add(ms, static_cast<double>(results[next++]));
  }
  print_series_table("packet drops vs. L2 blackout", "blackout (ms)",
                     {ant, nonant});
  std::printf("\nexpected: anticipated stays ~0; non-anticipated loses "
              "~blackout/10ms packets\n");

  bench::report_sweep("ablation_anticipation", runner, opts);
  return 0;
}
