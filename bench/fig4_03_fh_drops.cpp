// Figure 4.3 — per-class cumulative packet drops with the original Fast
// Handover buffering (NAR only, buffer = 40, no classification), over 100
// handoffs of a host bouncing between the two access routers with three
// audio flows (F1 real-time, F2 high priority, F3 best effort).
//
// Paper claim: without QoS support all three flows drop at the same rate.

#include "bench_common.hpp"

using namespace fhmip;

int main() {
  bench::header("Figure 4.3", "packet drop on original fast handover (buffer=40)");
  bench::note(bench::flow_legend());

  QosDropParams p;
  p.mode = BufferMode::kNarOnly;
  p.classify = false;
  p.pool_pkts = 40;
  p.request_pkts = 40;
  p.handoffs = 100;
  const auto r = run_qos_drop_experiment(p);
  print_series_table("Fast Handover, buffer=40", "handoffs",
                     r.per_flow_drops);
  std::printf("\nfinal drops: F1=%llu F2=%llu F3=%llu (equal slopes expected)\n",
              static_cast<unsigned long long>(r.flows[0].dropped),
              static_cast<unsigned long long>(r.flows[1].dropped),
              static_cast<unsigned long long>(r.flows[2].dropped));
  return 0;
}
