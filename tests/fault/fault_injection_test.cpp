#include "fault/link_fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/crash.hpp"
#include "fault/filters.hpp"
#include "net/node.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

// ---------------------------------------------------------------------------
// Link-level injector rules on a bare link.
// ---------------------------------------------------------------------------

struct LinkFaultFixture : ::testing::Test {
  Simulation sim;
  Node a{sim, 1, "a"};
  Node b{sim, 2, "b"};
  std::vector<std::uint32_t> arrived;  // packet seq numbers delivered

  void SetUp() override {
    b.add_address({20, 1});
    b.register_port(9, [this](PacketPtr p) { arrived.push_back(p->seq); });
  }

  ~LinkFaultFixture() override { b.unregister_port(9); }

  PacketPtr pkt(std::uint32_t seq) {
    auto p = make_packet(sim, {10, 1}, {20, 1}, 100);
    p->dst_port = 9;
    p->flow = 1;
    p->seq = seq;
    return p;
  }
};

TEST_F(LinkFaultFixture, DropNthKillsExactlyThatPacket) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.drop_nth(3);
  for (std::uint32_t s = 1; s <= 5; ++s) link.transmit(pkt(s));
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1, 2, 4, 5}));
  EXPECT_EQ(inj.dropped(), 1u);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kFaultInjected), 1u);
  EXPECT_EQ(link.packets_delivered(), 4u);
}

TEST_F(LinkFaultFixture, DropNthCountsOnlyMatchingPackets) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  // Rule counts data packets only; interleaved control passes untouched
  // (control packets have no registered handler at b, so `arrived` tracks
  // the data stream).
  inj.drop_nth(2, fault::data_only());
  auto ctrl = [&] {
    auto p = make_packet(sim, {10, 1}, {20, 1}, 100);
    p->msg = BfMsg{};
    return p;
  };
  link.transmit(pkt(1));  // 1st data
  link.transmit(ctrl());
  link.transmit(pkt(3));  // 2nd data — killed
  link.transmit(ctrl());
  link.transmit(pkt(5));  // 3rd data
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(inj.dropped(), 1u);
  EXPECT_EQ(link.packets_delivered(), 4u);
}

TEST_F(LinkFaultFixture, DropMatchingHonorsCountBudget) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.drop_matching(fault::any_packet(), 2);
  for (std::uint32_t s = 1; s <= 4; ++s) link.transmit(pkt(s));
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(inj.dropped(), 2u);
}

TEST_F(LinkFaultFixture, BernoulliIsAPureFunctionOfSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulation fresh_sim;
    Node dst(fresh_sim, 2, "b");
    std::vector<std::uint32_t> got;
    dst.add_address({20, 1});
    dst.register_port(9, [&](PacketPtr p) { got.push_back(p->seq); });
    SimplexLink link(fresh_sim, dst, 1e6, 1_ms, 200);
    fault::LinkFaultInjector inj(fresh_sim, link);
    inj.bernoulli(0.3, seed);
    for (std::uint32_t s = 1; s <= 100; ++s) {
      auto p = make_packet(fresh_sim, {10, 1}, {20, 1}, 100);
      p->dst_port = 9;
      p->seq = s;
      link.transmit(std::move(p));
    }
    fresh_sim.run();
    return got;
  };
  const auto first = run_once(7);
  EXPECT_EQ(first, run_once(7));  // same seed, same casualties
  EXPECT_NE(first, run_once(8));
  EXPECT_LT(first.size(), 100u);  // it does drop something at p=0.3
  EXPECT_GT(first.size(), 40u);
}

TEST_F(LinkFaultFixture, DownWindowEdges) {
  SimplexLink link(sim, b, 1e8, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.down_window(100_ms, 200_ms);
  sim.at(50_ms, [&] { link.transmit(pkt(1)); });   // before the window
  sim.at(150_ms, [&] { link.transmit(pkt(2)); });  // inside — dies
  sim.at(250_ms, [&] { link.transmit(pkt(3)); });  // after it reopened
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_FALSE(!link.up());
  EXPECT_EQ(sim.stats().total_drops(DropReason::kWirelessDown), 1u);
}

TEST_F(LinkFaultFixture, DuplicateNthDeliversOriginalAndCopy) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.duplicate_nth(2);
  for (std::uint32_t s = 1; s <= 3; ++s) link.transmit(pkt(s));
  sim.run();
  // The original passes in place; the copy is injected a beat later and
  // queues behind whatever is already on the wire.
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1, 2, 3, 2}));
  EXPECT_EQ(inj.duplicated(), 1u);
  EXPECT_EQ(inj.dropped(), 0u);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kFaultInjected), 0u);
  EXPECT_EQ(link.packets_delivered(), 4u);
}

TEST_F(LinkFaultFixture, DelayNthKillsOriginalAndReplaysLate) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.delay_nth(1, 50_ms);
  for (std::uint32_t s = 1; s <= 3; ++s) link.transmit(pkt(s));
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{2, 3, 1}));
  EXPECT_EQ(inj.delayed(), 1u);
  // The original is a real on-the-wire casualty even though a copy follows.
  EXPECT_EQ(inj.dropped(), 1u);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kFaultInjected), 1u);
  EXPECT_EQ(link.packets_delivered(), 3u);
}

TEST_F(LinkFaultFixture, ReorderNthSwapsWithTheNextPasser) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.reorder_nth(1);
  link.transmit(pkt(1));
  link.transmit(pkt(2));
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(inj.reordered(), 1u);
  EXPECT_EQ(inj.dropped(), 1u);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kFaultInjected), 1u);
}

TEST_F(LinkFaultFixture, ReorderDegradesToDelayWithoutSuccessorTraffic) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  inj.reorder_nth(1, fault::any_packet(), 50_ms);
  link.transmit(pkt(1));
  sim.run();
  // No successor ever passed; the max-hold fallback put the copy back on
  // the wire instead of silently losing it.
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(inj.reordered(), 1u);
  EXPECT_GE(sim.now(), 50_ms);
}

TEST_F(LinkFaultFixture, CopiesAreExemptFromFurtherRules) {
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  fault::LinkFaultInjector inj(sim, link);
  // A duplicate rule plus an unlimited drop rule on the same stream: the
  // injected copy must bypass the drop rule (copies are passthrough), or
  // faults would cascade into each other.
  inj.duplicate_nth(1);
  inj.drop_matching(fault::any_packet(), 0);
  link.transmit(pkt(1));
  sim.run();
  EXPECT_EQ(arrived, (std::vector<std::uint32_t>{1, 1}));
  EXPECT_EQ(inj.duplicated(), 1u);
}

TEST_F(LinkFaultFixture, ReorderingRulesAreDeterministic) {
  auto run_once = [] {
    Simulation fresh_sim(1234);
    Node dst(fresh_sim, 2, "b");
    std::vector<std::uint32_t> got;
    dst.add_address({20, 1});
    dst.register_port(9, [&](PacketPtr p) { got.push_back(p->seq); });
    SimplexLink link(fresh_sim, dst, 1e6, 1_ms, 50);
    fault::LinkFaultInjector inj(fresh_sim, link);
    inj.duplicate_nth(2);
    inj.delay_nth(5, 30_ms);
    inj.reorder_nth(7);
    for (std::uint32_t s = 1; s <= 10; ++s) {
      fresh_sim.at(SimTime::millis(5 * s), [&link, &fresh_sim, s] {
        auto p = make_packet(fresh_sim, {10, 1}, {20, 1}, 100);
        p->dst_port = 9;
        p->seq = s;
        link.transmit(std::move(p));
      });
    }
    fresh_sim.run();
    return got;
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());  // byte-for-byte repeatable under the seed
  EXPECT_EQ(first.size(), 11u);  // 10 sent + 1 duplicate, none lost for good
}

// ---------------------------------------------------------------------------
// Agent crash/restart in a full handover scenario.
// ---------------------------------------------------------------------------

struct CrashFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build() {
    topo = std::make_unique<PaperTopology>(cfg);
    auto& m = topo->mobile(0);
    sink = std::make_unique<UdpSink>(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    // Real-time traffic buffers at the NAR under classification, so a NAR
    // crash mid-handover has buffered packets to lose.
    c.tclass = TrafficClass::kRealTime;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
    source->stop(16_s);
    topo->start();
  }
};

TEST_F(CrashFixture, NarCrashMidBlackoutFallsBackToReactive) {
  build();
  Simulation& sim = topo->simulation();
  fault::AgentCrashInjector crash(sim, topo->nar_agent());
  // Predisconnect/FBU fire at ~11.1 s and the MH reattaches at ~11.3 s:
  // crash the NAR mid-blackout, while its buffer holds redirected data and
  // the tunneled FBack. Run past the PAR lease lifetime (~20.1 s) so the
  // stranded PAR-side allocation is reclaimed the normal way.
  crash.crash_at(SimTime::from_millis(11'200));
  sim.run_until(22_s);
  EXPECT_EQ(crash.crashes(), 1u);
  EXPECT_EQ(topo->nar_agent().counters().crashes, 1u);
  // The buffered packets died with the process, visibly accounted.
  EXPECT_GT(topo->simulation().stats().total_drops(DropReason::kFaultInjected),
            0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  // The MH noticed the missing FBack and recovered via the reactive FBU.
  const auto& mc = topo->mobile(0).agent->counters();
  EXPECT_EQ(mc.handoffs, 1u);
  EXPECT_EQ(mc.reactive_fbu, 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kReactive), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kFailed), 0u);
  // Conservation holds across the crash, and traffic flows again after.
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_GT(c.delivered, 0u);
  EXPECT_GT(c.dropped, 0u);
}

TEST_F(CrashFixture, ParCrashCancelsPendingHiTimer) {
  build();
  Simulation& sim = topo->simulation();
  // Black-hole every HAck so the PAR's HI timer keeps rearming, then crash
  // the PAR between retries: the pending timer must die with the context
  // (a stale callback would touch freed state under ASan).
  fault::LinkFaultInjector inj(sim, topo->par_nar_link().b_to_a());
  inj.drop_matching(fault::message_named("HAck"));
  fault::AgentCrashInjector crash(sim, topo->par_agent());
  // Trigger ~10.0 s; first retry at +40 ms, next at +120 ms. Crash between.
  crash.crash_at(SimTime::from_millis(10'100));
  sim.run_until(20_s);
  EXPECT_EQ(topo->par_agent().counters().crashes, 1u);
  // Retries ran before the crash and resumed on the context the MH's own
  // RtSolPr retransmissions rebuilt afterwards; the crashed context's timer
  // died with it (a stale callback would touch freed state under ASan).
  EXPECT_GE(topo->par_agent().counters().hi_rtx, 1u);
  EXPECT_GE(topo->par_agent().counters().dup_rtsolpr, 1u);
  // The MH still completes the handover through the reactive path.
  EXPECT_EQ(topo->mobile(0).agent->counters().handoffs, 1u);
  EXPECT_EQ(topo->outcomes().completed(), topo->outcomes().attempts());
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kFailed), 0u);
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
}

}  // namespace
}  // namespace fhmip
