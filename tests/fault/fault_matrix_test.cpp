#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "fault/link_fault.hpp"
#include "obs/ledger.hpp"
#include "scenario/paper_topology.hpp"
#include "sim/check.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Exhaustive single-fault matrix: every control message of the FMIPv6 +
/// buffer-extension choreography crossed with every fault action, injected
/// at successive protocol phases. Whatever the fault, four invariants must
/// hold at end of run:
///
///   1. uid-level packet conservation (the ledger balances, nothing is left
///      in a buffer),
///   2. zero leaked leases on either access router,
///   3. every observed handover attempt resolves — predictively, reactively
///      or as a typed failure closed by the liveness watchdog; never wedged,
///   4. clean audit counters (FHMIP_AUDIT aborts by default, and the hub
///      count is asserted zero on top).
///
/// Matrix rows follow the thesis message set. Two rows need translation to
/// wire reality: BR only ever travels piggybacked on HI (its row faults
/// exactly the HI copies that carry `has_br`), and BI/BA appear standalone
/// only in the §2.4 smooth-handover baseline, so those rows run a parked-MH
/// scenario that drives explicit BI/BF episodes. FBAck is special the other
/// way: the PAR emits two copies per predictive FBU (the tunneled-PCoA copy
/// and the NAR-addressed copy), both crossing the inter-AR link, so a true
/// drop-once needs two kill rules.
///
/// Phases are occurrence indices. With bounce mobility the roles alternate:
/// odd phases run old=PAR over a_to_b, even phases old=NAR over b_to_a, so
/// the nth occurrence *on the selected link* is ceil(phase/2).
///
/// The default build instantiates the smoke slice (phase 1 only, single
/// handover). Compiling with -DFHMIP_FAULT_MATRIX_FULL widens it to phases
/// 1-3 under bounce mobility; CMake registers that executable under
/// `ctest -C full -L fault-matrix-full`, excluded from the default run.

enum class Action { kDropOnce, kDuplicate, kDelayPastRetry, kReorder };

/// Role-relative link selector: resolved against the attempt's old/new AR.
enum class Where { kUpOld, kDownOld, kUpNew, kDownNew, kToNew, kToOld };

struct Cell {
  const char* row;   // matrix row label (thesis naming)
  const char* wire;  // message_name() string; nullptr = HI-carrying-BR
  Where where;
  Action action;
  int phase;      // 1-based occurrence of the message across the run
  int copies;     // simultaneous wire copies of one logical send
  bool baseline;  // §2.4 standalone scenario instead of a handover
};

const char* action_name(Action a) {
  switch (a) {
    case Action::kDropOnce: return "DropOnce";
    case Action::kDuplicate: return "Duplicate";
    case Action::kDelayPastRetry: return "DelayPastRetry";
    case Action::kReorder: return "Reorder";
  }
  return "?";
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  return std::string(info.param.row) + "_" + action_name(info.param.action) +
         "_phase" + std::to_string(info.param.phase);
}

std::vector<Cell> matrix_cells() {
  struct Row {
    const char* row;
    const char* wire;
    Where where;
    int copies;
    bool baseline;
  };
  static const Row kRows[] = {
      {"RtSolPr", "RtSolPr", Where::kUpOld, 1, false},
      {"PrRtAdv", "PrRtAdv", Where::kDownOld, 1, false},
      {"HI", "HI", Where::kToNew, 1, false},
      {"HAck", "HAck", Where::kToOld, 1, false},
      {"FBU", "FBU", Where::kUpOld, 1, false},
      {"FBack", "FBAck", Where::kToNew, 2, false},
      {"FNA", "FNA", Where::kUpNew, 1, false},
      {"FnaAck", "FNAAck", Where::kDownNew, 1, false},
      {"BF", "BF", Where::kToOld, 1, false},
      {"BR", nullptr, Where::kToNew, 1, false},  // piggybacked on HI
      {"BI", "BI", Where::kUpOld, 1, true},
      {"BA", "BA", Where::kDownOld, 1, true},
  };
  static const Action kActions[] = {Action::kDropOnce, Action::kDuplicate,
                                    Action::kDelayPastRetry, Action::kReorder};
#ifdef FHMIP_FAULT_MATRIX_FULL
  const int handover_phases = 3;
  const int baseline_phases = 2;
#else
  const int handover_phases = 1;
  const int baseline_phases = 1;
#endif
  std::vector<Cell> cells;
  for (const Row& r : kRows) {
    const int phases = r.baseline ? baseline_phases : handover_phases;
    for (Action a : kActions) {
      for (int p = 1; p <= phases; ++p) {
        cells.push_back(Cell{r.row, r.wire, r.where, a, p, r.copies,
                             r.baseline});
      }
    }
  }
  return cells;
}

class FaultMatrix : public ::testing::TestWithParam<Cell> {
 protected:
  void SetUp() override { AuditHub::instance().reset_violations(); }
};

SimplexLink& select_link(PaperTopology& topo, Where w, bool old_is_par,
                         MhId mh) {
  const NodeId old_ap =
      old_is_par ? topo.ap_par().id() : topo.ap_nar().id();
  const NodeId new_ap =
      old_is_par ? topo.ap_nar().id() : topo.ap_par().id();
  DuplexLink& inter = topo.par_nar_link();
  switch (w) {
    case Where::kUpOld: return *topo.wlan().uplink(old_ap, mh);
    case Where::kDownOld: return *topo.wlan().downlink(old_ap, mh);
    case Where::kUpNew: return *topo.wlan().uplink(new_ap, mh);
    case Where::kDownNew: return *topo.wlan().downlink(new_ap, mh);
    case Where::kToNew: return old_is_par ? inter.a_to_b() : inter.b_to_a();
    case Where::kToOld: return old_is_par ? inter.b_to_a() : inter.a_to_b();
  }
  std::abort();
}

TEST_P(FaultMatrix, InvariantsHoldUnderSingleFault) {
  const Cell cell = GetParam();
  PaperTopologyConfig cfg;
  cfg.watchdog = 2_s;  // every wedge must close within one deadline
  bool bounce = false;
#ifdef FHMIP_FAULT_MATRIX_FULL
  bounce = !cell.baseline;
#endif
  cfg.bounce = bounce;
  if (cell.baseline) cfg.mobility_start = 1000_s;  // parked at the PAR
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();
  obs::PacketLedger ledger(sim);
  const MhId mh = topo.mobile(0).node->id();

  // Odd phases run old=PAR; bounce alternates the roles each leg.
  const bool old_is_par = cell.baseline || (cell.phase % 2 == 1);
  // nth occurrence on the *selected* link: same-parity phases share a link.
  const std::uint64_t nth =
      cell.baseline ? cell.phase : (cell.phase + 1) / 2;
  const std::uint64_t base = cell.copies * (nth - 1) + 1;

  fault::PacketPredicate pred =
      cell.wire != nullptr
          ? fault::message_named(cell.wire)
          : fault::PacketPredicate([](const Packet& p) {
              const auto* hi = std::get_if<HiMsg>(&p.msg);
              return hi != nullptr && hi->has_br;
            });
  fault::LinkFaultInjector inj(
      sim, select_link(topo, cell.where, old_is_par, mh));
  switch (cell.action) {
    case Action::kDropOnce:
      // k identical drop_nth(n) rules kill matches n..n+k-1: a true loss
      // of a logical send must kill every simultaneous wire copy.
      for (int i = 0; i < cell.copies; ++i) inj.drop_nth(base, pred);
      break;
    case Action::kDuplicate:
      inj.duplicate_nth(base, pred);
      break;
    case Action::kDelayPastRetry:
      // Past the whole rtx envelope (40 ms rto, x2 backoff, 4 retries
      // ~ 600 ms): the replayed original lands mid-later-phase.
      inj.delay_nth(base, SimTime::millis(1'500), pred);
      break;
    case Action::kReorder:
      inj.reorder_nth(base, pred);
      break;
  }

  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.tclass = TrafficClass::kHighPriority;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(2_s);

  SimTime end;
  if (cell.baseline) {
    // Two explicit §2.4 episodes: BI (buffer now, 2 s lifetime), BF 1 s
    // later. A faulted BI simply never allocates; a faulted BA leaves the
    // MH unaware of a grant the lifetime teardown must still reclaim.
    MhAgent* agent = m.agent.get();
    const Address par_addr = topo.par_agent().address();
    for (int e = 0; e < 2; ++e) {
      const SimTime t0 = 3_s + SimTime::seconds(3) * e;
      sim.at(t0, [agent, &sim] {
        agent->send_buffer_init(20, sim.now(), 2_s);
      });
      sim.at(t0 + 1_s, [agent, par_addr] {
        agent->send_buffer_forward(par_addr);
      });
    }
    src.stop(10_s);
    end = 14_s;
  } else if (bounce) {
    const SimTime stop = cfg.mobility_start + topo.leg_duration() * 4;
    src.stop(stop);
    end = stop + 5_s;  // quiesce before leg 5's anticipation opens
  } else {
    src.stop(16_s);
    // Past the allocation lifetime (~10 s from the trigger) plus the lease
    // grace and a reaper period: a fault that orphans a grant (e.g. a
    // dropped BF release) must have seen every reclamation backstop fire.
    end = 25_s;
  }
  topo.start();
  sim.run_until(end);

  // 1. Conservation: every created uid is consumed, discarded, or dropped
  //    with a reason; nothing still sits in a buffer.
  EXPECT_TRUE(ledger.balanced()) << ledger.format();
  EXPECT_EQ(ledger.violations(), 0u);
  EXPECT_EQ(ledger.in_buffer(), 0u) << ledger.format();
  const FlowCounters& fc = sim.stats().flow(1);
  EXPECT_GT(fc.sent, 0u);
  EXPECT_EQ(fc.sent, fc.delivered + fc.dropped);

  // 2. Zero leaked leases once the dust settles.
  EXPECT_EQ(topo.par_agent().buffers().leased(), 0u) << "PAR lease leaked";
  EXPECT_EQ(topo.nar_agent().buffers().leased(), 0u) << "NAR lease leaked";

  // 3. Watchdog-fires-or-completes: no attempt may stay open.
  const HandoverOutcomeRecorder& rec = topo.outcomes();
  EXPECT_EQ(rec.attempts(),
            rec.completed() + rec.count(HandoverOutcome::kFailed))
      << "an attempt wedged without resolution";
  if (!cell.baseline) {
    EXPECT_GE(rec.attempts(), bounce ? 3u : 1u);
  }

  // 4. Clean audit counters (redundant with abort-on-violation, explicit
  //    for the record).
  EXPECT_EQ(AuditHub::instance().violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(SingleFault, FaultMatrix,
                         ::testing::ValuesIn(matrix_cells()), cell_name);

}  // namespace
}  // namespace fhmip
