#include "transport/udp.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

struct UdpFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");

  UdpFixture() {
    a.add_address({1, 1});
    b.add_address({2, 1});
    net.connect(a, b, 1e9, 1_ms);
    net.compute_routes();
  }
};

TEST_F(UdpFixture, SendStampsHeaders) {
  UdpAgent tx(a, 5000);
  PacketPtr got;
  UdpAgent rx(b, 7000);
  rx.set_receive_callback([&](PacketPtr p) { got = std::move(p); });
  tx.send_to({2, 1}, 7000, 160, TrafficClass::kRealTime, 3, 42);
  sim.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, (Address{1, 1}));
  EXPECT_EQ(got->src_port, 5000);
  EXPECT_EQ(got->dst_port, 7000);
  EXPECT_EQ(got->size_bytes, 160u);
  EXPECT_EQ(got->tclass, TrafficClass::kRealTime);
  EXPECT_EQ(got->flow, 3);
  EXPECT_EQ(got->seq, 42u);
  EXPECT_EQ(sim.stats().flow(3).sent, 1u);
}

TEST_F(UdpFixture, SourcePinning) {
  UdpAgent tx(a, 5000);
  tx.set_source({9, 9});
  PacketPtr got;
  UdpAgent rx(b, 7000);
  rx.set_receive_callback([&](PacketPtr p) { got = std::move(p); });
  tx.send_to({2, 1}, 7000, 100);
  sim.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src, (Address{9, 9}));
}

TEST_F(UdpFixture, UnrecordedSendSkipsStats) {
  UdpAgent tx(a, 5000);
  tx.send_to({2, 1}, 7000, 100, TrafficClass::kUnspecified, 5, 0,
             /*record=*/false);
  sim.run();
  EXPECT_EQ(sim.stats().flow(5).sent, 0u);
}

TEST_F(UdpFixture, DestructorUnbindsPort) {
  {
    UdpAgent rx(b, 7000);
  }
  UdpAgent tx(a, 5000);
  tx.send_to({2, 1}, 7000, 100, TrafficClass::kUnspecified, 1);
  sim.run();
  EXPECT_EQ(sim.stats().flow(1).dropped, 1u);  // nobody home
}

TEST_F(UdpFixture, SinkRecordsDeliveryAndDelay) {
  sim.stats().set_keep_samples(true);
  UdpSink sink(b, 7000);
  UdpAgent tx(a, 5000);
  tx.send_to({2, 1}, 7000, 160, TrafficClass::kUnspecified, 1, 0);
  sim.run();
  EXPECT_EQ(sink.packets_received(), 1u);
  EXPECT_EQ(sink.bytes_received(), 160u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.delivered, 1u);
  ASSERT_EQ(sim.stats().samples(1).size(), 1u);
  // 1 ms propagation + 160 B at 1 Gb/s.
  EXPECT_GT(sim.stats().samples(1)[0].delay, 1_ms);
  EXPECT_LT(sim.stats().samples(1)[0].delay, 2_ms);
}

TEST_F(UdpFixture, SinkTracksSequenceAndReordering) {
  UdpSink sink(b, 7000);
  UdpAgent tx(a, 5000);
  tx.send_to({2, 1}, 7000, 100, TrafficClass::kUnspecified, 1, 0);
  tx.send_to({2, 1}, 7000, 100, TrafficClass::kUnspecified, 1, 2);
  tx.send_to({2, 1}, 7000, 100, TrafficClass::kUnspecified, 1, 1);
  sim.run();
  EXPECT_EQ(sink.max_seq(), 2u);
  EXPECT_EQ(sink.out_of_order(), 1u);
}

}  // namespace
}  // namespace fhmip
