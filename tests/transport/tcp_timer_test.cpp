#include <gtest/gtest.h>

#include <functional>

#include "net/link.hpp"
#include "net/network.hpp"
#include "transport/tcp.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Coarse-timer behaviours of the Reno sender (§4.2.4's 500 ms tick and
/// 1 s minimum RTO are what shape Figure 4.12).
struct TcpTimerFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& host = net.add_node("host");
  DuplexLink* link = nullptr;

  TcpTimerFixture() {
    cn.add_address({1, 1});
    host.add_address({2, 1});
    link = &net.connect(cn, host, 10e6, 5_ms);
    net.compute_routes();
  }

  TcpSender::Config cfg(std::uint64_t total = 0) {
    TcpSender::Config c;
    c.dst = {2, 1};
    c.dst_port = 80;
    c.src_port = 1080;
    c.mss = 1000;
    c.flow = 1;
    c.total_bytes = total;
    return c;
  }
};

TEST_F(TcpTimerFixture, BackoffDoublesAcrossConsecutiveTimeouts) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, cfg());
  tx.start(0_s);
  sim.run_until(1_s);  // healthy, srtt ~10 ms -> base RTO = 1 s
  const SimTime base = tx.current_rto();
  EXPECT_EQ(base, 1_s);
  // Cut the wire: every retransmission dies, timeouts pile up.
  link->a_to_b().set_loss_rate(1.0);
  sim.run_until(20_s);
  EXPECT_GE(tx.timeouts(), 3);
  // Exponential backoff, tick-aligned, capped at x64.
  const SimTime backed_off = tx.current_rto();
  EXPECT_GE(backed_off, 8_s);
  EXPECT_EQ(backed_off.ns() % (500_ms).ns(), 0);
}

TEST_F(TcpTimerFixture, BackoffResetsOnRecovery) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, cfg());
  tx.start(0_s);
  sim.run_until(1_s);
  link->a_to_b().set_loss_rate(1.0);
  sim.run_until(8_s);
  EXPECT_GT(tx.current_rto(), 1_s);
  link->a_to_b().set_loss_rate(0.0);
  sim.run_until(25_s);
  EXPECT_EQ(tx.current_rto(), 1_s);  // fresh ACKs reset the backoff
  EXPECT_GT(tx.bytes_acked(), 1'000'000u);
}

TEST_F(TcpTimerFixture, ReceiverWindowCapsInFlight) {
  TcpSink sink(host, 80);
  auto c = cfg();
  c.rwnd_pkts = 4;
  c.initial_ssthresh_pkts = 64;
  TcpSender tx(cn, c);
  tx.start(0_s);
  // Warm up so cwnd grows well past rwnd, then freeze the reverse path:
  // outstanding data must stop at the 4-segment receiver window.
  sim.run_until(500_ms);
  link->b_to_a().set_loss_rate(1.0);
  sim.run_until(SimTime::from_millis(1'400));  // before the RTO rewind
  std::uint32_t max_sent = 0;
  for (const auto& pt : tx.send_trace()) {
    max_sent = std::max(max_sent, pt.seq + 1000);
  }
  EXPECT_LE(max_sent - tx.bytes_acked(), 4u * 1000u);
  EXPECT_GT(tx.cwnd_bytes(), 4.0 * 1000.0);  // cwnd was not the limiter
}

TEST_F(TcpTimerFixture, GoBackNRetransmitsTheWholeWindow) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, cfg());
  tx.start(0_s);
  sim.run_until(1_s);
  // Blackout long enough for exactly one timeout, then heal.
  link->a_to_b().set_loss_rate(1.0);
  sim.at(SimTime::from_millis(1'050), [&] {
    link->a_to_b().set_loss_rate(0.0);
  });
  sim.run_until(10_s);
  EXPECT_GE(tx.timeouts(), 1);
  // Everything lost in the blackout was re-sent and acknowledged; the
  // stream is hole-free at the receiver (the receiver may be at most a
  // window of in-flight ACKs ahead of the sender's view at cutoff).
  EXPECT_GE(sink.bytes_in_order(), tx.bytes_acked());
  EXPECT_LE(sink.bytes_in_order() - tx.bytes_acked(), 64u * 1000u);
  EXPECT_GT(tx.bytes_acked(), 2'000'000u);
}

TEST_F(TcpTimerFixture, NoTimerWhenNothingInFlight) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, cfg(5'000));  // five segments and done
  tx.start(0_s);
  sim.run_until(30_s);
  EXPECT_EQ(tx.bytes_acked(), 5'000u);
  EXPECT_EQ(tx.timeouts(), 0);
  EXPECT_TRUE(sim.scheduler().empty());  // no stray armed timer
}

}  // namespace
}  // namespace fhmip
