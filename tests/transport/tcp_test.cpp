#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "net/link.hpp"
#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// CN --- r --- host. The r->host direction passes a filter so tests can
/// drop chosen data segments (loss injection).
struct TcpNet {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& r = net.add_node("r");
  Node& host = net.add_node("host");
  SimplexLink* r_to_host = nullptr;
  std::function<bool(const Packet&)> drop_if;  // true = drop
  std::uint64_t injected_drops = 0;

  TcpNet() {
    cn.add_address({1, 1});
    r.add_address({2, 1});
    host.add_address({3, 1});
    net.connect(cn, r, 10e6, 5_ms);
    DuplexLink& l = net.connect(r, host, 10e6, 5_ms);
    net.compute_routes();
    r_to_host = &l.toward(host);
    // Interpose the filter on r's route toward the host.
    r.routes().set_prefix_route(3, Route::to([this](PacketPtr p) {
      if (drop_if && drop_if(*p)) {
        ++injected_drops;
        return;  // silently dropped
      }
      r_to_host->transmit(std::move(p));
    }));
  }

  TcpSender::Config sender_cfg(std::uint64_t total_bytes = 0) {
    TcpSender::Config c;
    c.dst = {3, 1};
    c.dst_port = 80;
    c.src_port = 1080;
    c.mss = 1000;
    c.flow = 1;
    c.ack_flow = 2;
    c.total_bytes = total_bytes;
    return c;
  }
};

struct TcpFixture : ::testing::Test, TcpNet {};

TEST_F(TcpFixture, TransfersFixedAmount) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg(50'000));
  tx.start(0_s);
  sim.run_until(10_s);
  EXPECT_EQ(tx.bytes_acked(), 50'000u);
  EXPECT_EQ(sink.bytes_in_order(), 50'000u);
  EXPECT_EQ(tx.timeouts(), 0);
  EXPECT_EQ(tx.fast_retransmits(), 0);
}

TEST_F(TcpFixture, SlowStartDoublesPerRtt) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  tx.start(0_s);
  // RTT ~20 ms. After the first ACK cwnd is 2 segments, then 4, 8...
  sim.run_until(25_ms);
  EXPECT_GE(tx.cwnd_bytes(), 2000.0);
  sim.run_until(45_ms);
  EXPECT_GE(tx.cwnd_bytes(), 4000.0);
  EXPECT_LE(tx.cwnd_bytes(), 9000.0);
}

TEST_F(TcpFixture, CongestionAvoidanceIsLinear) {
  TcpSink sink(host, 80);
  auto cfg = sender_cfg();
  cfg.initial_ssthresh_pkts = 4;  // leave slow start quickly
  TcpSender tx(cn, cfg);
  tx.start(0_s);
  sim.run_until(100_ms);
  const double cwnd_at_100ms = tx.cwnd_bytes();
  sim.run_until(120_ms);  // ~one more RTT
  // Roughly +1 MSS per RTT, certainly far from doubling.
  EXPECT_LT(tx.cwnd_bytes(), cwnd_at_100ms * 1.5);
  EXPECT_GT(tx.cwnd_bytes(), cwnd_at_100ms);
}

TEST_F(TcpFixture, SingleLossRecoversViaFastRetransmit) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  // Drop exactly one mid-stream segment.
  std::set<std::uint32_t> dropped;
  drop_if = [&](const Packet& p) {
    const auto* seg = std::get_if<TcpSegMsg>(&p.msg);
    if (seg == nullptr || seg->is_ack) return false;
    if (seg->seq == 20'000 && dropped.insert(seg->seq).second) return true;
    return false;
  };
  tx.start(0_s);
  sim.run_until(5_s);
  EXPECT_EQ(injected_drops, 1u);
  EXPECT_EQ(tx.fast_retransmits(), 1);
  EXPECT_EQ(tx.timeouts(), 0);
  EXPECT_GT(sink.bytes_in_order(), 1'000'000u);  // kept moving
}

TEST_F(TcpFixture, BurstLossForcesCoarseTimeout) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  // Black out the r->host direction for 200 ms (the L2 handoff pattern):
  // every in-flight segment dies, no dupacks arrive, only the coarse timer
  // can recover (§4.2.4's analysis of Figure 4.12).
  bool blackout = false;
  drop_if = [&](const Packet& p) {
    const auto* seg = std::get_if<TcpSegMsg>(&p.msg);
    return blackout && seg != nullptr && !seg->is_ack;
  };
  sim.at(2_s, [&] { blackout = true; });
  sim.at(SimTime::from_millis(2200), [&] { blackout = false; });
  tx.start(0_s);
  sim.run_until(6_s);
  EXPECT_GE(tx.timeouts(), 1);
  // Recovery cannot begin before min RTO (1 s) after the blackout start.
  std::uint64_t acked_at_3s = 0;
  for (const auto& a : tx.ack_trace()) {
    if (a.at <= 3_s) acked_at_3s = std::max<std::uint64_t>(acked_at_3s, a.seq);
  }
  std::uint64_t final_acked = tx.bytes_acked();
  EXPECT_GT(final_acked, acked_at_3s);  // it did recover afterwards
}

TEST_F(TcpFixture, RtoIsTickAlignedAndAtLeastOneSecond) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  tx.start(0_s);
  sim.run_until(1_s);
  const SimTime rto = tx.current_rto();
  EXPECT_GE(rto, 1_s);
  EXPECT_EQ(rto.ns() % (500_ms).ns(), 0);  // multiple of the 500 ms tick
}

TEST_F(TcpFixture, ReceiverReassemblesOutOfOrder) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  std::set<std::uint32_t> dropped;
  drop_if = [&](const Packet& p) {
    const auto* seg = std::get_if<TcpSegMsg>(&p.msg);
    if (seg == nullptr || seg->is_ack) return false;
    return seg->seq == 5000 && dropped.insert(seg->seq).second;
  };
  tx.start(0_s);
  sim.run_until(5_s);
  // The hole was repaired: everything beyond it counts as in-order.
  EXPECT_GT(sink.bytes_in_order(), 100'000u);
  EXPECT_EQ(sink.rcv_nxt() % 1000, 0u);
}

TEST_F(TcpFixture, TracesAreMonotoneInTime) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg(100'000));
  tx.start(0_s);
  sim.run_until(10_s);
  for (std::size_t i = 1; i < tx.send_trace().size(); ++i) {
    EXPECT_LE(tx.send_trace()[i - 1].at, tx.send_trace()[i].at);
  }
  ASSERT_FALSE(tx.ack_trace().empty());
  EXPECT_EQ(tx.ack_trace().back().seq, 100'000u);
}

TEST_F(TcpFixture, ThroughputApproachesBottleneck) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg());
  tx.start(0_s);
  sim.run_until(10_s);
  const double mbps = tx.bytes_acked() * 8.0 / 10.0 / 1e6;
  EXPECT_GT(mbps, 7.0);   // close to the 10 Mb/s bottleneck
  EXPECT_LE(mbps, 10.5);
}

TEST_F(TcpFixture, DelayedAcksHalveAckTraffic) {
  TcpSink immediate(host, 80);
  TcpSender tx1(cn, sender_cfg(100'000));
  tx1.start(0_s);
  sim.run_until(10_s);
  const auto immediate_acks = immediate.acks_sent();
  EXPECT_EQ(tx1.bytes_acked(), 100'000u);

  // Fresh network for the delayed-ack run.
  TcpNet second;
  TcpSink delayed(second.host, 80);
  delayed.set_delayed_ack(true);
  TcpSender tx2(second.cn, second.sender_cfg(100'000));
  tx2.start(0_s);
  second.sim.run_until(10_s);
  EXPECT_EQ(tx2.bytes_acked(), 100'000u);  // still completes
  EXPECT_LT(delayed.acks_sent(), immediate_acks * 3 / 4);
  EXPECT_GE(delayed.acks_sent(), immediate_acks / 2 - 2);
}

TEST_F(TcpFixture, DelayedAckTimerFlushesLoneSegment) {
  TcpSink sink(host, 80);
  sink.set_delayed_ack(true, 200_ms);
  // Exactly one MSS of data: the ACK must come from the 200 ms timer.
  TcpSender tx(cn, sender_cfg(1000));
  tx.start(0_s);
  sim.run_until(5_s);
  EXPECT_EQ(tx.bytes_acked(), 1000u);
  ASSERT_EQ(tx.ack_trace().size(), 1u);
  EXPECT_GE(tx.ack_trace()[0].at, 200_ms);
  EXPECT_LE(tx.ack_trace()[0].at, 300_ms);
}

TEST_F(TcpFixture, DelayedAckStillSignalsLossImmediately) {
  TcpSink sink(host, 80);
  sink.set_delayed_ack(true);
  TcpSender tx(cn, sender_cfg());
  std::set<std::uint32_t> dropped;
  drop_if = [&](const Packet& p) {
    const auto* seg = std::get_if<TcpSegMsg>(&p.msg);
    if (seg == nullptr || seg->is_ack) return false;
    return seg->seq == 30'000 && dropped.insert(seg->seq).second;
  };
  tx.start(0_s);
  sim.run_until(5_s);
  // Out-of-order arrivals generate immediate duplicate ACKs, so fast
  // retransmit still fires — no coarse timeout.
  EXPECT_EQ(tx.fast_retransmits(), 1);
  EXPECT_EQ(tx.timeouts(), 0);
}

TEST_F(TcpFixture, NewRenoRepairsBurstWithoutTimeout) {
  // Drop three separate segments from one window: classic Reno typically
  // needs the coarse timer for the later holes, NewReno walks the holes
  // with partial ACKs.
  auto make_filter = [&](std::set<std::uint32_t>& dropped) {
    return [&dropped](const Packet& p) {
      const auto* seg = std::get_if<TcpSegMsg>(&p.msg);
      if (seg == nullptr || seg->is_ack) return false;
      if ((seg->seq == 40'000 || seg->seq == 42'000 || seg->seq == 44'000) &&
          dropped.insert(seg->seq).second) {
        return true;
      }
      return false;
    };
  };

  auto cfg = sender_cfg();
  cfg.newreno = true;
  TcpSink sink(host, 80);
  TcpSender tx(cn, cfg);
  std::set<std::uint32_t> dropped;
  drop_if = make_filter(dropped);
  tx.start(0_s);
  sim.run_until(6_s);
  EXPECT_EQ(dropped.size(), 3u);
  EXPECT_EQ(tx.timeouts(), 0);
  EXPECT_GT(sink.bytes_in_order(), 1'000'000u);
}

TEST_F(TcpFixture, StatsConservationPerPacket) {
  TcpSink sink(host, 80);
  TcpSender tx(cn, sender_cfg(200'000));
  tx.start(0_s);
  sim.run_until(10_s);
  const FlowCounters& c = sim.stats().flow(1);
  // Every transmitted segment was delivered or dropped (none in flight).
  EXPECT_EQ(c.sent, c.delivered + c.dropped + injected_drops);
}

}  // namespace
}  // namespace fhmip
