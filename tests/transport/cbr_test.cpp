#include "transport/cbr.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

struct CbrFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");

  CbrFixture() {
    a.add_address({1, 1});
    b.add_address({2, 1});
    net.connect(a, b, 1e9, 1_ms);
    net.compute_routes();
  }

  CbrSource::Config audio() {
    CbrSource::Config c;
    c.dst = {2, 1};
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 20_ms;
    c.flow = 1;
    return c;
  }
};

TEST_F(CbrFixture, EmitsAtConfiguredRate) {
  UdpSink sink(b, 7000);
  CbrSource src(a, 5000, audio());
  src.start(1_s);
  src.stop(3_s);
  sim.run_until(4_s);
  // 2 s at 50 packets/s.
  EXPECT_EQ(sink.packets_received(), 100u);
  EXPECT_EQ(src.packets_sent(), 100u);
}

TEST_F(CbrFixture, SequenceNumbersAreConsecutive) {
  std::vector<std::uint32_t> seqs;
  UdpAgent rx(b, 7000);
  rx.set_receive_callback([&](PacketPtr p) { seqs.push_back(p->seq); });
  CbrSource src(a, 5000, audio());
  src.start(0_s);
  src.stop(200_ms);
  sim.run_until(1_s);
  ASSERT_EQ(seqs.size(), 10u);
  for (std::uint32_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST_F(CbrFixture, CarriesTrafficClass) {
  auto cfg = audio();
  cfg.tclass = TrafficClass::kHighPriority;
  TrafficClass seen = TrafficClass::kUnspecified;
  UdpAgent rx(b, 7000);
  rx.set_receive_callback([&](PacketPtr p) { seen = p->tclass; });
  CbrSource src(a, 5000, cfg);
  src.start(0_s);
  src.stop(30_ms);
  sim.run();
  EXPECT_EQ(seen, TrafficClass::kHighPriority);
}

TEST_F(CbrFixture, RateHelperMatchesPaperWorkloads) {
  // 160 B every 20 ms = 64 kb/s (§4.2.1); every 10 ms = 128 kb/s (§4.2.3).
  EXPECT_EQ(CbrSource::interval_for_rate(64, 160), 20_ms);
  EXPECT_EQ(CbrSource::interval_for_rate(128, 160), 10_ms);
  EXPECT_EQ(CbrSource::interval_for_rate(426.7, 160),
            SimTime::nanos(2'999'766));
}

TEST_F(CbrFixture, StopNowHaltsImmediately) {
  UdpSink sink(b, 7000);
  CbrSource src(a, 5000, audio());
  src.start(0_s);
  sim.run_until(100_ms);
  src.stop_now();
  const auto got = sink.packets_received();
  sim.run_until(1_s);
  // At most one more packet (the one already in flight).
  EXPECT_LE(sink.packets_received(), got + 1);
}

TEST_F(CbrFixture, JitterVariesGapsButPreservesMeanRate) {
  std::vector<SimTime> arrivals;
  UdpAgent rx(b, 7000);
  rx.set_receive_callback(
      [&](PacketPtr) { arrivals.push_back(sim.now()); });
  auto cfg = audio();
  cfg.jitter = 5_ms;
  CbrSource src(a, 5000, cfg);
  src.start(0_s);
  src.stop(10_s);
  sim.run_until(11_s);
  // Mean rate stays ~50 p/s.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 500.0, 25.0);
  // Gaps actually vary.
  SimTime min_gap = SimTime::seconds(99), max_gap;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const SimTime gap = arrivals[i] - arrivals[i - 1];
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  EXPECT_LT(min_gap, 18_ms);
  EXPECT_GT(max_gap, 22_ms);
}

TEST_F(CbrFixture, RecordsSentStatistics) {
  UdpSink sink(b, 7000);
  CbrSource src(a, 5000, audio());
  src.start(0_s);
  src.stop(100_ms);
  sim.run_until(1_s);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, 5u);
  EXPECT_EQ(c.delivered, 5u);
  EXPECT_EQ(c.in_flight(), 0u);
}

}  // namespace
}  // namespace fhmip
