#include "buffer/policy.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace fhmip {
namespace {

BufferSchemeConfig dual_classified() {
  BufferSchemeConfig cfg;
  cfg.mode = BufferMode::kDual;
  cfg.classify = true;
  return cfg;
}

TEST(AllocationCase, Numbering) {
  // Table 3.2: case 1 = both yes ... case 4 = both no.
  EXPECT_EQ((AllocationCase{true, true}).case_number(), 1);
  EXPECT_EQ((AllocationCase{true, false}).case_number(), 2);
  EXPECT_EQ((AllocationCase{false, true}).case_number(), 3);
  EXPECT_EQ((AllocationCase{false, false}).case_number(), 4);
}

/// Table 3.3, row by row: (case, class) -> operation.
struct Table33Row {
  bool nar;
  bool par;
  TrafficClass cls;
  BufferAction expected;
};

class Table33 : public ::testing::TestWithParam<Table33Row> {};

TEST_P(Table33, MatchesThesis) {
  const Table33Row row = GetParam();
  EXPECT_EQ(decide_buffering(dual_classified(), {row.nar, row.par}, row.cls),
            row.expected)
      << "case " << AllocationCase{row.nar, row.par}.case_number() << " class "
      << to_string(row.cls);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, Table33,
    ::testing::Values(
        // Case 1: NAR yes, PAR yes.
        Table33Row{true, true, TrafficClass::kRealTime,
                   BufferAction::kBufferAtNar},
        Table33Row{true, true, TrafficClass::kHighPriority,
                   BufferAction::kBufferAtBoth},
        Table33Row{true, true, TrafficClass::kBestEffort,
                   BufferAction::kBufferAtParIfHeadroom},
        // Case 2: NAR yes, PAR no.
        Table33Row{true, false, TrafficClass::kRealTime,
                   BufferAction::kBufferAtNar},
        Table33Row{true, false, TrafficClass::kHighPriority,
                   BufferAction::kBufferAtNar},
        Table33Row{true, false, TrafficClass::kBestEffort,
                   BufferAction::kForwardOnly},
        // Case 3: NAR no, PAR yes.
        Table33Row{false, true, TrafficClass::kRealTime,
                   BufferAction::kForwardOnly},
        Table33Row{false, true, TrafficClass::kHighPriority,
                   BufferAction::kBufferAtPar},
        Table33Row{false, true, TrafficClass::kBestEffort,
                   BufferAction::kBufferAtParIfHeadroom},
        // Case 4: NAR no, PAR no.
        Table33Row{false, false, TrafficClass::kRealTime,
                   BufferAction::kForwardOnly},
        Table33Row{false, false, TrafficClass::kHighPriority,
                   BufferAction::kForwardOnly},
        Table33Row{false, false, TrafficClass::kBestEffort,
                   BufferAction::kDrop}));

TEST(Policy, UnspecifiedClassTreatedAsBestEffort) {
  // Table 3.1 value 0: "not specified, treated as best effort packets".
  for (bool nar : {false, true}) {
    for (bool par : {false, true}) {
      EXPECT_EQ(decide_buffering(dual_classified(), {nar, par},
                                 TrafficClass::kUnspecified),
                decide_buffering(dual_classified(), {nar, par},
                                 TrafficClass::kBestEffort));
    }
  }
}

TEST(Policy, ClassificationDisabledUsesDualPathForAll) {
  BufferSchemeConfig cfg = dual_classified();
  cfg.classify = false;
  for (TrafficClass c :
       {TrafficClass::kRealTime, TrafficClass::kHighPriority,
        TrafficClass::kBestEffort, TrafficClass::kUnspecified}) {
    EXPECT_EQ(decide_buffering(cfg, {true, true}, c),
              BufferAction::kBufferAtBoth);
    EXPECT_EQ(decide_buffering(cfg, {true, false}, c),
              BufferAction::kBufferAtNar);
    EXPECT_EQ(decide_buffering(cfg, {false, true}, c),
              BufferAction::kBufferAtPar);
    EXPECT_EQ(decide_buffering(cfg, {false, false}, c),
              BufferAction::kForwardOnly);
  }
}

TEST(Policy, NoneModeNeverBuffers) {
  BufferSchemeConfig cfg;
  cfg.mode = BufferMode::kNone;
  for (bool nar : {false, true}) {
    for (bool par : {false, true}) {
      for (TrafficClass c : {TrafficClass::kRealTime,
                             TrafficClass::kBestEffort}) {
        EXPECT_EQ(decide_buffering(cfg, {nar, par}, c),
                  BufferAction::kForwardOnly);
      }
    }
  }
}

TEST(Policy, NarOnlyModeMatchesOriginalFastHandover) {
  BufferSchemeConfig cfg;
  cfg.mode = BufferMode::kNarOnly;
  EXPECT_EQ(decide_buffering(cfg, {true, true}, TrafficClass::kBestEffort),
            BufferAction::kBufferAtNar);
  EXPECT_EQ(decide_buffering(cfg, {false, true}, TrafficClass::kRealTime),
            BufferAction::kForwardOnly);
}

TEST(Policy, ParOnlyMode) {
  BufferSchemeConfig cfg;
  cfg.mode = BufferMode::kParOnly;
  EXPECT_EQ(decide_buffering(cfg, {true, true}, TrafficClass::kRealTime),
            BufferAction::kBufferAtPar);
  EXPECT_EQ(decide_buffering(cfg, {true, false}, TrafficClass::kRealTime),
            BufferAction::kForwardOnly);
}

TEST(Policy, ModeAndActionNames) {
  EXPECT_STREQ(to_string(BufferMode::kDual), "dual");
  EXPECT_STREQ(to_string(BufferMode::kNone), "none");
  EXPECT_STREQ(to_string(BufferAction::kBufferAtBoth), "buffer-at-both");
  EXPECT_STREQ(to_string(BufferAction::kDrop), "drop");
}

}  // namespace
}  // namespace fhmip
