#include "buffer/buffer_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

TEST(BufferManager, GrantsFromPool) {
  BufferManager m(35);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.available(), 25u);
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(3, ArRole::kNar), 10), 10u);
  // Only 5 left: an all-or-nothing grant fails.
  EXPECT_EQ(m.allocate(BufferManager::key(4, ArRole::kNar), 10), 0u);
  EXPECT_EQ(m.total_rejections(), 1u);
  EXPECT_EQ(m.active_leases(), 3u);
}

TEST(BufferManager, PartialGrantExtension) {
  BufferManager m(15, /*allow_partial=*/true);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  // 5 remain; the partial policy grants them instead of refusing.
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 5u);
  EXPECT_EQ(m.available(), 0u);
  EXPECT_EQ(m.allocate(BufferManager::key(3, ArRole::kNar), 10), 0u);
}

TEST(BufferManager, ReleaseReturnsSlots) {
  BufferManager m(20);
  const auto k = BufferManager::key(1, ArRole::kPar);
  m.allocate(k, 20);
  EXPECT_EQ(m.available(), 0u);
  m.release(k);
  EXPECT_EQ(m.available(), 20u);
  EXPECT_FALSE(m.has_lease(k));
  m.release(k);  // idempotent
  EXPECT_EQ(m.available(), 20u);
}

TEST(BufferManager, ReallocationReplacesLease) {
  BufferManager m(20);
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5);
  EXPECT_EQ(m.allocate(k, 10), 10u);  // old 5 released first
  EXPECT_EQ(m.available(), 10u);
  EXPECT_EQ(m.buffer(k)->capacity(), 10u);
}

TEST(BufferManager, RolesAreIndependentLeases) {
  BufferManager m(30);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kPar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kIntra), 10), 10u);
  EXPECT_EQ(m.active_leases(), 3u);
  EXPECT_NE(m.buffer(BufferManager::key(1, ArRole::kPar)),
            m.buffer(BufferManager::key(1, ArRole::kNar)));
}

TEST(BufferManager, KeyInjectivity) {
  EXPECT_NE(BufferManager::key(1, ArRole::kPar),
            BufferManager::key(1, ArRole::kNar));
  EXPECT_NE(BufferManager::key(1, ArRole::kPar),
            BufferManager::key(2, ArRole::kPar));
}

TEST(BufferManager, ZeroRequestGrantsNothing) {
  BufferManager m(20);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 0), 0u);
  EXPECT_FALSE(m.has_lease(BufferManager::key(1, ArRole::kNar)));
}

TEST(BufferManager, BufferLookup) {
  BufferManager m(20);
  const auto k = BufferManager::key(7, ArRole::kNar);
  EXPECT_EQ(m.buffer(k), nullptr);
  m.allocate(k, 8);
  ASSERT_NE(m.buffer(k), nullptr);
  EXPECT_EQ(m.buffer(k)->capacity(), 8u);
}

TEST(BufferManager, PeakLeasedTracksHighWater) {
  BufferManager m(30);
  m.allocate(BufferManager::key(1, ArRole::kNar), 20);
  m.release(BufferManager::key(1, ArRole::kNar));
  m.allocate(BufferManager::key(2, ArRole::kNar), 10);
  EXPECT_EQ(m.peak_leased(), 20u);
  EXPECT_EQ(m.leased(), 10u);
  EXPECT_EQ(m.total_grants(), 2u);
}

TEST(BufferManager, QuotaCapsOneHostAcrossRoles) {
  BufferManager m(100, /*allow_partial=*/false, /*quota_pkts=*/15);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kPar), 10), 10u);
  // 5 quota slots remain for MH 1: an all-or-nothing 10 is refused even
  // though the pool has 90 free.
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 0u);
  EXPECT_EQ(m.total_rejections(), 1u);
  // Another host is unaffected by its neighbour's quota.
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.leased_by(1), 10u);
  EXPECT_EQ(m.leased_by(2), 10u);
}

TEST(BufferManager, QuotaClampsPartialGrants) {
  BufferManager m(100, /*allow_partial=*/true, /*quota_pkts=*/15);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kPar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 5u);
  EXPECT_EQ(m.total_partial_grants(), 1u);
  EXPECT_EQ(m.leased_by(1), 15u);
  // Quota exhausted: even partial policy has nothing left to give.
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kIntra), 4), 0u);
}

TEST(BufferManager, PartialGrantTakesTighterOfPoolAndQuota) {
  BufferManager m(12, /*allow_partial=*/true, /*quota_pkts=*/50);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kPar), 8), 8u);
  // Pool headroom (4) binds before the quota (42).
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 4u);
}

TEST(BufferManager, ReallocationDoesNotDoubleCountAgainstQuota) {
  BufferManager m(100, /*allow_partial=*/false, /*quota_pkts=*/20);
  const auto k = BufferManager::key(1, ArRole::kNar);
  EXPECT_EQ(m.allocate(k, 15), 15u);
  // The old 15 is released first, so 20 fits inside the quota.
  EXPECT_EQ(m.allocate(k, 20), 20u);
  EXPECT_EQ(m.leased_by(1), 20u);
}

TEST(BufferManager, RenewPushesDeadlineAndReleaseClearsIt) {
  Simulation sim;
  BufferManager m(20);
  m.set_observer(&sim, "test");
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5, SimTime::seconds(2));
  EXPECT_EQ(m.lease_deadline(k), SimTime::seconds(2));
  EXPECT_TRUE(m.renew(k, SimTime::seconds(5)));
  EXPECT_EQ(m.lease_deadline(k), SimTime::seconds(5));
  EXPECT_EQ(m.total_renewals(), 1u);
  // Renewing to zero takes the lease off the reaper's watch list.
  EXPECT_TRUE(m.renew(k, SimTime()));
  EXPECT_TRUE(m.lease_deadline(k).is_zero());
  m.release(k);
  EXPECT_FALSE(m.renew(k, SimTime::seconds(9)));  // gone
}

TEST(BufferManager, ReaperReclaimsOrphanedLease) {
  Simulation sim;
  BufferManager m(20);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  std::vector<BufferManager::LeaseKey> reaped;
  m.set_reap_handler([&](BufferManager::LeaseKey k) { reaped.push_back(k); });
  const auto k = BufferManager::key(3, ArRole::kNar);
  m.allocate(k, 5, SimTime::seconds(1));
  sim.run_until(SimTime::seconds(2));
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(BufferManager::lease_mh(reaped[0]), 3u);
  EXPECT_EQ(BufferManager::lease_role(reaped[0]), ArRole::kNar);
  EXPECT_FALSE(m.has_lease(k));  // handler didn't release, so the pool did
  EXPECT_EQ(m.available(), 20u);
  EXPECT_EQ(m.total_reaped(), 1u);
}

TEST(BufferManager, RenewedLeaseOutlivesItsOriginalDeadline) {
  Simulation sim;
  BufferManager m(20);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  const auto k = BufferManager::key(1, ArRole::kPar);
  m.allocate(k, 5, SimTime::seconds(1));
  // A protocol exchange at 0.9 s proves the peer alive and pushes the lease.
  sim.at(SimTime::millis(900), [&] { m.renew(k, SimTime::seconds(3)); });
  sim.run_until(SimTime::seconds(2));
  EXPECT_TRUE(m.has_lease(k));
  EXPECT_EQ(m.total_reaped(), 0u);
  sim.run_until(SimTime::seconds(4));
  EXPECT_FALSE(m.has_lease(k));
  EXPECT_EQ(m.total_reaped(), 1u);
}

TEST(BufferManager, ExactDeadlineReleaseBeatsTheReaper) {
  Simulation sim;
  BufferManager m(20);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5, SimTime::seconds(1));
  // A lifetime timer firing exactly at the deadline must win: the reaper
  // only takes leases strictly past due (it is a backstop, not the owner).
  sim.at(SimTime::seconds(1), [&] { m.release(k); });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(m.total_reaped(), 0u);
  EXPECT_EQ(m.available(), 20u);
}

TEST(BufferManager, LeaseWithoutDeadlineNeverReaped) {
  Simulation sim;
  BufferManager m(20);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5);  // no expiry: reaper stays asleep
  sim.run_until(SimTime::seconds(5));
  EXPECT_TRUE(m.has_lease(k));
  EXPECT_EQ(m.total_reaped(), 0u);
}

TEST(BufferManager, ReapSweepTakesOnlyTheExpiredPrefix) {
  // 40 leases with staggered deadlines; a sweep between two deadlines must
  // reclaim exactly the expired ones — the sorted index makes the sweep
  // cost proportional to that prefix, but the reclaimed set has to match
  // the old full-walk semantics exactly.
  Simulation sim;
  BufferManager m(1000);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  for (MhId i = 0; i < 40; ++i) {
    m.allocate(BufferManager::key(i, ArRole::kNar), 1,
               SimTime::seconds(1 + i));
  }
  sim.run_until(SimTime::millis(10'500));  // deadlines 1..10 s are past due
  EXPECT_EQ(m.total_reaped(), 10u);
  EXPECT_EQ(m.active_leases(), 30u);
  for (MhId i = 0; i < 40; ++i) {
    EXPECT_EQ(m.has_lease(BufferManager::key(i, ArRole::kNar)), i >= 10)
        << "mh " << i;
  }
  m.audit_invariants();
}

TEST(BufferManager, ReapHandlerRunsInLeaseKeyOrder) {
  // Deadlines deliberately inverted relative to keys: when one sweep
  // collects several expired leases, the handler must still see them in
  // ascending LeaseKey order (the order the deadline-map walk produced
  // before the sorted index existed) so reap-driven teardown output stays
  // byte-stable.
  Simulation sim;
  BufferManager m(1000);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  std::vector<MhId> reaped;
  m.set_reap_handler([&](BufferManager::LeaseKey k) {
    reaped.push_back(BufferManager::lease_mh(k));
  });
  // All five deadlines fall between the sweeps at 900 ms and 1000 ms, so a
  // single sweep collects all of them at once.
  for (MhId i = 0; i < 5; ++i) {
    m.allocate(BufferManager::key(i, ArRole::kNar), 1,
               SimTime::millis(950 - 10 * i));
  }
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(reaped, (std::vector<MhId>{0, 1, 2, 3, 4}));
}

TEST(BufferManager, DeadlineIndexSurvivesChurn) {
  // allocate / renew / re-allocate / renew-to-zero / release churn, with
  // the level-2 invariant sweep (index mirrors deadlines_) after each step.
  Simulation sim;
  BufferManager m(100);
  m.set_observer(&sim, "test");
  m.set_reap_period(SimTime::millis(100));
  const auto a = BufferManager::key(1, ArRole::kPar);
  const auto b = BufferManager::key(2, ArRole::kNar);
  m.allocate(a, 5, SimTime::seconds(1));
  m.allocate(b, 5, SimTime::seconds(1));  // same deadline as `a`
  m.audit_invariants();
  EXPECT_TRUE(m.renew(a, SimTime::seconds(4)));
  m.audit_invariants();
  EXPECT_TRUE(m.renew(b, SimTime()));  // off the watch list
  m.audit_invariants();
  EXPECT_EQ(m.allocate(a, 7, SimTime::seconds(5)), 7u);  // replaces lease
  m.audit_invariants();
  m.release(b);
  m.audit_invariants();
  sim.run_until(SimTime::seconds(6));
  EXPECT_EQ(m.total_reaped(), 1u);  // only `a`; `b` left the list cleanly
  EXPECT_EQ(m.available(), 100u);
  m.audit_invariants();
}

TEST(BufferManager, ReleasedLeaseDiscardsContents) {
  Simulation sim;
  BufferManager m(10);
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5);
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  m.buffer(k)->push(p);
  m.release(k);
  EXPECT_EQ(m.buffer(k), nullptr);
  EXPECT_EQ(m.available(), 10u);
}

}  // namespace
}  // namespace fhmip
