#include "buffer/buffer_manager.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

TEST(BufferManager, GrantsFromPool) {
  BufferManager m(35);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.available(), 25u);
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(3, ArRole::kNar), 10), 10u);
  // Only 5 left: an all-or-nothing grant fails.
  EXPECT_EQ(m.allocate(BufferManager::key(4, ArRole::kNar), 10), 0u);
  EXPECT_EQ(m.total_rejections(), 1u);
  EXPECT_EQ(m.active_leases(), 3u);
}

TEST(BufferManager, PartialGrantExtension) {
  BufferManager m(15, /*allow_partial=*/true);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  // 5 remain; the partial policy grants them instead of refusing.
  EXPECT_EQ(m.allocate(BufferManager::key(2, ArRole::kNar), 10), 5u);
  EXPECT_EQ(m.available(), 0u);
  EXPECT_EQ(m.allocate(BufferManager::key(3, ArRole::kNar), 10), 0u);
}

TEST(BufferManager, ReleaseReturnsSlots) {
  BufferManager m(20);
  const auto k = BufferManager::key(1, ArRole::kPar);
  m.allocate(k, 20);
  EXPECT_EQ(m.available(), 0u);
  m.release(k);
  EXPECT_EQ(m.available(), 20u);
  EXPECT_FALSE(m.has_lease(k));
  m.release(k);  // idempotent
  EXPECT_EQ(m.available(), 20u);
}

TEST(BufferManager, ReallocationReplacesLease) {
  BufferManager m(20);
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5);
  EXPECT_EQ(m.allocate(k, 10), 10u);  // old 5 released first
  EXPECT_EQ(m.available(), 10u);
  EXPECT_EQ(m.buffer(k)->capacity(), 10u);
}

TEST(BufferManager, RolesAreIndependentLeases) {
  BufferManager m(30);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kPar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 10), 10u);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kIntra), 10), 10u);
  EXPECT_EQ(m.active_leases(), 3u);
  EXPECT_NE(m.buffer(BufferManager::key(1, ArRole::kPar)),
            m.buffer(BufferManager::key(1, ArRole::kNar)));
}

TEST(BufferManager, KeyInjectivity) {
  EXPECT_NE(BufferManager::key(1, ArRole::kPar),
            BufferManager::key(1, ArRole::kNar));
  EXPECT_NE(BufferManager::key(1, ArRole::kPar),
            BufferManager::key(2, ArRole::kPar));
}

TEST(BufferManager, ZeroRequestGrantsNothing) {
  BufferManager m(20);
  EXPECT_EQ(m.allocate(BufferManager::key(1, ArRole::kNar), 0), 0u);
  EXPECT_FALSE(m.has_lease(BufferManager::key(1, ArRole::kNar)));
}

TEST(BufferManager, BufferLookup) {
  BufferManager m(20);
  const auto k = BufferManager::key(7, ArRole::kNar);
  EXPECT_EQ(m.buffer(k), nullptr);
  m.allocate(k, 8);
  ASSERT_NE(m.buffer(k), nullptr);
  EXPECT_EQ(m.buffer(k)->capacity(), 8u);
}

TEST(BufferManager, PeakLeasedTracksHighWater) {
  BufferManager m(30);
  m.allocate(BufferManager::key(1, ArRole::kNar), 20);
  m.release(BufferManager::key(1, ArRole::kNar));
  m.allocate(BufferManager::key(2, ArRole::kNar), 10);
  EXPECT_EQ(m.peak_leased(), 20u);
  EXPECT_EQ(m.leased(), 10u);
  EXPECT_EQ(m.total_grants(), 2u);
}

TEST(BufferManager, ReleasedLeaseDiscardsContents) {
  Simulation sim;
  BufferManager m(10);
  const auto k = BufferManager::key(1, ArRole::kNar);
  m.allocate(k, 5);
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  m.buffer(k)->push(p);
  m.release(k);
  EXPECT_EQ(m.buffer(k), nullptr);
  EXPECT_EQ(m.available(), 10u);
}

}  // namespace
}  // namespace fhmip
