#include "buffer/traffic_class.hpp"

#include <gtest/gtest.h>

namespace fhmip {
namespace {

TEST(TrafficClassTable31, WireValuesMatchTable) {
  // Table 3.1 assigns 0=unspecified, 1=real-time, 2=high-priority, 3=BE.
  EXPECT_EQ(class_of_service_value(TrafficClass::kUnspecified), 0);
  EXPECT_EQ(class_of_service_value(TrafficClass::kRealTime), 1);
  EXPECT_EQ(class_of_service_value(TrafficClass::kHighPriority), 2);
  EXPECT_EQ(class_of_service_value(TrafficClass::kBestEffort), 3);
}

TEST(TrafficClassTable31, RoundTrip) {
  for (std::uint8_t v = 0; v <= 3; ++v) {
    EXPECT_EQ(class_of_service_value(traffic_class_from_value(v)), v);
  }
}

TEST(TrafficClassTable31, OutOfRangeTreatedAsUnspecified) {
  EXPECT_EQ(traffic_class_from_value(4), TrafficClass::kUnspecified);
  EXPECT_EQ(traffic_class_from_value(255), TrafficClass::kUnspecified);
}

TEST(DiffservMapping, PhbToClass) {
  // §3.3: operation in a Diffserv network by mapping classes onto PHBs.
  EXPECT_EQ(traffic_class_from_phb(DiffservPhb::kExpeditedForwarding),
            TrafficClass::kRealTime);
  EXPECT_EQ(traffic_class_from_phb(DiffservPhb::kAssuredForwarding),
            TrafficClass::kHighPriority);
  EXPECT_EQ(traffic_class_from_phb(DiffservPhb::kDefault),
            TrafficClass::kBestEffort);
}

TEST(DiffservMapping, ClassToPhbRoundTrip) {
  for (TrafficClass c : {TrafficClass::kRealTime, TrafficClass::kHighPriority,
                         TrafficClass::kBestEffort}) {
    EXPECT_EQ(traffic_class_from_phb(phb_from_traffic_class(c)), c);
  }
  // Unspecified maps through best effort.
  EXPECT_EQ(phb_from_traffic_class(TrafficClass::kUnspecified),
            DiffservPhb::kDefault);
}

}  // namespace
}  // namespace fhmip
