#include "buffer/rate_estimator.hpp"

#include <gtest/gtest.h>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(RateEstimator, ZeroBeforeAnyPacket) {
  RateEstimator r;
  EXPECT_DOUBLE_EQ(r.rate_pps(1_s), 0);
  EXPECT_EQ(r.packets_in(300_ms, 1_s), 0u);
}

TEST(RateEstimator, ConvergesToSteadyRate) {
  RateEstimator r;
  // 100 packets/s for 3 seconds.
  for (int i = 0; i < 300; ++i) {
    r.on_packet(SimTime::millis(10) * i);
  }
  EXPECT_NEAR(r.rate_pps(3_s), 100.0, 5.0);
  // 300 ms at 100 p/s -> 30 packets.
  EXPECT_NEAR(static_cast<double>(r.packets_in(300_ms, 3_s)), 30.0, 2.0);
}

TEST(RateEstimator, TracksRateChange) {
  RateEstimator r;
  for (int i = 0; i < 100; ++i) r.on_packet(SimTime::millis(10) * i);  // 100/s
  for (int i = 0; i < 20; ++i) {
    r.on_packet(1_s + SimTime::millis(50) * i);  // 20/s for 1 s
  }
  const double rate = r.rate_pps(2_s);
  EXPECT_LT(rate, 80.0);  // decayed from 100
  EXPECT_GT(rate, 15.0);
}

TEST(RateEstimator, DecaysWhenIdle) {
  RateEstimator r;
  for (int i = 0; i < 100; ++i) r.on_packet(SimTime::millis(10) * i);
  EXPECT_GT(r.rate_pps(1_s), 50.0);
  // Five seconds of silence: the smoothed estimate collapses.
  EXPECT_LT(r.rate_pps(6_s), 5.0);
}

TEST(RateEstimator, PartialFirstWindowEstimates) {
  RateEstimator r;
  for (int i = 0; i < 10; ++i) r.on_packet(SimTime::millis(10) * i);
  // 10 packets in 100 ms: well before the first 500 ms window closes.
  EXPECT_NEAR(r.rate_pps(SimTime::millis(100)), 100.0, 15.0);
}

TEST(RateEstimator, CountsTotalPackets) {
  RateEstimator r;
  for (int i = 0; i < 7; ++i) r.on_packet(SimTime::millis(i));
  EXPECT_EQ(r.total_packets(), 7u);
}

TEST(RateEstimator, PacketsInRoundsUp) {
  RateEstimator r(500_ms, 1.0);
  for (int i = 0; i < 50; ++i) r.on_packet(SimTime::millis(20) * i);  // 50/s
  // 50 p/s * 0.21 s = 10.5 -> 11.
  EXPECT_EQ(r.packets_in(SimTime::millis(210), 1_s), 11u);
}

}  // namespace
}  // namespace fhmip
