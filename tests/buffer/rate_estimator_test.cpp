#include "buffer/rate_estimator.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(RateEstimator, ZeroBeforeAnyPacket) {
  RateEstimator r;
  EXPECT_DOUBLE_EQ(r.rate_pps(1_s), 0);
  EXPECT_EQ(r.packets_in(300_ms, 1_s), 0u);
}

TEST(RateEstimator, ConvergesToSteadyRate) {
  RateEstimator r;
  // 100 packets/s for 3 seconds.
  for (int i = 0; i < 300; ++i) {
    r.on_packet(SimTime::millis(10) * i);
  }
  EXPECT_NEAR(r.rate_pps(3_s), 100.0, 5.0);
  // 300 ms at 100 p/s -> 30 packets.
  EXPECT_NEAR(static_cast<double>(r.packets_in(300_ms, 3_s)), 30.0, 2.0);
}

TEST(RateEstimator, TracksRateChange) {
  RateEstimator r;
  for (int i = 0; i < 100; ++i) r.on_packet(SimTime::millis(10) * i);  // 100/s
  for (int i = 0; i < 20; ++i) {
    r.on_packet(1_s + SimTime::millis(50) * i);  // 20/s for 1 s
  }
  const double rate = r.rate_pps(2_s);
  EXPECT_LT(rate, 80.0);  // decayed from 100
  EXPECT_GT(rate, 15.0);
}

TEST(RateEstimator, DecaysWhenIdle) {
  RateEstimator r;
  for (int i = 0; i < 100; ++i) r.on_packet(SimTime::millis(10) * i);
  EXPECT_GT(r.rate_pps(1_s), 50.0);
  // Five seconds of silence: the smoothed estimate collapses.
  EXPECT_LT(r.rate_pps(6_s), 5.0);
}

TEST(RateEstimator, LongIdleGapIsClosedFormNotPerWindow) {
  // Regression: roll() used to iterate once per elapsed window, so an idle
  // gap of 10^6+ windows (a millisecond window and hours of sim-time
  // silence) burned millions of loop turns inside on_packet/rate_pps. The
  // closed-form decay must make the gap O(1): billions of elapsed windows,
  // repeated, must finish instantly.
  RateEstimator r(1_ms);
  const auto t0 = std::chrono::steady_clock::now();
  SimTime t;
  for (int hop = 1; hop <= 100; ++hop) {
    for (int i = 0; i < 10; ++i) {
      r.on_packet(t + SimTime::micros(100) * i);  // 10k pps burst
    }
    // ~2.6 billion elapsed 1 ms windows per hop.
    t += SimTime::seconds(30'000) * hop;
    EXPECT_NEAR(r.rate_pps(t), 0.0, 1e-9) << "hop " << hop;
  }
  const auto wall = std::chrono::steady_clock::now() - t0;
  // Two spare orders of magnitude over the closed-form cost; the per-window
  // loop would need hours here.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall).count(),
            2000);
  EXPECT_EQ(r.total_packets(), 1000u);
}

TEST(RateEstimator, GapDecayMatchesPerWindowDecay) {
  // The closed-form pow() path must agree with window-by-window smoothing.
  RateEstimator gap(100_ms, 0.5);
  RateEstimator step(100_ms, 0.5);
  for (int i = 0; i < 20; ++i) {
    gap.on_packet(SimTime::millis(10) * i);
    step.on_packet(SimTime::millis(10) * i);
  }
  // `step` is queried at every window boundary (per-window decay); `gap`
  // only at the end, crossing 40 idle windows at once.
  double stepped = 0;
  for (int w = 3; w <= 42; ++w) stepped = step.rate_pps(SimTime::millis(100) * w);
  EXPECT_NEAR(gap.rate_pps(SimTime::millis(4200)), stepped, 1e-9);
}

TEST(RateEstimator, PartialFirstWindowEstimates) {
  RateEstimator r;
  for (int i = 0; i < 10; ++i) r.on_packet(SimTime::millis(10) * i);
  // 10 packets in 100 ms: well before the first 500 ms window closes.
  EXPECT_NEAR(r.rate_pps(SimTime::millis(100)), 100.0, 15.0);
}

TEST(RateEstimator, CountsTotalPackets) {
  RateEstimator r;
  for (int i = 0; i < 7; ++i) r.on_packet(SimTime::millis(i));
  EXPECT_EQ(r.total_packets(), 7u);
}

TEST(RateEstimator, PacketsInRoundsUp) {
  RateEstimator r(500_ms, 1.0);
  for (int i = 0; i < 50; ++i) r.on_packet(SimTime::millis(20) * i);  // 50/s
  // 50 p/s * 0.21 s = 10.5 -> 11.
  EXPECT_EQ(r.packets_in(SimTime::millis(210), 1_s), 11u);
}

}  // namespace
}  // namespace fhmip
