#include "buffer/handoff_buffer.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

struct HandoffBufferFixture : ::testing::Test {
  Simulation sim;

  PacketPtr pkt(TrafficClass cls, std::uint32_t seq = 0) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = cls;
    p->seq = seq;
    return p;
  }
};

TEST_F(HandoffBufferFixture, FifoStorage) {
  HandoffBuffer buf(5);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto p = pkt(TrafficClass::kBestEffort, i);
    EXPECT_EQ(buf.push(p), HandoffBuffer::PushResult::kStored);
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.free_slots(), 2u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto p = buf.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.pop(), nullptr);
}

TEST_F(HandoffBufferFixture, TailRejectionWhenFull) {
  HandoffBuffer buf(2);
  auto a = pkt(TrafficClass::kBestEffort);
  auto b = pkt(TrafficClass::kBestEffort);
  auto c = pkt(TrafficClass::kBestEffort);
  buf.push(a);
  buf.push(b);
  EXPECT_EQ(buf.push(c), HandoffBuffer::PushResult::kRejected);
  EXPECT_NE(c, nullptr);  // caller keeps ownership of the rejected packet
  EXPECT_TRUE(buf.full());
}

TEST_F(HandoffBufferFixture, RealtimeEvictionDropsOldestRealtime) {
  // Case 1.a: "if buffer full, drop the first real-time packet".
  HandoffBuffer buf(3);
  auto rt1 = pkt(TrafficClass::kRealTime, 1);
  auto hp = pkt(TrafficClass::kHighPriority, 2);
  auto rt2 = pkt(TrafficClass::kRealTime, 3);
  buf.push(rt1);
  buf.push(hp);
  buf.push(rt2);
  auto fresh = pkt(TrafficClass::kRealTime, 4);
  PacketPtr evicted;
  EXPECT_EQ(buf.push_evict_oldest_realtime(fresh, evicted),
            HandoffBuffer::PushResult::kStoredEvicting);
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->seq, 1u);  // the oldest real-time one, not the HP
  // Remaining order: hp(2), rt(3), rt(4).
  EXPECT_EQ(buf.pop()->seq, 2u);
  EXPECT_EQ(buf.pop()->seq, 3u);
  EXPECT_EQ(buf.pop()->seq, 4u);
  EXPECT_EQ(buf.total_evictions(), 1u);
}

TEST_F(HandoffBufferFixture, EvictionRejectsWhenNoRealtimePresent) {
  HandoffBuffer buf(2);
  auto a = pkt(TrafficClass::kHighPriority);
  auto b = pkt(TrafficClass::kBestEffort);
  buf.push(a);
  buf.push(b);
  auto fresh = pkt(TrafficClass::kRealTime);
  PacketPtr evicted;
  EXPECT_EQ(buf.push_evict_oldest_realtime(fresh, evicted),
            HandoffBuffer::PushResult::kRejected);
  EXPECT_EQ(evicted, nullptr);
  EXPECT_NE(fresh, nullptr);
}

TEST_F(HandoffBufferFixture, EvictionNotNeededWhenSpace) {
  HandoffBuffer buf(2);
  auto fresh = pkt(TrafficClass::kRealTime);
  PacketPtr evicted;
  EXPECT_EQ(buf.push_evict_oldest_realtime(fresh, evicted),
            HandoffBuffer::PushResult::kStored);
  EXPECT_EQ(evicted, nullptr);
}

TEST_F(HandoffBufferFixture, UnspecifiedClassIsNotRealtime) {
  HandoffBuffer buf(1);
  auto u = pkt(TrafficClass::kUnspecified);
  buf.push(u);
  auto fresh = pkt(TrafficClass::kRealTime);
  PacketPtr evicted;
  // The unspecified packet maps to best effort, so nothing is evictable.
  EXPECT_EQ(buf.push_evict_oldest_realtime(fresh, evicted),
            HandoffBuffer::PushResult::kRejected);
}

TEST_F(HandoffBufferFixture, PeakOccupancyAndCounters) {
  HandoffBuffer buf(4);
  for (int i = 0; i < 3; ++i) {
    auto p = pkt(TrafficClass::kBestEffort);
    buf.push(p);
  }
  buf.pop();
  buf.pop();
  EXPECT_EQ(buf.peak_occupancy(), 3u);
  EXPECT_EQ(buf.total_stored(), 3u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST_F(HandoffBufferFixture, FlushEmptiesInOrder) {
  HandoffBuffer buf(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto p = pkt(TrafficClass::kBestEffort, i);
    buf.push(p);
  }
  std::vector<std::uint32_t> seqs;
  buf.flush([&](PacketPtr p) { seqs.push_back(p->seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(buf.empty());
}

TEST_F(HandoffBufferFixture, ZeroCapacityRejectsEverything) {
  HandoffBuffer buf(0);
  auto p = pkt(TrafficClass::kRealTime);
  EXPECT_EQ(buf.push(p), HandoffBuffer::PushResult::kRejected);
  PacketPtr evicted;
  auto q = pkt(TrafficClass::kRealTime);
  EXPECT_EQ(buf.push_evict_oldest_realtime(q, evicted),
            HandoffBuffer::PushResult::kRejected);
}

}  // namespace
}  // namespace fhmip
