#include "mip/correspondent.hpp"

#include <gtest/gtest.h>

#include "mip/map_agent.hpp"
#include "mip/mobile_ip.hpp"
#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Triangle topology where route optimization actually matters:
///
///   cn ----10ms---- map ----10ms---- ar --- mh
///     \________________2ms________________/
///
/// Unoptimized traffic detours via the MAP (~20 ms); optimized traffic
/// takes the direct 2 ms edge.
struct RoFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& map_node = net.add_node("map");
  Node& ar = net.add_node("ar");
  Node& mh = net.add_node("mh");
  std::unique_ptr<MapAgent> map;
  std::unique_ptr<CorrespondentAgent> corr;
  std::unique_ptr<MobileIpClient> mip;

  Address regional() { return {30, mh.id()}; }
  Address lcoa() { return {40, mh.id()}; }

  RoFixture() {
    cn.add_address({10, 1});
    map_node.add_address({30, 1});
    ar.add_address({40, 1});
    net.connect(cn, map_node, 1e9, 10_ms);
    net.connect(map_node, ar, 1e9, 10_ms);
    net.connect(cn, ar, 1e9, 2_ms);
    DuplexLink& w = net.connect(ar, mh, 1e9, 1_ms);
    net.compute_routes();
    // Force the unoptimized regional path over the MAP detour (the MAP
    // owns the regional prefix, so this mirrors prefix routing).
    ar.routes().set_prefix_route(40, Route::via(w.toward(mh)));
    mh.routes().set_default_route(Route::via(w.toward(ar)));
    mh.add_address(regional(), false);
    mh.add_address(lcoa(), false);
    map = std::make_unique<MapAgent>(map_node);
    corr = std::make_unique<CorrespondentAgent>(cn);
    mip = std::make_unique<MobileIpClient>(mh, regional(), map->address());
    mip->send_binding_update(lcoa(), 60_s);  // MAP-level binding
    sim.run();
  }

  ~RoFixture() override { mh.unregister_port(7); }

  SimTime send_and_measure(FlowId flow) {
    SimTime arrival = SimTime::seconds(-1);
    mh.register_port(7, [&](PacketPtr) { arrival = sim.now(); });
    auto p = make_packet(sim, {10, 1}, regional(), 160);
    p->dst_port = 7;
    p->flow = flow;
    sim.stats().record_sent(flow);
    const SimTime t0 = sim.now();
    cn.send(std::move(p));
    sim.run();
    return arrival - t0;
  }
};

TEST_F(RoFixture, WithoutRoTrafficDetoursViaMap) {
  const SimTime delay = send_and_measure(1);
  EXPECT_GT(delay, 20_ms);  // two 10 ms hops
  EXPECT_EQ(map->packets_tunneled(), 1u);
  EXPECT_EQ(corr->packets_optimized(), 0u);
}

TEST_F(RoFixture, BindingUpdateEnablesDirectPath) {
  mip->send_binding_update_to(cn.address(), lcoa(), 60_s);
  sim.run();
  EXPECT_EQ(corr->binding_updates(), 1u);
  const SimTime delay = send_and_measure(2);
  EXPECT_LT(delay, 5_ms);  // the 2 ms direct edge
  EXPECT_EQ(map->packets_tunneled(), 0u);
  EXPECT_EQ(corr->packets_optimized(), 1u);
}

TEST_F(RoFixture, BindingExpiryFallsBackToMapPath) {
  mip->send_binding_update_to(cn.address(), lcoa(), 1_s);
  sim.run();
  sim.scheduler().run_until(5_s);
  const SimTime delay = send_and_measure(3);
  EXPECT_GT(delay, 20_ms);
  EXPECT_EQ(map->packets_tunneled(), 1u);
}

TEST_F(RoFixture, CorrespondentAcksBindingUpdates) {
  mip->send_binding_update_to(cn.address(), lcoa(), 60_s);
  sim.run();
  EXPECT_EQ(mip->acks_received(), 2u);  // MAP ack + CN ack
}

TEST_F(RoFixture, ControlTrafficIsNeverRerouted) {
  mip->send_binding_update_to(cn.address(), lcoa(), 60_s);
  sim.run();
  // A control message addressed to the regional address must not be
  // encapsulated by the optimizer (it still flows via the MAP).
  bool seen = false;
  mh.add_control_handler([&](PacketPtr& p) {
    if (std::holds_alternative<BfMsg>(p->msg)) {
      EXPECT_FALSE(p->tunneled());  // arrived decapsulated via the MAP
      seen = true;
      return true;
    }
    return false;
  });
  cn.send(make_control(sim, {10, 1}, regional(), BfMsg{}));
  sim.run();
  EXPECT_TRUE(seen);
  EXPECT_EQ(corr->packets_optimized(), 0u);
}

}  // namespace
}  // namespace fhmip
