#include "mip/foreign_agent.hpp"

#include <gtest/gtest.h>

#include "mip/home_agent.hpp"
#include "mip/mobile_ip.hpp"
#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// The full MIPv4 triad: cn --- ha ---- fa --- visiting mh.
struct FaFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& ha_node = net.add_node("ha");
  Node& fa_node = net.add_node("fa");
  Node& mh = net.add_node("mh");
  std::unique_ptr<HomeAgent> ha;
  std::unique_ptr<ForeignAgent> fa;
  std::unique_ptr<MobileIpClient> mip;
  SimplexLink* fa_to_mh = nullptr;

  Address home_addr() { return {60, mh.id()}; }

  FaFixture() {
    cn.add_address({10, 1});
    ha_node.add_address({60, 1});
    fa_node.add_address({70, 1});
    net.connect(cn, ha_node, 1e9, 1_ms);
    net.connect(ha_node, fa_node, 1e9, 1_ms);
    DuplexLink& w = net.connect(fa_node, mh, 1e9, 1_ms);
    net.compute_routes();
    fa_to_mh = &w.toward(mh);
    mh.routes().set_default_route(Route::via(w.toward(fa_node)));
    // Link-local reachability of the visitor before registration (agent
    // advertisements are link-local in reality); the FA's own host route
    // replaces this entry once the visitor registers.
    fa_node.routes().set_host_route(home_addr(), Route::via(*fa_to_mh));
    mh.add_address(home_addr(), false);
    ha = std::make_unique<HomeAgent>(ha_node);
    fa = std::make_unique<ForeignAgent>(fa_node);
    fa->set_delivery([this](MhId, PacketPtr p) {
      fa_to_mh->transmit(std::move(p));
    });
    mip = std::make_unique<MobileIpClient>(mh, home_addr(), ha->address());
  }

  void register_via_fa(SimTime lifetime = SimTime::seconds(60)) {
    // Stage 2b: the MH registers *via* the foreign agent toward its home
    // agent, using the FA's address as its care-of address.
    mip->send_registration(fa->address(), ha->address(), home_addr(),
                           fa->care_of_address(), lifetime);
    sim.run();
  }
};

TEST_F(FaFixture, SolicitationIsAnsweredWithAdvertisement) {
  int adverts = 0;
  Address offered_coa;
  mh.add_control_handler([&](PacketPtr& p) {
    if (const auto* adv = std::get_if<AgentAdvertisementMsg>(&p->msg)) {
      ++adverts;
      offered_coa = adv->care_of_addr;
      EXPECT_TRUE(adv->is_foreign_agent);
      return true;
    }
    return false;
  });
  AgentSolicitationMsg sol;
  sol.mh = mh.id();
  mh.send(make_control(sim, home_addr(), fa->address(), sol));
  sim.run();
  EXPECT_EQ(adverts, 1);
  EXPECT_EQ(offered_coa, fa->address());
  EXPECT_EQ(fa->advertisements_sent(), 1u);
}

TEST_F(FaFixture, AdvertisementSequenceIncreases) {
  std::vector<std::uint32_t> seqs;
  mh.add_control_handler([&](PacketPtr& p) {
    if (const auto* adv = std::get_if<AgentAdvertisementMsg>(&p->msg)) {
      seqs.push_back(adv->sequence);
      return true;
    }
    return false;
  });
  fa->advertise_to(home_addr());
  fa->advertise_to(home_addr());
  sim.run();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_LT(seqs[0], seqs[1]);
}

TEST_F(FaFixture, RegistrationRelayBuildsVisitorList) {
  bool reply_seen = false;
  mip->set_on_registration_reply([&](bool ok) { reply_seen = ok; });
  register_via_fa();
  EXPECT_TRUE(reply_seen);
  EXPECT_EQ(fa->requests_relayed(), 1u);
  EXPECT_EQ(fa->replies_relayed(), 1u);
  ASSERT_NE(fa->visitor(mh.id()), nullptr);
  EXPECT_TRUE(fa->visitor(mh.id())->registered);
  EXPECT_EQ(fa->visitor(mh.id())->home_agent, ha->address());
  // The HA's binding points at the FA care-of address (FA-CoA mode).
  EXPECT_EQ(ha->bindings().lookup(home_addr(), sim.now()), fa->address());
}

TEST_F(FaFixture, TunneledTrafficIsDecapsulatedAndDelivered) {
  register_via_fa();
  int got = 0;
  mh.register_port(7, [&](PacketPtr p) {
    ++got;
    EXPECT_EQ(p->dst, home_addr());
    EXPECT_FALSE(p->tunneled());
  });
  auto p = make_packet(sim, {10, 1}, home_addr(), 160);
  p->dst_port = 7;
  p->flow = 1;
  sim.stats().record_sent(1);
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(ha->packets_tunneled(), 1u);
  EXPECT_EQ(fa->packets_delivered(), 1u);
}

TEST_F(FaFixture, DeregistrationRemovesVisitor) {
  register_via_fa();
  register_via_fa(SimTime{});  // lifetime zero
  EXPECT_EQ(fa->visitor(mh.id()), nullptr);
  EXPECT_EQ(fa->visitor_count(), 0u);
  auto p = make_packet(sim, {10, 1}, home_addr(), 160);
  p->flow = 2;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(2).delivered, 0u);
}

TEST_F(FaFixture, ExpiredVisitorsArePurged) {
  register_via_fa(2_s);
  EXPECT_EQ(fa->visitor_count(), 1u);
  sim.scheduler().run_until(10_s);
  fa->purge_expired();
  EXPECT_EQ(fa->visitor_count(), 0u);
}

TEST_F(FaFixture, UnregisteredVisitorTrafficDropsAtFa) {
  // The HA tunnels (stale binding) but the FA has no visitor entry.
  ha->bindings().update(home_addr(), fa->address(), sim.now(), 60_s);
  auto p = make_packet(sim, {10, 1}, home_addr(), 160);
  p->flow = 3;
  cn.send(std::move(p));
  sim.run();
  // Without a host route the packet bounces between subnets until TTL
  // death or drops unattached at the FA; either way it never arrives.
  EXPECT_EQ(sim.stats().flow(3).delivered, 0u);
}

}  // namespace
}  // namespace fhmip
