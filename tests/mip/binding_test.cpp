#include "mip/binding.hpp"

#include <gtest/gtest.h>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(BindingCache, EmptyLookupFails) {
  BindingCache c;
  EXPECT_FALSE(c.lookup({1, 1}, 0_s).has_value());
}

TEST(BindingCache, UpdateAndLookup) {
  BindingCache c;
  c.update({30, 7}, {40, 7}, 0_s, 60_s);
  auto coa = c.lookup({30, 7}, 1_s);
  ASSERT_TRUE(coa.has_value());
  EXPECT_EQ(*coa, (Address{40, 7}));
}

TEST(BindingCache, UpdateReplacesCoa) {
  BindingCache c;
  c.update({30, 7}, {40, 7}, 0_s, 60_s);
  c.update({30, 7}, {50, 7}, 1_s, 60_s);
  EXPECT_EQ(c.lookup({30, 7}, 2_s), (Address{50, 7}));
  EXPECT_EQ(c.size(), 1u);
}

TEST(BindingCache, ExpiryIsLazy) {
  BindingCache c;
  c.update({30, 7}, {40, 7}, 0_s, 10_s);
  EXPECT_TRUE(c.lookup({30, 7}, SimTime::from_millis(9'999)).has_value());
  EXPECT_FALSE(c.lookup({30, 7}, 10_s).has_value());  // boundary exclusive
  EXPECT_FALSE(c.lookup({30, 7}, 11_s).has_value());
}

TEST(BindingCache, ZeroLifetimeDeregisters) {
  // §2.1.1 stage 4: a registration with lifetime zero cancels the binding.
  BindingCache c;
  c.update({30, 7}, {40, 7}, 0_s, 60_s);
  c.update({30, 7}, {40, 7}, 1_s, SimTime{});
  EXPECT_FALSE(c.lookup({30, 7}, 2_s).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(BindingCache, RemoveIsIdempotent) {
  BindingCache c;
  c.remove({30, 7});
  c.update({30, 7}, {40, 7}, 0_s, 60_s);
  c.remove({30, 7});
  c.remove({30, 7});
  EXPECT_EQ(c.size(), 0u);
}

TEST(BindingCache, PurgeExpiredSweeps) {
  BindingCache c;
  c.update({30, 1}, {40, 1}, 0_s, 10_s);
  c.update({30, 2}, {40, 2}, 0_s, 100_s);
  c.purge_expired(50_s);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.lookup({30, 2}, 50_s).has_value());
}

TEST(BindingCache, IndependentKeys) {
  BindingCache c;
  c.update({30, 1}, {40, 1}, 0_s, 60_s);
  c.update({30, 2}, {50, 2}, 0_s, 60_s);
  EXPECT_EQ(c.lookup({30, 1}, 1_s), (Address{40, 1}));
  EXPECT_EQ(c.lookup({30, 2}, 1_s), (Address{50, 2}));
}

}  // namespace
}  // namespace fhmip
