#include "mip/home_agent.hpp"

#include <gtest/gtest.h>

#include "mip/mobile_ip.hpp"
#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// cn --- ha (home) --- fa (foreign) --- visiting host.
struct HomeAgentFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& ha_node = net.add_node("ha");
  Node& fa = net.add_node("fa");
  Node& mh = net.add_node("mh");
  std::unique_ptr<HomeAgent> ha;

  Address home_addr() { return {60, mh.id()}; }
  Address coa() { return {70, mh.id()}; }

  HomeAgentFixture() {
    cn.add_address({10, 1});
    ha_node.add_address({60, 1});
    fa.add_address({70, 1});
    net.connect(cn, ha_node, 1e9, 1_ms);
    net.connect(ha_node, fa, 1e9, 1_ms);
    DuplexLink& w = net.connect(fa, mh, 1e9, 1_ms);
    net.compute_routes();
    fa.routes().set_prefix_route(70, Route::via(w.toward(mh)));
    mh.routes().set_default_route(Route::via(w.toward(fa)));
    mh.add_address(home_addr(), false);
    mh.add_address(coa(), false);
    ha = std::make_unique<HomeAgent>(ha_node);
  }

  void register_mh(SimTime lifetime = SimTime::seconds(60)) {
    MobileIpClient mip(mh, home_addr(), ha->address());
    mip.send_registration(ha->address(), ha->address(), home_addr(), coa(), lifetime);
    sim.run();
  }
};

TEST_F(HomeAgentFixture, DestroyedClientLeavesNoDanglingHandler) {
  // Regression: MobileIpClient registers a this-capturing control handler
  // on its node; destroying a scope-local client used to leave the handler
  // behind, and the next control packet hit freed stack memory
  // (stack-use-after-scope under ASan).
  register_mh();  // constructs and destroys a scope-local client
  MobileIpClient mip(mh, home_addr(), ha->address());
  bool accepted = false;
  mip.set_on_registration_reply([&](bool ok) { accepted = ok; });
  mip.send_registration(ha->address(), ha->address(), home_addr(), coa(),
                        60_s);
  sim.run();  // the reply must reach the live client only
  EXPECT_TRUE(accepted);
}

TEST_F(HomeAgentFixture, RegistrationCreatesBinding) {
  MobileIpClient mip(mh, home_addr(), ha->address());
  bool accepted = false;
  mip.set_on_registration_reply([&](bool ok) { accepted = ok; });
  mip.send_registration(ha->address(), ha->address(), home_addr(), coa(), 60_s);
  sim.run();
  EXPECT_TRUE(accepted);
  EXPECT_EQ(ha->registrations(), 1u);
  EXPECT_EQ(ha->bindings().lookup(home_addr(), sim.now()), coa());
}

TEST_F(HomeAgentFixture, InterceptsAndTunnelsToCoa) {
  register_mh();
  int got = 0;
  mh.register_port(7, [&](PacketPtr p) {
    ++got;
    EXPECT_EQ(p->dst, home_addr());
  });
  auto p = make_packet(sim, {10, 1}, home_addr(), 100);
  p->dst_port = 7;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(ha->packets_tunneled(), 1u);
}

TEST_F(HomeAgentFixture, UnregisteredHostUnreachable) {
  auto p = make_packet(sim, {10, 1}, home_addr(), 100);
  p->flow = 1;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(1).delivered, 0u);
}

TEST_F(HomeAgentFixture, DeregistrationStopsTunneling) {
  register_mh();
  MobileIpClient mip(mh, home_addr(), ha->address());
  mip.send_registration(ha->address(), ha->address(), home_addr(), coa(), SimTime{});
  sim.run();
  EXPECT_EQ(ha->deregistrations(), 1u);
  auto p = make_packet(sim, {10, 1}, home_addr(), 100);
  p->flow = 2;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(2).delivered, 0u);
}

TEST_F(HomeAgentFixture, RegistrationExpires) {
  register_mh(2_s);
  sim.scheduler().run_until(10_s);
  auto p = make_packet(sim, {10, 1}, home_addr(), 100);
  p->flow = 3;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(3).delivered, 0u);
}

TEST_F(HomeAgentFixture, HomeAgentOwnTrafficUnaffected) {
  int got = 0;
  ha_node.register_port(9, [&](PacketPtr) { ++got; });
  auto p = make_packet(sim, {10, 1}, {60, 1}, 50);
  p->dst_port = 9;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace fhmip
