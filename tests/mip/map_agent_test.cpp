#include "mip/map_agent.hpp"

#include <gtest/gtest.h>

#include "mip/mobile_ip.hpp"
#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// cn --- map --- ar --- mh-ish leaf (plays the attached mobile host).
struct MapFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& cn = net.add_node("cn");
  Node& map_node = net.add_node("map");
  Node& ar = net.add_node("ar");
  Node& mh = net.add_node("mh");
  std::unique_ptr<MapAgent> map;

  Address regional() { return {30, mh.id()}; }
  Address lcoa() { return {40, mh.id()}; }

  MapFixture() {
    cn.add_address({10, 1});
    map_node.add_address({30, 1});
    ar.add_address({40, 1});
    net.connect(cn, map_node, 1e9, 1_ms);
    DuplexLink& l = net.connect(map_node, ar, 1e9, 1_ms);
    DuplexLink& w = net.connect(ar, mh, 1e9, 1_ms);
    net.compute_routes();
    (void)l;
    // The AR forwards anything in its subnet down to the leaf.
    ar.routes().set_prefix_route(40, Route::via(w.toward(mh)));
    mh.routes().set_default_route(Route::via(w.toward(ar)));
    mh.add_address(regional(), false);
    mh.add_address(lcoa(), false);
    map = std::make_unique<MapAgent>(map_node);
  }
};

TEST_F(MapFixture, UnboundRegionalAddressDrops) {
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  p->flow = 1;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(1).drops_by_reason[static_cast<int>(
                DropReason::kNoRoute)],
            1u);
}

TEST_F(MapFixture, BindingUpdateEnablesTunneling) {
  MobileIpClient mip(mh, regional(), map->address());
  mip.send_binding_update(lcoa(), 60_s);
  sim.run();
  EXPECT_EQ(map->binding_updates(), 1u);
  EXPECT_EQ(mip.acks_received(), 1u);
  EXPECT_TRUE(mip.bound());

  int got = 0;
  mh.register_port(7, [&](PacketPtr p) {
    ++got;
    EXPECT_EQ(p->dst, regional());  // decapsulated back to the inner address
    EXPECT_FALSE(p->tunneled());
  });
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  p->dst_port = 7;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(map->packets_tunneled(), 1u);
}

TEST_F(MapFixture, RebindingMovesTraffic) {
  MobileIpClient mip(mh, regional(), map->address());
  mip.send_binding_update(lcoa(), 60_s);
  sim.run();
  // Re-bind to a different (unreachable) LCoA: traffic should now miss.
  mip.send_binding_update({50, mh.id()}, 60_s);
  sim.run();
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  p->flow = 2;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(2).delivered, 0u);
  EXPECT_EQ(map->bindings().lookup(regional(), sim.now()),
            (Address{50, mh.id()}));
}

TEST_F(MapFixture, MapAddressItselfStillReachable) {
  // The prefix interception must not swallow packets for the MAP itself.
  int got = 0;
  map_node.register_port(7, [&](PacketPtr) { ++got; });
  auto p = make_packet(sim, {10, 1}, {30, 1}, 100);
  p->dst_port = 7;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(MapFixture, BindingLifetimeExpires) {
  MobileIpClient mip(mh, regional(), map->address());
  mip.send_binding_update(lcoa(), 1_s);
  sim.run();
  sim.scheduler().run_until(5_s);
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  p->flow = 3;
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(3).delivered, 0u);
}

TEST_F(MapFixture, SimultaneousBindingBicasts) {
  MobileIpClient mip(mh, regional(), map->address());
  mip.send_binding_update(lcoa(), 60_s);
  sim.run();
  // Secondary binding to a second (unreachable here) care-of address.
  mip.send_simultaneous_binding({50, mh.id()}, 60_s);
  sim.run();
  int got = 0;
  mh.register_port(7, [&](PacketPtr) { ++got; });
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  p->dst_port = 7;
  p->flow = 1;
  sim.stats().record_sent(1);
  cn.send(std::move(p));
  sim.run();
  // Primary copy delivered; the bicast copy went toward net 50 (no route,
  // dropped) — one packet sent, two copies emitted by the MAP.
  EXPECT_EQ(got, 1);
  EXPECT_EQ(map->packets_bicast(), 1u);
  EXPECT_EQ(map->packets_tunneled(), 1u);
}

TEST_F(MapFixture, OrdinaryUpdateClearsSecondaryBinding) {
  MobileIpClient mip(mh, regional(), map->address());
  mip.send_binding_update(lcoa(), 60_s);
  mip.send_simultaneous_binding({50, mh.id()}, 60_s);
  sim.run();
  EXPECT_EQ(map->secondary_bindings().size(), 1u);
  mip.send_binding_update(lcoa(), 60_s);  // e.g. after attach completes
  sim.run();
  EXPECT_EQ(map->secondary_bindings().size(), 0u);
  auto p = make_packet(sim, {10, 1}, regional(), 100);
  cn.send(std::move(p));
  sim.run();
  EXPECT_EQ(map->packets_bicast(), 0u);
}

TEST_F(MapFixture, BindingAckCallback) {
  MobileIpClient mip(mh, regional(), map->address());
  int acks = 0;
  mip.set_on_binding_ack([&] { ++acks; });
  mip.send_binding_update(lcoa(), 60_s);
  sim.run();
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(mip.updates_sent(), 1u);
}

}  // namespace
}  // namespace fhmip
