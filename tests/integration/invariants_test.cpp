#include <gtest/gtest.h>

#include <tuple>

#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Property sweep: for every buffering mode, classification setting and
/// seed, a full handover run must satisfy the conservation and cleanliness
/// invariants below. This is the safety net for the redirect/buffer/drain
/// state machine.
struct Params {
  BufferMode mode;
  bool classify;
  std::uint64_t seed;
  std::uint32_t pool;
};

class HandoffInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(HandoffInvariants, ConservationAndCleanTeardown) {
  const Params param = GetParam();
  PaperTopologyConfig cfg;
  cfg.seed = param.seed;
  cfg.bounce = true;
  cfg.scheme.mode = param.mode;
  cfg.scheme.classify = param.classify;
  cfg.scheme.pool_pkts = param.pool;
  cfg.scheme.request_pkts = param.pool;
  PaperTopology topo(cfg);

  auto& m = topo.mobile(0);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[] = {TrafficClass::kRealTime,
                                  TrafficClass::kHighPriority,
                                  TrafficClass::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    const std::uint16_t port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
  }
  topo.start();

  Simulation& sim = topo.simulation();
  const SimTime leg = topo.leg_duration();
  // Three legs -> three handovers, then quiesce.
  for (auto& s : sources) s->stop(cfg.mobility_start + 3 * leg);
  sim.run_until(cfg.mobility_start + 3 * leg + 5_s);

  // Invariant 1: packet conservation per flow — every sent packet was
  // delivered or dropped with a recorded reason; nothing leaked.
  for (FlowId f = 1; f <= 3; ++f) {
    const FlowCounters& c = sim.stats().flow(f);
    EXPECT_GT(c.sent, 0u);
    EXPECT_EQ(c.sent, c.delivered + c.dropped)
        << "flow " << f << " mode " << to_string(param.mode);
  }

  // Invariant 2: all buffer leases returned to the pools.
  EXPECT_EQ(topo.par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo.nar_agent().buffers().leased(), 0u);

  // Invariant 3: contexts torn down.
  EXPECT_FALSE(topo.par_agent().has_par_context(m.node->id()));
  EXPECT_FALSE(topo.nar_agent().has_par_context(m.node->id()));

  // Invariant 4: with any buffering enabled, delivery strictly dominates
  // the no-buffer blackout floor (3 flows x ~20 packets x 3 handovers).
  if (param.mode != BufferMode::kNone && param.pool >= 20) {
    EXPECT_LT(sim.stats().totals().dropped, 180u);
  }

  // Invariant 5: every drained packet was previously buffered.
  const auto& par = topo.par_agent().counters();
  const auto& nar = topo.nar_agent().counters();
  EXPECT_LE(par.drained, par.buffered_local);
  EXPECT_LE(nar.drained, nar.buffered_local);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, HandoffInvariants,
    ::testing::Values(
        Params{BufferMode::kNone, false, 1, 20},
        Params{BufferMode::kNone, true, 2, 20},
        Params{BufferMode::kNarOnly, false, 1, 20},
        Params{BufferMode::kNarOnly, true, 3, 40},
        Params{BufferMode::kParOnly, false, 2, 20},
        Params{BufferMode::kParOnly, true, 1, 40},
        Params{BufferMode::kDual, false, 1, 20},
        Params{BufferMode::kDual, true, 1, 20},
        Params{BufferMode::kDual, true, 2, 40},
        Params{BufferMode::kDual, false, 3, 10},
        Params{BufferMode::kDual, true, 4, 10},
        Params{BufferMode::kDual, true, 5, 0}));

/// Sweep the L2 blackout across the measured 60-400 ms range ([13] in the
/// thesis): loss without buffering scales with the blackout; loss with the
/// proposed scheme stays near zero.
class BlackoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlackoutSweep, BufferingAbsorbsAnyBlackout) {
  const int blackout_ms = GetParam();
  for (const bool buffering : {false, true}) {
    PaperTopologyConfig cfg;
    cfg.wlan.l2_handoff_delay = SimTime::millis(blackout_ms);
    cfg.scheme.mode = buffering ? BufferMode::kDual : BufferMode::kNone;
    cfg.scheme.classify = false;
    cfg.scheme.pool_pkts = 60;
    cfg.scheme.request_pkts = 60;
    PaperTopology topo(cfg);
    auto& m = topo.mobile(0);
    UdpSink sink(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.interval = 10_ms;
    c.flow = 1;
    CbrSource src(topo.cn(), 5000, c);
    src.start(2_s);
    src.stop(16_s);
    topo.start();
    topo.simulation().run_until(20_s);
    const FlowCounters& fc = topo.simulation().stats().flow(1);
    if (buffering) {
      EXPECT_LE(fc.dropped, 1u) << blackout_ms << "ms";
    } else {
      // ~blackout/10ms packets die.
      EXPECT_GE(fc.dropped, static_cast<std::uint64_t>(blackout_ms / 10))
          << blackout_ms << "ms";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MeasuredRange, BlackoutSweep,
                         ::testing::Values(60, 100, 200, 300, 400));

/// Speed sweep: anticipation must hold from pedestrian to vehicular speeds
/// (the 12 m overlap at 10 m/s gives >= 1 s of warning; faster movers have
/// less).
class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, HandoverCompletesAtAnySpeed) {
  PaperTopologyConfig cfg;
  cfg.speed_mps = GetParam();
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  cfg.scheme.classify = false;
  PaperTopology topo(cfg);
  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(1_s);
  const SimTime crossing =
      SimTime::from_seconds(220.0 / GetParam()) + SimTime::seconds(2);
  src.stop(crossing);
  topo.start();
  topo.simulation().run_until(crossing + 5_s);
  EXPECT_EQ(m.agent->counters().handoffs, 1u) << GetParam();
  const FlowCounters& fc = topo.simulation().stats().flow(1);
  EXPECT_EQ(fc.sent, fc.delivered + fc.dropped);
  // The anticipated, buffered handover loses (almost) nothing even at
  // vehicular speed.
  EXPECT_LE(fc.dropped, 2u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Speeds, SpeedSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 15.0, 20.0));

}  // namespace
}  // namespace fhmip
