#include <gtest/gtest.h>

#include "scenario/corridor_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Multi-AR corridor roaming: every interior router plays NAR, then PAR.
struct CorridorFixture : ::testing::Test {
  CorridorConfig cfg;
  std::unique_ptr<CorridorTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build(TrafficClass cls = TrafficClass::kHighPriority) {
    topo = std::make_unique<CorridorTopology>(cfg);
    sink = std::make_unique<UdpSink>(topo->mh(), 7000);
    CbrSource::Config c;
    c.dst = topo->mh_regional();
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.tclass = cls;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
  }

  void run_walk() {
    const SimTime end = cfg.mobility_start + topo->walk_duration() + 5_s;
    source->stop(end - 2_s);
    topo->start();
    topo->simulation().run_until(end);
  }
};

TEST_F(CorridorFixture, WalksThroughAllCellsWithoutLoss) {
  cfg.num_ars = 4;
  build();
  run_walk();
  const auto& mh = topo->mh_agent().counters();
  EXPECT_EQ(mh.handoffs, 3u);  // AR1->AR2->AR3->AR4
  EXPECT_EQ(mh.non_anticipated, 0u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.sent, c.delivered);
}

TEST_F(CorridorFixture, EveryInteriorRouterPlaysBothRoles) {
  cfg.num_ars = 4;
  build();
  run_walk();
  for (std::size_t i = 1; i + 1 < topo->num_ars(); ++i) {
    const auto& counters = topo->ar_agent(i).counters();
    EXPECT_EQ(counters.hi_received, 1u) << "ar" << i;  // was a NAR once
    EXPECT_EQ(counters.hi_sent, 1u) << "ar" << i;      // was a PAR once
    EXPECT_EQ(counters.fna, 1u) << "ar" << i;
    EXPECT_EQ(counters.bf_received, 1u) << "ar" << i;
  }
  // Endpoints play exactly one role.
  EXPECT_EQ(topo->ar_agent(0).counters().hi_sent, 1u);
  EXPECT_EQ(topo->ar_agent(0).counters().hi_received, 0u);
  EXPECT_EQ(topo->ar_agent(topo->num_ars() - 1).counters().hi_received, 1u);
}

TEST_F(CorridorFixture, BindingFollowsTheWalk) {
  cfg.num_ars = 3;
  build();
  run_walk();
  // Initial attach + one update per handover.
  EXPECT_EQ(topo->mip().updates_sent(), 3u);
  EXPECT_EQ(topo->mip().acks_received(), 3u);
  const auto binding = topo->map_agent().bindings().lookup(
      topo->mh_regional(), topo->simulation().now());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->net, topo->ar(2).address().net);  // parked at the end
}

TEST_F(CorridorFixture, AllLeasesReturnedAfterTheWalk) {
  cfg.num_ars = 5;
  build();
  run_walk();
  for (std::size_t i = 0; i < topo->num_ars(); ++i) {
    EXPECT_EQ(topo->ar_agent(i).buffers().leased(), 0u) << "ar" << i;
  }
}

TEST_F(CorridorFixture, LongCorridorKeepsConservation) {
  cfg.num_ars = 8;
  cfg.scheme.classify = false;
  build(TrafficClass::kUnspecified);
  run_walk();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(topo->mh_agent().counters().handoffs, 7u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_EQ(c.dropped, 0u);
}

TEST_F(CorridorFixture, NoBuffersLosePerHandover) {
  cfg.num_ars = 4;
  cfg.scheme.mode = BufferMode::kNone;
  build();
  run_walk();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // ~20 packets per 200 ms blackout, three blackouts.
  EXPECT_GE(c.dropped, 55u);
  EXPECT_LE(c.dropped, 70u);
}

}  // namespace
}  // namespace fhmip
