#include <gtest/gtest.h>

#include "stats/handover_outcomes.hpp"
#include "stats/recorder.hpp"
#include "stats/table.hpp"

namespace fhmip {
namespace {

TEST(Series, CollectsPointsAndExtremes) {
  Series s("F1");
  EXPECT_TRUE(s.empty());
  s.add(1, 10);
  s.add(2, 30);
  s.add(3, 20);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.max_y(), 30);
  EXPECT_DOUBLE_EQ(s.min_y(), 10);
  EXPECT_DOUBLE_EQ(s.last_y(), 20);
  EXPECT_EQ(s.name(), "F1");
}

TEST(Series, EmptyExtremesAreZero) {
  Series s("x");
  EXPECT_DOUBLE_EQ(s.max_y(), 0);
  EXPECT_DOUBLE_EQ(s.min_y(), 0);
  EXPECT_DOUBLE_EQ(s.last_y(), 0);
}

TEST(BinThroughput, BinsBytesIntoMbps) {
  // 125'000 bytes in one 1-second bin = 1 Mbit/s.
  std::vector<std::pair<double, std::uint64_t>> arrivals{
      {0.2, 62'500}, {0.7, 62'500}, {1.5, 125'000}};
  const Series s = bin_throughput("thr", arrivals, 1.0, 0.0, 2.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[0].first, 0.5);   // bin midpoint
  EXPECT_DOUBLE_EQ(s.points()[0].second, 1.0);  // Mbit/s
  EXPECT_DOUBLE_EQ(s.points()[1].second, 1.0);
}

TEST(BinThroughput, IgnoresOutOfRangeArrivals) {
  std::vector<std::pair<double, std::uint64_t>> arrivals{
      {-1.0, 999'999}, {5.0, 999'999}, {0.5, 125'000}};
  const Series s = bin_throughput("thr", arrivals, 1.0, 0.0, 1.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.points()[0].second, 1.0);
}

TEST(BinThroughput, DegenerateInputsYieldEmpty) {
  EXPECT_TRUE(bin_throughput("x", {}, 0.0, 0.0, 1.0).empty());
  EXPECT_TRUE(bin_throughput("x", {}, 1.0, 2.0, 1.0).empty());
}

TEST(BinThroughput, EmptyBinsAreZero) {
  std::vector<std::pair<double, std::uint64_t>> arrivals{{0.5, 125'000}};
  const Series s = bin_throughput("thr", arrivals, 1.0, 0.0, 3.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.points()[1].second, 0.0);
  EXPECT_DOUBLE_EQ(s.points()[2].second, 0.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 95), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1);
}

TEST(Percentile, UnsortedInputAndEmpty) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 50), 3);
  EXPECT_DOUBLE_EQ(percentile({42}, 99), 42);
}

TEST(DelaySummary, OrderStatistics) {
  std::vector<DeliverySample> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back({SimTime::seconds(i), static_cast<std::uint32_t>(i),
                       SimTime::millis(i)});
  }
  const DelaySummary s = summarize_delays(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 0.0505, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.p50, 0.050);
  EXPECT_DOUBLE_EQ(s.p95, 0.095);
  EXPECT_DOUBLE_EQ(s.p99, 0.099);
  EXPECT_DOUBLE_EQ(s.max, 0.100);
}

TEST(DelaySummary, EmptyInput) {
  const DelaySummary s = summarize_delays({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.jitter, 0);
}

TEST(DelaySummary, JitterIsMeanConsecutiveDeviation) {
  // Delays alternate 10 ms / 20 ms: every consecutive difference is 10 ms.
  std::vector<DeliverySample> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({SimTime::seconds(i), static_cast<std::uint32_t>(i),
                       SimTime::millis(i % 2 == 0 ? 10 : 20)});
  }
  EXPECT_NEAR(summarize_delays(samples).jitter, 0.010, 1e-12);
}

TEST(DelaySummary, ConstantDelayHasZeroJitter) {
  std::vector<DeliverySample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back({SimTime::seconds(i), static_cast<std::uint32_t>(i),
                       SimTime::millis(15)});
  }
  EXPECT_DOUBLE_EQ(summarize_delays(samples).jitter, 0);
  EXPECT_DOUBLE_EQ(summarize_delays(samples).p50, 0.015);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(HandoverOutcomes, CountsAndFormatsPerCause) {
  HandoverOutcomeRecorder rec;
  rec.record(1, SimTime::seconds(1), HandoverOutcome::kPredictive,
             HandoverCause::kNone);
  rec.record(1, SimTime::seconds(2), HandoverOutcome::kReactive,
             HandoverCause::kNotAnticipated);
  rec.record(2, SimTime::seconds(3), HandoverOutcome::kReactive,
             HandoverCause::kNoPrRtAdv);
  rec.record(2, SimTime::seconds(4), HandoverOutcome::kFailed,
             HandoverCause::kNoFback);
  EXPECT_EQ(rec.attempts(), 4u);
  EXPECT_EQ(rec.completed(), 3u);
  EXPECT_EQ(rec.count(HandoverOutcome::kReactive), 2u);
  EXPECT_EQ(rec.count(HandoverCause::kNoPrRtAdv), 1u);
  EXPECT_DOUBLE_EQ(rec.success_rate(), 0.75);
  const std::string table = rec.format_table("outcomes");
  EXPECT_NE(table.find("predictive"), std::string::npos);
  EXPECT_NE(table.find("cause/not-anticipated"), std::string::npos);
  EXPECT_NE(table.find("cause/no-fback"), std::string::npos);
  EXPECT_NE(table.find("75.00%"), std::string::npos);
  rec.reset();
  EXPECT_EQ(rec.attempts(), 0u);
  EXPECT_DOUBLE_EQ(rec.success_rate(), 1.0);
}

}  // namespace
}  // namespace fhmip
