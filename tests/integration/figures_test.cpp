#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace fhmip {
namespace {

/// Shape assertions for every evaluation claim the benches reproduce. These
/// use smaller run lengths than the benches; the claims are qualitative.

TEST(Fig42Shape, NoBufferLosesEveryBlackoutPacket) {
  SimultaneousHandoffParams p;
  p.mode = BufferMode::kNone;
  p.num_mhs = 4;
  const auto r = run_simultaneous_handoffs(p);
  EXPECT_EQ(r.handoffs, 4u);
  // ~10-11 packets per host per 200 ms blackout.
  EXPECT_GE(r.total_dropped, 40u);
  EXPECT_LE(r.total_dropped, 48u);
}

TEST(Fig42Shape, SingleBufferServesPoolOverRequestHosts) {
  SimultaneousHandoffParams p;
  p.mode = BufferMode::kNarOnly;
  p.pool_pkts = 36;
  p.request_pkts = 12;
  p.num_mhs = 3;
  EXPECT_LE(run_simultaneous_handoffs(p).total_dropped, 1u);
  p.num_mhs = 5;
  // Two hosts beyond capacity lose their blackout packets.
  EXPECT_GE(run_simultaneous_handoffs(p).total_dropped, 18u);
}

TEST(Fig42Shape, DualDoublesServableHandoffs) {
  SimultaneousHandoffParams p;
  p.pool_pkts = 36;
  p.request_pkts = 12;
  p.num_mhs = 6;  // 2x the single-buffer capacity of 3
  p.mode = BufferMode::kDual;
  const auto dual = run_simultaneous_handoffs(p);
  EXPECT_LE(dual.total_dropped, 2u);
  p.mode = BufferMode::kNarOnly;
  const auto single = run_simultaneous_handoffs(p);
  EXPECT_GE(single.total_dropped, 30u);  // 3 of 6 hosts unserved
}

TEST(Fig42Shape, ParOnlyMatchesNarOnly) {
  SimultaneousHandoffParams p;
  p.pool_pkts = 36;
  p.request_pkts = 12;
  p.num_mhs = 5;
  p.mode = BufferMode::kNarOnly;
  const auto nar = run_simultaneous_handoffs(p);
  p.mode = BufferMode::kParOnly;
  const auto par = run_simultaneous_handoffs(p);
  EXPECT_NEAR(static_cast<double>(nar.total_dropped),
              static_cast<double>(par.total_dropped), 4.0);
}

TEST(Fig43to45Shape, EqualDropsWithoutClassification) {
  QosDropParams q;
  q.classify = false;
  q.handoffs = 6;
  const auto r = run_qos_drop_experiment(q);
  ASSERT_EQ(r.flows.size(), 3u);
  const double f1 = static_cast<double>(r.flows[0].dropped);
  const double f2 = static_cast<double>(r.flows[1].dropped);
  const double f3 = static_cast<double>(r.flows[2].dropped);
  EXPECT_GT(f1, 0);
  // Tail-drop hits all classes alike (Figure 4.4).
  EXPECT_NEAR(f2, f1, f1 * 0.35 + 3);
  EXPECT_NEAR(f3, f1, f1 * 0.35 + 3);
}

TEST(Fig43to45Shape, ClassificationProtectsHighPriority) {
  QosDropParams q;
  q.handoffs = 6;
  q.classify = true;
  const auto cls = run_qos_drop_experiment(q);
  q.classify = false;
  const auto plain = run_qos_drop_experiment(q);
  // Figure 4.5: F2 (high priority) drops far less than both other flows
  // and far less than its unclassified self.
  EXPECT_LT(cls.flows[1].dropped, cls.flows[0].dropped / 2);
  EXPECT_LT(cls.flows[1].dropped, cls.flows[2].dropped / 2 + 1);
  EXPECT_LT(cls.flows[1].dropped, plain.flows[1].dropped);
  // "The QoS function does not result in additional packet drops": totals
  // stay in the same ballpark.
  const auto total = [](const QosDropResult& r) {
    return r.flows[0].dropped + r.flows[1].dropped + r.flows[2].dropped;
  };
  EXPECT_NEAR(static_cast<double>(total(cls)),
              static_cast<double>(total(plain)),
              static_cast<double>(total(plain)) * 0.25);
}

TEST(Fig43to45Shape, CumulativeDropSeriesAreMonotone) {
  QosDropParams q;
  q.handoffs = 5;
  const auto r = run_qos_drop_experiment(q);
  for (const Series& s : r.per_flow_drops) {
    ASSERT_EQ(s.size(), 5u);
    for (std::size_t i = 1; i < s.points().size(); ++i) {
      EXPECT_GE(s.points()[i].second, s.points()[i - 1].second);
    }
  }
}

TEST(Fig46Shape, HighPriorityAlwaysLowestAcrossRates) {
  QosDropParams base;
  for (double kbps : {128.0, 256.0, 426.7}) {
    const auto flows = run_rate_probe(base, kbps);
    ASSERT_EQ(flows.size(), 3u);
    EXPECT_LE(flows[1].dropped, flows[0].dropped) << kbps;
    EXPECT_LE(flows[1].dropped, flows[2].dropped) << kbps;
  }
}

TEST(Fig46Shape, DropsGrowWithRate) {
  QosDropParams base;
  const auto slow = run_rate_probe(base, 64);
  const auto fast = run_rate_probe(base, 426.7);
  const auto total = [](const std::vector<FlowOutcome>& v) {
    std::uint64_t t = 0;
    for (const auto& f : v) t += f.dropped;
    return t;
  };
  EXPECT_GT(total(fast), total(slow));
}

TEST(Fig47to410Shape, BufferedPacketsShowDelayRampAndRecovery) {
  DelayCaptureParams p;
  p.classify = false;
  p.mode = BufferMode::kNarOnly;
  p.pool_pkts = 40;
  p.request_pkts = 40;
  const auto r = run_delay_capture(p);
  const auto series = delay_series(r);
  ASSERT_EQ(series.size(), 3u);
  for (const Series& s : series) {
    EXPECT_GT(s.max_y(), 0.15);   // blackout-length queueing delay
    EXPECT_LT(s.min_y(), 0.02);   // steady state on either side
  }
}

TEST(Fig47to410Shape, RealTimeDelayLowestWithClassification) {
  DelayCaptureParams p;
  p.classify = true;
  const auto series = delay_series(run_delay_capture(p));
  // Figure 4.9 discussion: the NAR-buffered real-time flow avoids both the
  // forwarding delay and most of the queueing delay.
  EXPECT_LT(series[0].max_y(), series[1].max_y());
  EXPECT_LT(series[0].max_y(), series[2].max_y());
}

TEST(Fig47to410Shape, SlowInterArLinkInflatesBestEffortDelay) {
  DelayCaptureParams p;
  p.classify = true;
  p.par_nar_delay = SimTime::millis(2);
  const auto fast_link = delay_series(run_delay_capture(p));
  p.par_nar_delay = SimTime::millis(50);
  const auto slow_link = delay_series(run_delay_capture(p));
  // Figure 4.10: +~2x48 ms on the PAR-buffered best-effort flow.
  EXPECT_GT(slow_link[2].max_y(), fast_link[2].max_y() + 0.05);
  // Real-time (NAR-buffered) barely moves.
  EXPECT_LT(slow_link[0].max_y(), fast_link[0].max_y() + 0.06);
}

TEST(Fig412to414Shape, UnbufferedHandoffForcesTimeout) {
  TcpHandoffParams p;
  p.buffering = false;
  const auto r = run_tcp_handoff(p);
  EXPECT_GE(r.timeouts, 1);
  // Dead air: nothing received between the blackout and the RTO (>= 1 s
  // minimum, tick-aligned -> resume no earlier than ~12.5 s).
  EXPECT_GT(max_receiver_gap(r, 11.0, 14.0), SimTime::seconds(1));
}

TEST(Fig412to414Shape, BufferedHandoffAvoidsTimeoutAndLoss) {
  TcpHandoffParams p;
  p.buffering = true;
  const auto r = run_tcp_handoff(p);
  EXPECT_EQ(r.timeouts, 0);
  EXPECT_EQ(r.fast_retransmits, 0);
  // Transfer resumes right after the 200 ms blackout.
  EXPECT_LT(max_receiver_gap(r, 11.0, 14.0), SimTime::millis(400));
}

TEST(Fig412to414Shape, BufferingImprovesGoodput) {
  TcpHandoffParams p;
  p.buffering = true;
  const auto with_buffer = run_tcp_handoff(p);
  p.buffering = false;
  const auto without = run_tcp_handoff(p);
  EXPECT_GT(with_buffer.bytes_acked, without.bytes_acked);
}

TEST(Fig412to414Shape, ThroughputDipsOnlyWithoutBuffering) {
  TcpHandoffParams p;
  p.buffering = false;
  const auto r = run_tcp_handoff(p);
  const Series thr = tcp_throughput_series(r, "no-buffer", 11.0, 14.0);
  // At least one bin around the handoff collapses to (near) zero.
  EXPECT_LT(thr.min_y(), 0.5);
  EXPECT_GT(thr.max_y(), 5.0);
}

}  // namespace
}  // namespace fhmip
