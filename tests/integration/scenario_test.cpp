#include <gtest/gtest.h>

#include "scenario/paper_topology.hpp"
#include "scenario/wlan_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(PaperTopology, BuildsFigure41Network) {
  PaperTopologyConfig cfg;
  PaperTopology topo(cfg);
  EXPECT_EQ(topo.network().num_nodes(), 6u);  // cn gw map par nar + 1 mh
  EXPECT_EQ(topo.network().num_links(), 5u);
  EXPECT_EQ(topo.cn().address(), (Address{nets::kCn, 1}));
  EXPECT_EQ(topo.par().address(), (Address{nets::kPar, 1}));
  EXPECT_EQ(topo.nar().address(), (Address{nets::kNar, 1}));
  EXPECT_EQ(topo.leg_duration(), SimTime::from_seconds(21.2));
}

TEST(PaperTopology, GeometryMatchesSection41) {
  PaperTopologyConfig cfg;
  PaperTopology topo(cfg);
  // 212 m apart, 112 m radius -> 12 m overlap.
  EXPECT_DOUBLE_EQ(distance(topo.ap_par().position(),
                            topo.ap_nar().position()),
                   212.0);
  EXPECT_DOUBLE_EQ(topo.ap_par().radius(), 112.0);
  const double overlap = 2 * 112.0 - 212.0;
  EXPECT_DOUBLE_EQ(overlap, 12.0);
}

TEST(PaperTopology, InitialAttachAndRegistration) {
  PaperTopologyConfig cfg;
  PaperTopology topo(cfg);
  topo.start();
  topo.simulation().run_until(1_s);
  auto& m = topo.mobile(0);
  EXPECT_EQ(topo.wlan().attached_ap(m.node->id()), topo.ap_par().id());
  EXPECT_TRUE(m.mip->bound());
  EXPECT_EQ(m.agent->pcoa(), make_coa(nets::kPar, m.node->id()));
}

TEST(PaperTopology, CnReachesMobileHostViaMap) {
  PaperTopologyConfig cfg;
  PaperTopology topo(cfg);
  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.interval = 20_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(1_s);
  src.stop(2_s);
  topo.start();
  topo.simulation().run_until(3_s);
  EXPECT_EQ(sink.packets_received(), 50u);
  EXPECT_GT(topo.map_agent().packets_tunneled(), 0u);
}

TEST(PaperTopology, EndToEndBaselineDelay) {
  // Wired path 5+2+2 ms + 1 ms wireless plus serialization: ~10-12 ms.
  PaperTopologyConfig cfg;
  PaperTopology topo(cfg);
  topo.simulation().stats().set_keep_samples(true);
  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.interval = 20_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(1_s);
  src.stop(2_s);
  topo.start();
  topo.simulation().run_until(3_s);
  const auto& samples = topo.simulation().stats().samples(1);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_GT(s.delay, 9_ms);
    EXPECT_LT(s.delay, 15_ms);
  }
}

TEST(PaperTopology, MultipleMobileHostsCoexist) {
  PaperTopologyConfig cfg;
  cfg.num_mhs = 5;
  PaperTopology topo(cfg);
  topo.start();
  topo.simulation().run_until(1_s);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(topo.wlan().attached_ap(topo.mobile(i).node->id()),
              topo.ap_par().id());
    EXPECT_TRUE(topo.mobile(i).mip->bound());
  }
}

TEST(WlanTopology, BuildsFigure411Network) {
  WlanTopologyConfig cfg;
  WlanTopology topo(cfg);
  topo.start();
  topo.simulation().run_until(1_s);
  EXPECT_EQ(topo.wlan().attached_ap(topo.mh().id()), topo.ap1().id());
  EXPECT_EQ(topo.ap1().ar_node().id(), topo.ar().id());
  EXPECT_EQ(topo.ap2().ar_node().id(), topo.ar().id());
}

TEST(WlanTopology, CnReachesMhDirectly) {
  WlanTopologyConfig cfg;
  WlanTopology topo(cfg);
  UdpSink sink(topo.mh(), 7000);
  CbrSource::Config c;
  c.dst = topo.mh_coa();
  c.dst_port = 7000;
  c.interval = 20_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(1_s);
  src.stop(2_s);
  topo.start();
  topo.simulation().run_until(3_s);
  EXPECT_EQ(sink.packets_received(), 50u);
}

TEST(WlanTopology, AlternatingForcedHandoffs) {
  WlanTopologyConfig cfg;
  cfg.scheme.lifetime = 30_s;
  WlanTopology topo(cfg);
  topo.start();
  topo.schedule_handoff(2_s);
  topo.schedule_handoff(4_s);
  topo.simulation().run_until(5_s);
  // Two alternating switches end on ap1 again.
  EXPECT_EQ(topo.wlan().attached_ap(topo.mh().id()), topo.ap1().id());
  EXPECT_EQ(topo.wlan().handoffs_started(), 2u);
}

}  // namespace
}  // namespace fhmip
