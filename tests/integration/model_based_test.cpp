#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>

#include "buffer/handoff_buffer.hpp"
#include "net/routing.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Model-based randomized tests: each subject is driven with a random
/// operation sequence and compared step-by-step against a trivially
/// correct reference model.

// ---------------------------------------------------------------------------
// Scheduler vs. a sorted-list reference
// ---------------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, MatchesSortedReference) {
  Rng rng(GetParam());
  Scheduler s;
  // Reference: (time, id) pairs expected to fire, kept sorted like the
  // scheduler's contract demands.
  std::vector<std::pair<std::int64_t, int>> expected;
  std::vector<std::pair<std::int64_t, int>> fired;
  std::map<int, EventId> live;
  int next_tag = 0;

  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.7) {
      const std::int64_t at = rng.uniform_int(0, 1'000'000);
      const int tag = next_tag++;
      live[tag] = s.schedule_at(SimTime::micros(at), [&fired, at, tag] {
        fired.push_back({at, tag});
      });
      expected.push_back({at, tag});
    } else if (!live.empty()) {
      // Cancel a random live event.
      auto it = live.begin();
      std::advance(it, rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      s.cancel(it->second);
      std::erase_if(expected,
                    [&](const auto& pr) { return pr.second == it->first; });
      live.erase(it);
    }
  }
  s.run();
  // The scheduler fires by (time, insertion order); insertion order within
  // a timestamp equals tag order here because ids are monotonic.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second < b.second;
                   });
  EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// HandoffBuffer vs. a deque reference
// ---------------------------------------------------------------------------

class BufferFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferFuzz, MatchesDequeReference) {
  Rng rng(GetParam());
  Simulation sim;
  const std::uint32_t cap = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  HandoffBuffer buf(cap);
  // Reference model: (seq, is_realtime).
  std::deque<std::pair<std::uint32_t, bool>> model;
  std::uint32_t next_seq = 0;

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.55) {
      // Push (20% of pushes use the real-time evicting variant).
      const bool rt = rng.chance(0.4);
      auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
      p->seq = next_seq++;
      p->tclass = rt ? TrafficClass::kRealTime : TrafficClass::kBestEffort;
      if (rt && rng.chance(0.5)) {
        PacketPtr evicted;
        const auto res = buf.push_evict_oldest_realtime(p, evicted);
        // Model the same semantics.
        if (model.size() < cap) {
          ASSERT_EQ(res, HandoffBuffer::PushResult::kStored);
          model.push_back({p == nullptr ? next_seq - 1 : p->seq, true});
        } else {
          auto it = std::find_if(model.begin(), model.end(),
                                 [](const auto& e) { return e.second; });
          if (it == model.end()) {
            ASSERT_EQ(res, HandoffBuffer::PushResult::kRejected);
          } else {
            ASSERT_EQ(res, HandoffBuffer::PushResult::kStoredEvicting);
            ASSERT_NE(evicted, nullptr);
            ASSERT_EQ(evicted->seq, it->first);
            model.erase(it);
            model.push_back({next_seq - 1, true});
          }
        }
      } else {
        const auto res = buf.push(p);
        if (model.size() < cap) {
          ASSERT_EQ(res, HandoffBuffer::PushResult::kStored);
          model.push_back({next_seq - 1, rt});
        } else {
          ASSERT_EQ(res, HandoffBuffer::PushResult::kRejected);
        }
      }
    } else {
      PacketPtr p = buf.pop();
      if (model.empty()) {
        ASSERT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->seq, model.front().first);
        model.pop_front();
      }
    }
    ASSERT_EQ(buf.size(), model.size());
    ASSERT_EQ(buf.full(), model.size() >= cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferFuzz,
                         ::testing::Values(7, 11, 19, 23, 31, 41));

// ---------------------------------------------------------------------------
// RoutingTable vs. a map reference
// ---------------------------------------------------------------------------

class RoutingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingFuzz, MatchesMapReference) {
  Rng rng(GetParam());
  RoutingTable table;
  std::map<std::uint64_t, int> host_model;   // addr key -> tag
  std::map<std::uint32_t, int> prefix_model;  // net -> tag
  int captured = -1;
  auto handler_for = [&captured](int tag) {
    return Route::to([&captured, tag](PacketPtr) { captured = tag; });
  };
  int next_tag = 0;

  for (int op = 0; op < 2000; ++op) {
    const Address addr{static_cast<std::uint32_t>(rng.uniform_int(1, 8)),
                       static_cast<std::uint32_t>(rng.uniform_int(0, 8))};
    const double dice = rng.uniform();
    if (dice < 0.3) {
      table.set_host_route(addr, handler_for(next_tag));
      host_model[addr.key()] = next_tag++;
    } else if (dice < 0.5) {
      table.set_prefix_route(addr.net, handler_for(next_tag));
      prefix_model[addr.net] = next_tag++;
    } else if (dice < 0.6) {
      table.remove_host_route(addr);
      host_model.erase(addr.key());
    } else {
      // Lookup and compare against the reference resolution order.
      const Route* r = table.lookup(addr);
      int expected = -1;
      if (auto it = host_model.find(addr.key()); it != host_model.end()) {
        expected = it->second;
      } else if (auto it2 = prefix_model.find(addr.net);
                 it2 != prefix_model.end()) {
        expected = it2->second;
      }
      if (expected == -1) {
        ASSERT_EQ(r, nullptr);
      } else {
        ASSERT_NE(r, nullptr);
        captured = -1;
        Simulation sim;
        r->handler(make_packet(sim, {1, 1}, addr, 10));
        ASSERT_EQ(captured, expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingFuzz, ::testing::Values(3, 9, 27, 81));

}  // namespace
}  // namespace fhmip
