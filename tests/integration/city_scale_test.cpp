// City-scale scenario tests: a 200-host population roaming a 4x4 AR field
// under seeded link loss must keep every ledger book balanced — packet
// conservation per flow (checked at every handover boundary, not just at
// the end), every attempt resolved, and zero buffer leases surviving
// quiesce. Companion population-model tests pin the determinism properties
// the scenario relies on (seed-stable draws, walks frozen at the horizon).

#include "scenario/city_topology.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/link_fault.hpp"
#include "scenario/population.hpp"
#include "sim/check.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Population, DrawsAreSeedDeterministic) {
  PopulationConfig cfg;
  const RoamBox box{{0, 0}, {1000, 800}};
  Rng a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 50; ++i) {
    const PopulationDraw da = draw_member(a, cfg, box);
    const PopulationDraw db = draw_member(b, cfg, box);
    const PopulationDraw dc = draw_member(c, cfg, box);
    EXPECT_EQ(da.spawn, db.spawn);
    EXPECT_EQ(da.speed_mps, db.speed_mps);
    EXPECT_EQ(da.active, db.active);
    EXPECT_EQ(da.tclass, db.tclass);
    EXPECT_GE(da.spawn.x, box.lo.x);
    EXPECT_LE(da.spawn.x, box.hi.x);
    differs |= da.spawn != dc.spawn;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical populations";
}

TEST(Population, WalksFreezeExactlyAtTheHorizon) {
  // The generator clips its final leg to the horizon: a host is still
  // moving just before it and parked exactly at (and forever after) it —
  // that bound is what lets city scenarios quiesce a fixed slack later.
  PopulationConfig cfg;
  cfg.horizon = 30_s;
  const RoamBox box{{0, 0}, {1000, 800}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const PopulationDraw d = draw_member(rng, cfg, box);
    const auto walk =
        make_random_waypoint_walk(rng, cfg, box, d.spawn, d.speed_mps);
    const Vec2 at_horizon = walk->position(cfg.horizon);
    EXPECT_GT(distance(walk->position(cfg.horizon - 100_ms), at_horizon), 0)
        << "seed " << seed << ": host already parked before the horizon";
    EXPECT_EQ(walk->position(cfg.horizon + 1_ms), at_horizon);
    EXPECT_EQ(walk->position(cfg.horizon + 100_s), at_horizon);
    EXPECT_GE(at_horizon.x, box.lo.x);
    EXPECT_LE(at_horizon.x, box.hi.x);
    EXPECT_GE(at_horizon.y, box.lo.y);
    EXPECT_LE(at_horizon.y, box.hi.y);
  }
}

TEST(CityScale, TwoHundredHostsUnderSeededLossConserveEverything) {
  const std::uint64_t audits_before = AuditHub::instance().violations();

  CityConfig cfg;
  cfg.seed = 7;
  cfg.ar_rows = cfg.ar_cols = 4;
  cfg.num_maps = 2;
  cfg.wlan.tick = 20_ms;
  cfg.watchdog = 2_s;
  cfg.scheme.classify = true;
  cfg.scheme.allow_partial_grant = true;
  cfg.scheme.quota_pkts = 2 * cfg.scheme.request_pkts;
  cfg.population.num_mhs = 200;
  cfg.population.speed_min_mps = 5;
  cfg.population.speed_max_mps = 20;
  cfg.population.active_fraction = 0.25;
  cfg.population.flow_kbps = 16;
  cfg.population.packet_bytes = 160;
  cfg.population.horizon = 10_s;
  cfg.population.traffic_start = 1_s;
  cfg.population.traffic_stop = 10_s;

  CityTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // Seeded Bernoulli loss on every third inter-AR link: the HI/HAck and
  // tunnel exchanges riding them now fail sporadically, mixing reactive
  // and failed outcomes in with the predictive ones.
  std::vector<std::unique_ptr<fault::LinkFaultInjector>> injectors;
  int idx = 0;
  for (DuplexLink* l : topo.ar_ar_links()) {
    if (++idx % 3 != 0) continue;
    for (SimplexLink* s : {&l->a_to_b(), &l->b_to_a()}) {
      injectors.push_back(
          std::make_unique<fault::LinkFaultInjector>(sim, *s));
      injectors.back()->bernoulli(0.05, 1000 + idx);
    }
  }
  ASSERT_FALSE(injectors.empty());

  // Ledger conservation is checked at EVERY handover boundary: whenever an
  // attempt resolves, no flow may have accounted more deliveries + drops
  // than packets sent (equality only holds at quiesce — packets are still
  // in flight mid-run).
  std::vector<FlowId> flows;
  for (std::size_t i = 0; i < topo.num_mobiles(); ++i) {
    if (topo.mobile(i).flow != 0) flows.push_back(topo.mobile(i).flow);
  }
  ASSERT_GE(flows.size(), 30u);
  std::uint64_t boundary_checks = 0;
  std::uint64_t boundary_violations = 0;
  sim.timeline().set_resolve_hook([&](const obs::HoAttempt&) {
    ++boundary_checks;
    for (FlowId f : flows) {
      const FlowCounters& fc = sim.stats().flow(f);
      if (fc.delivered + fc.dropped > fc.sent) ++boundary_violations;
    }
  });

  topo.start();
  sim.run_until(cfg.population.horizon + cfg.scheme.lifetime +
                cfg.scheme.lease_grace + 3_s);

  const HandoverOutcomeRecorder& rec = topo.outcomes();
  EXPECT_GT(rec.attempts(), 50u);
  EXPECT_GT(rec.completed(), 0u);
  // Loss + coverage gaps must have pushed some attempts off the clean
  // predictive path.
  EXPECT_GT(rec.count(HandoverOutcome::kReactive) +
                rec.count(HandoverOutcome::kFailed),
            0u);
  // Every attempt resolved: the watchdog forbids wedged choreographies.
  EXPECT_EQ(rec.attempts(),
            rec.completed() + rec.count(HandoverOutcome::kFailed));

  EXPECT_GT(boundary_checks, 0u);
  EXPECT_EQ(boundary_violations, 0u);

  // Final conservation is exact: every sent packet was delivered or
  // accounted dropped, for every flow.
  std::uint64_t sent = 0;
  for (FlowId f : flows) {
    const FlowCounters& fc = sim.stats().flow(f);
    EXPECT_EQ(fc.sent, fc.delivered + fc.dropped) << "flow " << f;
    sent += fc.sent;
  }
  EXPECT_GT(sent, 0u);

  // No buffer lease survives quiesce and no audit tripped along the way.
  EXPECT_EQ(topo.leased_total(), 0u);
  EXPECT_EQ(AuditHub::instance().violations(), audits_before);
}

TEST(CityScale, HexLayoutRunsAndResolvesAllAttempts) {
  CityConfig cfg;
  cfg.seed = 3;
  cfg.layout = CityConfig::Layout::kHex;
  cfg.ar_rows = 3;
  cfg.ar_cols = 3;
  cfg.wlan.tick = 20_ms;
  cfg.watchdog = 2_s;
  cfg.population.num_mhs = 40;
  cfg.population.speed_min_mps = 5;
  cfg.population.speed_max_mps = 20;
  cfg.population.active_fraction = 0.5;
  cfg.population.horizon = 8_s;
  cfg.population.traffic_stop = 8_s;

  CityTopology topo(cfg);
  topo.start();
  topo.simulation().run_until(cfg.population.horizon + cfg.scheme.lifetime +
                              cfg.scheme.lease_grace + 3_s);

  const HandoverOutcomeRecorder& rec = topo.outcomes();
  EXPECT_GT(rec.attempts(), 0u);
  EXPECT_EQ(rec.attempts(),
            rec.completed() + rec.count(HandoverOutcome::kFailed));
  EXPECT_EQ(topo.leased_total(), 0u);
}

}  // namespace
}  // namespace fhmip
