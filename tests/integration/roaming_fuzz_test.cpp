#include <gtest/gtest.h>

#include "fault/crash.hpp"
#include "fault/link_fault.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Seeded roaming fuzz: repeated bounce handovers with per-seed jittered
/// traffic phases. Whatever the packet timing relative to the blackouts,
/// the invariants must hold.
class RoamingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoamingFuzz, InvariantsUnderErraticMobility) {
  const std::uint64_t seed = GetParam();

  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  auto& m = topo.mobile(0);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    const auto port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.interval = 10_ms;
    c.jitter = SimTime::millis(static_cast<std::int64_t>(seed % 4));
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(40_s);
  }
  topo.start();
  sim.run_until(50_s);

  for (FlowId f = 1; f <= 3; ++f) {
    const FlowCounters& c = sim.stats().flow(f);
    EXPECT_EQ(c.sent, c.delivered + c.dropped) << "flow " << f;
  }
  EXPECT_EQ(topo.par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo.nar_agent().buffers().leased(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoamingFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

/// The same roaming workload with active fault injection: seeded Bernoulli
/// loss on both directions of the inter-AR control/tunnel link, a timed
/// outage of that link, and a NAR crash that wipes contexts and buffers
/// mid-run. Packet conservation and lease accounting must survive all of
/// it, and no handover attempt may stall unresolved.
class RoamingFaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoamingFaultFuzz, InvariantsUnderInjectedFaults) {
  const std::uint64_t seed = GetParam();

  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  fault::LinkFaultInjector fwd(sim, topo.par_nar_link().a_to_b());
  fault::LinkFaultInjector rev(sim, topo.par_nar_link().b_to_a());
  fwd.bernoulli(0.2, seed * 1001);
  rev.bernoulli(0.2, seed * 2003);
  // One two-second inter-AR outage, placed differently per seed.
  const SimTime outage = SimTime::seconds(5 + static_cast<double>(seed % 7));
  fwd.down_window(outage, outage + 2_s);
  rev.down_window(outage, outage + 2_s);
  fault::AgentCrashInjector crash(sim, topo.nar_agent());
  crash.crash_at(SimTime::seconds(12 + static_cast<double>(seed % 5)));

  auto& m = topo.mobile(0);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    const auto port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.interval = 10_ms;
    c.jitter = SimTime::millis(static_cast<std::int64_t>(seed % 4));
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(40_s);
  }
  topo.start();
  sim.run_until(50_s);

  for (FlowId f = 1; f <= 3; ++f) {
    const FlowCounters& c = sim.stats().flow(f);
    EXPECT_EQ(c.sent, c.delivered + c.dropped) << "flow " << f;
    EXPECT_GT(c.delivered, 0u) << "flow " << f;
  }
  EXPECT_EQ(topo.par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo.nar_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo.nar_agent().counters().crashes, 1u);
  // Every inter-AR attempt the recorder saw reached a verdict; under this
  // much injected damage individual attempts may legitimately fail, but
  // none may be left dangling once the run is over.
  EXPECT_GE(topo.outcomes().attempts(), 2u);
  EXPECT_EQ(topo.outcomes().completed() +
                topo.outcomes().count(HandoverOutcome::kFailed),
            topo.outcomes().attempts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoamingFaultFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

/// Waypoint-driven association churn: a host zig-zagging across two cells
/// (including out-of-coverage detours) must end every trajectory either
/// attached or cleanly detached, never wedged mid-handoff.
class WaypointChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaypointChurn, NeverWedges) {
  Simulation sim(GetParam());
  Network net(sim);
  Node& ar1 = net.add_node("ar1");
  Node& ar2 = net.add_node("ar2");
  Node& mh = net.add_node("mh");
  ar1.add_address({40, 1});
  ar2.add_address({50, 1});
  WlanConfig cfg;
  cfg.send_router_adv = false;
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);

  Rng rng(GetParam() * 31);
  std::vector<WaypointMobility::Leg> legs;
  for (int i = 0; i < 15; ++i) {
    legs.push_back({Vec2{rng.uniform(-80, 300), rng.uniform(-40, 40)},
                    rng.uniform(5, 25)});
  }
  legs.push_back({Vec2{10, 0}, 10});  // finish inside cell 1
  wlan.add_mh(mh, std::make_unique<WaypointMobility>(Vec2{10, 0}, legs),
              nullptr);
  wlan.start();
  sim.run_until(120_s);
  EXPECT_FALSE(wlan.in_handoff(mh.id()));
  EXPECT_NE(wlan.attached_ap(mh.id()), kNoNode);  // parked inside cell 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaypointChurn,
                         ::testing::Values(1, 4, 9, 16, 25));

}  // namespace
}  // namespace fhmip
