#include <gtest/gtest.h>

#include "fault/crash.hpp"
#include "fault/link_fault.hpp"
#include "scenario/paper_topology.hpp"
#include "sweep/sweep_runner.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Seeded roaming fuzz: repeated bounce handovers with per-seed jittered
/// traffic phases. Whatever the packet timing relative to the blackouts,
/// the invariants must hold.
class RoamingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoamingFuzz, InvariantsUnderErraticMobility) {
  const std::uint64_t seed = GetParam();

  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  auto& m = topo.mobile(0);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    const auto port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.interval = 10_ms;
    c.jitter = SimTime::millis(static_cast<std::int64_t>(seed % 4));
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(40_s);
  }
  topo.start();
  sim.run_until(50_s);

  for (FlowId f = 1; f <= 3; ++f) {
    const FlowCounters& c = sim.stats().flow(f);
    EXPECT_EQ(c.sent, c.delivered + c.dropped) << "flow " << f;
  }
  EXPECT_EQ(topo.par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo.nar_agent().buffers().leased(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoamingFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

/// The same roaming workload with active fault injection: seeded Bernoulli
/// loss on both directions of the inter-AR control/tunnel link, a timed
/// outage of that link, and a NAR crash that wipes contexts and buffers
/// mid-run. Packet conservation and lease accounting must survive all of
/// it, and no handover attempt may stall unresolved.
///
/// The per-seed runs are share-nothing, so they fan across a SweepRunner
/// (which also makes this suite a standing exercise of the sweep layer
/// under tsan). Closures only collect plain data; every gtest assertion
/// happens on the main thread — gtest macros are not thread-safe.
struct FaultFuzzOutcome {
  std::uint64_t seed = 0;
  std::uint64_t sent[3] = {0, 0, 0};
  std::uint64_t delivered[3] = {0, 0, 0};
  std::uint64_t dropped[3] = {0, 0, 0};
  std::uint64_t par_leased = 0;
  std::uint64_t nar_leased = 0;
  std::uint64_t nar_crashes = 0;
  std::uint64_t attempts = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

FaultFuzzOutcome run_fault_fuzz(std::uint64_t seed) {
  PaperTopologyConfig cfg;
  cfg.seed = seed;
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  fault::LinkFaultInjector fwd(sim, topo.par_nar_link().a_to_b());
  fault::LinkFaultInjector rev(sim, topo.par_nar_link().b_to_a());
  fwd.bernoulli(0.2, seed * 1001);
  rev.bernoulli(0.2, seed * 2003);
  // One two-second inter-AR outage, placed differently per seed.
  const SimTime outage = SimTime::seconds(5 + static_cast<double>(seed % 7));
  fwd.down_window(outage, outage + 2_s);
  rev.down_window(outage, outage + 2_s);
  fault::AgentCrashInjector crash(sim, topo.nar_agent());
  crash.crash_at(SimTime::seconds(12 + static_cast<double>(seed % 5)));

  auto& m = topo.mobile(0);
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    const auto port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.interval = 10_ms;
    c.jitter = SimTime::millis(static_cast<std::int64_t>(seed % 4));
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(40_s);
  }
  topo.start();
  sim.run_until(50_s);

  FaultFuzzOutcome o;
  o.seed = seed;
  for (FlowId f = 1; f <= 3; ++f) {
    const FlowCounters& c = sim.stats().flow(f);
    o.sent[f - 1] = c.sent;
    o.delivered[f - 1] = c.delivered;
    o.dropped[f - 1] = c.dropped;
  }
  o.par_leased = topo.par_agent().buffers().leased();
  o.nar_leased = topo.nar_agent().buffers().leased();
  o.nar_crashes = topo.nar_agent().counters().crashes;
  o.attempts = topo.outcomes().attempts();
  o.completed = topo.outcomes().completed();
  o.failed = topo.outcomes().count(HandoverOutcome::kFailed);
  return o;
}

TEST(RoamingFaultFuzz, InvariantsUnderInjectedFaultsAcrossSeeds) {
  const std::uint64_t seeds[] = {11, 22, 33, 44, 55};
  std::vector<sweep::SweepRunner::Job<FaultFuzzOutcome>> grid;
  for (const std::uint64_t seed : seeds) {
    grid.push_back({"seed=" + std::to_string(seed),
                    [seed] { return run_fault_fuzz(seed); }});
  }
  sweep::SweepRunner runner(4);
  const auto outcomes = runner.run(std::move(grid));

  ASSERT_EQ(outcomes.size(), std::size(seeds));
  for (const FaultFuzzOutcome& o : outcomes) {
    SCOPED_TRACE("seed " + std::to_string(o.seed));
    for (int f = 0; f < 3; ++f) {
      EXPECT_EQ(o.sent[f], o.delivered[f] + o.dropped[f]) << "flow " << f + 1;
      EXPECT_GT(o.delivered[f], 0u) << "flow " << f + 1;
    }
    EXPECT_EQ(o.par_leased, 0u);
    EXPECT_EQ(o.nar_leased, 0u);
    EXPECT_EQ(o.nar_crashes, 1u);
    // Every inter-AR attempt the recorder saw reached a verdict; under
    // this much injected damage individual attempts may legitimately
    // fail, but none may be left dangling once the run is over.
    EXPECT_GE(o.attempts, 2u);
    EXPECT_EQ(o.completed + o.failed, o.attempts);
  }
}

TEST(RoamingFaultFuzz, SeedOutcomesIdenticalSerialAndParallel) {
  // The fuzz workload is the heaviest per-run simulation in the suite;
  // byte-identical serial-vs-parallel results here are the end-to-end
  // determinism proof for the sweep layer.
  const std::uint64_t seeds[] = {11, 33};
  const auto make_grid = [&] {
    std::vector<sweep::SweepRunner::Job<FaultFuzzOutcome>> grid;
    for (const std::uint64_t seed : seeds) {
      grid.push_back({"seed=" + std::to_string(seed),
                      [seed] { return run_fault_fuzz(seed); }});
    }
    return grid;
  };
  sweep::SweepRunner serial(1);
  sweep::SweepRunner parallel(2);
  const auto a = serial.run(make_grid());
  const auto b = parallel.run(make_grid());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(a[i].seed, b[i].seed);
    for (int f = 0; f < 3; ++f) {
      EXPECT_EQ(a[i].sent[f], b[i].sent[f]);
      EXPECT_EQ(a[i].delivered[f], b[i].delivered[f]);
      EXPECT_EQ(a[i].dropped[f], b[i].dropped[f]);
    }
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].failed, b[i].failed);
  }
}

/// Waypoint-driven association churn: a host zig-zagging across two cells
/// (including out-of-coverage detours) must end every trajectory either
/// attached or cleanly detached, never wedged mid-handoff.
class WaypointChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaypointChurn, NeverWedges) {
  Simulation sim(GetParam());
  Network net(sim);
  Node& ar1 = net.add_node("ar1");
  Node& ar2 = net.add_node("ar2");
  Node& mh = net.add_node("mh");
  ar1.add_address({40, 1});
  ar2.add_address({50, 1});
  WlanConfig cfg;
  cfg.send_router_adv = false;
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);

  Rng rng(GetParam() * 31);
  std::vector<WaypointMobility::Leg> legs;
  for (int i = 0; i < 15; ++i) {
    legs.push_back({Vec2{rng.uniform(-80, 300), rng.uniform(-40, 40)},
                    rng.uniform(5, 25)});
  }
  legs.push_back({Vec2{10, 0}, 10});  // finish inside cell 1
  wlan.add_mh(mh, std::make_unique<WaypointMobility>(Vec2{10, 0}, legs),
              nullptr);
  wlan.start();
  sim.run_until(120_s);
  EXPECT_FALSE(wlan.in_handoff(mh.id()));
  EXPECT_NE(wlan.attached_ap(mh.id()), kNoNode);  // parked inside cell 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaypointChurn,
                         ::testing::Values(1, 4, 9, 16, 25));

}  // namespace
}  // namespace fhmip
