#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;
using obs::HandoverTimeline;
using obs::HoAttempt;
using obs::HoEventKind;

// ---------------------------------------------------------------------------
// Pure unit tests: records fed by hand, phases checked against arithmetic.
// ---------------------------------------------------------------------------

TEST(HandoverTimeline, PhasesMatchHandComputedSpans) {
  HandoverTimeline tl;
  const MhId mh = 7;
  tl.record(SimTime::millis(1000), mh, HoEventKind::kL2Trigger, "mh");
  tl.record(SimTime::millis(1050), mh, HoEventKind::kPrRtAdvRecv, "mh");
  tl.record(SimTime::millis(1100), mh, HoEventKind::kFbuSent, "mh");
  tl.record(SimTime::millis(1130), mh, HoEventKind::kFbackRecv, "mh");
  tl.record(SimTime::millis(1200), mh, HoEventKind::kBlackoutStart, "mh");
  tl.record(SimTime::millis(1400), mh, HoEventKind::kBlackoutEnd, "mh");
  const PhaseBreakdown p = tl.resolve(SimTime::millis(1450), mh,
                                      HandoverOutcome::kPredictive,
                                      HandoverCause::kNone);
  ASSERT_TRUE(p.has_anticipation);
  EXPECT_EQ(p.anticipation, SimTime::millis(50));  // PrRtAdv - trigger
  ASSERT_TRUE(p.has_fbu_fback);
  EXPECT_EQ(p.fbu_fback, SimTime::millis(30));  // FBack - first FBU
  ASSERT_TRUE(p.has_blackout);
  EXPECT_EQ(p.blackout, SimTime::millis(200));  // attach - detach
  ASSERT_TRUE(p.has_total);
  EXPECT_EQ(p.total, SimTime::millis(450));  // resolve - attempt start

  ASSERT_EQ(tl.attempts().size(), 1u);
  const HoAttempt& a = tl.attempts()[0];
  EXPECT_EQ(a.mh, mh);
  EXPECT_EQ(a.ordinal, 1u);
  EXPECT_EQ(a.outcome, HandoverOutcome::kPredictive);
  EXPECT_EQ(a.started, SimTime::millis(1000));
  EXPECT_EQ(a.resolved, SimTime::millis(1450));
}

TEST(HandoverTimeline, ReactiveAttemptHasNoAnticipationSpan) {
  HandoverTimeline tl;
  const MhId mh = 9;
  // §2.3.2: no trigger/PrRtAdv; the FBU goes via the new link after attach.
  tl.record(SimTime::millis(2000), mh, HoEventKind::kBlackoutStart, "mh");
  tl.record(SimTime::millis(2200), mh, HoEventKind::kBlackoutEnd, "mh");
  tl.record(SimTime::millis(2210), mh, HoEventKind::kReactiveFbuSent, "mh");
  tl.record(SimTime::millis(2240), mh, HoEventKind::kFbackRecv, "mh");
  const PhaseBreakdown p = tl.resolve(SimTime::millis(2240), mh,
                                      HandoverOutcome::kReactive,
                                      HandoverCause::kNotAnticipated);
  EXPECT_FALSE(p.has_anticipation);
  ASSERT_TRUE(p.has_fbu_fback);
  EXPECT_EQ(p.fbu_fback, SimTime::millis(30));
  ASSERT_TRUE(p.has_blackout);
  EXPECT_EQ(p.blackout, SimTime::millis(200));
  EXPECT_EQ(p.total, SimTime::millis(240));
}

TEST(HandoverTimeline, AttemptsAreOrdinalNumberedPerMh) {
  HandoverTimeline tl;
  tl.record(1_s, 1, HoEventKind::kL2Trigger, "a");
  tl.resolve(2_s, 1, HandoverOutcome::kPredictive, HandoverCause::kNone);
  tl.record(3_s, 2, HoEventKind::kL2Trigger, "b");
  tl.resolve(4_s, 2, HandoverOutcome::kFailed, HandoverCause::kNoFback);
  tl.record(5_s, 1, HoEventKind::kL2Trigger, "a");
  tl.resolve(6_s, 1, HandoverOutcome::kReactive, HandoverCause::kNoPrRtAdv);

  const auto for_mh1 = tl.attempts_for(1);
  ASSERT_EQ(for_mh1.size(), 2u);
  EXPECT_EQ(for_mh1[0].ordinal, 1u);
  EXPECT_EQ(for_mh1[1].ordinal, 2u);
  const auto for_mh2 = tl.attempts_for(2);
  ASSERT_EQ(for_mh2.size(), 1u);
  EXPECT_EQ(for_mh2[0].ordinal, 1u);
  EXPECT_EQ(for_mh2[0].cause, HandoverCause::kNoFback);
}

TEST(HandoverTimeline, StrayEventsOutsideAnAttemptGetOrdinalZero) {
  HandoverTimeline tl;
  tl.record(1_s, 5, HoEventKind::kL2Trigger, "mh");
  tl.resolve(2_s, 5, HandoverOutcome::kPredictive, HandoverCause::kNone);
  // A drain tail after resolution belongs to no attempt.
  tl.record(3_s, 5, HoEventKind::kDrainEnd, "par");
  const auto& recs = tl.records();
  ASSERT_EQ(recs.size(), 3u);  // trigger, resolved, stray drain
  EXPECT_EQ(recs.back().attempt, 0u);
  EXPECT_EQ(recs.back().kind, HoEventKind::kDrainEnd);
}

TEST(HandoverTimeline, ResolveWithoutRecordsStillClosesAnAttempt) {
  // Unanticipated reattachment with no observed events: resolve opens and
  // closes a degenerate attempt so the outcome is still counted.
  HandoverTimeline tl;
  const PhaseBreakdown p = tl.resolve(4_s, 3, HandoverOutcome::kFailed,
                                      HandoverCause::kNoFback);
  EXPECT_TRUE(p.has_total);
  EXPECT_EQ(p.total, SimTime{});
  EXPECT_EQ(tl.attempts().size(), 1u);
}

TEST(HandoverTimeline, RegistryGetsPhaseHistogramsAndOutcomeCounters) {
  obs::MetricsRegistry reg;
  HandoverTimeline tl;
  tl.set_registry(&reg);
  tl.record(1_s, 1, HoEventKind::kL2Trigger, "mh");
  tl.record(SimTime::millis(1040), 1, HoEventKind::kPrRtAdvRecv, "mh");
  tl.record(SimTime::millis(1100), 1, HoEventKind::kBlackoutStart, "mh");
  tl.record(SimTime::millis(1300), 1, HoEventKind::kBlackoutEnd, "mh");
  tl.resolve(SimTime::millis(1350), 1, HandoverOutcome::kPredictive,
             HandoverCause::kNone);

  EXPECT_EQ(reg.find_counter("handover/outcome/predictive")->value(), 1u);
  EXPECT_EQ(reg.find_counter("handover/outcome/reactive")->value(), 0u);
  const obs::Histogram* blackout =
      reg.find_histogram("handover/phase/blackout_ms");
  ASSERT_NE(blackout, nullptr);
  EXPECT_EQ(blackout->count(), 1u);
  EXPECT_DOUBLE_EQ(blackout->sum(), 200.0);
  // 200 ms sits exactly on a bucket bound and must land in that bucket.
  const auto& bounds = blackout->bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(blackout->bucket_count(i), bounds[i] == 200.0 ? 1u : 0u) << i;
  }
  // No anticipation-less spans leaked into the anticipation histogram.
  EXPECT_EQ(reg.find_histogram("handover/phase/anticipation_ms")->count(), 1u);
  EXPECT_EQ(reg.find_histogram("handover/phase/fbu_fback_ms")->count(), 0u);
}

TEST(HandoverTimeline, FormatTimelineIsOneDeterministicLinePerRecord) {
  HandoverTimeline tl;
  tl.record(SimTime::millis(2100), 100, HoEventKind::kL2Trigger, "mh1");
  tl.record(SimTime::millis(2200), 100, HoEventKind::kFbuSent, "mh1");
  tl.resolve(SimTime::millis(2500), 100, HandoverOutcome::kPredictive,
             HandoverCause::kNone);
  EXPECT_EQ(tl.format_timeline(),
            "T 2.100000 mh 100 a1 l2-trigger @mh1\n"
            "T 2.200000 mh 100 a1 fbu-sent @mh1\n"
            "T 2.500000 mh 100 a1 resolved @predictive\n");
}

TEST(HandoverTimeline, RecordCapBoundsTheLogButNotTheAttempts) {
  HandoverTimeline tl;
  tl.set_record_cap(4);
  for (int i = 0; i < 20; ++i) {
    tl.record(SimTime::millis(100 * (i + 1)), 7, HoEventKind::kL2Trigger,
              "mh7");
    tl.resolve(SimTime::millis(100 * (i + 1) + 50), 7,
               HandoverOutcome::kPredictive, HandoverCause::kNone);
  }
  // 40 records total; the log trims to the cap amortized (grows to 2*cap,
  // then drops the oldest half), so at most 2*cap survive and everything
  // else is accounted as dropped.
  EXPECT_LE(tl.records().size(), 8u);
  EXPECT_GE(tl.records().size(), 4u);
  EXPECT_EQ(tl.records().size() + tl.dropped_records(), 40u);
  // Survivors are the most recent records, still in order.
  EXPECT_EQ(tl.records().back().kind, HoEventKind::kResolved);
  for (std::size_t i = 1; i < tl.records().size(); ++i)
    EXPECT_LE(tl.records()[i - 1].at, tl.records()[i].at);
  // Derived attempts are untouched by the trim.
  EXPECT_EQ(tl.attempts().size(), 20u);
  EXPECT_EQ(tl.attempts().back().ordinal, 20u);
}

TEST(HandoverTimeline, ZeroRecordCapKeepsEverything) {
  HandoverTimeline tl;
  for (int i = 0; i < 100; ++i)
    tl.record(SimTime::millis(i), 1, HoEventKind::kFbuSent, "mh1");
  EXPECT_EQ(tl.records().size(), 100u);
  EXPECT_EQ(tl.dropped_records(), 0u);
}

// ---------------------------------------------------------------------------
// Full-stack tests: the agents drive the timeline through a real handover.
// ---------------------------------------------------------------------------

/// Runs one PAR->NAR pass on the Figure 4.1 network and returns the topology
/// after the run has quiesced.
std::unique_ptr<PaperTopology> run_one_handover(PaperTopologyConfig cfg) {
  auto topo = std::make_unique<PaperTopology>(cfg);
  auto& m = topo->mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo->cn(), 5000, c);
  src.start(2_s);
  src.stop(16_s);
  topo->start();
  topo->simulation().run_until(20_s);
  return topo;
}

TEST(HandoverTimelineSim, FixedBlackoutContributesExactlyItsConfiguredSpan) {
  PaperTopologyConfig cfg;  // WlanConfig default: 200 ms L2 handoff
  auto topo = run_one_handover(cfg);
  const MhId mh = topo->mobile(0).node->id();

  const auto attempts = topo->simulation().timeline().attempts_for(mh);
  ASSERT_EQ(attempts.size(), 1u);
  const HoAttempt& a = attempts[0];
  EXPECT_EQ(a.outcome, HandoverOutcome::kPredictive);
  ASSERT_TRUE(a.phases.has_blackout);
  // The L2 blackout is a fixed scheduled delay; the derived phase must be
  // exact, not approximate.
  EXPECT_EQ(a.phases.blackout, SimTime::millis(200));
  ASSERT_TRUE(a.phases.has_anticipation);
  EXPECT_GT(a.phases.anticipation, SimTime{});
  ASSERT_TRUE(a.phases.has_total);
  EXPECT_GE(a.phases.total, a.phases.blackout);

  // The same numbers reached the recorder and the metrics registry.
  ASSERT_EQ(topo->outcomes().history().size(), 1u);
  EXPECT_EQ(topo->outcomes().history()[0].phases.blackout,
            SimTime::millis(200));
  const auto& reg = topo->simulation().metrics();
  EXPECT_EQ(reg.find_counter("handover/outcome/predictive")->value(), 1u);
  const obs::Histogram* h = reg.find_histogram("handover/phase/blackout_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 200.0);
}

TEST(HandoverTimelineSim, PredictiveChoreographyEventsAppearInOrder) {
  auto topo = run_one_handover(PaperTopologyConfig{});
  const MhId mh = topo->mobile(0).node->id();
  std::vector<HoEventKind> kinds;
  for (const auto& r : topo->simulation().timeline().records()) {
    if (r.mh == mh) kinds.push_back(r.kind);
  }
  // The predictive choreography must appear as a subsequence, in order:
  // anticipation (RtSolPr -> HI/HAck -> PrRtAdv), FBU on the old link, the
  // PAR buffering during the blackout, then FNA -> BF -> drain on the new
  // link, with the FBack reaching the MH after reattachment.
  const HoEventKind expected[] = {
      HoEventKind::kL2Trigger,     HoEventKind::kRtSolPrSent,
      HoEventKind::kHiSent,        HoEventKind::kHackRecv,
      HoEventKind::kPrRtAdvRecv,   HoEventKind::kFbuSent,
      HoEventKind::kBufferFill,    HoEventKind::kBlackoutStart,
      HoEventKind::kBlackoutEnd,   HoEventKind::kFnaSent,
      HoEventKind::kBfSent,        HoEventKind::kDrainStart,
      HoEventKind::kDrainEnd,      HoEventKind::kFbackRecv,
      HoEventKind::kResolved,
  };
  std::size_t want = 0;
  for (const HoEventKind k : kinds) {
    if (want < std::size(expected) && k == expected[want]) ++want;
  }
  EXPECT_EQ(want, std::size(expected))
      << "matched " << want << " of " << std::size(expected)
      << " choreography steps\n"
      << topo->simulation().timeline().format_timeline();
  // A predictive run sends no reactive FBU.
  for (const HoEventKind k : kinds) {
    EXPECT_NE(k, HoEventKind::kReactiveFbuSent);
  }
}

TEST(HandoverTimelineSim, NonAnticipatedHandoverRunsTheReactiveSequence) {
  PaperTopologyConfig cfg;
  cfg.anticipate = false;  // §2.3.2: FBU via the new link after attachment
  auto topo = run_one_handover(cfg);
  const MhId mh = topo->mobile(0).node->id();

  const auto attempts = topo->simulation().timeline().attempts_for(mh);
  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_EQ(attempts[0].outcome, HandoverOutcome::kReactive);
  EXPECT_EQ(attempts[0].cause, HandoverCause::kNotAnticipated);
  EXPECT_FALSE(attempts[0].phases.has_anticipation);
  ASSERT_TRUE(attempts[0].phases.has_blackout);
  EXPECT_EQ(attempts[0].phases.blackout, SimTime::millis(200));
  ASSERT_TRUE(attempts[0].phases.has_fbu_fback);
  EXPECT_GT(attempts[0].phases.fbu_fback, SimTime{});

  std::vector<HoEventKind> kinds;
  for (const auto& r : topo->simulation().timeline().records()) {
    if (r.mh == mh) kinds.push_back(r.kind);
  }
  const HoEventKind expected[] = {
      HoEventKind::kBlackoutStart, HoEventKind::kBlackoutEnd,
      HoEventKind::kReactiveFbuSent, HoEventKind::kFbackRecv,
      HoEventKind::kResolved,
  };
  std::size_t want = 0;
  for (const HoEventKind k : kinds) {
    if (want < std::size(expected) && k == expected[want]) ++want;
  }
  EXPECT_EQ(want, std::size(expected))
      << topo->simulation().timeline().format_timeline();
  // No anticipated-path control was exchanged.
  for (const HoEventKind k : kinds) {
    EXPECT_NE(k, HoEventKind::kRtSolPrSent);
    EXPECT_NE(k, HoEventKind::kFbuSent);
  }
  EXPECT_EQ(topo->simulation()
                .metrics()
                .find_counter("handover/outcome/reactive")
                ->value(),
            1u);
}

}  // namespace
}  // namespace fhmip
