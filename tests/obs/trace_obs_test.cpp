#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/trace_file.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace fhmip {
namespace {

TraceEvent make_event(TraceKind kind, std::uint64_t uid,
                      std::optional<DropReason> reason = {}) {
  TraceEvent e;
  e.at = SimTime::millis(1500);
  e.kind = kind;
  e.where = "par";
  e.uid = uid;
  e.flow = 1;
  e.seq = 9;
  e.bytes = 160;
  e.msg = "data";
  e.reason = reason;
  return e;
}

// ---------------------------------------------------------------------------
// format_trace_line robustness (the TraceEvent::reason redesign).
// ---------------------------------------------------------------------------

TEST(FormatTraceLine, DropCarriesItsReason) {
  const TraceEvent e = make_event(TraceKind::kDrop, 42,
                                  DropReason::kWirelessDown);
  EXPECT_EQ(format_trace_line(e),
            "d 1.500000 par data uid 42 flow 1 seq 9 160B (wireless-down)");
}

TEST(FormatTraceLine, NonDropEventsCarryNoStaleReason) {
  // TraceEvent::reason is optional: non-drop events must not render a
  // reason suffix at all (the old design leaked a default-constructed one).
  const TraceEvent e = make_event(TraceKind::kDeliver, 7);
  EXPECT_FALSE(e.reason.has_value());
  EXPECT_EQ(format_trace_line(e),
            "r 1.500000 par data uid 7 flow 1 seq 9 160B");
}

TEST(FormatTraceLine, RobustToHandBuiltEvents) {
  TraceEvent e;  // everything defaulted
  e.at = SimTime{};
  e.where = nullptr;  // hand-built events may point nowhere
  e.msg = nullptr;
  e.kind = static_cast<TraceKind>(250);  // out-of-range enum
  e.reason = static_cast<DropReason>(199);
  const std::string line = format_trace_line(e);
  EXPECT_EQ(line.substr(0, 1), "?");
  EXPECT_NE(line.find(" ? ? "), std::string::npos);  // where/msg placeholders
  EXPECT_NE(line.find("(?)"), std::string::npos);    // unknown reason
}

// ---------------------------------------------------------------------------
// Multi-sink fan-out on the trace hub.
// ---------------------------------------------------------------------------

TEST(PacketTrace, FansOutToEverySinkInAttachmentOrder) {
  PacketTrace trace;
  EXPECT_FALSE(trace.enabled());
  std::vector<int> order;
  const auto a = trace.add_sink([&](const TraceEvent&) { order.push_back(1); });
  trace.add_sink([&](const TraceEvent&) { order.push_back(2); });
  EXPECT_TRUE(trace.enabled());
  EXPECT_EQ(trace.sink_count(), 2u);
  trace.emit(make_event(TraceKind::kCreate, 1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  trace.remove_sink(a);
  order.clear();
  trace.emit(make_event(TraceKind::kCreate, 2));
  EXPECT_EQ(order, (std::vector<int>{2}));
  trace.remove_sink(12345);  // unknown ids are ignored
  EXPECT_EQ(trace.sink_count(), 1u);
}

TEST(PacketTrace, LegacySetSinkOnlyReplacesItsOwnAttachment) {
  PacketTrace trace;
  int persistent = 0, legacy_a = 0, legacy_b = 0;
  trace.add_sink([&](const TraceEvent&) { ++persistent; });
  trace.set_sink([&](const TraceEvent&) { ++legacy_a; });
  trace.set_sink([&](const TraceEvent&) { ++legacy_b; });  // replaces a only
  trace.emit(make_event(TraceKind::kCreate, 1));
  EXPECT_EQ(persistent, 1);
  EXPECT_EQ(legacy_a, 0);
  EXPECT_EQ(legacy_b, 1);
  trace.clear();  // removes the set_sink attachment, not the ledger-style one
  trace.emit(make_event(TraceKind::kCreate, 2));
  EXPECT_EQ(persistent, 2);
  EXPECT_EQ(legacy_b, 1);
  EXPECT_EQ(trace.sink_count(), 1u);
}

TEST(PacketTrace, SinkMayDetachItselfWhileHandlingAnEvent) {
  PacketTrace trace;
  int calls = 0;
  PacketTrace::SinkId self = PacketTrace::kNoSink;
  self = trace.add_sink([&](const TraceEvent&) {
    ++calls;
    trace.remove_sink(self);
  });
  trace.emit(make_event(TraceKind::kCreate, 1));
  trace.emit(make_event(TraceKind::kCreate, 2));
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(trace.enabled());
}

// ---------------------------------------------------------------------------
// TraceFileWriter: the ns-2 "trace file" affordance.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceFileWriter, WritesFilteredLinesAndDetachesOnDestruction) {
  Simulation sim;
  const std::string path = testing::TempDir() + "fhmip_trace_test.tr";
  {
    obs::TraceFileWriter writer(sim, path, [](const TraceEvent& e) {
      return e.kind == TraceKind::kDrop;
    });
    EXPECT_EQ(sim.trace().sink_count(), 1u);
    sim.trace().emit(make_event(TraceKind::kCreate, 1));  // filtered out
    sim.trace().emit(
        make_event(TraceKind::kDrop, 1, DropReason::kQueueOverflow));
    EXPECT_EQ(writer.lines_written(), 1u);
    EXPECT_EQ(writer.path(), path);
  }
  EXPECT_EQ(sim.trace().sink_count(), 0u);  // detached
  EXPECT_EQ(slurp(path),
            "d 1.500000 par data uid 1 flow 1 seq 9 160B (queue-overflow)\n");
  std::remove(path.c_str());
}

TEST(TraceFileWriter, EmptyFilterAcceptsEverything) {
  Simulation sim;
  const std::string path = testing::TempDir() + "fhmip_trace_all.tr";
  {
    obs::TraceFileWriter writer(sim, path);
    sim.trace().emit(make_event(TraceKind::kCreate, 1));
    sim.trace().emit(make_event(TraceKind::kLocalDeliver, 1));
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  std::remove(path.c_str());
}

TEST(TraceFileWriter, UnopenablePathThrows) {
  Simulation sim;
  EXPECT_THROW(
      obs::TraceFileWriter(sim, "/nonexistent-dir-xyzzy/trace.tr"),
      std::runtime_error);
  EXPECT_EQ(sim.trace().sink_count(), 0u);  // nothing left attached
}

// ---------------------------------------------------------------------------
// PacketLedger unit behaviour on hand-emitted events.
// ---------------------------------------------------------------------------

TEST(PacketLedger, ConservationIdentityOnAHandRolledLifecycle) {
  Simulation sim;
  obs::PacketLedger ledger(sim);
  auto emit = [&](TraceKind k, std::uint64_t uid,
                  std::optional<DropReason> r = {}) {
    sim.trace().emit(make_event(k, uid, r));
  };
  emit(TraceKind::kCreate, 1);
  emit(TraceKind::kCreate, 2);
  emit(TraceKind::kCreate, 3);
  emit(TraceKind::kTransmit, 1);  // movement: no ledger transition
  emit(TraceKind::kBufferEnter, 2);
  EXPECT_EQ(ledger.in_buffer(), 1u);
  EXPECT_EQ(ledger.in_flight(), 2);
  EXPECT_TRUE(ledger.balanced());

  emit(TraceKind::kLocalDeliver, 1);
  emit(TraceKind::kBufferExit, 2);
  emit(TraceKind::kLocalDeliver, 2);
  emit(TraceKind::kDrop, 3, DropReason::kWirelessDown);
  EXPECT_EQ(ledger.created(), 3u);
  EXPECT_EQ(ledger.consumed(), 2u);
  EXPECT_EQ(ledger.dropped(DropReason::kWirelessDown), 1u);
  EXPECT_EQ(ledger.dropped_total(), 1u);
  EXPECT_EQ(ledger.in_buffer(), 0u);
  EXPECT_EQ(ledger.in_flight(), 0);
  EXPECT_EQ(ledger.violations(), 0u);
  EXPECT_TRUE(ledger.balanced());
  ledger.audit("unit");        // must not fire
  ledger.audit_final("unit");  // fully drained
  const std::string fmt = ledger.format();
  EXPECT_NE(fmt.find("created"), std::string::npos);
  EXPECT_NE(fmt.find("drop/wireless-down"), std::string::npos);
}

TEST(PacketLedger, PerUidStateMachineCatchesDoubleCreateAndBadPairs) {
  Simulation sim;
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  obs::PacketLedger ledger(sim);
  auto emit = [&](TraceKind k, std::uint64_t uid,
                  std::optional<DropReason> r = {}) {
    sim.trace().emit(make_event(k, uid, r));
  };
  emit(TraceKind::kCreate, 1);
  emit(TraceKind::kCreate, 1);      // uid created twice
  emit(TraceKind::kBufferExit, 1);  // exit without enter
  emit(TraceKind::kBufferEnter, 1);
  emit(TraceKind::kDrop, 1, DropReason::kFaultInjected);  // terminal while
                                                          // buffered
  emit(TraceKind::kDrop, 2);  // drop without a reason
  EXPECT_EQ(ledger.violations(), 4u);
  EXPECT_FALSE(ledger.balanced());
  EXPECT_EQ(seen.size(), 4u);  // each violation routed through the audit hub
}

TEST(PacketLedger, UntrackedModeOnlyAggregates) {
  Simulation sim;
  obs::PacketLedger ledger(sim, /*track_uids=*/false);
  sim.trace().emit(make_event(TraceKind::kCreate, 1));
  sim.trace().emit(make_event(TraceKind::kCreate, 1));  // no uid machine
  sim.trace().emit(make_event(TraceKind::kLocalDeliver, 1));
  EXPECT_EQ(ledger.violations(), 0u);
  EXPECT_EQ(ledger.created(), 2u);
  EXPECT_EQ(ledger.consumed(), 1u);
  EXPECT_EQ(ledger.in_flight(), 1);
}

TEST(PacketLedger, DetachesFromTheTraceOnDestruction) {
  Simulation sim;
  {
    obs::PacketLedger ledger(sim);
    EXPECT_TRUE(sim.trace().enabled());
  }
  EXPECT_FALSE(sim.trace().enabled());
}

}  // namespace
}  // namespace fhmip
