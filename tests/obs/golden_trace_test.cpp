#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/trace_file.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

#ifndef FHMIP_SOURCE_DIR
#error "obs_tests must be compiled with FHMIP_SOURCE_DIR"
#endif

constexpr const char* kGoldenPath =
    FHMIP_SOURCE_DIR "/tests/golden/predictive_handover.trace";

/// Accepts the fast-handover control plane plus every buffer and death
/// event: the packet-level choreography the golden file locks in. Periodic
/// background control (router advertisements, binding updates) is filtered
/// out so the golden stays focused on the §2/§3 message sequence.
bool golden_filter(const TraceEvent& e) {
  if (e.kind == TraceKind::kBufferEnter || e.kind == TraceKind::kBufferExit ||
      e.kind == TraceKind::kDrop || e.kind == TraceKind::kDiscard) {
    return true;
  }
  static constexpr std::string_view kControl[] = {
      "RtSolPr", "PrRtAdv", "HI", "HAck",       "FBU", "FBAck",
      "FNA",     "FNAAck",  "BF", "BufferFull", "BI",  "BA"};
  const std::string_view msg = e.msg != nullptr ? e.msg : "";
  for (const std::string_view m : kControl) {
    if (msg == m) return true;
  }
  return false;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The canonical predictive handover: default Figure 4.1 network, one CBR
/// flow, one PAR->NAR pass with dual buffering. Returns the filtered packet
/// trace plus the handover timeline, the exact bytes the golden file holds.
std::string run_canonical_scenario() {
  PaperTopologyConfig cfg;  // seed 1, 200 ms blackout, 10 m/s
  cfg.scheme.mode = BufferMode::kDual;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 40;
  cfg.scheme.request_pkts = 40;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // Unique per process AND per call: ctest -j runs the two GoldenTrace
  // tests as concurrent processes sharing TempDir(), and this helper runs
  // twice inside the determinism test.
  static std::atomic<int> run_seq{0};
  const std::string tmp = testing::TempDir() + "fhmip_golden_run." +
                          std::to_string(::getpid()) + "." +
                          std::to_string(run_seq.fetch_add(1)) + ".tr";
  std::string trace_text;
  {
    obs::TraceFileWriter writer(sim, tmp, golden_filter);
    auto& m = topo.mobile(0);
    UdpSink sink(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.flow = 1;
    CbrSource src(topo.cn(), 5000, c);
    src.start(2_s);
    src.stop(16_s);
    topo.start();
    sim.run_until(20_s);
  }  // writer flushes and detaches here
  trace_text = slurp(tmp);
  std::remove(tmp.c_str());
  return trace_text + "--- timeline ---\n" +
         topo.simulation().timeline().format_timeline();
}

/// Byte-exact regression lock on the canonical predictive handover. Any
/// change to message ordering, buffer fill/drain timing, drop accounting,
/// trace formatting, or the timeline renderer shows up as a diff here.
/// Deliberate behaviour changes regenerate the file with:
///   UPDATE_GOLDEN=1 ./obs_tests --gtest_filter='GoldenTrace.*'
TEST(GoldenTrace, PredictiveHandoverMatchesCheckedInTrace) {
  const std::string actual = run_canonical_scenario();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    out.close();
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  const std::string golden = slurp(kGoldenPath);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << kGoldenPath
      << " — regenerate with UPDATE_GOLDEN=1";
  if (actual != golden) {
    // Find the first diverging line for a readable failure.
    std::istringstream a(actual), g(golden);
    std::string la, lg;
    int line = 1;
    while (std::getline(a, la) && std::getline(g, lg) && la == lg) ++line;
    FAIL() << "golden trace mismatch at line " << line << "\n  golden: " << lg
           << "\n  actual: " << la
           << "\n(UPDATE_GOLDEN=1 regenerates after a deliberate change)";
  }
}

/// The scenario itself is deterministic: two runs in one process produce
/// byte-identical trace + timeline output. Guards the golden test against
/// flakiness blamed on the checked-in file.
TEST(GoldenTrace, CanonicalScenarioIsRunToRunDeterministic) {
  EXPECT_EQ(run_canonical_scenario(), run_canonical_scenario());
}

}  // namespace
}  // namespace fhmip
