#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fault/crash.hpp"
#include "fault/link_fault.hpp"
#include "obs/timeline.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Property sweep: the packet conservation identity
///   created = consumed + discarded + dropped-by-reason + in-buffer +
///             in-flight
/// must hold at every handover boundary, at periodic mid-run instants, and
/// at end-of-run — under injected link loss, scripted AR crashes, and every
/// buffering configuration in the grid. This is the ledger doing the job it
/// was built for: any unaccounted packet path (a drop without a reason, a
/// buffer exit that never happened) fails here before it can skew a figure.
struct Params {
  double loss;        // Bernoulli loss on the PAR->NAR inter-AR link
  int blackout_ms;    // L2 handoff delay
  std::uint32_t pool; // handoff buffer pool (0 = grants always denied)
  std::uint64_t seed;
  bool crash;         // scripted PAR crashes mid-run
  int lifetime_ms;    // buffer lifetime override (0 = scheme default);
                      // short values expire allocations mid-blackout
};

class LedgerConservation : public ::testing::TestWithParam<Params> {};

TEST_P(LedgerConservation, HoldsAtBoundariesAndTeardown) {
  const Params p = GetParam();
  PaperTopologyConfig cfg;
  cfg.seed = p.seed;
  cfg.bounce = true;
  cfg.wlan.l2_handoff_delay = SimTime::millis(p.blackout_ms);
  cfg.scheme.mode = BufferMode::kDual;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = p.pool;
  cfg.scheme.request_pkts = p.pool;
  if (p.lifetime_ms > 0) {
    cfg.scheme.lifetime = SimTime::millis(p.lifetime_ms);
  }
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // Attach before any traffic exists: the ledger counts only what it sees.
  obs::PacketLedger ledger(sim);

  fault::LinkFaultInjector inter_ar(sim, topo.par_nar_link().a_to_b());
  if (p.loss > 0) inter_ar.bernoulli(p.loss, p.seed * 977 + 13);
  fault::AgentCrashInjector crash(sim, topo.par_agent());
  const SimTime leg = topo.leg_duration();
  if (p.crash) {
    // One crash mid-first-handover (buffered packets die as kFaultInjected)
    // and one between handovers (context/route teardown only).
    crash.crash_at(cfg.mobility_start + leg);
    crash.crash_at(cfg.mobility_start + 2 * leg + 500_ms);
  }

  int boundaries = 0;
  sim.timeline().set_resolve_hook([&](const obs::HoAttempt&) {
    ++boundaries;
    EXPECT_TRUE(ledger.balanced())
        << "at handover boundary " << boundaries << "\n" << ledger.format();
    ledger.audit("handover boundary");
  });

  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(2_s);
  const SimTime stop = cfg.mobility_start + 3 * leg;
  src.stop(stop);
  // "At any sim time": audit the identity once a second while running.
  const SimTime end = stop + 5_s;
  for (SimTime t = 1_s; t < end; t += 1_s) {
    sim.at(t, [&ledger] { ledger.audit("periodic tick"); });
  }
  topo.start();
  sim.run_until(end);

  EXPECT_GE(boundaries, 3) << "three legs should resolve three attempts";
  EXPECT_TRUE(ledger.balanced()) << ledger.format();
  EXPECT_EQ(ledger.violations(), 0u);
  EXPECT_GT(ledger.created(), 0u);
  // Quiesced: nothing may still sit in a handoff buffer.
  EXPECT_EQ(ledger.in_buffer(), 0u) << ledger.format();

  // Every DropReason bucket agrees with the central stats hub: the trace
  // emission and the stats recording at each drop site are one event.
  for (int i = 0; i < kNumDropReasons; ++i) {
    const auto reason = static_cast<DropReason>(i);
    EXPECT_EQ(ledger.dropped(reason), sim.stats().total_drops(reason))
        << to_string(reason);
  }
  if (p.crash) {
    EXPECT_EQ(crash.crashes(), 2u);
  }
  if (p.lifetime_ms > 0) {
    // The expiry-heavy config must actually exercise the lifetime-expiry
    // drain: expired buffer contents land in their dedicated bucket (and
    // by the loop above, agree with the stats hub).
    EXPECT_GT(ledger.dropped(DropReason::kBufferExpired), 0u);
  }
  if (p.loss > 0) {
    // The injector's own count and the fault-injected ledger bucket cover
    // the same kills (crashes add buffered-packet kills on top).
    EXPECT_GT(inter_ar.dropped(), 0u);
    EXPECT_GE(ledger.dropped(DropReason::kFaultInjected),
              inter_ar.dropped());
  }

  // Flow-level conservation still holds on top of the uid-level ledger.
  const FlowCounters& fc = sim.stats().flow(1);
  EXPECT_GT(fc.sent, 0u);
  EXPECT_EQ(fc.sent, fc.delivered + fc.dropped);
}

INSTANTIATE_TEST_SUITE_P(
    LossBlackoutPoolGrid, LedgerConservation,
    ::testing::Values(Params{0.0, 200, 40, 1, false, 0},   // clean baseline
                      Params{0.0, 200, 40, 1, true, 0},    // crashes only
                      Params{0.05, 200, 40, 2, false, 0},  // loss only
                      Params{0.05, 100, 10, 3, true, 0},   // loss + crash,
                                                           // small pool
                      Params{0.02, 300, 0, 4, true, 0},    // no buffer grants
                      Params{0.10, 300, 20, 5, false, 0},  // heavy loss, long
                                                           // blackout
                      Params{0.0, 400, 40, 6, false, 1200} // expiry-heavy:
                                                           // allocations die
                                                           // mid-blackout
                      ));

/// The ledger must also balance when it is attached alongside other sinks
/// (file writers, test collectors) — multi-sink fan-out does not perturb
/// the counts.
TEST(LedgerConservation, BalancesAlongsideOtherSinks) {
  PaperTopologyConfig cfg;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 40;
  cfg.scheme.request_pkts = 40;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();
  obs::PacketLedger ledger(sim);
  std::uint64_t events_seen = 0;
  sim.trace().add_sink([&](const TraceEvent&) { ++events_seen; });

  auto& m = topo.mobile(0);
  UdpSink sink(*m.node, 7000);
  CbrSource::Config c;
  c.dst = m.regional;
  c.dst_port = 7000;
  c.interval = 10_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(2_s);
  src.stop(16_s);
  topo.start();
  sim.run_until(20_s);

  EXPECT_GT(events_seen, 0u);
  EXPECT_TRUE(ledger.balanced()) << ledger.format();
  EXPECT_EQ(ledger.in_buffer(), 0u);
  EXPECT_EQ(ledger.violations(), 0u);
}

}  // namespace
}  // namespace fhmip
