#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fhmip::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddAndGoNegative) {
  Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
  g.add(3);
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, ValueOnUpperBoundLandsInThatBucket) {
  // Bucket i counts value <= bounds[i]; an observation exactly on an upper
  // bound must land IN that bucket, not the next one.
  Histogram h({10, 20, 50});
  h.observe(10.0);
  h.observe(20.0);
  h.observe(50.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // (-inf, 10]
  EXPECT_EQ(h.bucket_count(1), 1u);  // (10, 20]
  EXPECT_EQ(h.bucket_count(2), 1u);  // (20, 50]
  EXPECT_EQ(h.bucket_count(3), 0u);  // overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 80.0);
}

TEST(Histogram, OverflowBucketCatchesValuesAboveLastBound) {
  Histogram h({1, 2});
  h.observe(2.0000001);
  h.observe(1e9);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.num_buckets(), 3u);
}

TEST(Histogram, BoundsAreSortedAndDeduplicatedAtConstruction) {
  Histogram h({50, 10, 20, 10});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 10);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 20);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 50);
  h.observe(15);
  EXPECT_EQ(h.bucket_count(1), 1u);
}

TEST(Histogram, BoundlessHistogramOnlyOverflows) {
  Histogram h({});
  h.observe(-1);
  h.observe(7);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_EQ(h.bucket_count(0), 2u);
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("link/x/delivered");
  Counter& b = reg.counter("link/x/delivered");
  EXPECT_EQ(&a, &b);  // shared series, O(1) increments through either ref
  a.inc();
  b.inc();
  EXPECT_EQ(reg.counter("link/x/delivered").value(), 2u);

  Gauge& g1 = reg.gauge("q");
  Gauge& g2 = reg.gauge("q");
  EXPECT_EQ(&g1, &g2);

  // Histogram re-registration keeps the original bounds.
  Histogram& h1 = reg.histogram("h", {1, 2, 3});
  Histogram& h2 = reg.histogram("h", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(MetricsRegistry, ReferencesStayValidAcrossLaterRegistrations) {
  // Node-based map storage: hot-path pointers resolved at construction must
  // survive arbitrarily many later registrations.
  MetricsRegistry reg;
  Counter* first = &reg.counter("a");
  for (int i = 0; i < 200; ++i) reg.counter("c" + std::to_string(i));
  first->inc(7);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("yes").inc();
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, TextExportIsNameSorted) {
  MetricsRegistry reg;
  // Registered out of order on purpose; the export must sort.
  reg.counter("z/last").inc(3);
  reg.counter("a/first").inc(1);
  reg.gauge("m/depth").set(-2);
  const std::string text = reg.format_text();
  EXPECT_EQ(text,
            "counter a/first 1\n"
            "counter z/last 3\n"
            "gauge m/depth -2\n");
}

TEST(MetricsRegistry, JsonExportIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry fwd, rev;
  const char* names[] = {"alpha", "bravo", "charlie"};
  for (int i = 0; i < 3; ++i) fwd.counter(names[i]).inc(i + 1);
  for (int i = 2; i >= 0; --i) rev.counter(names[i]).inc(i + 1);
  fwd.histogram("h", {1, 2}).observe(1.5);
  rev.histogram("h", {1, 2}).observe(1.5);
  EXPECT_EQ(fwd.to_json(), rev.to_json());
  EXPECT_EQ(fwd.format_text(), rev.format_text());
}

TEST(MetricsRegistry, JsonShapeIsEmbeddable) {
  MetricsRegistry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(-1);
  reg.histogram("h", {10}).observe(4);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"c\":5},"
            "\"gauges\":{\"g\":-1},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":4.000000,"
            "\"bounds\":[10.000000],\"buckets\":[1,0]}}}");
  // An empty registry still renders a valid, closed object.
  EXPECT_EQ(MetricsRegistry{}.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistry, NamesWithQuotesAreEscapedInJson) {
  MetricsRegistry reg;
  reg.counter("odd\"name\\with\nnoise").inc();
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("odd\\\"name\\\\with\\nnoise"), std::string::npos);
}

}  // namespace
}  // namespace fhmip::obs
