#include "sim/logging.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Logger, OffByDefault) {
  Logger log;
  EXPECT_EQ(log.level(), LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(Logger, LevelFiltering) {
  Logger log;
  log.set_level(LogLevel::kInfo);
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
}

TEST(Logger, SinkReceivesMessages) {
  Logger log;
  log.set_level(LogLevel::kDebug);
  std::vector<std::string> got;
  log.set_sink([&](LogLevel, SimTime, const std::string& m) {
    got.push_back(m);
  });
  log.log(LogLevel::kInfo, 1_ms, "hello");
  log.log(LogLevel::kTrace, 2_ms, "filtered");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
}

TEST(Logger, SinkSeesLevelAndTime) {
  Logger log;
  log.set_level(LogLevel::kTrace);
  LogLevel seen_level = LogLevel::kOff;
  SimTime seen_time;
  log.set_sink([&](LogLevel l, SimTime t, const std::string&) {
    seen_level = l;
    seen_time = t;
  });
  log.log(LogLevel::kWarn, 7_ms, "x");
  EXPECT_EQ(seen_level, LogLevel::kWarn);
  EXPECT_EQ(seen_time, 7_ms);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Simulation, LogUsesCurrentTime) {
  Simulation sim;
  sim.logger().set_level(LogLevel::kInfo);
  SimTime seen;
  sim.logger().set_sink(
      [&](LogLevel, SimTime t, const std::string&) { seen = t; });
  sim.in(5_ms, [&] { sim.log(LogLevel::kInfo, "tick"); });
  sim.run();
  EXPECT_EQ(seen, 5_ms);
}

TEST(Simulation, UidsAreMonotonic) {
  Simulation sim;
  const auto a = sim.next_uid();
  const auto b = sim.next_uid();
  EXPECT_LT(a, b);
}

TEST(Simulation, SeedControlsRng) {
  Simulation a(9), b(9), c(10);
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  Simulation a2(9);
  EXPECT_NE(a2.rng().next_u64(), c.rng().next_u64());
}

}  // namespace
}  // namespace fhmip
