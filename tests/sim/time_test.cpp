#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_TRUE(t.is_zero());
}

TEST(SimTime, NamedConstructorsScale) {
  EXPECT_EQ(SimTime::nanos(7).ns(), 7);
  EXPECT_EQ(SimTime::micros(3).ns(), 3'000);
  EXPECT_EQ(SimTime::millis(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(5).ns(), 5'000'000'000);
}

TEST(SimTime, Literals) {
  EXPECT_EQ((250_ms).ns(), 250'000'000);
  EXPECT_EQ((3_s).ns(), 3'000'000'000);
  EXPECT_EQ((10_us).ns(), 10'000);
  EXPECT_EQ((42_ns).ns(), 42);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(0.2).ns(), 200'000'000);
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  // Rounding, not truncation.
  EXPECT_EQ(SimTime::from_seconds(2.9999999996e-9).ns(), 3);
}

TEST(SimTime, FromMillis) {
  EXPECT_EQ(SimTime::from_millis(12.5).ns(), 12'500'000);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 100_ms;
  const SimTime b = 40_ms;
  EXPECT_EQ((a + b).ns(), (140_ms).ns());
  EXPECT_EQ((a - b).ns(), (60_ms).ns());
  EXPECT_EQ((a * 3).ns(), (300_ms).ns());
  EXPECT_EQ((3 * a).ns(), (300_ms).ns());
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, 140_ms);
  c -= 40_ms;
  EXPECT_EQ(c, a);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_EQ(1000_ms, 1_s);
  EXPECT_NE(1_ms, 1_us);
}

TEST(SimTime, FloatingAccessors) {
  EXPECT_DOUBLE_EQ((1500_ms).sec(), 1.5);
  EXPECT_DOUBLE_EQ((2_ms).millis_f(), 2.0);
  EXPECT_DOUBLE_EQ((3_us).micros_f(), 3.0);
}

TEST(SimTime, NegativeIntermediate) {
  const SimTime d = 1_ms - 2_ms;
  EXPECT_EQ(d.ns(), -1'000'000);
  EXPECT_LT(d, SimTime{});
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ((3_s).to_string(), "3s");
  EXPECT_EQ((250_ms).to_string(), "250ms");
  EXPECT_EQ(SimTime::nanos(1'500'000'123).to_string(), "1.500000s");
}

}  // namespace
}  // namespace fhmip
