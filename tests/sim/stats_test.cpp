#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(StatsHub, UnknownFlowIsEmpty) {
  StatsHub s;
  const FlowCounters& c = s.flow(42);
  EXPECT_EQ(c.sent, 0u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(c.dropped, 0u);
}

TEST(StatsHub, RecordsSentDeliveredDropped) {
  StatsHub s;
  s.record_sent(1);
  s.record_sent(1);
  s.record_delivery(1, 5_ms, 0, 2_ms, 160);
  s.record_drop(1, DropReason::kQueueOverflow);
  const FlowCounters& c = s.flow(1);
  EXPECT_EQ(c.sent, 2u);
  EXPECT_EQ(c.delivered, 1u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.bytes_delivered, 160u);
  EXPECT_EQ(c.in_flight(), 0u);
}

TEST(StatsHub, DropsByReason) {
  StatsHub s;
  s.record_drop(1, DropReason::kBufferTailDrop);
  s.record_drop(1, DropReason::kBufferTailDrop);
  s.record_drop(1, DropReason::kPolicyDrop);
  const FlowCounters& c = s.flow(1);
  EXPECT_EQ(c.drops_by_reason[static_cast<int>(DropReason::kBufferTailDrop)],
            2u);
  EXPECT_EQ(c.drops_by_reason[static_cast<int>(DropReason::kPolicyDrop)], 1u);
  EXPECT_EQ(s.total_drops(DropReason::kBufferTailDrop), 2u);
  EXPECT_EQ(s.total_drops(DropReason::kWirelessDown), 0u);
}

TEST(StatsHub, TotalsAggregateAcrossFlows) {
  StatsHub s;
  s.record_sent(1);
  s.record_sent(2);
  s.record_sent(2);
  s.record_delivery(2, 1_ms, 0, 1_ms, 100);
  s.record_drop(1, DropReason::kUnattached);
  const FlowCounters t = s.totals();
  EXPECT_EQ(t.sent, 3u);
  EXPECT_EQ(t.delivered, 1u);
  EXPECT_EQ(t.dropped, 1u);
  EXPECT_EQ(t.in_flight(), 1u);
}

TEST(StatsHub, SamplesOnlyWhenEnabled) {
  StatsHub s;
  s.record_delivery(1, 1_ms, 7, 1_ms, 100);
  EXPECT_TRUE(s.samples(1).empty());
  s.set_keep_samples(true);
  s.record_delivery(1, 2_ms, 8, 3_ms, 100);
  ASSERT_EQ(s.samples(1).size(), 1u);
  EXPECT_EQ(s.samples(1)[0].seq, 8u);
  EXPECT_EQ(s.samples(1)[0].delay, 3_ms);
  EXPECT_EQ(s.samples(1)[0].at, 2_ms);
}

TEST(StatsHub, FlowsEnumeration) {
  StatsHub s;
  s.record_sent(3);
  s.record_sent(1);
  s.record_drop(2, DropReason::kNoRoute);
  const auto flows = s.flows();
  EXPECT_EQ(flows, (std::vector<FlowId>{1, 2, 3}));
}

TEST(StatsHub, ResetClearsEverything) {
  StatsHub s;
  s.set_keep_samples(true);
  s.record_sent(1);
  s.record_delivery(1, 1_ms, 0, 1_ms, 10);
  s.reset();
  EXPECT_EQ(s.flow(1).sent, 0u);
  EXPECT_TRUE(s.samples(1).empty());
  EXPECT_TRUE(s.flows().empty());
}

TEST(StatsHub, DropReasonNamesAreDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kNumDropReasons; ++i) {
    names.insert(to_string(static_cast<DropReason>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumDropReasons));
}

}  // namespace
}  // namespace fhmip
