#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_ms);
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(10_ms, [&] {
    s.schedule_in(5_ms, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 15_ms);
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(10_ms, [&] {
    s.schedule_at(2_ms, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(seen, 10_ms);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(1_ms, [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  EXPECT_FALSE(s.pending(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelInvalidAndStaleIdsAreNoops) {
  Scheduler s;
  s.cancel(kInvalidEvent);
  const EventId id = s.schedule_at(1_ms, [] {});
  s.run();
  s.cancel(id);  // already executed
  EXPECT_FALSE(s.pending(id));
}

TEST(Scheduler, CancelOneOfManyAtSameTime) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1_ms, [&] { order.push_back(0); });
  const EventId id = s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(1_ms, [&] { order.push_back(2); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.run_until(2_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 2_ms);
  s.run_until(10_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 10_ms);  // clock advances even with no events
}

TEST(Scheduler, RunUntilExecutesEventsScheduledDuringRun) {
  Scheduler s;
  int count = 0;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) s.schedule_in(1_ms, tick);
  };
  s.schedule_at(1_ms, tick);
  s.run_until(10_ms);
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1_ms, [&] { ++count; });
  s.schedule_at(2_ms, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, MaxEventsBound) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 100; ++i) s.schedule_at(1_ms, [&] { ++count; });
  EXPECT_EQ(s.run(30), 30u);
  EXPECT_EQ(count, 30);
}

TEST(Scheduler, QueueSizeExcludesCancelled) {
  Scheduler s;
  const EventId a = s.schedule_at(1_ms, [] {});
  s.schedule_at(2_ms, [] {});
  EXPECT_EQ(s.queue_size(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.queue_size(), 1u);
  EXPECT_FALSE(s.empty());
}

TEST(Scheduler, EventsExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_at(SimTime::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 4u);
}

TEST(Scheduler, SchedulingFromWithinEvent) {
  Scheduler s;
  std::vector<SimTime> at;
  s.schedule_at(1_ms, [&] {
    at.push_back(s.now());
    s.schedule_in(1_ms, [&] { at.push_back(s.now()); });
    s.schedule_at(s.now(), [&] { at.push_back(s.now()); });  // same time
  });
  s.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 1_ms);
  EXPECT_EQ(at[1], 1_ms);  // same-time event runs before later ones
  EXPECT_EQ(at[2], 2_ms);
}

TEST(Scheduler, RunUntilIncludesSameTimeEventScheduledAtBoundary) {
  // Regression: an event scheduled at exactly `t` *by* an event running at
  // `t` must still execute within run_until(t), not leak past the boundary.
  Scheduler s;
  bool chained = false;
  s.schedule_at(5_ms, [&] {
    s.schedule_at(5_ms, [&] { chained = true; });
  });
  s.run_until(5_ms);
  EXPECT_TRUE(chained);
  EXPECT_EQ(s.now(), 5_ms);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, SlotReuseDoesNotResurrectStaleHandles) {
  // A slot recycled for a new event must not honour the old occupant's id:
  // cancelling or querying the stale handle may not touch the new event.
  Scheduler s;
  const EventId old_id = s.schedule_at(1_ms, [] {});
  s.run();  // slot returns to the free list
  bool ran = false;
  const EventId new_id = s.schedule_at(2_ms, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(s.pending(old_id));
  s.cancel(old_id);  // stale: must be a no-op
  EXPECT_TRUE(s.pending(new_id));
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, CancelledEventsAreSkippedAcrossRunAndRunUntil) {
  // Both dequeue paths (run / run_until) share the cancelled-slot skip; a
  // cancellation must hold whichever one drains the queue.
  Scheduler s;
  std::vector<int> order;
  const EventId a = s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  const EventId c = s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.schedule_at(4_ms, [&] { order.push_back(4); });
  s.cancel(a);
  s.run_until(2_ms);
  s.cancel(c);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 4}));
  s.audit_invariants();
}

TEST(Scheduler, CancelAllThenReuseKeepsAccounting) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(s.schedule_at(SimTime::millis(i), [] {}));
  }
  for (const EventId id : ids) s.cancel(id);
  EXPECT_EQ(s.queue_size(), 0u);
  EXPECT_TRUE(s.empty());
  int count = 0;
  for (int i = 0; i < 64; ++i) {
    s.schedule_at(SimTime::millis(i), [&] { ++count; });
  }
  EXPECT_EQ(s.queue_size(), 64u);
  s.run();
  EXPECT_EQ(count, 64);
  s.audit_invariants();
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  SimTime last;
  bool monotonic = true;
  for (int i = 0; i < 10'000; ++i) {
    s.schedule_at(SimTime::micros((i * 7919) % 10'000), [&] {
      if (s.now() < last) monotonic = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(s.events_executed(), 10'000u);
}

}  // namespace
}  // namespace fhmip
