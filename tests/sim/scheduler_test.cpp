#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_ms);
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(10_ms, [&] {
    s.schedule_in(5_ms, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 15_ms);
}

TEST(Scheduler, PastSchedulingClampsToNow) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(10_ms, [&] {
    s.schedule_at(2_ms, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(seen, 10_ms);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(1_ms, [&] { ran = true; });
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  EXPECT_FALSE(s.pending(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelInvalidAndStaleIdsAreNoops) {
  Scheduler s;
  s.cancel(kInvalidEvent);
  const EventId id = s.schedule_at(1_ms, [] {});
  s.run();
  s.cancel(id);  // already executed
  EXPECT_FALSE(s.pending(id));
}

TEST(Scheduler, CancelOneOfManyAtSameTime) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1_ms, [&] { order.push_back(0); });
  const EventId id = s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(1_ms, [&] { order.push_back(2); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.run_until(2_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 2_ms);
  s.run_until(10_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 10_ms);  // clock advances even with no events
}

TEST(Scheduler, RunUntilExecutesEventsScheduledDuringRun) {
  Scheduler s;
  int count = 0;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) s.schedule_in(1_ms, tick);
  };
  s.schedule_at(1_ms, tick);
  s.run_until(10_ms);
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1_ms, [&] { ++count; });
  s.schedule_at(2_ms, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, MaxEventsBound) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 100; ++i) s.schedule_at(1_ms, [&] { ++count; });
  EXPECT_EQ(s.run(30), 30u);
  EXPECT_EQ(count, 30);
}

TEST(Scheduler, QueueSizeExcludesCancelled) {
  Scheduler s;
  const EventId a = s.schedule_at(1_ms, [] {});
  s.schedule_at(2_ms, [] {});
  EXPECT_EQ(s.queue_size(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.queue_size(), 1u);
  EXPECT_FALSE(s.empty());
}

TEST(Scheduler, EventsExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_at(SimTime::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 4u);
}

TEST(Scheduler, SchedulingFromWithinEvent) {
  Scheduler s;
  std::vector<SimTime> at;
  s.schedule_at(1_ms, [&] {
    at.push_back(s.now());
    s.schedule_in(1_ms, [&] { at.push_back(s.now()); });
    s.schedule_at(s.now(), [&] { at.push_back(s.now()); });  // same time
  });
  s.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], 1_ms);
  EXPECT_EQ(at[1], 1_ms);  // same-time event runs before later ones
  EXPECT_EQ(at[2], 2_ms);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  SimTime last;
  bool monotonic = true;
  for (int i = 0; i < 10'000; ++i) {
    s.schedule_at(SimTime::micros((i * 7919) % 10'000), [&] {
      if (s.now() < last) monotonic = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(s.events_executed(), 10'000u);
}

}  // namespace
}  // namespace fhmip
