// Proves the level-0 contract of the audit macros: they compile to nothing
// and their argument expressions are never evaluated. The build defines
// FHMIP_AUDIT_LEVEL globally (command line), so this translation unit
// overrides it before any header can see it — the macros in sim/check.hpp
// are expanded per-TU against the value visible here.
#undef FHMIP_AUDIT_LEVEL
#define FHMIP_AUDIT_LEVEL 0

#include "sim/check.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fhmip {
namespace {

TEST(CheckLevel0Test, FailingAuditIsCompiledOut) {
  AuditHub::instance().reset_violations();
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  FHMIP_AUDIT("test", false);
  FHMIP_AUDIT_MSG("test", false, std::string("never built"));
  FHMIP_AUDIT2("test", false);
  FHMIP_AUDIT2_MSG("test", false, std::string("never built"));
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(AuditHub::instance().violations(), 0u);
}

TEST(CheckLevel0Test, ConditionExpressionIsNotEvaluated) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return false;
  };
  FHMIP_AUDIT("test", probe());
  FHMIP_AUDIT_MSG("test", probe(), std::string("detail"));
  FHMIP_AUDIT2("test", probe());
  (void)probe;  // referenced only inside compiled-out macros
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace fhmip
