#include "sim/check.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_manager.hpp"
#include "net/queue.hpp"
#include "sim/scheduler.hpp"

// Compiled with the project default FHMIP_AUDIT_LEVEL (>= 1 for test
// builds). The level-0 behaviour is exercised by check_level0_test.cpp,
// a separate translation unit compiled with FHMIP_AUDIT_LEVEL=0.

namespace fhmip {
namespace {

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { AuditHub::instance().reset_violations(); }
};

TEST_F(CheckTest, PassingAuditIsSilent) {
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  FHMIP_AUDIT("test", 1 + 1 == 2);
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(AuditHub::instance().violations(), 0u);
}

TEST_F(CheckTest, FailingAuditReportsThroughSink) {
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  FHMIP_AUDIT("test", 1 + 1 == 3);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].component, "test");
  EXPECT_STREQ(seen[0].expr, "1 + 1 == 3");
  EXPECT_EQ(AuditHub::instance().violations(), 1u);
}

TEST_F(CheckTest, DetailExpressionOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  auto detail = [&] {
    ++evaluations;
    return std::string("context");
  };
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  FHMIP_AUDIT_MSG("test", true, detail());
  EXPECT_EQ(evaluations, 0);
  FHMIP_AUDIT_MSG("test", false, detail());
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].detail, "context");
}

TEST_F(CheckTest, FormatViolationIncludesLocationAndDetail) {
  AuditViolation v;
  v.component = "buffer";
  v.expr = "leased_ <= pool_";
  v.file = "buffer_manager.cpp";
  v.line = 21;
  v.detail = "leased=7 pool=4";
  const std::string s = format_violation(v);
  EXPECT_NE(s.find("[buffer]"), std::string::npos);
  EXPECT_NE(s.find("leased_ <= pool_"), std::string::npos);
  EXPECT_NE(s.find("buffer_manager.cpp:21"), std::string::npos);
  EXPECT_NE(s.find("leased=7 pool=4"), std::string::npos);
}

TEST_F(CheckTest, SinkRestoredAfterScopeExit) {
  std::vector<AuditViolation> outer;
  ScopedAuditSink keep([&](const AuditViolation& v) { outer.push_back(v); });
  {
    std::vector<AuditViolation> inner;
    ScopedAuditSink sink([&](const AuditViolation& v) {
      inner.push_back(v);
    });
    FHMIP_AUDIT("test", false);
    EXPECT_EQ(inner.size(), 1u);
  }
  FHMIP_AUDIT("test", false);
  EXPECT_EQ(outer.size(), 1u);
}

// A BufferManager whose accounting has been deliberately corrupted after the
// fact — the audit sweep must notice the books no longer balance.
class TamperedBufferManager : public BufferManager {
 public:
  using BufferManager::BufferManager;
  void corrupt_leased(std::uint32_t bogus) { leased_ = bogus; }
};

TEST_F(CheckTest, TamperedLeaseAccountingIsCaught) {
  TamperedBufferManager bm(/*pool_pkts=*/10);
  ASSERT_EQ(bm.allocate(BufferManager::key(1, ArRole::kNar), 4), 4u);

  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  bm.audit_invariants();
  EXPECT_TRUE(seen.empty()) << "audits fired on a consistent manager";

  bm.corrupt_leased(bm.pool_pkts() + 5);  // leased > pool
  bm.audit_invariants();
  EXPECT_FALSE(seen.empty()) << "leased > pool went unnoticed";
}

#if FHMIP_AUDIT_LEVEL >= 2
TEST_F(CheckTest, TamperedLeaseSumIsCaughtBySweep) {
  TamperedBufferManager bm(/*pool_pkts=*/10);
  ASSERT_EQ(bm.allocate(BufferManager::key(1, ArRole::kNar), 4), 4u);

  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  bm.corrupt_leased(6);  // still <= pool, but != sum of lease capacities
  bm.audit_invariants();
  EXPECT_FALSE(seen.empty()) << "lease-sum mismatch went unnoticed";
}
#endif

TEST_F(CheckTest, SchedulerAuditSweepIsCleanOnLiveScheduler) {
  Scheduler sched;
  const EventId a = sched.schedule_at(SimTime::millis(1), [] {});
  const EventId b = sched.schedule_at(SimTime::millis(2), [] {});
  sched.cancel(a);
  (void)b;
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  sched.audit_invariants();
  EXPECT_TRUE(seen.empty());
}

}  // namespace
}  // namespace fhmip
