#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fhmip {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // every value appears
}

TEST(Rng, UniformIntSingleton) {
  Rng r(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(23);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.02);
  EXPECT_NEAR(sum / n, 0.02, 0.001);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace fhmip
