#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/check.hpp"

namespace fhmip {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // every value appears
}

TEST(Rng, UniformIntSingleton) {
  Rng r(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntBucketsAreUniform) {
  // Distribution sanity for the Lemire bounded sampler: a range that does
  // not divide 2^64 must still give every value equal probability (the old
  // `% range` draw was structurally biased toward low values).
  Rng r(101);
  constexpr int kBuckets = 6;
  constexpr int kDraws = 120'000;
  std::vector<int> hits(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++hits[static_cast<std::size_t>(r.uniform_int(0, kBuckets - 1))];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    // ~5 sigma for a binomial bucket at p = 1/6.
    EXPECT_NEAR(static_cast<double>(hits[b]), expected, 650.0)
        << "bucket " << b;
  }
}

TEST(Rng, UniformIntHugeRangeStaysInBounds) {
  Rng r(103);
  const std::int64_t lo = INT64_MIN / 2;
  const std::int64_t hi = INT64_MAX / 2;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, UniformIntFullSpanDoesNotHang) {
  Rng r(107);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(r.uniform_int(INT64_MIN, INT64_MAX));
  EXPECT_GT(seen.size(), 60u);  // essentially all draws distinct
}

TEST(Rng, UniformIntInvertedBoundsIsAudited) {
  std::vector<AuditViolation> seen;
  ScopedAuditSink sink([&](const AuditViolation& v) { seen.push_back(v); });
  Rng r(109);
  r.uniform_int(5, 2);
#if FHMIP_AUDIT_LEVEL >= 1
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].component, "rng");
#else
  EXPECT_TRUE(seen.empty());
#endif
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(23);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.02);
  EXPECT_NEAR(sum / n, 0.02, 0.001);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace fhmip
