#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(PacketTrace, DisabledByDefault) {
  PacketTrace t;
  EXPECT_FALSE(t.enabled());
  t.emit(TraceEvent{});  // harmless no-op
}

TEST(PacketTrace, SinkReceivesEmittedEvents) {
  PacketTrace t;
  int count = 0;
  t.set_sink([&](const TraceEvent&) { ++count; });
  EXPECT_TRUE(t.enabled());
  t.emit(TraceEvent{});
  t.emit(TraceEvent{});
  t.clear();
  t.emit(TraceEvent{});
  EXPECT_EQ(count, 2);
}

TEST(PacketTrace, FormatLineContainsFields) {
  TraceEvent e;
  e.at = SimTime::from_seconds(11.312);
  e.kind = TraceKind::kDrop;
  e.where = "par";
  e.uid = 42;
  e.flow = 1;
  e.seq = 917;
  e.bytes = 160;
  e.msg = "data";
  e.reason = DropReason::kUnattached;
  const std::string line = format_trace_line(e);
  EXPECT_NE(line.find("d 11.312000"), std::string::npos);
  EXPECT_NE(line.find("par"), std::string::npos);
  EXPECT_NE(line.find("uid 42"), std::string::npos);
  EXPECT_NE(line.find("seq 917"), std::string::npos);
  EXPECT_NE(line.find("(unattached)"), std::string::npos);
}

TEST(PacketTrace, NonDropFormatOmitsReason) {
  TraceEvent e;
  e.kind = TraceKind::kDeliver;
  e.where = "cn-gw>";
  e.msg = "data";
  const std::string line = format_trace_line(e);
  EXPECT_EQ(line.find('('), std::string::npos);
  EXPECT_EQ(line.substr(0, 1), "r");
}

/// End-to-end: a two-node network emits transmit/deliver/forward events.
TEST(PacketTrace, PipelineEmitsLifecycleEvents) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  net.connect(a, b, 1e6, 1_ms);
  net.compute_routes();
  b.register_port(7, [](PacketPtr) {});

  std::vector<TraceEvent> events;
  sim.trace().set_sink([&](const TraceEvent& e) { events.push_back(e); });

  auto p = make_packet(sim, {1, 1}, {2, 1}, 100);
  p->dst_port = 7;
  p->flow = 3;
  a.send(std::move(p));
  sim.run();

  auto count = [&](TraceKind k) {
    int n = 0;
    for (const auto& e : events) {
      if (e.kind == k) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(TraceKind::kForward), 1);       // routed at a
  EXPECT_EQ(count(TraceKind::kTransmit), 1);      // onto the a->b link
  EXPECT_EQ(count(TraceKind::kDeliver), 1);       // off the link at b
  EXPECT_EQ(count(TraceKind::kLocalDeliver), 1);  // consumed at b
  for (const auto& e : events) {
    EXPECT_EQ(e.flow, 3);
    EXPECT_EQ(e.bytes, 100u);
  }
  // Chronological.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
}

TEST(PacketTrace, DropEventsCarryReason) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node("a");
  a.add_address({1, 1});
  std::vector<TraceEvent> events;
  sim.trace().set_sink([&](const TraceEvent& e) { events.push_back(e); });
  auto p = make_packet(sim, {1, 1}, {9, 9}, 100);  // no route
  p->flow = 1;
  a.send(std::move(p));
  sim.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kDrop);
  EXPECT_EQ(events[0].reason, DropReason::kNoRoute);
}

}  // namespace
}  // namespace fhmip
