// FLOW-01 fixture: packet-obligation dataflow shapes. The analyzer test
// asserts exact rule/line pairs; keep edits line-stable.
#pragma once

struct Flow01 {
  // Clean: created once, moved out on the only path.
  void move_out() {
    PacketPtr p = make_packet();
    consume(std::move(p));
  }

  // Double terminal: the second move re-accounts an already-moved packet.
  void double_terminal() {
    PacketPtr p = make_packet();
    consume(std::move(p));
    consume(std::move(p));
  }

  // Branch-divergent: consumed only on the fast path; the fall-through
  // path reaches the merge still owning the packet.
  void branch_divergent(bool fast) {
    PacketPtr p = make_packet();
    if (fast) {
      consume(std::move(p));
    }
  }

  // Overwrite: the first packet is destroyed silently by the second.
  void overwrite() {
    PacketPtr p = make_packet();
    p = make_packet();
    consume(std::move(p));
  }

  // Loop-carried: the move runs again on the second unrolled iteration.
  void loop_carried() {
    PacketPtr p = make_packet();
    do {
      consume(std::move(p));
    } while (again());
  }

  // Accounted in place: record_drop names the packet, so it may die at
  // scope end without a move (the ledger idiom).
  void accounted() {
    PacketPtr p = make_packet();
    record_drop(p);
  }

  // Null-refined: the fall-through path only exists when the packet is
  // empty, so no path leaks.
  void null_checked() {
    PacketPtr p = maybe_packet();
    if (p != nullptr) {
      consume(std::move(p));
    }
  }

  // Justified: same leak shape as branch_divergent, suppressed inline.
  void justified(bool fast) {
    PacketPtr p = make_packet();
    if (fast) consume(std::move(p));  // NOLINT-FHMIP(FLOW-01) scratch probe
  }
};

// Sink function: its by-value owning parameter is allowed to die here.
inline void drop(PacketPtr p) { ++drop_count; }
