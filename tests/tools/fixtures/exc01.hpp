#pragma once
// EXC-01 fixture: throw escaping a destructor (positive), a suppressed
// throw in a noexcept function (negative), and a caught throw plus a
// noexcept(false) destructor that must stay silent.

namespace fix {

class ThrowingDtor {
 public:
  ~ThrowingDtor() {
    if (bad_) throw bad_;
  }

 private:
  int bad_ = 0;
};

class SuppressedThrow {
 public:
  void f() noexcept {
    throw 1;  // NOLINT-FHMIP(EXC-01)
  }
};

class CaughtThrow {
 public:
  ~CaughtThrow() {
    try {
      throw 1;
    } catch (...) {
    }
  }
};

class OptedOutDtor {
 public:
  ~OptedOutDtor() noexcept(false) {
    throw 1;
  }
};

}  // namespace fix
