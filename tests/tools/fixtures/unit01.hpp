// UNIT-01 fixture: raw-literal unit conversions and unit mixing in
// SimTime arithmetic. The analyzer test asserts exact lines.
#pragma once

struct Unit01 {
  // U1: two different unit views joined additively.
  long mixed(SimTime a, SimTime b) { return a.ns() + b.sec(); }

  // U2: view scaled by a power-of-10 literal (both operand orders).
  long scaled(SimTime t) { return t.ns() / 1000000; }
  long scaled_left(SimTime t) { return 1000 * t.millis_f(); }

  // U3: raw literal added to a nanosecond count.
  long raw_add(SimTime d) { return d.ns() + 1000; }

  // U4: float literal into an integer named constructor.
  SimTime truncated() { return SimTime::millis(0.5); }

  // Suppressed: deliberate conversion, justified at the site.
  long ok(SimTime t) { return t.ns() / 1000; }  // NOLINT-FHMIP(UNIT-01) x

  // Silent: non-power-of-10 factor and same-unit arithmetic.
  long clean(SimTime t, SimTime u) { return t.sec() * 3 + u.sec(); }
};
