#pragma once
// DET-02 fixture for the observability export surfaces: emitting trace or
// JSON output while iterating an unordered container is hash-order
// dependent and breaks the byte-compared golden/sweep exports. Covers the
// positive, the inline-suppressed twin, and the sorted-snapshot idiom.

namespace fix {

class HashOrderExporter {
 public:
  void export_all() {
    for (const auto& [uid, ev] : live_) {
      sink_.emit(ev);
    }
  }
  void export_suppressed() {
    for (const auto& [uid, ev] : live_) {  // NOLINT-FHMIP(DET-02)
      sink_.emit(ev);
    }
  }
  void export_sorted() {
    std::vector<int> uids;
    for (const auto& [uid, ev] : live_) {
      uids.push_back(uid);
    }
    std::sort(uids.begin(), uids.end());
    for (int uid : uids) {
      sink_.emit(live_.at(uid));
    }
  }

 private:
  std::unordered_map<int, int> live_;
  Sink sink_;
};

}  // namespace fix
