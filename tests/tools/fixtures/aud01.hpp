#pragma once
// AUD-01 fixture: a class that audits in one method but exposes a public
// mutator that neither audits nor delegates (positive), a suppressed
// mutator (negative), and a delegating mutator that must stay silent.

namespace fix {

class AuditedCounter {
 public:
  void check() const { FHMIP_AUDIT("fix", n_ >= 0); }

  void bump() {
    ++n_;
  }

  void bump_quiet() {  // NOLINT-FHMIP(AUD-01)
    ++n_;
  }

  void bump_checked() {
    ++n_;
    check();
  }

 private:
  int n_ = 0;
};

}  // namespace fix
