#pragma once
// DET-01 fixture: wall-clock use and an address-keyed container
// (positives), plus an inline-suppressed clock read (negative).

namespace fix {

class WallClockUser {
 public:
  void sample() {
    t0_ = std::chrono::steady_clock::now();
  }
  void sample_reported() {
    // Timing for the stderr report only, never the deterministic stdout.
    t1_ = std::chrono::steady_clock::now();  // NOLINT-FHMIP(DET-01)
  }

 private:
  std::chrono::steady_clock::time_point t0_;  // NOLINT-FHMIP(DET-01)
  std::chrono::steady_clock::time_point t1_;  // NOLINT-FHMIP(DET-01)
};

class AddressKeyed {
 private:
  std::map<const Flow*, int> by_ptr_;
};

}  // namespace fix
