// PROTO-02 fixture single-fault matrix: one row label per wire name.
const char* kMatrixRows[] = {"Ping", "Pong"};
