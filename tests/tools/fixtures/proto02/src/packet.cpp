// PROTO-02 fixture wire-name renderer.
#include "messages.hpp"

const char* message_name(int kind) {
  switch (kind) {
    case 1: return "Ping";
    case 2: return "Pong";
  }
  return "?";
}
