// PROTO-02 fixture agents: a guarded requester and a dedup'd responder.
#pragma once
#include "messages.hpp"

// Requester: sends Ping under a retransmission timer, counts Pong replies.
class Prober {
 public:
  void arm();
  void probe();
  void handle_pong(const MessageVariant& m);

 private:
  unsigned pong_seen_ = 0;
};

// Responder: answers Ping, suppressing duplicates via dup_ping_.
class Echoer {
 public:
  void handle_ping(const MessageVariant& m);

 private:
  unsigned dup_ping_ = 0;
};
