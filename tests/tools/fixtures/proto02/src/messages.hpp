// PROTO-02 fixture variant header (scratch control-plane protocol).
#pragma once
#include <variant>

struct PingMsg { unsigned seq = 0; };
struct PongMsg { unsigned seq = 0; };
struct LegacyMsg {};

using MessageVariant =
    std::variant<std::monostate, PingMsg, PongMsg, LegacyMsg>;
