#include "agent.hpp"

void send(const MessageVariant& m);

void Prober::arm() {}

void Prober::probe() {
  PingMsg ping{1};
  send(MessageVariant{ping});
  arm();
}

void Prober::handle_pong(const MessageVariant& m) {
  if (std::get_if<PongMsg>(&m) != nullptr) ++pong_seen_;
}

void Echoer::handle_ping(const MessageVariant& m) {
  if (std::get_if<PingMsg>(&m) != nullptr) {
    ++dup_ping_;
    PongMsg pong{1};
    send(MessageVariant{pong});
  }
}
