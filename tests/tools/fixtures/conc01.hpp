#pragma once

#include <atomic>

namespace fx_conc {

int g_counter = 0;             // mutable namespace-scope, unprotected
std::atomic<int> g_atomic{0};  // protected: atomic

inline void helper() {
  ++g_counter;  // active, via run_case -> helper
  ++g_atomic;   // silent: atomic
}

// Sweep-root per-run closure (fixture roots.toml).
inline void run_case() { helper(); }

inline void touch_quiet() {
  ++g_counter;  // NOLINT-FHMIP(CONC-01) serialized by the fixture barrier
}

inline void run_quiet() { touch_quiet(); }

}  // namespace fx_conc
