#pragma once

#include <variant>

namespace fx_proto {

struct FbuMsg {
  int id = 0;
};
struct AckMsg {
  int id = 0;
};

class Sock {
 public:
  void send(const FbuMsg&) {}
  void send(const AckMsg&) {}
};

// Constructs the request and sends it with no timer anywhere in the
// class: active at the send line.
class BareSender {
 public:
  void kick() {
    FbuMsg m;
    sock_.send(m);
  }

 private:
  Sock sock_;
};

// Same send, but a sibling method arms the retransmission timer: silent.
class GuardedSender {
 public:
  void kick() {
    FbuMsg m;
    sock_.send(m);
  }
  void on_timeout() { arm(); }
  void arm() {}

 private:
  Sock sock_;
};

// Responder: names FbuMsg only as a template argument while replying.
// Exempt — the requester's retransmission re-elicits the reply.
class Responder {
 public:
  void handle(std::variant<FbuMsg, AckMsg>& v) {
    if (std::get_if<FbuMsg>(&v)) sock_.send(ack_);
  }

 private:
  Sock sock_;
  AckMsg ack_;
};

// Justified sender: suppressed inline.
class JustifiedSender {
 public:
  void kick() {
    FbuMsg m;
    // best-effort hint, recovered by refresh. NOLINT-FHMIP(PROTO-01)
    sock_.send(m);
  }

 private:
  Sock sock_;
};

}  // namespace fx_proto
