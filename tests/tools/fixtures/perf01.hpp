#pragma once

#include <map>
#include <memory>
#include <vector>

namespace fx_perf {

struct Packet {
  int id = 0;
};

class Forwarder {
 public:
  // Root (fixture roots.toml). Two hops below it, store() allocates.
  void transmit(int id) {
    enqueue(id);
    scratch(id);
  }

  void enqueue(int id) {
    counts_[id] += 1;  // active: map operator[] inserts on miss
    store(id);
  }

  void store(int id) {
    q_.push_back(id);                     // active: vector growth
    auto p = std::make_shared<Packet>();  // active: configured alloc call
    (void)p;
  }

  void cold_path(int id) {
    log_.push_back(id);  // unreachable from the root: silent
  }

  void scratch(int id) {
    scratch_.push_back(id);  // NOLINT-FHMIP(PERF-01) pre-sized in ctor
  }

 private:
  std::vector<int> q_;
  std::vector<int> log_;
  std::vector<int> scratch_;
  std::map<int, int> counts_;
};

}  // namespace fx_perf
