#pragma once
// DET-02 fixture: ordering-sensitive output built by iterating an
// unordered container (positive), plus the same loop inline-suppressed
// (negative) and a sorted-snapshot loop that must stay silent.

namespace fix {

class HashOrderDumper {
 public:
  void dump() {
    for (const auto& [id, count] : counts_) {
      order_.push_back(id);
    }
  }
  void dump_suppressed() {
    for (const auto& [id, count] : counts_) {  // NOLINT-FHMIP(DET-02)
      order_.push_back(id);
    }
  }
  void dump_sorted() {
    std::vector<int> ids;
    for (const auto& [id, count] : counts_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (int id : ids) {
      order_.push_back(id);
    }
  }

 private:
  std::unordered_map<int, int> counts_;
  std::vector<int> order_;
};

}  // namespace fix
