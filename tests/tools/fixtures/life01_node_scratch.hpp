#pragma once
// LIFE-01 acceptance fixture: the PR 1 dangling-handler bug, reintroduced
// against a scratch copy of the real src/net/node.hpp (the test stages
// both files into a temporary root). The client registers a this-capturing
// control handler and never removes it — exactly the pattern ASan caught.

#include "net/node.hpp"

namespace fix {

class BadControlClient {
 public:
  explicit BadControlClient(Node& node) : node_(node) {
    ctrl_id_ = node_.add_control_handler(
        [this](PacketPtr& p) { return handle(p); });
  }
  // Bug under test: no destructor calling remove_control_handler(ctrl_id_).

  bool handle(PacketPtr& p);

 private:
  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
};

}  // namespace fix
