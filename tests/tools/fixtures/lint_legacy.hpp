#pragma once
// Legacy-rule fixture: proves the former fhmip_lint conventions survived
// the fold into fhmip_analyze (banned-random positive + suppressed).

namespace fix {

inline int roll() {
  return rand();
}

inline int roll_suppressed() {
  return rand();  // NOLINT-FHMIP(banned-random)
}

}  // namespace fix
