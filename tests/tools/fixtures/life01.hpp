#pragma once
// LIFE-01 fixture: a this-capturing timer registered without a cancelling
// destructor (positive), and the same pattern inline-suppressed (negative).
// The corpus is analyzed, never compiled, so the types are stand-ins.

namespace fix {

class LeakyTicker {
 public:
  void arm() {
    sim_.in(delay_, [this] { fire(); });
  }
  void fire();

 private:
  Simulation& sim_;
  SimTime delay_;
};

class JustifiedTicker {
 public:
  void arm() {
    // The scheduler is a member: pending events die (unrun) with *this.
    sim_.in(delay_, [this] { fire(); });  // NOLINT-FHMIP(LIFE-01)
  }
  void fire();

 private:
  Simulation sim_;
  SimTime delay_;
};

class TidyTicker {
 public:
  ~TidyTicker() { sim_.cancel(ev_); }
  void arm() {
    ev_ = sim_.in(delay_, [this] { fire(); });
  }
  void fire();

 private:
  Simulation& sim_;
  SimTime delay_;
  EventId ev_ = kInvalidEvent;
};

}  // namespace fix
