#pragma once

namespace fx_lex {

// Raw string: the body below holds a quote, a // marker, and a rand()
// call — all inert. Line numbering must survive the embedded newlines
// so the NOLINT after it still lands on its own line.
inline const char* kDoc = R"(line one
  "quoted" // rand() inside a raw string is not a call
  still raw
)";

inline int after_raw() { return rand(); }  // NOLINT-FHMIP(banned-random) fixture: proves lines stay in sync after a raw string

// A // inside a regular string must not start a comment: mis-stripping
// would delete the call after the semicolon and miss the finding.
inline const char* kUrl = "http://x"; inline int in_line() { return rand(); }

// A digit separator must not open a char literal: mishandling would
// swallow everything up to the next apostrophe, including the call.
inline constexpr long kBig = 1'000'000; inline int sep() { return rand(); }

}  // namespace fx_lex
