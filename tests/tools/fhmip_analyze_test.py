#!/usr/bin/env python3
"""Fixture tests for fhmip_analyze.

Stages the deliberately-broken corpus from tests/tools/fixtures/ into a
temporary repo root (under src/, so the src-gated rules DET-01/AUD-01 see
it), runs the analyzer CLI per rule, and asserts the exact rule IDs and
line numbers of every active and suppressed finding. Also covers the
baseline round-trip (write → clean run → stale detection) and the
acceptance scenario: LIFE-01 re-detects the PR 1 dangling-handler pattern
reintroduced against a scratch copy of the real src/net/node.hpp.

Run directly or via ctest (registered as fhmip_analyze_fixtures).
"""

import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
ANALYZE = REPO / "tools" / "analyze" / "fhmip_analyze.py"
FIXTURES = REPO / "tests" / "tools" / "fixtures"


def run_analyze(root, *args):
    """Returns (exit_code, stdout, findings) where findings is the list of
    (rule, path, line, suppressed) tuples parsed from the SARIF output."""
    out_json = Path(root) / "out.json"
    proc = subprocess.run(
        [sys.executable, str(ANALYZE), str(root), "src",
         "--json", str(out_json), *args],
        capture_output=True, text=True)
    findings = []
    if out_json.exists():
        doc = json.loads(out_json.read_text())
        for r in doc["runs"][0]["results"]:
            if r["ruleId"] == "stale-baseline":
                findings.append(("stale-baseline", "", 0, False))
                continue
            loc = r["locations"][0]["physicalLocation"]
            findings.append((r["ruleId"],
                             loc["artifactLocation"]["uri"],
                             loc["region"]["startLine"],
                             bool(r.get("suppressions"))))
    return proc.returncode, proc.stdout + proc.stderr, findings


class FixtureRoot(unittest.TestCase):
    """Each test gets a scratch root with the corpus staged under src/."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="fhmip_analyze_")
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def stage(self, fixture, dest=None):
        dst = self.root / "src" / (dest or fixture)
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / fixture, dst)
        return "src/" + (dest or fixture)

    def assert_findings(self, rule, path, active_lines, suppressed_lines,
                        extra=()):
        code, out, findings = run_analyze(self.root, "--no-baseline",
                                          "--rules", rule, *extra)
        got_active = sorted(l for r, p, l, s in findings
                            if r == rule and p == path and not s)
        got_suppressed = sorted(l for r, p, l, s in findings
                                if r == rule and p == path and s)
        self.assertEqual(got_active, sorted(active_lines), out)
        self.assertEqual(got_suppressed, sorted(suppressed_lines), out)
        self.assertEqual(code, 1 if active_lines else 0, out)


class TestSemanticRules(FixtureRoot):
    def test_life01_fires_and_suppresses(self):
        p = self.stage("life01.hpp")
        # Positive in LeakyTicker::arm; NOLINT in JustifiedTicker::arm;
        # TidyTicker cancels in its destructor and stays silent.
        self.assert_findings("LIFE-01", p, [11], [24])

    def test_det01_fires_and_suppresses(self):
        p = self.stage("det01.hpp")
        # steady_clock read + pointer-keyed map are active; the reported
        # clock read and the two time_point fields are NOLINTed.
        self.assert_findings("DET-01", p, [10, 24], [14, 18, 19])

    def test_det02_fires_and_suppresses(self):
        p = self.stage("det02.hpp")
        # Hash-order push_back loop is active; the NOLINTed twin is
        # suppressed; the collect-then-sort snapshot variant is silent.
        self.assert_findings("DET-02", p, [11], [16])

    def test_det02_covers_obs_export_surfaces(self):
        # emit()/to_json()-style renderings are byte-compared by the
        # golden-trace and sweep determinism tests, so feeding them from a
        # hash-ordered loop must fire like any print; the sorted-snapshot
        # variant stays silent.
        p = self.stage("det02_obs.hpp")
        self.assert_findings("DET-02", p, [12], [17])

    def test_aud01_fires_and_suppresses(self):
        p = self.stage("aud01.hpp")
        # bump() mutates without auditing; bump_quiet() is NOLINTed;
        # bump_checked() delegates to the auditing check().
        self.assert_findings("AUD-01", p, [12], [16])

    def test_exc01_fires_and_suppresses(self):
        p = self.stage("exc01.hpp")
        # Throwing dtor is active; noexcept throw is NOLINTed; caught
        # throw and noexcept(false) dtor are silent.
        self.assert_findings("EXC-01", p, [11], [21])

    def test_legacy_lint_rule_folded(self):
        p = self.stage("lint_legacy.hpp")
        self.assert_findings("banned-random", p, [8], [12])


class TestLexerCorners(FixtureRoot):
    def test_raw_strings_separators_and_slashes_in_strings(self):
        # Raw-string body (with a quote, a //, and a rand()) is inert and
        # keeps line numbers in sync for the NOLINT after it; // inside a
        # regular string does not comment out the rest of the line; a
        # digit separator does not open a char literal.
        p = self.stage("lex_corners.hpp")
        self.assert_findings("banned-random", p, [17, 21], [13])


ROOTS = ("--roots", str(FIXTURES / "roots_fixture.toml"))


class TestCallGraphRules(FixtureRoot):
    def test_perf01_reachable_allocations(self):
        # Map subscript, vector growth, and a configured alloc call, all
        # reachable from the declared root; the unreachable cold_path and
        # the NOLINTed scratch vector stay out.
        p = self.stage("perf01.hpp")
        self.assert_findings("PERF-01", p, [22, 27, 28], [37], extra=ROOTS)

    def test_perf01_multi_hop_reachability_path(self):
        # The store() findings sit two hops below the root; both the text
        # report and the SARIF codeFlow carry the full chain.
        self.stage("perf01.hpp")
        code, out, _ = run_analyze(self.root, "--no-baseline",
                                   "--rules", "PERF-01", *ROOTS)
        self.assertEqual(code, 1, out)
        chain = "Forwarder::transmit -> Forwarder::enqueue -> Forwarder::store"
        self.assertIn("reachable via: " + chain, out)
        doc = json.loads((self.root / "out.json").read_text())
        flows = [loc["location"]["message"]["text"]
                 for r in doc["runs"][0]["results"]
                 if r.get("codeFlows")
                 for loc in r["codeFlows"][0]["threadFlows"][0]["locations"]]
        self.assertIn("Forwarder::store", flows, out)

    def test_perf01_unmatched_root_is_a_finding(self):
        self.stage("perf01.hpp")
        bad = self.root / "bad_roots.toml"
        bad.write_text('[PERF-01]\nroots = ["Gone::away"]\n')
        code, out, findings = run_analyze(
            self.root, "--no-baseline", "--rules", "PERF-01",
            "--roots", str(bad))
        self.assertEqual(code, 1, out)
        self.assertIn(("PERF-01", "tools/analyze/roots.toml", 1, False),
                      findings, out)

    def test_conc01_sweep_reachable_global_state(self):
        # helper() touches the bare global via the sweep root; the atomic
        # twin is silent and the justified touch is suppressed.
        p = self.stage("conc01.hpp")
        self.assert_findings("CONC-01", p, [11], [19], extra=ROOTS)

    def test_proto01_send_guard_pairing(self):
        # BareSender sends an unguarded request (active); GuardedSender's
        # class arms a timer (silent); Responder only names the type as a
        # template argument (exempt); JustifiedSender is NOLINTed.
        p = self.stage("proto01.hpp", "fastho/proto01.hpp")
        self.assert_findings("PROTO-01", p, [26], [66], extra=ROOTS)


class TestDataflowRules(FixtureRoot):
    def test_flow01_path_shapes(self):
        # double_terminal's second move (16), branch_divergent's merge leak
        # (the if line, 23), overwrite (31), and the loop-carried double on
        # the unrolled second iteration (39). move_out, accounted,
        # null_checked, and the drop sink stay silent; the justified leak
        # is NOLINTed at the merge line.
        p = self.stage("flow01.hpp")
        self.assert_findings("FLOW-01", p, [16, 23, 31, 39], [62],
                             extra=ROOTS)

    def test_unit01_shapes(self):
        # U1 mixed views (7), U2 raw factor both operand orders (10, 11),
        # U3 raw literal on .ns() (14), U4 float into an integer named
        # constructor (17); the justified conversion is NOLINTed (20).
        p = self.stage("unit01.hpp")
        self.assert_findings("UNIT-01", p, [7, 10, 11, 14, 17], [20],
                             extra=ROOTS)

    def test_unit01_exempt_file_is_silent(self):
        # The same violations staged under an exempt_files path (the
        # SimTime-implementation carve-out) produce nothing.
        p = self.stage("unit01.hpp", "unit01_exempt.hpp")
        self.assert_findings("UNIT-01", p, [], [], extra=ROOTS)


PROTO02 = FIXTURES / "proto02"


class TestProtocolConformance(FixtureRoot):
    """PROTO-02 against the scratch ping/pong tree: clean as shipped, and
    provably failing when one leg of the reliability quad is removed."""

    def stage_tree(self):
        shutil.copytree(PROTO02 / "src", self.root / "src",
                        dirs_exist_ok=True)
        shutil.copytree(PROTO02 / "tests", self.root / "tests")
        shutil.copy(PROTO02 / "protocol.toml", self.root / "protocol.toml")

    def run_proto(self):
        return run_analyze(self.root, "--no-baseline",
                           "--rules", "PROTO-02",
                           "--protocol", str(self.root / "protocol.toml"))

    def mutate(self, rel, old, new):
        f = self.root / rel
        text = f.read_text()
        self.assertIn(old, text, f"fixture drifted: {old!r} not in {rel}")
        f.write_text(text.replace(old, new))

    def test_conforming_tree_is_clean(self):
        self.stage_tree()
        code, out, findings = self.run_proto()
        self.assertEqual(code, 0, out)
        self.assertEqual([f for f in findings if not f[3]], [], out)

    def test_missing_retransmit_guard_fails(self):
        self.stage_tree()
        self.mutate("src/agent.cpp", "  arm();\n", "")
        code, out, findings = self.run_proto()
        self.assertEqual(code, 1, out)
        self.assertIn(("PROTO-02", "src/messages.hpp", 5, False),
                      findings, out)
        self.assertIn("retransmission-timer guard", out)

    def test_missing_dedup_state_fails(self):
        self.stage_tree()
        for rel in ("src/agent.hpp", "src/agent.cpp"):
            self.mutate(rel, "dup_ping_", "dup_gone_")
        code, out, findings = self.run_proto()
        self.assertEqual(code, 1, out)
        self.assertIn(("PROTO-02", "src/messages.hpp", 5, False),
                      findings, out)
        self.assertIn("not provably duplicate-safe", out)

    def test_missing_fault_matrix_row_fails(self):
        self.stage_tree()
        self.mutate("tests/fault_matrix.cpp", '"Ping"', '"PingRetired"')
        code, out, findings = self.run_proto()
        self.assertEqual(code, 1, out)
        self.assertIn(("PROTO-02", "src/messages.hpp", 5, False),
                      findings, out)
        self.assertIn("fault-matrix row", out)

    def test_missing_receiver_fails(self):
        self.stage_tree()
        self.mutate("src/agent.cpp",
                    "std::get_if<PongMsg>(&m) != nullptr", "false")
        code, out, findings = self.run_proto()
        self.assertEqual(code, 1, out)
        self.assertIn(("PROTO-02", "src/messages.hpp", 6, False),
                      findings, out)
        self.assertIn("has no receiver", out)

    def test_uncatalogued_alternative_fails(self):
        self.stage_tree()
        self.mutate("src/messages.hpp", "struct LegacyMsg {};",
                    "struct LegacyMsg {};\nstruct RogueMsg {};")
        self.mutate("src/messages.hpp", "LegacyMsg>;",
                    "LegacyMsg, RogueMsg>;")
        code, out, findings = self.run_proto()
        self.assertEqual(code, 1, out)
        self.assertIn(("PROTO-02", "src/messages.hpp", 8, False),
                      findings, out)
        self.assertIn("not catalogued", out)

    def test_absent_catalogue_skips(self):
        self.stage_tree()
        (self.root / "protocol.toml").unlink()
        code, out, findings = self.run_proto()
        self.assertEqual(code, 0, out)
        self.assertEqual(findings, [], out)


class TestTierOutput(FixtureRoot):
    def test_json_per_tier_splits_by_tier(self):
        self.stage("flow01.hpp")
        self.stage("lint_legacy.hpp")
        outdir = self.root / "sarif"
        run_analyze(self.root, "--no-baseline",
                    "--json-per-tier", str(outdir), *ROOTS)
        flow = json.loads((outdir / "analyze-dataflow.sarif").read_text())
        lint = json.loads((outdir / "analyze-lint.sarif").read_text())
        flow_rules = {r["ruleId"] for r in flow["runs"][0]["results"]}
        lint_rules = {r["ruleId"] for r in lint["runs"][0]["results"]}
        self.assertIn("FLOW-01", flow_rules)
        self.assertIn("banned-random", lint_rules)
        self.assertNotIn("banned-random", flow_rules)
        self.assertNotIn("FLOW-01", lint_rules)

    def test_tier_filter_selects_dataflow_rules(self):
        self.stage("flow01.hpp")
        self.stage("lint_legacy.hpp")
        code, out, findings = run_analyze(self.root, "--no-baseline",
                                          "--tier", "dataflow", *ROOTS)
        self.assertEqual(code, 1, out)
        rules = {r for r, _, _, s in findings if not s}
        self.assertIn("FLOW-01", rules)
        self.assertNotIn("banned-random", rules)


class TestFixBaseline(FixtureRoot):
    def write_bl(self, bl):
        subprocess.run(
            [sys.executable, str(ANALYZE), str(self.root), "src",
             "--write-baseline", "--baseline", str(bl)],
            capture_output=True, text=True, check=True)

    def fix_bl(self, bl):
        return subprocess.run(
            [sys.executable, str(ANALYZE), str(self.root), "src",
             "--fix-baseline", "--baseline", str(bl)],
            capture_output=True, text=True)

    def test_rewrite_preserves_justifications(self):
        src = self.root / "src" / "fixme.hpp"
        src.write_text("#pragma once\nint jitter() { return rand(); }\n")
        bl = self.root / "baseline.txt"
        self.write_bl(bl)
        bl.write_text(bl.read_text().replace(
            "TODO: justify or fix", "reviewed: fixture scratch jitter"))
        code, out, _ = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 0, out)

        # The flagged line changes shape: the fingerprint goes stale while
        # the finding (same rule, same file) persists. --fix-baseline must
        # rewrite the fingerprint in place and keep the justification.
        src.write_text("#pragma once\nint jitter() { return rand() % 7; }\n")
        code, out, _ = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 1, out)
        self.assertIn("stale", out)

        proc = self.fix_bl(bl)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("1 fingerprint(s) rewritten", proc.stdout)
        text = bl.read_text()
        self.assertIn("reviewed: fixture scratch jitter", text)
        self.assertNotIn("TODO", text)
        code, out, _ = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 0, out)

    def test_deletes_dead_entries_and_appends_new_findings(self):
        a = self.root / "src" / "a.hpp"
        b = self.root / "src" / "b.hpp"
        a.write_text("#pragma once\nint one() { return rand(); }\n")
        bl = self.root / "baseline.txt"
        self.write_bl(bl)
        bl.write_text(bl.read_text().replace(
            "TODO: justify or fix", "old entry for a"))
        # a.hpp's violation disappears entirely; b.hpp gains a new one.
        a.write_text("#pragma once\nint one() { return 1; }\n")
        b.write_text("#pragma once\nint two() { return rand(); }\n")
        proc = self.fix_bl(bl)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        text = bl.read_text()
        self.assertNotIn("old entry for a", text)
        self.assertNotIn("src/a.hpp", text)
        self.assertIn("src/b.hpp", text)
        self.assertIn("new findings", text)
        self.assertIn("TODO: justify or fix", text)
        code, out, _ = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 0, out)


class TestTokenCacheIdentity(FixtureRoot):
    def test_cached_and_cold_runs_produce_identical_findings(self):
        self.stage("perf01.hpp")
        self.stage("conc01.hpp")
        self.stage("lex_corners.hpp")
        cold = run_analyze(self.root, "--no-baseline", "--no-cache", *ROOTS)
        warm_fill = run_analyze(self.root, "--no-baseline", *ROOTS)
        warm_hit = run_analyze(self.root, "--no-baseline", *ROOTS)
        cache_dir = self.root / "build" / "analyze_cache"
        self.assertTrue(any(cache_dir.rglob("*.pkl")),
                        "cache produced no entries")
        self.assertEqual(cold[2], warm_fill[2], warm_fill[1])
        self.assertEqual(cold[2], warm_hit[2], warm_hit[1])
        self.assertEqual(cold[0], warm_hit[0])

    def test_edited_file_invalidates_its_entry(self):
        p = self.stage("conc01.hpp")
        before = run_analyze(self.root, "--no-baseline",
                             "--rules", "CONC-01", *ROOTS)
        src = self.root / p
        src.write_text("\n" + src.read_text())  # shift every line by one
        after = run_analyze(self.root, "--no-baseline",
                            "--rules", "CONC-01", *ROOTS)
        shifted = [(r, pp, l + 1, s) for r, pp, l, s in before[2]]
        self.assertEqual(sorted(shifted), sorted(after[2]), after[1])

    def test_spec_edit_starts_fresh_cache_version(self):
        # The cache directory is versioned by a digest over the analyzer
        # sources and spec files; editing a spec passed on the command
        # line must land in a fresh version dir and prune the old one.
        self.stage("conc01.hpp")
        myroots = self.root / "myroots.toml"
        shutil.copy(FIXTURES / "roots_fixture.toml", myroots)
        run_analyze(self.root, "--no-baseline", "--roots", str(myroots))
        cache_root = self.root / "build" / "analyze_cache"
        first = {d.name for d in cache_root.glob("v*")}
        self.assertEqual(len(first), 1)
        myroots.write_text(myroots.read_text() + "\n# touched\n")
        run_analyze(self.root, "--no-baseline", "--roots", str(myroots))
        second = {d.name for d in cache_root.glob("v*")}
        self.assertEqual(len(second), 1, "superseded version not pruned")
        self.assertNotEqual(first, second)


class TestNodeScratchRedetection(FixtureRoot):
    def test_life01_redetects_pr1_dangling_handler(self):
        # Scratch copy of the real header plus a client that reintroduces
        # the PR 1 bug: handler registered, never removed in a destructor.
        shutil.copy(REPO / "src" / "net" / "node.hpp",
                    self.root / "src" / "node.hpp")
        p = self.stage("life01_node_scratch.hpp")
        code, out, findings = run_analyze(self.root, "--no-baseline",
                                          "--rules", "LIFE-01")
        self.assertEqual(code, 1, out)
        hits = [(r, pp, l) for r, pp, l, s in findings if not s]
        self.assertEqual(hits, [("LIFE-01", p, 14)], out)

    def test_current_node_header_is_clean(self):
        shutil.copy(REPO / "src" / "net" / "node.hpp",
                    self.root / "src" / "node.hpp")
        code, out, findings = run_analyze(self.root, "--no-baseline",
                                          "--rules", "LIFE-01")
        self.assertEqual(code, 0, out)
        self.assertEqual([f for f in findings if not f[3]], [], out)


class TestBaselineRoundTrip(FixtureRoot):
    def test_write_then_load_is_clean_and_stale_fails(self):
        self.stage("life01.hpp")
        self.stage("exc01.hpp")
        bl = self.root / "baseline.txt"

        # 1. Active findings fail the run.
        code, out, _ = run_analyze(self.root, "--no-baseline")
        self.assertEqual(code, 1, out)

        # 2. Write a baseline covering them; the run is now clean.
        subprocess.run(
            [sys.executable, str(ANALYZE), str(self.root), "src",
             "--write-baseline", "--baseline", str(bl)],
            capture_output=True, text=True, check=True)
        code, out, findings = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 0, out)
        self.assertTrue(any(s for _, _, _, s in findings), out)

        # 3. An entry matching nothing is stale and fails the run.
        with bl.open("a") as f:
            f.write("LIFE-01  src/gone.hpp  deadbeef  file was deleted\n")
        code, out, findings = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 1, out)
        self.assertIn("stale", out)
        self.assertIn(("stale-baseline", "", 0, False), findings)

        # 4. A malformed entry (missing justification) is a config error.
        bl.write_text("LIFE-01  src/life01.hpp  *\n")
        code, out, _ = run_analyze(self.root, "--baseline", str(bl))
        self.assertEqual(code, 2, out)


class TestRepoIsClean(unittest.TestCase):
    def test_repo_scan_matches_baseline(self):
        proc = subprocess.run([sys.executable, str(ANALYZE), str(REPO)],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
