#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Packet, MakePacketStampsUidAndTime) {
  Simulation sim;
  sim.scheduler().schedule_at(3_ms, [] {});
  sim.run();
  auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
  EXPECT_GT(p->uid, 0u);
  EXPECT_EQ(p->created_at, 3_ms);
  EXPECT_EQ(p->size_bytes, 160u);
  auto q = make_packet(sim, {1, 1}, {2, 2}, 160);
  EXPECT_NE(p->uid, q->uid);
}

TEST(Packet, EncapsulatePushesAndGrows) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->encapsulate({3, 3});
  EXPECT_EQ(p->dst, (Address{3, 3}));
  EXPECT_EQ(p->size_bytes, 100u + kIpHeaderBytes);
  ASSERT_TRUE(p->tunneled());
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{2, 2}));
  EXPECT_EQ(p->size_bytes, 100u);
  EXPECT_FALSE(p->tunneled());
}

TEST(Packet, NestedTunnels) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->encapsulate({3, 3});
  p->encapsulate({4, 4});
  EXPECT_EQ(p->size_bytes, 100u + 2 * kIpHeaderBytes);
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{3, 3}));
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{2, 2}));
}

TEST(Packet, CloneCopiesEverythingButUid) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->tclass = TrafficClass::kHighPriority;
  p->flow = 7;
  p->seq = 99;
  p->encapsulate({3, 3});
  auto q = p->clone(12345);
  EXPECT_EQ(q->uid, 12345u);
  EXPECT_EQ(q->dst, p->dst);
  EXPECT_EQ(q->tclass, p->tclass);
  EXPECT_EQ(q->flow, p->flow);
  EXPECT_EQ(q->seq, p->seq);
  EXPECT_EQ(q->tunnel_stack, p->tunnel_stack);
}

// Bicast groundwork: a MAP duplicating a packet toward PAR and NAR clones
// a tunneled, classed, directive-carrying packet — every one of those
// fields must arrive intact in the copy, with only the uid fresh.
TEST(Packet, CloneCarriesTunnelClassAndDirective) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->tclass = TrafficClass::kRealTime;
  p->flow = 3;
  p->seq = 41;
  p->ttl = 17;
  p->src_port = 5060;
  p->dst_port = 5061;
  p->directive = ForwardDirective::kBufferAtNar;
  p->msg = FbuMsg{};
  p->encapsulate({10, 1});  // MAP tunnel
  p->encapsulate({20, 1});  // PAR->NAR tunnel on top
  const std::uint64_t fresh = sim.next_uid();
  auto q = p->clone(fresh);
  EXPECT_EQ(q->uid, fresh);
  EXPECT_NE(q->uid, p->uid);
  EXPECT_EQ(q->src, p->src);
  EXPECT_EQ(q->dst, (Address{20, 1}));
  EXPECT_EQ(q->size_bytes, 100u + 2 * kIpHeaderBytes);
  EXPECT_EQ(q->ttl, 17);
  EXPECT_EQ(q->tclass, TrafficClass::kRealTime);
  EXPECT_EQ(q->flow, 3);
  EXPECT_EQ(q->seq, 41u);
  EXPECT_EQ(q->src_port, 5060);
  EXPECT_EQ(q->dst_port, 5061);
  EXPECT_EQ(q->directive, ForwardDirective::kBufferAtNar);
  EXPECT_EQ(q->created_at, p->created_at);
  EXPECT_STREQ(message_name(q->msg), "FBU");
  ASSERT_EQ(q->tunnel_stack, p->tunnel_stack);
  // The clone decapsulates independently of the original.
  q->decapsulate();
  EXPECT_EQ(q->dst, (Address{10, 1}));
  EXPECT_EQ(p->dst, (Address{20, 1}));
  q->decapsulate();
  EXPECT_EQ(q->dst, (Address{2, 2}));
}

TEST(TunnelStack, SpillsBeyondInlineDepthAndComparesEqual) {
  TunnelStack s;
  TunnelStack t;
  for (std::uint16_t i = 0; i < 7; ++i) {  // past kInlineDepth = 4
    s.push({i, 1});
    t.push({i, 1});
  }
  EXPECT_EQ(s.size(), 7u);
  EXPECT_TRUE(s == t);
  for (std::uint16_t i = 7; i-- > 0;) {
    ASSERT_EQ(s.back(), (Address{i, 1}));
    s.pop();
  }
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s == t);
}

TEST(Packet, ControlDetection) {
  Simulation sim;
  auto data = make_packet(sim, {1, 1}, {2, 2}, 100);
  EXPECT_FALSE(data->is_control());
  auto ctrl = make_control(sim, {1, 1}, {2, 2}, FbuMsg{});
  EXPECT_TRUE(ctrl->is_control());
  auto tcp = make_packet(sim, {1, 1}, {2, 2}, 100);
  tcp->msg = TcpSegMsg{};
  EXPECT_FALSE(tcp->is_control());  // TCP segments are data-plane
}

TEST(Packet, MessageNames) {
  MessageVariant m = FbuMsg{};
  EXPECT_STREQ(message_name(m), "FBU");
  m = RtSolPrMsg{};
  EXPECT_STREQ(message_name(m), "RtSolPr");
  m = BufferFullMsg{};
  EXPECT_STREQ(message_name(m), "BufferFull");
  m = std::monostate{};
  EXPECT_STREQ(message_name(m), "data");
}

TEST(TrafficClassHelpers, EffectiveClassMapsUnspecified) {
  // Table 3.1: value 0 is "not specified, treated as best effort".
  EXPECT_EQ(effective_class(TrafficClass::kUnspecified),
            TrafficClass::kBestEffort);
  EXPECT_EQ(effective_class(TrafficClass::kRealTime),
            TrafficClass::kRealTime);
  EXPECT_EQ(effective_class(TrafficClass::kHighPriority),
            TrafficClass::kHighPriority);
  EXPECT_EQ(effective_class(TrafficClass::kBestEffort),
            TrafficClass::kBestEffort);
}

TEST(TrafficClassHelpers, Names) {
  EXPECT_STREQ(to_string(TrafficClass::kRealTime), "real-time");
  EXPECT_STREQ(to_string(TrafficClass::kHighPriority), "high-priority");
}

}  // namespace
}  // namespace fhmip
