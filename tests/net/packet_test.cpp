#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Packet, MakePacketStampsUidAndTime) {
  Simulation sim;
  sim.scheduler().schedule_at(3_ms, [] {});
  sim.run();
  auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
  EXPECT_GT(p->uid, 0u);
  EXPECT_EQ(p->created_at, 3_ms);
  EXPECT_EQ(p->size_bytes, 160u);
  auto q = make_packet(sim, {1, 1}, {2, 2}, 160);
  EXPECT_NE(p->uid, q->uid);
}

TEST(Packet, EncapsulatePushesAndGrows) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->encapsulate({3, 3});
  EXPECT_EQ(p->dst, (Address{3, 3}));
  EXPECT_EQ(p->size_bytes, 100u + kIpHeaderBytes);
  ASSERT_TRUE(p->tunneled());
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{2, 2}));
  EXPECT_EQ(p->size_bytes, 100u);
  EXPECT_FALSE(p->tunneled());
}

TEST(Packet, NestedTunnels) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->encapsulate({3, 3});
  p->encapsulate({4, 4});
  EXPECT_EQ(p->size_bytes, 100u + 2 * kIpHeaderBytes);
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{3, 3}));
  p->decapsulate();
  EXPECT_EQ(p->dst, (Address{2, 2}));
}

TEST(Packet, CloneCopiesEverythingButUid) {
  Simulation sim;
  auto p = make_packet(sim, {1, 1}, {2, 2}, 100);
  p->tclass = TrafficClass::kHighPriority;
  p->flow = 7;
  p->seq = 99;
  p->encapsulate({3, 3});
  auto q = p->clone(12345);
  EXPECT_EQ(q->uid, 12345u);
  EXPECT_EQ(q->dst, p->dst);
  EXPECT_EQ(q->tclass, p->tclass);
  EXPECT_EQ(q->flow, p->flow);
  EXPECT_EQ(q->seq, p->seq);
  EXPECT_EQ(q->tunnel_stack, p->tunnel_stack);
}

TEST(Packet, ControlDetection) {
  Simulation sim;
  auto data = make_packet(sim, {1, 1}, {2, 2}, 100);
  EXPECT_FALSE(data->is_control());
  auto ctrl = make_control(sim, {1, 1}, {2, 2}, FbuMsg{});
  EXPECT_TRUE(ctrl->is_control());
  auto tcp = make_packet(sim, {1, 1}, {2, 2}, 100);
  tcp->msg = TcpSegMsg{};
  EXPECT_FALSE(tcp->is_control());  // TCP segments are data-plane
}

TEST(Packet, MessageNames) {
  MessageVariant m = FbuMsg{};
  EXPECT_STREQ(message_name(m), "FBU");
  m = RtSolPrMsg{};
  EXPECT_STREQ(message_name(m), "RtSolPr");
  m = BufferFullMsg{};
  EXPECT_STREQ(message_name(m), "BufferFull");
  m = std::monostate{};
  EXPECT_STREQ(message_name(m), "data");
}

TEST(TrafficClassHelpers, EffectiveClassMapsUnspecified) {
  // Table 3.1: value 0 is "not specified, treated as best effort".
  EXPECT_EQ(effective_class(TrafficClass::kUnspecified),
            TrafficClass::kBestEffort);
  EXPECT_EQ(effective_class(TrafficClass::kRealTime),
            TrafficClass::kRealTime);
  EXPECT_EQ(effective_class(TrafficClass::kHighPriority),
            TrafficClass::kHighPriority);
  EXPECT_EQ(effective_class(TrafficClass::kBestEffort),
            TrafficClass::kBestEffort);
}

TEST(TrafficClassHelpers, Names) {
  EXPECT_STREQ(to_string(TrafficClass::kRealTime), "real-time");
  EXPECT_STREQ(to_string(TrafficClass::kHighPriority), "high-priority");
}

}  // namespace
}  // namespace fhmip
