#include "net/routing.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/node.hpp"

namespace fhmip {
namespace {

struct RoutingFixture : ::testing::Test {
  Simulation sim;
  Node n{sim, 1, "n"};
  SimplexLink l1{sim, n, 1e6, SimTime::millis(1), 10};
  SimplexLink l2{sim, n, 1e6, SimTime::millis(1), 10};
};

TEST_F(RoutingFixture, EmptyTableHasNoRoute) {
  RoutingTable t;
  EXPECT_EQ(t.lookup({1, 2}), nullptr);
}

TEST_F(RoutingFixture, PrefixRouteMatchesNet) {
  RoutingTable t;
  t.set_prefix_route(5, Route::via(l1));
  const Route* r = t.lookup({5, 99});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->link, &l1);
  EXPECT_EQ(t.lookup({6, 99}), nullptr);
}

TEST_F(RoutingFixture, HostRouteBeatsPrefixRoute) {
  RoutingTable t;
  t.set_prefix_route(5, Route::via(l1));
  t.set_host_route({5, 7}, Route::via(l2));
  EXPECT_EQ(t.lookup({5, 7})->link, &l2);
  EXPECT_EQ(t.lookup({5, 8})->link, &l1);
}

TEST_F(RoutingFixture, DefaultRouteIsLastResort) {
  RoutingTable t;
  t.set_default_route(Route::via(l1));
  t.set_prefix_route(5, Route::via(l2));
  EXPECT_EQ(t.lookup({9, 1})->link, &l1);
  EXPECT_EQ(t.lookup({5, 1})->link, &l2);
}

TEST_F(RoutingFixture, HandlerRoutesInvokeCallback) {
  RoutingTable t;
  bool called = false;
  t.set_host_route({5, 7}, Route::to([&](PacketPtr) { called = true; }));
  const Route* r = t.lookup({5, 7});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->link, nullptr);
  r->handler(make_packet(sim, {1, 1}, {5, 7}, 10));
  EXPECT_TRUE(called);
}

TEST_F(RoutingFixture, RemoveHostRouteFallsBackToPrefix) {
  RoutingTable t;
  t.set_prefix_route(5, Route::via(l1));
  t.set_host_route({5, 7}, Route::via(l2));
  t.remove_host_route({5, 7});
  EXPECT_EQ(t.lookup({5, 7})->link, &l1);
  EXPECT_FALSE(t.has_host_route({5, 7}));
}

TEST_F(RoutingFixture, OverwritingRoutesReplaces) {
  RoutingTable t;
  t.set_prefix_route(5, Route::via(l1));
  t.set_prefix_route(5, Route::via(l2));
  EXPECT_EQ(t.lookup({5, 1})->link, &l2);
}

TEST_F(RoutingFixture, RouteCounts) {
  RoutingTable t;
  t.set_prefix_route(1, Route::via(l1));
  t.set_host_route({1, 1}, Route::via(l1));
  t.set_host_route({1, 2}, Route::via(l1));
  EXPECT_EQ(t.num_prefix_routes(), 1u);
  EXPECT_EQ(t.num_host_routes(), 2u);
  t.clear_prefix_routes();
  EXPECT_EQ(t.num_prefix_routes(), 0u);
}

TEST_F(RoutingFixture, RouteValidity) {
  Route none;
  EXPECT_FALSE(none.valid());
  EXPECT_TRUE(Route::via(l1).valid());
  EXPECT_TRUE(Route::to([](PacketPtr) {}).valid());
}

}  // namespace
}  // namespace fhmip
