// Property tests for the intrusive-chain rewrite of DropTailQueue,
// ClassPriorityQueue and HandoffBuffer: random push/pop/evict sequences are
// mirrored against straightforward std::deque reference models, asserting
// identical admission decisions and identical pop order. The models encode
// the pre-rewrite (deque-backed) behaviour, so these tests pin the refactor
// to it.

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "buffer/handoff_buffer.hpp"
#include "net/priority_queue.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace fhmip {
namespace {

TrafficClass random_class(std::mt19937& rng) {
  return static_cast<TrafficClass>(rng() % 4);  // includes kUnspecified
}

TEST(QueueProperty, DropTailMatchesDequeModel) {
  Simulation sim;
  std::mt19937 rng(2024);
  DropTailQueue q(17);
  std::deque<std::uint64_t> model;
  std::uint64_t model_bytes = 0;

  for (int step = 0; step < 30000; ++step) {
    if (rng() % 2 == 0) {
      PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 40 + rng() % 1460);
      const std::uint64_t uid = p->uid;
      const std::uint32_t bytes = p->size_bytes;
      const bool admitted = q.push(p);
      ASSERT_EQ(admitted, model.size() < 17u);
      if (admitted) {
        model.push_back(uid);
        model_bytes += bytes;
      } else {
        ASSERT_NE(p, nullptr);  // rejected packets stay with the caller
      }
    } else {
      PacketPtr p = q.pop();
      if (model.empty()) {
        ASSERT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->uid, model.front());  // FIFO order preserved
        model.pop_front();
        model_bytes -= p->size_bytes;
      }
    }
    ASSERT_EQ(q.size(), model.size());
    ASSERT_EQ(q.bytes(), model_bytes);
  }
}

TEST(QueueProperty, DrainDeliversRemainderInFifoOrder) {
  Simulation sim;
  DropTailQueue q(10);
  std::deque<std::uint64_t> model;
  for (int i = 0; i < 10; ++i) {
    PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100);
    model.push_back(p->uid);
    ASSERT_TRUE(q.push(p));
  }
  q.drain([&](PacketPtr p) {
    ASSERT_EQ(p->uid, model.front());
    model.pop_front();
  });
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(QueueProperty, ClassPriorityMatchesThreeBandModel) {
  Simulation sim;
  std::mt19937 rng(7);
  constexpr std::size_t kLimit = 15;  // 5 per band
  ClassPriorityQueue q(kLimit);
  std::deque<std::uint64_t> model[3];
  const std::size_t band_limit[3] = {
      kLimit - 2 * (kLimit / 3), kLimit / 3, kLimit / 3};
  auto band_of = [](TrafficClass c) -> std::size_t {
    switch (effective_class(c)) {
      case TrafficClass::kRealTime:
        return 0;
      case TrafficClass::kHighPriority:
        return 1;
      default:
        return 2;
    }
  };

  for (int step = 0; step < 30000; ++step) {
    if (rng() % 2 == 0) {
      PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100);
      p->tclass = random_class(rng);
      const std::size_t band = band_of(p->tclass);
      const std::uint64_t uid = p->uid;
      const bool admitted = q.push(p);
      ASSERT_EQ(admitted, model[band].size() < band_limit[band]);
      if (admitted) model[band].push_back(uid);
    } else {
      PacketPtr p = q.pop();
      std::size_t band = 0;
      while (band < 3 && model[band].empty()) ++band;
      if (band == 3) {
        ASSERT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->uid, model[band].front());  // strict priority + FIFO
        model[band].pop_front();
      }
    }
    ASSERT_EQ(q.size(),
              model[0].size() + model[1].size() + model[2].size());
  }
}

TEST(QueueProperty, HandoffBufferMatchesEvictingModel) {
  Simulation sim;
  std::mt19937 rng(99);
  constexpr std::uint32_t kCap = 12;
  HandoffBuffer buf(kCap);
  struct Entry {
    std::uint64_t uid;
    TrafficClass tclass;
  };
  std::deque<Entry> model;

  for (int step = 0; step < 30000; ++step) {
    switch (rng() % 3) {
      case 0: {  // plain tail-rejecting push
        PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100);
        p->tclass = random_class(rng);
        const Entry e{p->uid, p->tclass};
        const auto r = buf.push(p);
        if (model.size() < kCap) {
          ASSERT_EQ(r, HandoffBuffer::PushResult::kStored);
          model.push_back(e);
        } else {
          ASSERT_EQ(r, HandoffBuffer::PushResult::kRejected);
          ASSERT_NE(p, nullptr);
        }
        break;
      }
      case 1: {  // real-time push with oldest-real-time eviction
        PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100);
        p->tclass = TrafficClass::kRealTime;
        const Entry e{p->uid, p->tclass};
        PacketPtr evicted;
        const auto r = buf.push_evict_oldest_realtime(p, evicted);
        if (model.size() < kCap) {
          ASSERT_EQ(r, HandoffBuffer::PushResult::kStored);
          model.push_back(e);
        } else {
          auto victim = model.begin();
          while (victim != model.end() &&
                 effective_class(victim->tclass) != TrafficClass::kRealTime)
            ++victim;
          if (victim == model.end()) {
            ASSERT_EQ(r, HandoffBuffer::PushResult::kRejected);
            ASSERT_EQ(evicted, nullptr);
          } else {
            ASSERT_EQ(r, HandoffBuffer::PushResult::kStoredEvicting);
            ASSERT_NE(evicted, nullptr);
            ASSERT_EQ(evicted->uid, victim->uid);  // oldest real-time dies
            model.erase(victim);
            model.push_back(e);
          }
        }
        break;
      }
      case 2: {  // pop
        PacketPtr p = buf.pop();
        if (model.empty()) {
          ASSERT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          ASSERT_EQ(p->uid, model.front().uid);  // FIFO order preserved
          model.pop_front();
        }
        break;
      }
    }
    ASSERT_EQ(buf.size(), model.size());
  }

  // Flush the remainder and check it is still in model order.
  buf.flush([&](PacketPtr p) {
    ASSERT_EQ(p->uid, model.front().uid);
    model.pop_front();
  });
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(sim.packet_pool().live(), 0u);
}

}  // namespace
}  // namespace fhmip
