#include "net/node.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

struct NodeFixture : ::testing::Test {
  Simulation sim;
  Node a{sim, 1, "a"};
  Node b{sim, 2, "b"};

  NodeFixture() {
    a.add_address({10, 1});
    b.add_address({20, 1});
  }
};

TEST_F(NodeFixture, AddressManagement) {
  EXPECT_TRUE(a.has_address({10, 1}));
  EXPECT_FALSE(a.has_address({10, 2}));
  a.add_address({10, 2}, /*advertised=*/false);
  EXPECT_TRUE(a.has_address({10, 2}));
  EXPECT_EQ(a.address(), (Address{10, 1}));  // first advertised wins
  a.remove_address({10, 2});
  EXPECT_FALSE(a.has_address({10, 2}));
}

TEST_F(NodeFixture, UnadvertisedFallbackAddress) {
  Node c(sim, 3, "c");
  c.add_address({30, 5}, /*advertised=*/false);
  EXPECT_EQ(c.address(), (Address{30, 5}));
}

TEST_F(NodeFixture, PortDemux) {
  std::uint32_t seen = 0;
  a.register_port(7, [&](PacketPtr p) { seen = p->seq; });
  auto p = make_packet(sim, {20, 1}, {10, 1}, 100);
  p->dst_port = 7;
  p->seq = 42;
  a.receive(std::move(p));
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(a.packets_received_local(), 1u);
}

TEST_F(NodeFixture, UnknownPortDrops) {
  auto p = make_packet(sim, {20, 1}, {10, 1}, 100);
  p->dst_port = 99;
  p->flow = 1;
  a.receive(std::move(p));
  EXPECT_EQ(sim.stats().flow(1).drops_by_reason[static_cast<int>(
                DropReason::kNoRoute)],
            1u);
}

TEST_F(NodeFixture, UnregisterPort) {
  int calls = 0;
  a.register_port(7, [&](PacketPtr) { ++calls; });
  a.unregister_port(7);
  auto p = make_packet(sim, {20, 1}, {10, 1}, 100);
  p->dst_port = 7;
  a.receive(std::move(p));
  EXPECT_EQ(calls, 0);
}

TEST_F(NodeFixture, ControlHandlerChainFirstClaimWins) {
  std::vector<int> hits;
  a.add_control_handler([&](PacketPtr& p) {
    hits.push_back(1);
    return std::holds_alternative<FbuMsg>(p->msg);
  });
  a.add_control_handler([&](PacketPtr&) {
    hits.push_back(2);
    return true;
  });
  a.receive(make_control(sim, {20, 1}, {10, 1}, FbuMsg{}));
  EXPECT_EQ(hits, (std::vector<int>{1}));
  hits.clear();
  a.receive(make_control(sim, {20, 1}, {10, 1}, BfMsg{}));
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
}

TEST_F(NodeFixture, RemovedControlHandlerIsNotInvoked) {
  // Regression: agents register this-capturing control handlers; before
  // remove_control_handler existed a destroyed agent left a dangling
  // callback behind (stack-use-after-scope under ASan).
  int calls = 0;
  const Node::ControlHandlerId id =
      a.add_control_handler([&](PacketPtr&) {
        ++calls;
        return true;
      });
  a.remove_control_handler(id);
  a.receive(make_control(sim, {20, 1}, {10, 1}, FbuMsg{}));
  EXPECT_EQ(calls, 0);
}

TEST_F(NodeFixture, RemoveControlHandlerKeepsOthers) {
  int first = 0, second = 0;
  const Node::ControlHandlerId id =
      a.add_control_handler([&](PacketPtr&) {
        ++first;
        return false;
      });
  a.add_control_handler([&](PacketPtr&) {
    ++second;
    return true;
  });
  a.remove_control_handler(id);
  a.receive(make_control(sim, {20, 1}, {10, 1}, FbuMsg{}));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(NodeFixture, ForwardViaPrefixRoute) {
  SimplexLink to_b(sim, b, 1e6, 1_ms, 10);
  a.routes().set_prefix_route(20, Route::via(to_b));
  int got = 0;
  b.register_port(7, [&](PacketPtr) { ++got; });
  auto p = make_packet(sim, {10, 1}, {20, 1}, 100);
  p->dst_port = 7;
  a.receive(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(a.packets_forwarded(), 1u);
}

TEST_F(NodeFixture, NoRouteDrops) {
  auto p = make_packet(sim, {10, 1}, {77, 1}, 100);
  p->flow = 3;
  a.receive(std::move(p));
  EXPECT_EQ(sim.stats().flow(3).drops_by_reason[static_cast<int>(
                DropReason::kNoRoute)],
            1u);
}

TEST_F(NodeFixture, TtlExpiryDrops) {
  SimplexLink loop(sim, a, 1e9, 0_ms, 300);
  a.routes().set_prefix_route(77, Route::via(loop));  // routes to itself
  auto p = make_packet(sim, {10, 1}, {77, 1}, 100);
  p->flow = 4;
  p->ttl = 5;
  a.receive(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(4).drops_by_reason[static_cast<int>(
                DropReason::kTtlExpired)],
            1u);
}

TEST_F(NodeFixture, SendDoesNotDecrementTtlOnFirstHop) {
  SimplexLink to_b(sim, b, 1e6, 1_ms, 10);
  a.routes().set_prefix_route(20, Route::via(to_b));
  std::uint8_t seen_ttl = 0;
  b.register_port(7, [&](PacketPtr p) { seen_ttl = p->ttl; });
  auto p = make_packet(sim, {10, 1}, {20, 1}, 100);
  p->dst_port = 7;
  p->ttl = 64;
  a.send(std::move(p));
  sim.run();
  EXPECT_EQ(seen_ttl, 64);
}

TEST_F(NodeFixture, TunnelEndpointDecapsulatesAndRedelivers) {
  // Packet tunneled to a, inner destination also a (care-of address case).
  a.add_address({10, 9}, false);
  int got = 0;
  a.register_port(7, [&](PacketPtr p) {
    ++got;
    EXPECT_EQ(p->dst, (Address{10, 9}));
    EXPECT_FALSE(p->tunneled());
  });
  auto p = make_packet(sim, {20, 1}, {10, 9}, 100);
  p->dst_port = 7;
  p->encapsulate({10, 1});
  a.receive(std::move(p));
  EXPECT_EQ(got, 1);
}

TEST_F(NodeFixture, TunnelTransitDecapsulatesAndForwards) {
  SimplexLink to_b(sim, b, 1e6, 1_ms, 10);
  a.routes().set_prefix_route(20, Route::via(to_b));
  int got = 0;
  b.register_port(7, [&](PacketPtr p) {
    ++got;
    EXPECT_FALSE(p->tunneled());
  });
  auto p = make_packet(sim, {30, 1}, {20, 1}, 100);
  p->dst_port = 7;
  p->encapsulate({10, 1});  // tunneled to a; inner dst is b
  a.receive(std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NodeFixture, LocalSendDeliversLocally) {
  int got = 0;
  a.register_port(7, [&](PacketPtr) { ++got; });
  auto p = make_packet(sim, {10, 1}, {10, 1}, 100);
  p->dst_port = 7;
  a.send(std::move(p));
  EXPECT_EQ(got, 1);
}

TEST_F(NodeFixture, UnclaimedControlIsDiscardedSilently) {
  a.receive(make_control(sim, {20, 1}, {10, 1}, RouterAdvMsg{}));
  EXPECT_EQ(sim.stats().totals().dropped, 0u);
}

}  // namespace
}  // namespace fhmip
