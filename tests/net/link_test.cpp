#include "net/link.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "net/node.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

struct LinkFixture : ::testing::Test {
  Simulation sim;
  Node a{sim, 1, "a"};
  Node b{sim, 2, "b"};

  std::vector<SimTime> arrivals;
  std::vector<std::pair<Node*, std::uint16_t>> captures_;

  void capture(Node& n, std::uint16_t port = 9) {
    n.add_address({static_cast<std::uint32_t>(n.id() * 10), 1});
    n.register_port(port, [this](PacketPtr) { arrivals.push_back(sim.now()); });
    captures_.emplace_back(&n, port);
  }

  ~LinkFixture() override {
    for (auto& [n, port] : captures_) n->unregister_port(port);
  }

  PacketPtr pkt(std::uint32_t bytes = 1000) {
    auto p = make_packet(sim, {10, 1}, {20, 1}, bytes);
    p->dst_port = 9;
    p->flow = 1;
    return p;
  }
};

TEST_F(LinkFixture, DeliveryAfterTxPlusPropagation) {
  capture(b);
  SimplexLink link(sim, b, 1e6 /*1 Mb/s*/, 10_ms, 10);
  // 1000 B at 1 Mb/s = 8 ms serialization + 10 ms propagation.
  link.transmit(pkt(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 18_ms);
  EXPECT_EQ(link.packets_delivered(), 1u);
}

TEST_F(LinkFixture, InFlightPacketsReclaimedIfSimulationEnds) {
  // Regression: start_tx/finish_tx used to hand a released raw pointer to
  // the completion event; tearing the simulation down with packets still
  // in flight leaked them (caught by LeakSanitizer). The packets must be
  // owned by the event closures so destruction reclaims them.
  SimplexLink link(sim, b, 1e6, 10_ms, 10);
  link.transmit(pkt(1000));  // serialization event pending
  link.transmit(pkt(1000));  // sits in the queue
  sim.run_until(9_ms);       // past serialization, before propagation ends
  // Destructor of `sim` (fixture teardown) discards the pending events.
  EXPECT_EQ(link.packets_delivered(), 0u);
}

TEST_F(LinkFixture, TxTimeScalesWithSize) {
  SimplexLink link(sim, b, 8e6, 0_ms, 10);
  EXPECT_EQ(link.tx_time(1000), 1_ms);  // 8000 bits / 8 Mb/s
  EXPECT_EQ(link.tx_time(500), SimTime::micros(500));
}

TEST_F(LinkFixture, SerializationIsSequential) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 0_ms, 10);
  link.transmit(pkt(1000));  // 8 ms each
  link.transmit(pkt(1000));
  link.transmit(pkt(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 8_ms);
  EXPECT_EQ(arrivals[1], 16_ms);
  EXPECT_EQ(arrivals[2], 24_ms);
}

TEST_F(LinkFixture, QueueOverflowDrops) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 0_ms, 2);
  // One transmitting + two queued fit; the fourth drops.
  for (int i = 0; i < 4; ++i) link.transmit(pkt(1000));
  sim.run();
  EXPECT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(link.packets_dropped(), 1u);
  EXPECT_EQ(sim.stats().flow(1).drops_by_reason[static_cast<int>(
                DropReason::kQueueOverflow)],
            1u);
}

TEST_F(LinkFixture, DownLinkDropsNewTransmissions) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 1_ms, 10);
  link.set_up(false);
  link.transmit(pkt());
  sim.run();
  EXPECT_TRUE(arrivals.empty());
  EXPECT_EQ(sim.stats().total_drops(DropReason::kWirelessDown), 1u);
}

TEST_F(LinkFixture, DownLinkDropsQueuedButNotInFlight) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 5_ms, 10);
  link.transmit(pkt(1000));  // starts serializing immediately
  link.transmit(pkt(1000));  // queued
  // Take the link down mid-serialization of the first packet: the committed
  // transmission completes (ns-2 semantics), the queued packet dies.
  sim.in(2_ms, [&] { link.set_up(false); });
  sim.run();
  EXPECT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kWirelessDown), 1u);
}

TEST_F(LinkFixture, LinkBackUpResumesDelivery) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 0_ms, 10);
  link.set_up(false);
  sim.in(10_ms, [&] {
    link.set_up(true);
    link.transmit(pkt(1000));
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 18_ms);
}

TEST_F(LinkFixture, RandomLossDropsApproximatelyAtRate) {
  capture(b);
  SimplexLink link(sim, b, 1e9, 0_ms, 10);
  link.set_loss_rate(0.25);
  int sent = 0;
  std::function<void()> pump = [&] {
    if (sent >= 4000) return;
    ++sent;
    link.transmit(pkt(100));
    sim.in(1_ms, pump);
  };
  sim.in(1_ms, pump);
  sim.run();
  const double loss =
      1.0 - static_cast<double>(arrivals.size()) / 4000.0;
  EXPECT_NEAR(loss, 0.25, 0.03);
  EXPECT_EQ(sim.stats().total_drops(DropReason::kRandomLoss),
            4000 - arrivals.size());
}

TEST_F(LinkFixture, ZeroLossRateIsLossless) {
  capture(b);
  SimplexLink link(sim, b, 1e9, 0_ms, 200);
  for (int i = 0; i < 100; ++i) link.transmit(pkt(100));
  sim.run();
  EXPECT_EQ(arrivals.size(), 100u);
}

TEST_F(LinkFixture, PriorityDisciplineReordersByClass) {
  capture(b);
  std::vector<std::uint32_t> seqs;
  b.register_port(8, [&](PacketPtr p) { seqs.push_back(p->seq); });
  SimplexLink link(sim, b, 1e6, 0_ms, 9, "prio",
                   QueueDiscipline::kClassPriority);
  ASSERT_NE(link.priority_queue(), nullptr);
  EXPECT_EQ(link.queue(), nullptr);
  // First packet occupies the transmitter; the rest queue by class.
  auto first = pkt(1000);
  first->dst_port = 8;
  first->seq = 0;
  link.transmit(std::move(first));
  const TrafficClass order[] = {TrafficClass::kBestEffort,
                                TrafficClass::kHighPriority,
                                TrafficClass::kRealTime};
  std::uint32_t seq = 1;
  for (TrafficClass c : order) {
    auto p = pkt(1000);
    p->dst_port = 8;
    p->seq = seq++;
    p->tclass = c;
    link.transmit(std::move(p));
  }
  sim.run();
  // Delivery: 0 (in flight), then RT(3), HP(2), BE(1).
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 3, 2, 1}));
}

TEST_F(LinkFixture, BytesDeliveredAccumulates) {
  capture(b);
  SimplexLink link(sim, b, 1e6, 0_ms, 10);
  link.transmit(pkt(300));
  link.transmit(pkt(200));
  sim.run();
  EXPECT_EQ(link.bytes_delivered(), 500u);
}

TEST_F(LinkFixture, DuplexDirections) {
  capture(a);
  capture(b);
  DuplexLink link(sim, a, b, 1e6, 1_ms, 10, "ab");
  EXPECT_EQ(&link.toward(b), &link.a_to_b());
  EXPECT_EQ(&link.toward(a), &link.b_to_a());
  auto p = make_packet(sim, {20, 1}, {10, 1}, 100);
  p->dst_port = 9;
  link.toward(a).transmit(std::move(p));
  sim.run();
  EXPECT_EQ(arrivals.size(), 1u);
}

}  // namespace
}  // namespace fhmip
