#include "net/queue.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

PacketPtr pkt(Simulation& sim, std::uint32_t bytes = 100) {
  return make_packet(sim, {1, 1}, {2, 2}, bytes);
}

TEST(DropTailQueue, FifoOrder) {
  Simulation sim;
  DropTailQueue q(10);
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto p = pkt(sim);
    p->seq = i;
    ASSERT_TRUE(q.push(p));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto p = q.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(DropTailQueue, RejectsWhenFull) {
  Simulation sim;
  DropTailQueue q(2);
  auto a = pkt(sim);
  auto b = pkt(sim);
  auto c = pkt(sim);
  EXPECT_TRUE(q.push(a));
  EXPECT_TRUE(q.push(b));
  EXPECT_FALSE(q.push(c));
  EXPECT_NE(c, nullptr);  // rejected packet stays with the caller
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.total_rejected(), 1u);
  EXPECT_EQ(q.total_enqueued(), 2u);
}

TEST(DropTailQueue, TracksBytes) {
  Simulation sim;
  DropTailQueue q(10);
  auto a = pkt(sim, 100);
  auto b = pkt(sim, 60);
  q.push(a);
  q.push(b);
  EXPECT_EQ(q.bytes(), 160u);
  q.pop();
  EXPECT_EQ(q.bytes(), 60u);
}

TEST(DropTailQueue, DrainEmptiesInOrder) {
  Simulation sim;
  DropTailQueue q(10);
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto p = pkt(sim);
    p->seq = i;
    q.push(p);
  }
  std::vector<std::uint32_t> seqs;
  q.drain([&](PacketPtr p) { seqs.push_back(p->seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(DropTailQueue, SetLimitShrinksFutureAdmissions) {
  Simulation sim;
  DropTailQueue q(5);
  for (int i = 0; i < 3; ++i) {
    auto p = pkt(sim);
    q.push(p);
  }
  q.set_limit(3);
  auto p = pkt(sim);
  EXPECT_FALSE(q.push(p));
  EXPECT_EQ(q.size(), 3u);
}

TEST(DropTailQueue, ZeroLimitRejectsAll) {
  Simulation sim;
  DropTailQueue q(0);
  auto p = pkt(sim);
  EXPECT_FALSE(q.push(p));
}

}  // namespace
}  // namespace fhmip
