#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "net/node.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"
#include "stats/flow_table.hpp"
#include "transport/diffserv.hpp"

namespace fhmip {
namespace {

// DET-02 regression: every human-readable dump of an unordered container
// must be independent of insertion order and hash-table layout. Each test
// builds the same logical state through two different mutation histories
// (ascending vs. descending inserts plus add/remove churn, which leaves
// the two tables with different bucket layouts) and requires byte-equal
// output.

Route noop_route() {
  return Route::to([](PacketPtr) {});
}

TEST(FormatDeterminism, RoutingTableIgnoresInsertionOrderAndRehash) {
  RoutingTable fwd;
  RoutingTable rev;
  for (std::uint32_t i = 0; i < 64; ++i) {
    fwd.set_host_route(Address{10 + i, 1 + i}, noop_route());
    fwd.set_prefix_route(100 + i, noop_route());
  }
  // Reverse order, with churn: transient routes force extra growth and
  // tombstone history, so rev's buckets differ from fwd's.
  for (std::uint32_t i = 64; i-- > 0;) {
    rev.set_host_route(Address{200 + i, 9}, noop_route());
    rev.set_prefix_route(100 + i, noop_route());
    rev.set_host_route(Address{10 + i, 1 + i}, noop_route());
  }
  for (std::uint32_t i = 0; i < 64; ++i) {
    rev.remove_host_route(Address{200 + i, 9});
  }
  fwd.set_default_route(noop_route());
  rev.set_default_route(noop_route());

  ASSERT_EQ(fwd.num_host_routes(), rev.num_host_routes());
  EXPECT_FALSE(fwd.format_table().empty());
  EXPECT_EQ(fwd.format_table(), rev.format_table());
}

TEST(FormatDeterminism, DiffservRulesIgnoreInsertionOrderAndRehash) {
  Simulation sim;
  Node a{sim, 1, "a"};
  Node b{sim, 2, "b"};
  DiffservMarker fwd(a);
  DiffservMarker rev(b);
  for (std::uint16_t p = 0; p < 48; ++p) {
    fwd.add_rule(static_cast<std::uint16_t>(5000 + p),
                 p % 2 ? DiffservPhb::kExpeditedForwarding
                       : DiffservPhb::kAssuredForwarding);
  }
  for (std::uint16_t p = 48; p-- > 0;) {
    rev.add_rule(static_cast<std::uint16_t>(7000 + p), DiffservPhb::kDefault);
    rev.add_rule(static_cast<std::uint16_t>(5000 + p),
                 p % 2 ? DiffservPhb::kExpeditedForwarding
                       : DiffservPhb::kAssuredForwarding);
  }
  for (std::uint16_t p = 0; p < 48; ++p) {
    rev.remove_rule(static_cast<std::uint16_t>(7000 + p));
  }
  fwd.set_default_phb(DiffservPhb::kExpeditedForwarding);
  rev.set_default_phb(DiffservPhb::kExpeditedForwarding);

  ASSERT_EQ(fwd.num_rules(), rev.num_rules());
  EXPECT_FALSE(fwd.format_rules().empty());
  EXPECT_EQ(fwd.format_rules(), rev.format_rules());
}

TEST(FormatDeterminism, FlowTableIgnoresRecordingOrder) {
  Simulation sim_a;
  Simulation sim_b;
  sim_a.stats().set_keep_samples(true);
  sim_b.stats().set_keep_samples(true);
  for (FlowId f = 1; f <= 8; ++f) {
    sim_a.stats().record_sent(f);
    sim_a.stats().record_delivery(f, SimTime::millis(10 * f), /*seq=*/0,
                                  SimTime::millis(f), 160);
  }
  for (FlowId f = 8; f >= 1; --f) {
    sim_b.stats().record_sent(f);
    sim_b.stats().record_delivery(f, SimTime::millis(10 * f), /*seq=*/0,
                                  SimTime::millis(f), 160);
  }
  const std::string a = flow_table(sim_a.stats()).render();
  const std::string b = flow_table(sim_b.stats()).render();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fhmip
