#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "buffer/handoff_buffer.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace fhmip {
namespace {

TEST(PacketPool, AcquireHandsOutDistinctSlots) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  PacketPtr b = pool.acquire();
  EXPECT_EQ(a->pool_home, &pool);
  EXPECT_EQ(b->pool_home, &pool);
  EXPECT_NE(a->pool_slot, b->pool_slot);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.total_acquired(), 2u);
  EXPECT_EQ(pool.total_recycled(), 0u);
}

TEST(PacketPool, ReleaseRecyclesTheSlot) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  const std::uint32_t slot = a->pool_slot;
  a.reset();
  EXPECT_EQ(pool.live(), 0u);
  PacketPtr b = pool.acquire();
  EXPECT_EQ(b->pool_slot, slot);  // LIFO free list reuses the hot slot
  EXPECT_EQ(pool.total_recycled(), 1u);
}

TEST(PacketPool, ReleaseScrubsThePayload) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  a->uid = 42;
  a->size_bytes = 999;
  a->tclass = TrafficClass::kRealTime;
  a->encapsulate({7, 7});
  a.reset();
  PacketPtr b = pool.acquire();  // same slot, must look factory-fresh
  EXPECT_EQ(b->uid, 0u);
  EXPECT_EQ(b->size_bytes, 0u);
  EXPECT_EQ(b->tclass, TrafficClass::kUnspecified);
  EXPECT_FALSE(b->tunneled());
}

TEST(PacketPool, HandleGoesStaleWhenThePacketDies) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  const PacketPool::Handle h = pool.handle_of(*a);
  EXPECT_EQ(pool.get(h), a.get());
  a.reset();
  EXPECT_EQ(pool.get(h), nullptr);  // released: generation bumped
  PacketPtr b = pool.acquire();     // same slot, new incarnation
  EXPECT_EQ(b->pool_slot, h.slot);
  EXPECT_EQ(pool.get(h), nullptr);  // old handle must not see the new packet
  EXPECT_EQ(pool.get(pool.handle_of(*b)), b.get());
}

TEST(PacketPool, GetRejectsOutOfRangeHandles) {
  PacketPool pool;
  EXPECT_EQ(pool.get(PacketPool::Handle{12345, 0}), nullptr);
}

TEST(PacketPool, CloneOfPooledPacketIsPooled) {
  Simulation sim;
  PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100);
  PacketPtr q = p->clone(sim.next_uid());
  EXPECT_EQ(q->pool_home, &sim.packet_pool());
  EXPECT_NE(q->pool_slot, p->pool_slot);
}

TEST(PacketPool, CloneOfHeapPacketStaysOnHeap) {
  Packet standalone;
  standalone.uid = 9;
  PacketPtr q = standalone.clone(10);
  EXPECT_EQ(q->pool_home, nullptr);
  EXPECT_EQ(q->uid, 10u);  // heap clones free via the deleter's delete branch
}

// The headline fuzz: seeded acquire/free churn interleaved with
// encapsulation and cross-queue moves — the full life cycle a packet sees
// in a handover (link queue, handoff buffer, drain). Asserts that
// generation staleness is detected for every released packet, that slot
// accounting stays exact throughout, and that the pool ends with zero
// live slots.
TEST(PacketPool, ChurnFuzzKeepsSlotAccountingExact) {
  Simulation sim;
  PacketPool& pool = sim.packet_pool();
  std::mt19937 rng(0xF00D);

  std::vector<PacketPtr> held;
  DropTailQueue queue(64);
  HandoffBuffer buffer(32);
  std::vector<PacketPool::Handle> dead;  // handles of released packets
  std::size_t in_queue = 0;
  std::size_t in_buffer = 0;

  for (int step = 0; step < 20000; ++step) {
    switch (rng() % 8) {
      case 0:
      case 1: {  // birth
        PacketPtr p = make_packet(sim, {1, 1}, {2, 2}, 100 + rng() % 1400);
        if (rng() % 2 == 0) p->tclass = TrafficClass::kRealTime;
        held.push_back(std::move(p));
        break;
      }
      case 2: {  // tunnel churn on a held packet
        if (held.empty()) break;
        Packet& p = *held[rng() % held.size()];
        if (p.tunneled() && rng() % 2 == 0) {
          p.decapsulate();
        } else if (p.tunnel_stack.size() < TunnelStack::kInlineDepth) {
          p.encapsulate({static_cast<std::uint16_t>(rng() % 100), 1});
        }
        break;
      }
      case 3: {  // held -> link queue
        if (held.empty()) break;
        std::swap(held.back(), held[rng() % held.size()]);
        if (queue.push(held.back())) {
          held.pop_back();
          ++in_queue;
        }
        break;
      }
      case 4: {  // link queue -> held
        if (PacketPtr p = queue.pop()) {
          --in_queue;
          held.push_back(std::move(p));
        }
        break;
      }
      case 5: {  // held -> handoff buffer
        if (held.empty()) break;
        std::swap(held.back(), held[rng() % held.size()]);
        if (buffer.push(held.back()) == HandoffBuffer::PushResult::kStored) {
          held.pop_back();
          ++in_buffer;
        }
        break;
      }
      case 6: {  // handoff buffer -> held
        if (PacketPtr p = buffer.pop()) {
          --in_buffer;
          held.push_back(std::move(p));
        }
        break;
      }
      case 7: {  // death
        if (held.empty()) break;
        std::swap(held.back(), held[rng() % held.size()]);
        dead.push_back(pool.handle_of(*held.back()));
        held.pop_back();  // releases the slot
        break;
      }
    }
    ASSERT_EQ(pool.live(), held.size() + in_queue + in_buffer);
  }

  pool.audit_invariants();
  EXPECT_EQ(pool.total_acquired(), pool.live() + dead.size());
  // Every released incarnation is observably stale.
  for (const PacketPool::Handle& h : dead) {
    EXPECT_EQ(pool.get(h), nullptr);
  }
  // Live packets resolve to themselves.
  for (const PacketPtr& p : held) {
    EXPECT_EQ(pool.get(pool.handle_of(*p)), p.get());
  }

  // Teardown in every direction a packet can be parked.
  held.clear();
  queue.drain([](PacketPtr) {});
  buffer.flush([](PacketPtr) {});
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.free_slots(), pool.capacity());
  pool.audit_invariants();
}

// Same seed, fresh simulation => byte-for-byte the same uid sequence. This
// is the property the behaviour-preservation wall leans on: pooling must
// not perturb uid assignment order, or every golden trace would shift.
TEST(PacketPool, ChurnUidAssignmentIsDeterministic) {
  auto run = [] {
    Simulation sim;
    std::mt19937 rng(1234);
    std::vector<PacketPtr> held;
    std::vector<std::uint64_t> uids;
    for (int step = 0; step < 3000; ++step) {
      if (held.empty() || rng() % 3 != 0) {
        held.push_back(make_packet(sim, {1, 1}, {2, 2}, 100));
        uids.push_back(held.back()->uid);
      } else {
        std::swap(held.back(), held[rng() % held.size()]);
        held.pop_back();
      }
    }
    return uids;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fhmip
