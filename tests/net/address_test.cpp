#include "net/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fhmip {
namespace {

TEST(Address, DefaultIsInvalid) {
  Address a;
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(a, kNoAddress);
}

TEST(Address, ValidityRequiresNet) {
  EXPECT_TRUE((Address{1, 0}).valid());
  EXPECT_FALSE((Address{0, 5}).valid());
}

TEST(Address, KeyIsInjective) {
  std::unordered_set<std::uint64_t> keys;
  for (std::uint32_t net = 1; net < 20; ++net) {
    for (std::uint32_t host = 0; host < 20; ++host) {
      keys.insert(Address{net, host}.key());
    }
  }
  EXPECT_EQ(keys.size(), 19u * 20u);
}

TEST(Address, EqualityAndOrdering) {
  EXPECT_EQ((Address{1, 2}), (Address{1, 2}));
  EXPECT_NE((Address{1, 2}), (Address{1, 3}));
  EXPECT_LT((Address{1, 9}), (Address{2, 0}));
}

TEST(Address, MakeCoaFormsLcoA) {
  // HMIPv6 LCoA formation: AR prefix + MH interface id.
  const Address lcoa = make_coa(40, 1234);
  EXPECT_EQ(lcoa.net, 40u);
  EXPECT_EQ(lcoa.host, 1234u);
}

TEST(Address, ToString) {
  EXPECT_EQ((Address{40, 7}).to_string(), "40:7");
}

TEST(Address, StdHashUsable) {
  std::unordered_set<Address> set;
  set.insert({1, 1});
  set.insert({1, 1});
  set.insert({1, 2});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace fhmip
