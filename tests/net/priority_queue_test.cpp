#include "net/priority_queue.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace fhmip {
namespace {

struct PrioQueueFixture : ::testing::Test {
  Simulation sim;

  PacketPtr pkt(TrafficClass cls, std::uint32_t seq = 0) {
    auto p = make_packet(sim, {1, 1}, {2, 2}, 160);
    p->tclass = cls;
    p->seq = seq;
    return p;
  }
};

TEST_F(PrioQueueFixture, ServesRealTimeFirst) {
  ClassPriorityQueue q(9);
  auto be = pkt(TrafficClass::kBestEffort, 1);
  auto hp = pkt(TrafficClass::kHighPriority, 2);
  auto rt = pkt(TrafficClass::kRealTime, 3);
  q.push(be);
  q.push(hp);
  q.push(rt);
  EXPECT_EQ(q.pop()->seq, 3u);  // RT
  EXPECT_EQ(q.pop()->seq, 2u);  // HP
  EXPECT_EQ(q.pop()->seq, 1u);  // BE
  EXPECT_EQ(q.pop(), nullptr);
}

TEST_F(PrioQueueFixture, FifoWithinBand) {
  ClassPriorityQueue q(9);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto p = pkt(TrafficClass::kRealTime, i);
    q.push(p);
  }
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(q.pop()->seq, i);
}

TEST_F(PrioQueueFixture, BandLimitsPartitionTheTotal) {
  ClassPriorityQueue q(10);
  EXPECT_EQ(q.band_limit(TrafficClass::kRealTime) +
                q.band_limit(TrafficClass::kHighPriority) +
                q.band_limit(TrafficClass::kBestEffort),
            10u);
  // Remainder slots go to the real-time band.
  EXPECT_GE(q.band_limit(TrafficClass::kRealTime),
            q.band_limit(TrafficClass::kBestEffort));
}

TEST_F(PrioQueueFixture, BestEffortBurstCannotStarveRealTime) {
  ClassPriorityQueue q(9);  // 3 slots per band
  for (int i = 0; i < 10; ++i) {
    auto p = pkt(TrafficClass::kBestEffort);
    q.push(p);  // overflowing its own band only
  }
  EXPECT_EQ(q.band_size(TrafficClass::kBestEffort), 3u);
  auto rt = pkt(TrafficClass::kRealTime);
  EXPECT_TRUE(q.push(rt));  // RT band still has room
  EXPECT_EQ(q.total_rejected(), 7u);
}

TEST_F(PrioQueueFixture, UnspecifiedMapsToBestEffortBand) {
  ClassPriorityQueue q(9);
  auto u = pkt(TrafficClass::kUnspecified);
  q.push(u);
  EXPECT_EQ(q.band_size(TrafficClass::kBestEffort), 1u);
}

TEST_F(PrioQueueFixture, SizeAndDrain) {
  ClassPriorityQueue q(9);
  for (TrafficClass c : {TrafficClass::kRealTime, TrafficClass::kBestEffort,
                         TrafficClass::kHighPriority}) {
    auto p = pkt(c);
    q.push(p);
  }
  EXPECT_EQ(q.size(), 3u);
  int drained = 0;
  q.drain([&](PacketPtr) { ++drained; });
  EXPECT_EQ(drained, 3);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace fhmip
