#include "net/network.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace fhmip {
namespace {

using namespace timeliterals;

struct NetworkFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};

  int deliver_count = 0;
  SimTime last_arrival;
  std::vector<std::pair<Node*, std::uint16_t>> sinks_;

  void sink(Node& n, std::uint16_t port = 7) {
    n.register_port(port, [this](PacketPtr) {
      ++deliver_count;
      last_arrival = sim.now();
    });
    sinks_.emplace_back(&n, port);
  }

  ~NetworkFixture() override {
    for (auto& [n, port] : sinks_) n->unregister_port(port);
  }

  PacketPtr pkt(Address src, Address dst, std::uint32_t bytes = 1000) {
    auto p = make_packet(sim, src, dst, bytes);
    p->dst_port = 7;
    return p;
  }
};

TEST_F(NetworkFixture, LineTopologyRoutesEndToEnd) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  a.add_address({1, 1});
  b.add_address({2, 1});
  c.add_address({3, 1});
  net.connect(a, b, 1e9, 1_ms);
  net.connect(b, c, 1e9, 1_ms);
  net.compute_routes();
  sink(c);
  a.send(pkt({1, 1}, {3, 1}));
  sim.run();
  EXPECT_EQ(deliver_count, 1);
  // Two propagation hops plus two serializations (8 us each at 1 Gb/s).
  EXPECT_GT(last_arrival, 2_ms);
  EXPECT_LT(last_arrival, 3_ms);
}

TEST_F(NetworkFixture, PrefersLowerDelayPath) {
  // a - b - d (1 ms + 1 ms) vs a - c - d (10 ms + 10 ms).
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  Node& c = net.add_node("c");
  Node& d = net.add_node("d");
  a.add_address({1, 1});
  b.add_address({2, 1});
  c.add_address({3, 1});
  d.add_address({4, 1});
  net.connect(a, b, 1e9, 1_ms);
  net.connect(b, d, 1e9, 1_ms);
  net.connect(a, c, 1e9, 10_ms);
  net.connect(c, d, 1e9, 10_ms);
  net.compute_routes();
  sink(d);
  a.send(pkt({1, 1}, {4, 1}));
  sim.run();
  EXPECT_EQ(deliver_count, 1);
  EXPECT_LT(last_arrival, 5_ms);
  EXPECT_EQ(b.packets_forwarded(), 1u);
  EXPECT_EQ(c.packets_forwarded(), 0u);
}

TEST_F(NetworkFixture, BidirectionalRoutes) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  net.connect(a, b, 1e9, 1_ms);
  net.compute_routes();
  sink(a);
  sink(b);
  a.send(pkt({1, 1}, {2, 1}));
  b.send(pkt({2, 1}, {1, 1}));
  sim.run();
  EXPECT_EQ(deliver_count, 2);
}

TEST_F(NetworkFixture, UnadvertisedAddressesGetNoRoutes) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  b.add_address({9, 5}, /*advertised=*/false);
  net.connect(a, b, 1e9, 1_ms);
  net.compute_routes();
  auto p = pkt({1, 1}, {9, 5});
  p->flow = 1;
  a.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(1).drops_by_reason[static_cast<int>(
                DropReason::kNoRoute)],
            1u);
}

TEST_F(NetworkFixture, DisconnectedNodesUnreachable) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  // no link
  net.compute_routes();
  auto p = pkt({1, 1}, {2, 1});
  p->flow = 1;
  a.send(std::move(p));
  sim.run();
  EXPECT_EQ(sim.stats().flow(1).dropped, 1u);
}

TEST_F(NetworkFixture, ComputeRoutesIsIdempotent) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  net.connect(a, b, 1e9, 1_ms);
  net.compute_routes();
  net.compute_routes();
  sink(b);
  a.send(pkt({1, 1}, {2, 1}));
  sim.run();
  EXPECT_EQ(deliver_count, 1);
}

TEST_F(NetworkFixture, StarTopologyAllPairs) {
  Node& hub = net.add_node("hub");
  hub.add_address({100, 1});
  std::vector<Node*> leaves;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    Node& leaf = net.add_node("leaf" + std::to_string(i));
    leaf.add_address({i, 1});
    net.connect(hub, leaf, 1e9, 1_ms);
    leaves.push_back(&leaf);
  }
  net.compute_routes();
  for (Node* leaf : leaves) sink(*leaf);
  // Every leaf sends to every other leaf through the hub.
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      leaves[i]->send(pkt({i + 1, 1}, {j + 1, 1}));
    }
  }
  sim.run();
  EXPECT_EQ(deliver_count, 12);
  EXPECT_EQ(hub.packets_forwarded(), 12u);
}

TEST_F(NetworkFixture, NodeCountsAndIds) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_NE(a.id(), b.id());
  net.connect(a, b, 1e6, 1_ms);
  EXPECT_EQ(net.num_links(), 1u);
}

}  // namespace
}  // namespace fhmip
