#include "wireless/l2_phases.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(L2PhaseModel, SamplesWithinConfiguredRanges) {
  L2PhaseModel m;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto s = m.sample(rng);
    EXPECT_GE(s.probe, m.probe_min);
    EXPECT_LE(s.probe, m.probe_max);
    EXPECT_GE(s.auth, m.auth_min);
    EXPECT_LE(s.auth, m.auth_max);
    EXPECT_GE(s.assoc, m.assoc_min);
    EXPECT_LE(s.assoc, m.assoc_max);
    EXPECT_GE(s.total(), m.min_total());
    EXPECT_LE(s.total(), m.max_total());
  }
}

TEST(L2PhaseModel, DefaultEnvelopeMatchesCitedRange) {
  // [13]: "the handover procedure may take from 60 ms to 400 ms".
  L2PhaseModel m;
  EXPECT_GE(m.min_total(), 54_ms);
  EXPECT_LE(m.max_total(), 400_ms);
}

TEST(L2PhaseModel, SamplesVary) {
  L2PhaseModel m;
  Rng rng(11);
  const auto a = m.sample(rng);
  const auto b = m.sample(rng);
  EXPECT_NE(a.total(), b.total());
}

TEST(L2PhaseModel, DeterministicPerSeed) {
  L2PhaseModel m;
  Rng a(3), b(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.sample(a).total(), m.sample(b).total());
  }
}

TEST(L2PhaseModel, FixedModelIsExact) {
  const L2PhaseModel m = L2PhaseModel::fixed(200_ms);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto s = m.sample(rng);
    EXPECT_EQ(s.total(), 200_ms);
    EXPECT_EQ(s.probe, 200_ms);
  }
}

/// The WLAN layer uses the model per handoff when configured.
TEST(L2PhaseModel, WlanSamplesBlackoutPerHandoff) {
  Simulation sim(17);
  Network net(sim);
  Node& ar1 = net.add_node("ar1");
  Node& ar2 = net.add_node("ar2");
  Node& mh = net.add_node("mh");
  ar1.add_address({40, 1});
  ar2.add_address({50, 1});

  WlanConfig cfg;
  cfg.send_router_adv = false;
  cfg.l2_phase_model = L2PhaseModel{};
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh,
              std::make_unique<BounceMobility>(Vec2{0, 0}, Vec2{212, 0}, 10.0),
              nullptr);
  wlan.start();

  std::vector<SimTime> blackouts;
  // Observe two handoffs (one per leg).
  sim.run_until(SimTime::from_seconds(22));
  blackouts.push_back(wlan.last_blackout());
  sim.run_until(SimTime::from_seconds(44));
  blackouts.push_back(wlan.last_blackout());

  ASSERT_EQ(wlan.handoffs_started(), 2u);
  for (const SimTime b : blackouts) {
    EXPECT_GE(b, cfg.l2_phase_model->min_total());
    EXPECT_LE(b, cfg.l2_phase_model->max_total());
  }
  EXPECT_NE(blackouts[0], blackouts[1]);  // sampled per handoff
}

}  // namespace
}  // namespace fhmip
