#include <gtest/gtest.h>

#include "net/network.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Coverage-gap and edge behaviours of the association state machine.
struct CoverageFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& ar1 = net.add_node("ar1");
  Node& ar2 = net.add_node("ar2");
  Node& mh = net.add_node("mh");
  WlanConfig cfg;

  int attaches = 0, detaches = 0;
  struct Cb : L2Callbacks {
    CoverageFixture* f;
    void on_l2_trigger(NodeId, Node&) override {}
    void on_predisconnect(NodeId, Node&) override {}
    void on_attached(NodeId, Node&) override { ++f->attaches; }
    void on_detached() override { ++f->detaches; }
  } cb;

  CoverageFixture() {
    ar1.add_address({40, 1});
    ar2.add_address({50, 1});
    cfg.send_router_adv = false;
    cb.f = this;
  }
};

TEST_F(CoverageFixture, GapDetachesAndReattaches) {
  // Cells 400 m apart with 100 m radius: a 200 m dead zone between them.
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 100, nullptr);
  wlan.add_ap(ar2, {400, 0}, 100, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  // Leaves ar1 coverage at x=100 (t=10 s).
  sim.run_until(15_s);
  EXPECT_EQ(wlan.attached_ap(mh.id()), kNoNode);
  EXPECT_EQ(detaches, 1);
  // Enters ar2 coverage at x=300 (t=30 s).
  sim.run_until(35_s);
  EXPECT_NE(wlan.attached_ap(mh.id()), kNoNode);
  EXPECT_EQ(attaches, 2);
  // A dead-zone crossing is not a handoff (no blackout machinery ran).
  EXPECT_EQ(wlan.handoffs_started(), 0u);
}

TEST_F(CoverageFixture, ForcedHandoffIgnoredWhileAlreadyInHandoff) {
  cfg.l2_handoff_delay = 500_ms;
  WlanManager wlan(sim, cfg);
  AccessPoint& a = wlan.add_ap(ar1, {0, 0}, 200, nullptr);
  AccessPoint& b = wlan.add_ap(ar2, {100, 0}, 200, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{20, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  wlan.force_handoff(mh.id(), b.id(), 2_s);
  wlan.force_handoff(mh.id(), a.id(), SimTime::from_millis(2100));  // mid-blackout
  sim.run_until(4_s);
  // Only the first one ran; the second was ignored.
  EXPECT_EQ(wlan.handoffs_started(), 1u);
  EXPECT_EQ(wlan.attached_ap(mh.id()), b.id());
}

TEST_F(CoverageFixture, ForcedHandoffToCurrentApIsNoop) {
  WlanManager wlan(sim, cfg);
  AccessPoint& a = wlan.add_ap(ar1, {0, 0}, 200, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{20, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  wlan.force_handoff(mh.id(), a.id(), 2_s);
  sim.run_until(3_s);
  EXPECT_EQ(wlan.handoffs_started(), 0u);
  EXPECT_EQ(detaches, 0);
}

TEST_F(CoverageFixture, NearestApWinsInitialAssociation) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 200, nullptr);
  AccessPoint& near = wlan.add_ap(ar2, {50, 0}, 200, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{40, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  EXPECT_EQ(wlan.attached_ap(mh.id()), near.id());
}

TEST_F(CoverageFixture, StationaryHostNeverHandsOff) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{106, 0}), &cb);
  wlan.start();
  sim.run_until(60_s);
  // Sits in the overlap: triggers may fire but no handoff starts (still
  // comfortably inside the serving cell's exit margin).
  EXPECT_EQ(wlan.handoffs_started(), 0u);
  EXPECT_EQ(attaches, 1);
}

}  // namespace
}  // namespace fhmip
