#include "wireless/mobility.hpp"

#include <gtest/gtest.h>

namespace fhmip {
namespace {

using namespace timeliterals;

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(StaticPosition, NeverMoves) {
  StaticPosition m({5, 6});
  EXPECT_EQ(m.position(0_s), (Vec2{5, 6}));
  EXPECT_EQ(m.position(100_s), (Vec2{5, 6}));
}

TEST(LinearMobility, MovesAtConstantVelocity) {
  LinearMobility m({0, 0}, {10, 0});
  EXPECT_EQ(m.position(0_s), (Vec2{0, 0}));
  EXPECT_EQ(m.position(1_s), (Vec2{10, 0}));
  EXPECT_EQ(m.position(2500_ms), (Vec2{25, 0}));
}

TEST(LinearMobility, HoldsBeforeStartTime) {
  LinearMobility m({0, 0}, {10, 0}, 5_s);
  EXPECT_EQ(m.position(0_s), (Vec2{0, 0}));
  EXPECT_EQ(m.position(5_s), (Vec2{0, 0}));
  EXPECT_EQ(m.position(6_s), (Vec2{10, 0}));
}

TEST(LinearMobility, DiagonalMotion) {
  LinearMobility m({0, 0}, {3, 4});
  const Vec2 p = m.position(2_s);
  EXPECT_DOUBLE_EQ(p.x, 6);
  EXPECT_DOUBLE_EQ(p.y, 8);
}

TEST(BounceMobility, ReachesFarEndAtLegDuration) {
  BounceMobility m({0, 0}, {212, 0}, 10.0);
  EXPECT_EQ(m.leg_duration(), SimTime::from_seconds(21.2));
  const Vec2 far = m.position(SimTime::from_seconds(21.2));
  EXPECT_NEAR(far.x, 212, 1e-6);
}

TEST(BounceMobility, ReturnsToStart) {
  BounceMobility m({0, 0}, {212, 0}, 10.0);
  const Vec2 back = m.position(SimTime::from_seconds(42.4));
  EXPECT_NEAR(back.x, 0, 1e-6);
}

TEST(BounceMobility, MidLegPositions) {
  BounceMobility m({0, 0}, {100, 0}, 10.0);
  EXPECT_NEAR(m.position(5_s).x, 50, 1e-9);
  // 15 s = 10 s out (at 100) + 5 s back -> 50.
  EXPECT_NEAR(m.position(15_s).x, 50, 1e-9);
  // Second cycle repeats.
  EXPECT_NEAR(m.position(25_s).x, 50, 1e-9);
}

TEST(BounceMobility, HoldsBeforeStart) {
  BounceMobility m({7, 0}, {100, 0}, 10.0, 2_s);
  EXPECT_EQ(m.position(1_s), (Vec2{7, 0}));
}

TEST(BounceMobility, DegenerateEndpointsStayPut) {
  BounceMobility m({5, 5}, {5, 5}, 10.0);
  EXPECT_EQ(m.position(99_s), (Vec2{5, 5}));
}

TEST(WaypointMobility, FollowsLegsAndStops) {
  WaypointMobility m({0, 0}, {{{10, 0}, 10.0}, {{10, 20}, 5.0}});
  EXPECT_NEAR(m.position(500_ms).x, 5, 1e-9);   // halfway leg 1 (1 s total)
  EXPECT_NEAR(m.position(1_s).x, 10, 1e-9);
  EXPECT_NEAR(m.position(3_s).y, 10, 1e-9);     // halfway leg 2 (4 s total)
  EXPECT_EQ(m.position(100_s), (Vec2{10, 20}));  // parked at the end
}

TEST(WaypointMobility, EmptyLegsStayAtStart) {
  WaypointMobility m({3, 4}, {});
  EXPECT_EQ(m.position(10_s), (Vec2{3, 4}));
}

TEST(WaypointMobility, ManyLegsSampleExactlyAtSegmentBoundaries) {
  // A long walk exercises the binary search over segments: samples on,
  // just before, and just after every boundary must land on the same
  // positions the linear scan produced (a segment owns [start, end)).
  std::vector<WaypointMobility::Leg> legs;
  for (int i = 1; i <= 64; ++i) {
    legs.push_back({{static_cast<double>(10 * i), 0}, 10.0});  // 1 s per leg
  }
  WaypointMobility m({0, 0}, legs);
  for (int i = 1; i <= 64; ++i) {
    const SimTime boundary = SimTime::seconds(i);
    EXPECT_NEAR(m.position(boundary).x, 10.0 * i, 1e-9) << "leg " << i;
    EXPECT_NEAR(m.position(boundary - 1_ms).x, 10.0 * i - 0.01, 1e-9);
    if (i < 64) {
      EXPECT_NEAR(m.position(boundary + 1_ms).x, 10.0 * i + 0.01, 1e-9);
    }
  }
  EXPECT_EQ(m.position(1000_s), (Vec2{640, 0}));  // parked past the end
}

TEST(WaypointMobility, StartOffsetShiftsSchedule) {
  WaypointMobility m({0, 0}, {{{10, 0}, 10.0}}, 2_s);
  EXPECT_EQ(m.position(1_s), (Vec2{0, 0}));
  EXPECT_NEAR(m.position(2500_ms).x, 5, 1e-9);
}

}  // namespace
}  // namespace fhmip
