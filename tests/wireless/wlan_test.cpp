#include "wireless/wlan.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Records every L2 event for assertions.
struct RecordingCallbacks : L2Callbacks {
  std::vector<std::pair<SimTime, std::string>> events;
  Simulation* sim = nullptr;
  NodeId last_trigger_target = kNoNode;
  Node* last_ar = nullptr;

  void on_l2_trigger(NodeId ap, Node& ar) override {
    events.push_back({sim->now(), "trigger"});
    last_trigger_target = ap;
    last_ar = &ar;
  }
  void on_predisconnect(NodeId, Node&) override {
    events.push_back({sim->now(), "predisconnect"});
  }
  void on_attached(NodeId, Node&) override {
    events.push_back({sim->now(), "attached"});
  }
  void on_detached() override { events.push_back({sim->now(), "detached"}); }

  int count(const std::string& kind) const {
    int n = 0;
    for (const auto& [t, k] : events) {
      if (k == kind) ++n;
    }
    return n;
  }
  SimTime time_of(const std::string& kind, int nth = 0) const {
    int seen = 0;
    for (const auto& [t, k] : events) {
      if (k == kind && seen++ == nth) return t;
    }
    return SimTime::seconds(-1);
  }
};

struct WlanFixture : ::testing::Test {
  Simulation sim;
  Network net{sim};
  Node& ar1 = net.add_node("ar1");
  Node& ar2 = net.add_node("ar2");
  Node& mh = net.add_node("mh");
  RecordingCallbacks cb;
  WlanConfig cfg;

  WlanFixture() {
    ar1.add_address({40, 1});
    ar2.add_address({50, 1});
    cb.sim = &sim;
    cfg.send_router_adv = false;
  }
};

TEST_F(WlanFixture, InitialAttachToCoveringAp) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{10, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  EXPECT_EQ(cb.count("attached"), 1);
  EXPECT_NE(wlan.attached_ap(mh.id()), kNoNode);
}

TEST_F(WlanFixture, NoApInRangeStaysDetached) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 50, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{500, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  EXPECT_EQ(cb.count("attached"), 0);
  EXPECT_EQ(wlan.attached_ap(mh.id()), kNoNode);
}

TEST_F(WlanFixture, TriggerFiresOnOverlapEntry) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  AccessPoint& ap2 = wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(30_s);
  EXPECT_GE(cb.count("trigger"), 1);
  // Overlap entry at x = 100 -> t = 10 s (one tick of slack).
  const SimTime trig = cb.time_of("trigger");
  EXPECT_GE(trig, 10_s);
  EXPECT_LE(trig, SimTime::from_millis(10'100));
  EXPECT_EQ(cb.last_trigger_target, ap2.id());
  EXPECT_EQ(cb.last_ar, &ar2);
}

TEST_F(WlanFixture, HandoffSequenceAndBlackoutDuration) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(30_s);
  ASSERT_EQ(cb.count("predisconnect"), 1);
  ASSERT_EQ(cb.count("detached"), 1);
  ASSERT_EQ(cb.count("attached"), 2);  // initial + after handoff
  const SimTime pre = cb.time_of("predisconnect");
  const SimTime det = cb.time_of("detached");
  const SimTime att = cb.time_of("attached", 1);
  EXPECT_EQ(det - pre, cfg.predisconnect_guard);
  EXPECT_EQ(att - det, cfg.l2_handoff_delay);
  // Handoff starts at the exit margin: x = 110 -> t = 11 s.
  EXPECT_GE(pre, 11_s);
  EXPECT_LE(pre, SimTime::from_millis(11'100));
}

TEST_F(WlanFixture, ConfigurableBlackout) {
  cfg.l2_handoff_delay = 60_ms;  // the paper's measured lower bound
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(30_s);
  EXPECT_EQ(cb.time_of("attached", 1) - cb.time_of("detached"), 60_ms);
}

TEST_F(WlanFixture, AttachListenerNotified) {
  struct Listener : ArAttachListener {
    int attached = 0, detached = 0;
    SimplexLink* link = nullptr;
    void on_mh_attached(MhId, NodeId, SimplexLink& dl) override {
      ++attached;
      link = &dl;
    }
    void on_mh_detached(MhId) override { ++detached; }
  } l1, l2;
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, &l1);
  wlan.add_ap(ar2, {212, 0}, 112, &l2);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(30_s);
  EXPECT_EQ(l1.attached, 1);
  EXPECT_EQ(l1.detached, 1);
  EXPECT_EQ(l2.attached, 1);
  ASSERT_NE(l1.link, nullptr);
  ASSERT_NE(l2.link, nullptr);
  EXPECT_TRUE(l2.link->up());
  EXPECT_FALSE(l1.link->up());  // old radio dark after the handoff
}

TEST_F(WlanFixture, ForcedHandoffBetweenApsOfSameAr) {
  WlanManager wlan(sim, cfg);
  AccessPoint& a = wlan.add_ap(ar1, {0, 0}, 120, nullptr);
  AccessPoint& b = wlan.add_ap(ar1, {60, 0}, 120, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{10, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  ASSERT_EQ(wlan.attached_ap(mh.id()), a.id());
  wlan.force_handoff(mh.id(), b.id(), 2_s);
  sim.run_until(3_s);
  EXPECT_EQ(wlan.attached_ap(mh.id()), b.id());
  EXPECT_EQ(cb.count("detached"), 1);
  EXPECT_EQ(cb.count("attached"), 2);
}

TEST_F(WlanFixture, BounceProducesRepeatedHandoffs) {
  WlanConfig c = cfg;
  WlanManager wlan(sim, c);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {212, 0}, 112, nullptr);
  wlan.add_mh(mh,
              std::make_unique<BounceMobility>(Vec2{0, 0}, Vec2{212, 0}, 10.0),
              &cb);
  wlan.start();
  // 4 legs of 21.2 s each -> 4 handoffs.
  sim.run_until(SimTime::from_seconds(4 * 21.2 + 1));
  EXPECT_EQ(wlan.handoffs_started(), 4u);
  EXPECT_EQ(cb.count("attached"), 5);
}

TEST_F(WlanFixture, RouterAdvertisementsArriveAtInterval) {
  cfg.send_router_adv = true;
  mh.add_address({40, mh.id()}, false);
  int adv_count = 0;
  mh.add_control_handler([&](PacketPtr& p) {
    if (std::holds_alternative<RouterAdvMsg>(p->msg)) {
      ++adv_count;
      return true;
    }
    return false;
  });
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{10, 0}), &cb);
  wlan.start();
  sim.run_until(10_s);
  // ~one per second (§4.1), phase-staggered.
  EXPECT_GE(adv_count, 8);
  EXPECT_LE(adv_count, 11);
}

TEST_F(WlanFixture, ZeroHysteresisFlapsInOverlappingExitMargins) {
  // Host parked exactly between two APs, inside both exit margins
  // (d = 111, radius 112, margin 2). With the historical nearest-wins rule
  // each evaluation hands off to the other AP, forever.
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {222, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{111, 0}), &cb);
  wlan.start();
  sim.run_until(2_s);
  EXPECT_GT(wlan.handoffs_started(), 3u);
}

TEST_F(WlanFixture, HysteresisEndsMarginFlapping) {
  // Same geometry with hysteresis: the twin AP is not strictly closer, so
  // the host stays attached where it first associated.
  cfg.handoff_hysteresis_m = 4.0;
  WlanManager wlan(sim, cfg);
  AccessPoint& a = wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_ap(ar2, {222, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{111, 0}), &cb);
  wlan.start();
  sim.run_until(5_s);
  EXPECT_EQ(wlan.handoffs_started(), 0u);
  EXPECT_EQ(wlan.attached_ap(mh.id()), a.id());
}

TEST_F(WlanFixture, HysteresisStillAllowsStrictlyCloserCandidate) {
  // Gliding out of ar1's cell: when the margin is reached (d > 110), ar2
  // is already ~69 m away — 69 + 4 < 111, so the handoff proceeds and then
  // sticks (the host keeps moving deeper into ar2's cell).
  cfg.handoff_hysteresis_m = 4.0;
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  AccessPoint& b = wlan.add_ap(ar2, {180, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{80, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(5_s);
  EXPECT_EQ(wlan.handoffs_started(), 1u);
  EXPECT_EQ(wlan.attached_ap(mh.id()), b.id());
}

TEST_F(WlanFixture, HardDetachIgnoresHysteresis) {
  // Out of ar1's coverage entirely: any covering AP must win even when the
  // improvement is below the hysteresis margin.
  cfg.handoff_hysteresis_m = 50.0;
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  AccessPoint& b = wlan.add_ap(ar2, {222, 0}, 112, nullptr);
  // Attach to ar1 at 100 m, then glide past its 112 m edge (~0.93 s); in
  // the margin zone the 50 m hysteresis blocks the soft handoff, so only
  // the hard detach switches the host over.
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{100, 0}, Vec2{13, 0}),
              &cb);
  wlan.start();
  sim.run_until(2_s);
  EXPECT_EQ(wlan.handoffs_started(), 1u);
  EXPECT_EQ(wlan.attached_ap(mh.id()), b.id());
}

TEST_F(WlanFixture, SpatialIndexFindsApsAcrossTheWholeField) {
  // A 30-cell row: association, triggers and lookup must behave the same
  // no matter how far down the field the host sits (the candidate search
  // only inspects the 3x3 cell neighbourhood around it).
  WlanManager wlan(sim, cfg);
  std::vector<NodeId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(wlan.add_ap(ar1, {i * 250.0, 0}, 112, nullptr).id());
  }
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{25 * 250.0 + 10, 0}),
              &cb);
  wlan.start();
  sim.run_until(1_s);
  EXPECT_EQ(wlan.attached_ap(mh.id()), ids[25]);
  EXPECT_NE(wlan.ap(ids[29]), nullptr);
  EXPECT_EQ(wlan.ap(ids[29])->position().x, 29 * 250.0);
  EXPECT_EQ(wlan.ap(99999u), nullptr);
}

TEST_F(WlanFixture, CoverageAcrossGridCellBoundaryStillAttaches) {
  // The AP's center hashes into cell 0 while the host sits in cell -1;
  // coverage reaches across the boundary and the neighbourhood walk must
  // find it.
  WlanManager wlan(sim, cfg);
  AccessPoint& a = wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<StaticPosition>(Vec2{-111, 0}), &cb);
  wlan.start();
  sim.run_until(1_s);
  EXPECT_EQ(wlan.attached_ap(mh.id()), a.id());
}

TEST_F(WlanFixture, PositionIntrospection) {
  WlanManager wlan(sim, cfg);
  wlan.add_ap(ar1, {0, 0}, 112, nullptr);
  wlan.add_mh(mh, std::make_unique<LinearMobility>(Vec2{0, 0}, Vec2{10, 0}),
              &cb);
  wlan.start();
  sim.run_until(2_s);
  EXPECT_NEAR(wlan.mh_position(mh.id()).x, 20, 0.2);
  EXPECT_FALSE(wlan.in_handoff(mh.id()));
}

}  // namespace
}  // namespace fhmip
