#include <gtest/gtest.h>

#include "fault/link_fault.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Adverse-condition behaviour of the handover state machines: duplicate
/// and stray control messages, expiring allocations, lossy control
/// channels, and randomized blackouts.
struct RobustnessFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build(TrafficClass cls = TrafficClass::kHighPriority) {
    topo = std::make_unique<PaperTopology>(cfg);
    auto& m = topo->mobile(0);
    sink = std::make_unique<UdpSink>(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.tclass = cls;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
    source->stop(16_s);
    topo->start();
  }

  MhId mh_id() { return topo->mobile(0).node->id(); }

  void send_to_par(MessageVariant m) {
    auto& mobile = topo->mobile(0);
    mobile.node->send(make_control(topo->simulation(),
                                   mobile.agent->pcoa(),
                                   topo->par_agent().address(), std::move(m)));
  }
};

TEST_F(RobustnessFixture, DuplicateFnaAndBfAreIdempotent) {
  build();
  Simulation& sim = topo->simulation();
  // Let the handover complete, then replay FNA+BF and a stray BF.
  sim.run_until(12_s);
  FnaMsg fna;
  fna.mh = mh_id();
  fna.has_bf = true;
  auto& mobile = topo->mobile(0);
  mobile.node->send(make_control(sim, mobile.agent->pcoa(),
                                 topo->nar_agent().address(), fna));
  BfMsg bf;
  bf.mh = mh_id();
  mobile.node->send(make_control(sim, mobile.agent->pcoa(),
                                 topo->par_agent().address(), bf));
  sim.run_until(20_s);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
}

TEST_F(RobustnessFixture, StrayControlForUnknownHostIgnored) {
  build();
  Simulation& sim = topo->simulation();
  sim.run_until(5_s);
  FbuMsg fbu;
  fbu.mh = 9999;  // nobody
  fbu.pcoa = make_coa(nets::kPar, 9999);
  send_to_par(fbu);
  FnaMsg fna;
  fna.mh = 9999;
  fna.has_bf = true;
  send_to_par(fna);
  BufferFullMsg full;
  full.mh = 9999;
  send_to_par(full);
  sim.run_until(20_s);
  EXPECT_EQ(sim.stats().flow(1).dropped, 0u);
  // The stray FBU did create a context (non-anticipated path needs that),
  // but no buffers leaked.
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
}

TEST_F(RobustnessFixture, ExpiredAllocationFlushesBufferedPackets) {
  // Request a very short buffer lifetime: the allocation expires while the
  // MH is still detached, and the buffered packets are accounted as
  // kBufferExpired, not leaked.
  cfg.scheme.lifetime = SimTime::from_millis(1'200);
  // Trigger at ~10 s, FBU ~11.1 s: 1.2 s lifetime dies mid-blackout.
  build();
  Simulation& sim = topo->simulation();
  sim.run_until(20_s);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_GT(c.drops_by_reason[static_cast<int>(DropReason::kBufferExpired)] +
                c.drops_by_reason[static_cast<int>(DropReason::kUnattached)],
            0u);
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
}

TEST_F(RobustnessFixture, RealTimeEvictionAccounting) {
  // Flood real-time traffic so the NAR lease overflows and drop-front
  // evictions kick in; every eviction must be recorded as kBufferFrontDrop.
  cfg.scheme.pool_pkts = 10;
  cfg.scheme.request_pkts = 10;
  build(TrafficClass::kRealTime);
  Simulation& sim = topo->simulation();
  sim.run_until(20_s);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_GT(c.drops_by_reason[static_cast<int>(DropReason::kBufferFrontDrop)],
            0u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  // The freshest real-time packets survive: the NAR drained its lease.
  EXPECT_EQ(topo->nar_agent().counters().drained, 10u);
}

TEST_F(RobustnessFixture, SampledBlackoutsKeepInvariants) {
  cfg.wlan.l2_phase_model = L2PhaseModel{};  // 60-400 ms random blackouts
  cfg.bounce = true;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  build();
  Simulation& sim = topo->simulation();
  sim.run_until(cfg.mobility_start + topo->leg_duration() * 4);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_GE(topo->mobile(0).agent->counters().handoffs, 3u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_EQ(c.dropped, 0u);  // 60-packet lease covers even 400 ms at 100 p/s
}

TEST_F(RobustnessFixture, NarAllocationReclaimedWhenFnaNeverArrives) {
  // The mirror image of PAR-side retry exhaustion: HI/HAck completed, so
  // the NAR holds a granted allocation with redirected packets in it — and
  // then the MH's FNA (every retry of it) is black-holed on the new radio
  // link. The NAR must reclaim the orphaned grant on its own (lifetime
  // expiry, with the lease reaper as backstop), flushing the contents into
  // an accounted drop bucket rather than leaking the lease.
  build();
  Simulation& sim = topo->simulation();
  fault::LinkFaultInjector up_inj(
      sim, *topo->wlan().uplink(topo->ap_nar().id(), mh_id()));
  up_inj.drop_matching(fault::message_named("FNA"));
  // Handover at ~11 s, NAR lifetime ~10 s by default: run past expiry plus
  // the lease grace so every reclamation path has had its chance.
  sim.run_until(25_s);
  EXPECT_GT(up_inj.dropped(), 1u);  // the FNA and its retries all died
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u)
      << "orphaned NAR allocation leaked";
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  // The buffered redirected packets (and tunneled FBack) were drained into
  // accounted buckets, so conservation still closes.
  EXPECT_GT(sim.stats().total_drops(DropReason::kBufferExpired) +
                sim.stats().total_drops(DropReason::kLeaseReclaimed),
            0u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  // The attempt itself still settles (reactive repair or typed failure) —
  // never wedged.
  EXPECT_EQ(topo->outcomes().attempts(),
            topo->outcomes().completed() +
                topo->outcomes().count(HandoverOutcome::kFailed));
  EXPECT_GE(topo->outcomes().attempts(), 1u);
}

TEST_F(RobustnessFixture, RetransmittedHiDoesNotDoubleAllocate) {
  // Kill the first HAck on the inter-AR link: the PAR retransmits the HI,
  // so the NAR sees the same transaction twice. It must re-elicit the
  // cached HAck, not tear down and re-allocate the buffer the first copy
  // built (which would flush any packets already buffered).
  build();
  Simulation& sim = topo->simulation();
  fault::LinkFaultInjector inj(sim, topo->par_nar_link().b_to_a());
  inj.drop_nth(1, fault::message_named("HAck"));
  sim.run_until(20_s);
  const auto& par = topo->par_agent().counters();
  const auto& nar = topo->nar_agent().counters();
  EXPECT_EQ(par.hi_rtx, 1u);
  EXPECT_EQ(nar.hi_received, 2u);
  EXPECT_EQ(nar.dup_hi, 1u);
  EXPECT_EQ(nar.hack_sent, 2u);
  // Exactly one grant was handed out and the handover still completes as a
  // normal predictive one with no losses.
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kPredictive), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kFailed), 0u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
}

TEST_F(RobustnessFixture, LossyInterArLinkDegradesGracefully) {
  // 30% loss on the inter-AR link randomly kills HI/HAck/BF messages and
  // tunneled data: handovers degrade (lost grants, lost drains) but the
  // state machines must neither leak leases nor break conservation.
  cfg.bounce = true;
  build();
  Simulation& sim = topo->simulation();
  topo->par_nar_link().a_to_b().set_loss_rate(0.3);
  topo->par_nar_link().b_to_a().set_loss_rate(0.3);
  // End early in leg 5, before its anticipation window opens (~10 s into
  // the leg), so no handover is legitimately in progress at shutdown.
  sim.run_until(cfg.mobility_start + topo->leg_duration() * 4 + 5_s);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_GT(c.delivered, 0u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_GE(topo->mobile(0).agent->counters().handoffs, 3u);
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
  // Degrading is not the same as stalling: the retransmission/fallback
  // machinery must carry every attempt to completion despite 30% control
  // loss on the negotiation path (predictively or via the reactive FBU).
  const HandoverOutcomeRecorder& rec = topo->outcomes();
  EXPECT_GE(rec.attempts(), 3u);
  EXPECT_EQ(rec.count(HandoverOutcome::kFailed), 0u);
  EXPECT_EQ(rec.completed(), rec.attempts());
}

}  // namespace
}  // namespace fhmip
