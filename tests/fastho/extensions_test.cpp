#include <gtest/gtest.h>

#include "fastho/auth.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/diffserv.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

constexpr std::uint64_t kKey = 0xFEEDBEEF;

/// §5 future-work features: handover authentication, adaptive (precise)
/// buffer allocation, and Diffserv edge marking.
struct ExtensionsFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;

  void build() { topo = std::make_unique<PaperTopology>(cfg); }

  void add_flow(std::size_t mh, FlowId id, double kbps,
                TrafficClass cls = TrafficClass::kHighPriority) {
    auto& m = topo->mobile(mh);
    const auto port = static_cast<std::uint16_t>(7000 + id);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.packet_bytes = 160;
    c.interval = CbrSource::interval_for_rate(kbps, 160);
    c.tclass = cls;
    c.flow = id;
    sources.push_back(std::make_unique<CbrSource>(
        topo->cn(), static_cast<std::uint16_t>(5000 + id), c));
    sources.back()->start(2_s);
    sources.back()->stop(16_s);
  }

  void run_all() {
    topo->start();
    topo->simulation().run_until(20_s);
  }
};

// ---------------------------------------------------------------------------
// Authentication
// ---------------------------------------------------------------------------

TEST(HandoverAuth, TokenIsKeyAndHostSpecific) {
  const auto t = HandoverAuthenticator::token(7, kKey);
  EXPECT_NE(t, HandoverAuthenticator::token(8, kKey));
  EXPECT_NE(t, HandoverAuthenticator::token(7, kKey + 1));
  EXPECT_EQ(t, HandoverAuthenticator::token(7, kKey));
}

TEST(HandoverAuth, VerifierSemantics) {
  HandoverAuthenticator a;
  EXPECT_TRUE(a.verify(1, 0));  // not required -> everything passes
  a.set_required(true);
  EXPECT_FALSE(a.verify(1, 123));  // unknown host
  a.register_key(1, kKey);
  EXPECT_TRUE(a.verify(1, HandoverAuthenticator::token(1, kKey)));
  EXPECT_FALSE(a.verify(1, HandoverAuthenticator::token(1, kKey + 1)));
  a.revoke(1);
  EXPECT_FALSE(a.verify(1, HandoverAuthenticator::token(1, kKey)));
  EXPECT_EQ(a.accepted(), 2u);
  EXPECT_EQ(a.rejected(), 3u);
}

TEST_F(ExtensionsFixture, AuthenticatedHandoverGetsFullService) {
  cfg.auth_key = kKey;
  build();
  topo->nar_agent().auth().set_required(true);
  topo->nar_agent().auth().register_key(topo->mobile(0).node->id(), kKey);
  add_flow(0, 1, 128);
  run_all();
  EXPECT_EQ(topo->nar_agent().auth().rejected(), 0u);
  EXPECT_EQ(topo->simulation().stats().flow(1).dropped, 0u);
  EXPECT_TRUE(topo->mobile(0).agent->last_grant().nar_ok);
}

TEST_F(ExtensionsFixture, UnauthenticatedHandoverIsRefusedButRecovers) {
  cfg.auth_key = 0;  // the MH presents no token
  build();
  topo->nar_agent().auth().set_required(true);
  add_flow(0, 1, 128);
  run_all();
  const auto& mh = *topo->mobile(0).agent;
  EXPECT_GE(topo->nar_agent().auth().rejected(), 1u);
  EXPECT_FALSE(mh.last_grant().nar_ok);
  EXPECT_FALSE(mh.last_grant().par_ok);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // No Fast Handover assistance: the blackout's packets are lost...
  EXPECT_GE(c.dropped, 15u);
  // ...but the host re-registers after attaching and traffic resumes.
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_GT(c.delivered, 1200u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
}

TEST_F(ExtensionsFixture, WrongKeyIsRefused) {
  cfg.auth_key = kKey + 1;
  build();
  topo->nar_agent().auth().set_required(true);
  topo->nar_agent().auth().register_key(topo->mobile(0).node->id(), kKey);
  add_flow(0, 1, 128);
  run_all();
  EXPECT_GE(topo->nar_agent().auth().rejected(), 1u);
  EXPECT_FALSE(topo->mobile(0).agent->last_grant().nar_ok);
}

// ---------------------------------------------------------------------------
// Adaptive (precise) allocation
// ---------------------------------------------------------------------------

TEST_F(ExtensionsFixture, AdaptiveRequestShrinksToObservedRate) {
  cfg.scheme.adaptive_request = true;
  cfg.scheme.pool_pkts = 40;
  cfg.scheme.request_pkts = 40;  // the host still asks for the blanket 40
  build();
  add_flow(0, 1, 32);  // 25 packets/s -> ~8 packets per 300 ms
  run_all();
  const BufferGrant& g = topo->mobile(0).agent->last_grant();
  EXPECT_TRUE(g.nar_ok);
  EXPECT_LT(g.nar_pkts, 15u);  // far below the blanket request
  EXPECT_GE(g.nar_pkts, cfg.scheme.min_request_pkts);
  EXPECT_EQ(topo->simulation().stats().flow(1).dropped, 0u);
}

TEST_F(ExtensionsFixture, AdaptiveAllocationServesMoreHosts) {
  // Six low-rate (32 kb/s) hosts handing off together. Blanket 20-packet
  // requests exhaust both 40-slot pools after four hosts; adaptive
  // requests (~8 packets at 25 p/s over 300 ms) fit everyone.
  for (const bool adaptive : {false, true}) {
    cfg = PaperTopologyConfig{};
    cfg.num_mhs = 6;
    cfg.scheme.classify = false;
    cfg.scheme.pool_pkts = 40;
    cfg.scheme.request_pkts = 20;
    cfg.scheme.adaptive_request = adaptive;
    sinks.clear();
    sources.clear();
    build();
    for (int i = 0; i < 6; ++i) add_flow(i, i + 1, 32);  // ~5 pkts/blackout
    run_all();
    const auto totals = topo->simulation().stats().totals();
    if (adaptive) {
      EXPECT_LE(totals.dropped, 2u) << "adaptive";
    } else {
      EXPECT_GE(totals.dropped, 8u) << "blanket";
    }
  }
}

TEST_F(ExtensionsFixture, RateEstimatorVisibleAtAgent) {
  build();
  add_flow(0, 1, 128);
  topo->start();
  topo->simulation().run_until(8_s);
  EXPECT_NEAR(topo->par_agent().estimated_pps(topo->mobile(0).node->id()),
              100.0, 15.0);
}

// ---------------------------------------------------------------------------
// Diffserv edge marking
// ---------------------------------------------------------------------------

TEST_F(ExtensionsFixture, EdgeMarkerClassifiesUnmarkedTraffic) {
  build();
  // Traffic leaves the CN unmarked; the gateway marks by destination port.
  DiffservMarker marker(topo->network().node(1));  // gw
  marker.add_rule(7001, DiffservPhb::kExpeditedForwarding);
  marker.add_rule(7002, DiffservPhb::kAssuredForwarding);
  add_flow(0, 1, 128, TrafficClass::kUnspecified);  // port 7001
  add_flow(0, 2, 128, TrafficClass::kUnspecified);  // port 7002
  add_flow(0, 3, 128, TrafficClass::kUnspecified);  // port 7003, unmatched

  // Observe the classes arriving at the MH.
  TrafficClass seen[4] = {};
  auto& m = topo->mobile(0);
  for (FlowId f = 1; f <= 3; ++f) {
    const auto port = static_cast<std::uint16_t>(7000 + f);
    m.node->register_port(port, [&seen, f](PacketPtr p) {
      seen[f] = p->tclass;
    });
  }
  run_all();
  EXPECT_EQ(seen[1], TrafficClass::kRealTime);
  EXPECT_EQ(seen[2], TrafficClass::kHighPriority);
  EXPECT_EQ(seen[3], TrafficClass::kUnspecified);
  EXPECT_GT(marker.packets_marked(), 0u);
}

TEST_F(ExtensionsFixture, MarkedTrafficGetsClassTreatmentInHandoff) {
  // The handoff policy must act on the marks applied upstream: a marked
  // high-priority flow survives a tight buffer that drops the others.
  cfg.scheme.pool_pkts = 15;
  cfg.scheme.request_pkts = 15;
  build();
  DiffservMarker marker(topo->network().node(1));
  marker.add_rule(7001, DiffservPhb::kExpeditedForwarding);   // F1 -> RT
  marker.add_rule(7002, DiffservPhb::kAssuredForwarding);     // F2 -> HP
  // F3 stays unspecified -> best effort.
  add_flow(0, 1, 128, TrafficClass::kUnspecified);
  add_flow(0, 2, 128, TrafficClass::kUnspecified);
  add_flow(0, 3, 128, TrafficClass::kUnspecified);
  run_all();
  auto& st = topo->simulation().stats();
  EXPECT_LE(st.flow(2).dropped, st.flow(1).dropped);
  EXPECT_LE(st.flow(2).dropped, st.flow(3).dropped);
}

TEST(DiffservMarker, DefaultPhbAndControlExemption) {
  Simulation sim;
  Network net(sim);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.add_address({1, 1});
  b.add_address({2, 1});
  net.connect(a, b, 1e9, SimTime::millis(1));
  net.compute_routes();
  DiffservMarker marker(a);
  marker.set_default_phb(DiffservPhb::kAssuredForwarding);

  TrafficClass seen = TrafficClass::kUnspecified;
  b.register_port(7, [&](PacketPtr p) { seen = p->tclass; });
  auto p = make_packet(sim, {1, 1}, {2, 1}, 100);
  p->dst_port = 7;
  a.send(std::move(p));
  // Control messages pass unmarked.
  bool control_seen = false;
  b.add_control_handler([&](PacketPtr& cp) {
    control_seen = true;
    EXPECT_EQ(cp->tclass, TrafficClass::kUnspecified);
    return true;
  });
  a.send(make_control(sim, {1, 1}, {2, 1}, BfMsg{}));
  sim.run();
  EXPECT_EQ(seen, TrafficClass::kHighPriority);
  EXPECT_TRUE(control_seen);
  EXPECT_EQ(marker.packets_marked(), 1u);
}

}  // namespace
}  // namespace fhmip
