#include <gtest/gtest.h>

#include "fault/link_fault.hpp"
#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// The per-attempt liveness watchdog (MhAgent::Config::watchdog): it must
/// stay silent on healthy runs, close wedges nothing else would (detach
/// with no re-attach), and prefer the one legal self-repair — a reactive
/// FBU — over declaring failure when the link is up and only the FBack is
/// missing.
struct WatchdogFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build(SimTime traffic_stop = SimTime::seconds(16)) {
    topo = std::make_unique<PaperTopology>(cfg);
    auto& m = topo->mobile(0);
    sink = std::make_unique<UdpSink>(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.tclass = TrafficClass::kHighPriority;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
    source->stop(traffic_stop);
    topo->start();
  }

  const MhAgent::Counters& mh_counters() {
    return topo->mobile(0).agent->counters();
  }
};

TEST_F(WatchdogFixture, SilentOnHealthyHandover) {
  // A deadline generous enough for the whole anticipation + blackout + FNA
  // choreography of the default geometry must never fire.
  cfg.watchdog = 3_s;
  build();
  topo->simulation().run_until(20_s);
  EXPECT_EQ(mh_counters().watchdog_fired, 0u);
  EXPECT_EQ(mh_counters().watchdog_failed, 0u);
  EXPECT_EQ(topo->outcomes().attempts(), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kPredictive), 1u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_EQ(c.dropped, 0u);
}

TEST_F(WatchdogFixture, ClosesDetachAndVanishWedge) {
  // Shrink the radios so the coverage areas no longer overlap: the MH walks
  // off the PAR's edge into a dead zone and stays dark for ~9 s. Nothing in
  // the protocol can close that attempt — no timer is pending, the radio is
  // simply gone. This models an MH crashing mid-blackout.
  cfg.ap_radius_m = 60;  // gap from x=60 to x=152
  cfg.watchdog = 1_s;
  build(/*traffic_stop=*/9_s);  // quiesce in-flight packets before the check
  Simulation& sim = topo->simulation();
  // Detach at ~6.1 s (x = 60 m at 10 m/s); run until well inside the gap
  // but before NAR coverage at ~15.3 s.
  sim.run_until(10_s);
  EXPECT_EQ(mh_counters().watchdog_fired, 1u);
  EXPECT_EQ(mh_counters().watchdog_failed, 1u);
  // The wedge became a *visible* typed failure within one deadline.
  EXPECT_EQ(topo->outcomes().attempts(), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kFailed), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverCause::kWatchdog), 1u);
  // Blackhole traffic is accounted, not lost to bookkeeping.
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
}

TEST_F(WatchdogFixture, WithoutWatchdogTheSameWedgeStaysInvisible) {
  // Control run for the test above: with the watchdog disabled (the
  // default), the identical scenario records *no* attempt at all — the
  // wedge exists but nothing ever observes it. This is the blind spot the
  // watchdog exists to close.
  cfg.ap_radius_m = 60;
  cfg.watchdog = SimTime();  // disabled
  build();
  topo->simulation().run_until(10_s);
  EXPECT_EQ(mh_counters().watchdog_fired, 0u);
  EXPECT_EQ(topo->outcomes().attempts(), 0u);
}

TEST_F(WatchdogFixture, SelfRepairsLostFbackWithReactiveFbu) {
  // Kill the predictive FBAck on every path to the MH: the PAR answers an
  // old-link FBU with two copies that both cross the inter-AR link (the
  // tunneled PCoA copy the NAR would drain after FNA, and the NAR-addressed
  // copy it holds) — drop exactly those two, plus anything on the old-link
  // radio. Stretch the rto so the MH's own verify-phase fallback sits far
  // in the future (~800 ms after attach), then place the watchdog deadline
  // between attach and that fallback. The watchdog finds the link up, the
  // old-link FBU unanswered and no reactive FBU sent yet — the legal
  // §2.3.2 move — so it repairs instead of failing, and the later reactive
  // FBAck copies pass untouched.
  cfg.watchdog = SimTime::millis(1'800);  // armed at trigger ~10.1 s
  cfg.rtx.rto = SimTime::millis(400);     // verify fallback at ~12.1 s
  build();
  Simulation& sim = topo->simulation();
  const MhId mh = topo->mobile(0).node->id();
  fault::LinkFaultInjector down_inj(
      sim, *topo->wlan().downlink(topo->ap_par().id(), mh));
  down_inj.drop_matching(fault::message_named("FBAck"));
  fault::LinkFaultInjector tun_inj(sim, topo->par_nar_link().a_to_b());
  tun_inj.drop_nth(1, fault::message_named("FBAck"));  // tunneled PCoA copy
  tun_inj.drop_nth(1, fault::message_named("FBAck"));  // NAR-held copy
  sim.run_until(20_s);
  EXPECT_EQ(mh_counters().watchdog_fired, 1u);
  EXPECT_EQ(mh_counters().watchdog_failed, 0u);  // repaired, not declared dead
  EXPECT_EQ(mh_counters().reactive_fbu, 1u);
  EXPECT_EQ(topo->outcomes().attempts(), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kReactive), 1u);
  EXPECT_EQ(topo->outcomes().count(HandoverOutcome::kFailed), 0u);
  // No leaked leases on either router once the dust settles.
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
}

TEST_F(WatchdogFixture, ExhaustionPathsStillResolveWithoutWatchdogHelp) {
  // 30% control loss: every attempt must still settle through the existing
  // rtx/reactive machinery, and a generous watchdog must not steal those
  // resolutions (its counter stays zero).
  cfg.bounce = true;
  cfg.watchdog = 5_s;
  build();
  Simulation& sim = topo->simulation();
  topo->par_nar_link().a_to_b().set_loss_rate(0.3);
  topo->par_nar_link().b_to_a().set_loss_rate(0.3);
  sim.run_until(cfg.mobility_start + topo->leg_duration() * 4 + 5_s);
  const HandoverOutcomeRecorder& rec = topo->outcomes();
  EXPECT_GE(rec.attempts(), 3u);
  EXPECT_EQ(rec.completed(), rec.attempts());
  EXPECT_EQ(mh_counters().watchdog_failed, 0u);
  const FlowCounters& c = sim.stats().flow(1);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
}

}  // namespace
}  // namespace fhmip
