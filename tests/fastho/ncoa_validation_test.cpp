#include <gtest/gtest.h>

#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// §2.3.2 NCoA verification: the NAR checks the proposed new care-of
/// address against its subnet and substitutes a free one on collision.
struct NcoaFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build() {
    topo = std::make_unique<PaperTopology>(cfg);
    auto& m = topo->mobile(0);
    sink = std::make_unique<UdpSink>(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 10_ms;
    c.tclass = TrafficClass::kHighPriority;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
    source->stop(16_s);
  }

  void run_all() {
    topo->start();
    topo->simulation().run_until(20_s);
  }
};

TEST_F(NcoaFixture, CleanSubnetKeepsProposedNcoa) {
  build();
  run_all();
  EXPECT_EQ(topo->nar_agent().ncoa_collisions(), 0u);
  EXPECT_EQ(topo->mobile(0).agent->pcoa(),
            make_coa(nets::kNar, topo->mobile(0).node->id()));
}

TEST_F(NcoaFixture, CollisionGetsSubstituteAddressAndStaysLossless) {
  build();
  // Another device on the NAR subnet already uses the MH's interface id.
  const MhId mh = topo->mobile(0).node->id();
  topo->nar_agent().reserve_host_id(mh);
  run_all();
  EXPECT_EQ(topo->nar_agent().ncoa_collisions(), 1u);
  const Address got = topo->mobile(0).agent->pcoa();
  EXPECT_EQ(got.net, nets::kNar);
  EXPECT_NE(got.host, mh);  // substituted
  // The handover itself was still clean end to end.
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.sent, c.delivered);
  // The MAP binding points at the substitute and traffic flows through it.
  EXPECT_EQ(topo->map_agent().bindings().lookup(topo->mobile(0).regional,
                                                topo->simulation().now()),
            got);
}

TEST_F(NcoaFixture, SubstituteSurvivesAfterContextTeardown) {
  build();
  const MhId mh = topo->mobile(0).node->id();
  topo->nar_agent().reserve_host_id(mh);
  topo->start();
  // Run far past the allocation lifetime (context torn down at ~20 s).
  topo->simulation().run_until(25_s);
  source->stop_now();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // Traffic kept flowing through the aliased address the whole time.
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_GT(c.delivered, 1300u);
}

TEST_F(NcoaFixture, BounceReusesTheSameSubstitute) {
  cfg.bounce = true;
  build();
  const MhId mh = topo->mobile(0).node->id();
  topo->nar_agent().reserve_host_id(mh);
  topo->start();
  Simulation& sim = topo->simulation();
  const SimTime leg = topo->leg_duration();
  sim.run_until(cfg.mobility_start + leg);  // out: collision at the NAR
  const Address first = topo->mobile(0).agent->pcoa();
  sim.run_until(cfg.mobility_start + 3 * leg);  // back and out again
  const Address second = topo->mobile(0).agent->pcoa();
  EXPECT_EQ(first, second);  // the lease is stable across visits
  EXPECT_EQ(topo->nar_agent().ncoa_collisions(), 2u);
  source->stop_now();
}

}  // namespace
}  // namespace fhmip
