#include <gtest/gtest.h>

#include "scenario/paper_topology.hpp"
#include "scenario/wlan_topology.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// MH-side state machine details not covered by the end-to-end suites.
struct MhAgentFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;

  void build() { topo = std::make_unique<PaperTopology>(cfg); }
};

TEST_F(MhAgentFixture, InitialAttachConfiguresPcoaAndBinds) {
  build();
  topo->start();
  topo->simulation().run_until(1_s);
  auto& m = topo->mobile(0);
  EXPECT_EQ(m.agent->pcoa(), make_coa(nets::kPar, m.node->id()));
  EXPECT_EQ(m.agent->current_ar_addr(), topo->par().address());
  EXPECT_TRUE(m.node->has_address(m.agent->pcoa()));
  EXPECT_EQ(m.agent->counters().handoffs, 0u);  // first attach is not one
}

TEST_F(MhAgentFixture, PcoaRollsOverAfterHandover) {
  build();
  topo->start();
  topo->simulation().run_until(20_s);
  auto& m = topo->mobile(0);
  EXPECT_EQ(m.agent->pcoa(), make_coa(nets::kNar, m.node->id()));
  EXPECT_EQ(m.agent->current_ar_addr(), topo->nar().address());
  // Both care-of addresses remain claimable (packets in flight).
  EXPECT_TRUE(m.node->has_address(make_coa(nets::kPar, m.node->id())));
  EXPECT_TRUE(m.node->has_address(make_coa(nets::kNar, m.node->id())));
}

TEST_F(MhAgentFixture, TriggerWithoutFastHandoverSendsNothing) {
  cfg.use_fast_handover = false;
  build();
  topo->start();
  topo->simulation().run_until(20_s);
  const auto& c = topo->mobile(0).agent->counters();
  EXPECT_GE(c.l2_triggers, 1u);  // the trigger still fires
  EXPECT_EQ(c.rtsolpr_sent, 0u);
  EXPECT_EQ(c.fbu_sent, 0u);
  EXPECT_EQ(c.fna_sent, 0u);
}

TEST_F(MhAgentFixture, GrantVisibleBeforeDisconnect) {
  build();
  topo->start();
  // After the trigger (~10 s) and the HI/HAck round trip, but before the
  // blackout (~11.1 s), the MH already knows its grants.
  topo->simulation().run_until(SimTime::from_millis(10'500));
  const auto& m = *topo->mobile(0).agent;
  EXPECT_EQ(m.counters().prrtadv_received, 1u);
  EXPECT_TRUE(m.last_grant().nar_ok);
  EXPECT_EQ(m.counters().fbu_sent, 0u);  // not yet
}

TEST_F(MhAgentFixture, FbackReceivedOnOldLink) {
  build();
  topo->start();
  topo->simulation().run_until(20_s);
  // The FBU is answered before the radio drops (2 ms guard covers the
  // 1 ms wireless RTT).
  EXPECT_GE(topo->mobile(0).agent->counters().fback_received, 1u);
}

TEST(MhAgentIntra, CountsIntraHandoffsSeparately) {
  WlanTopologyConfig cfg;
  cfg.scheme.lifetime = 30_s;
  WlanTopology topo(cfg);
  topo.start();
  topo.schedule_handoff(2_s);
  topo.schedule_handoff(4_s);
  topo.simulation().run_until(6_s);
  const auto& c = topo.mh_agent().counters();
  EXPECT_EQ(c.handoffs, 2u);
  EXPECT_EQ(c.intra_handoffs, 2u);
  EXPECT_EQ(c.non_anticipated, 0u);
  // Intra handovers never touch the inter-AR machinery.
  EXPECT_EQ(topo.ar_agent().counters().hi_sent, 0u);
}

}  // namespace
}  // namespace fhmip
