#include <gtest/gtest.h>

#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// End-to-end Fast Handover choreography over the Figure 4.1 network.
struct HandoverFixture : ::testing::Test {
  PaperTopologyConfig cfg;

  std::unique_ptr<PaperTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  void build(TrafficClass cls = TrafficClass::kUnspecified,
             double kbps = 64) {
    // On a rebuild, tear down in reverse dependency order: the sink and
    // source unregister from nodes owned by the topology on destruction,
    // so they must go before the topology they point into.
    source.reset();
    sink.reset();
    topo.reset();
    topo = std::make_unique<PaperTopology>(cfg);
    auto& m = topo->mobile(0);
    sink = std::make_unique<UdpSink>(*m.node, 7000);
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = CbrSource::interval_for_rate(kbps, 160);
    c.tclass = cls;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(2_s);
    source->stop(16_s);
    topo->start();
  }

  void run_all() { topo->simulation().run_until(20_s); }
};

TEST_F(HandoverFixture, FullMessageChoreography) {
  build();
  run_all();
  const auto& mh = topo->mobile(0).agent->counters();
  const auto& par = topo->par_agent().counters();
  const auto& nar = topo->nar_agent().counters();
  // Figure 3.2's sequence, one handover's worth.
  EXPECT_EQ(mh.l2_triggers, 1u);
  EXPECT_EQ(mh.rtsolpr_sent, 1u);
  EXPECT_EQ(par.rtsolpr, 1u);
  EXPECT_EQ(par.hi_sent, 1u);
  EXPECT_EQ(nar.hi_received, 1u);
  EXPECT_EQ(nar.hack_sent, 1u);
  EXPECT_EQ(par.hack_received, 1u);
  EXPECT_EQ(par.prrtadv_sent, 1u);
  EXPECT_EQ(mh.prrtadv_received, 1u);
  EXPECT_EQ(mh.fbu_sent, 1u);
  EXPECT_EQ(par.fbu, 1u);
  EXPECT_GE(mh.fback_received, 1u);
  EXPECT_EQ(mh.fna_sent, 1u);
  EXPECT_EQ(nar.fna, 1u);
  EXPECT_EQ(nar.bf_sent, 1u);
  EXPECT_EQ(par.bf_received, 1u);
  EXPECT_EQ(mh.handoffs, 1u);
  EXPECT_EQ(mh.non_anticipated, 0u);
}

TEST_F(HandoverFixture, NoLossAcrossHandoverWithDualBuffers) {
  cfg.scheme.mode = BufferMode::kDual;
  build(TrafficClass::kHighPriority);
  run_all();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.sent, 700u);
  EXPECT_EQ(c.delivered, 700u);
  EXPECT_EQ(c.dropped, 0u);
}

TEST_F(HandoverFixture, NoBufferModeLosesBlackoutPackets) {
  cfg.scheme.mode = BufferMode::kNone;
  build();
  run_all();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // ~200 ms at 50 packets/s.
  EXPECT_GE(c.dropped, 9u);
  EXPECT_LE(c.dropped, 12u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
}

TEST_F(HandoverFixture, BindingUpdateReroutesAfterHandover) {
  build();
  run_all();
  auto& m = topo->mobile(0);
  EXPECT_EQ(m.mip->updates_sent(), 2u);  // initial attach + handover
  EXPECT_EQ(m.mip->acks_received(), 2u);
  EXPECT_EQ(topo->map_agent().bindings().lookup(m.regional,
                                                topo->simulation().now()),
            make_coa(nets::kNar, m.node->id()));
}

TEST_F(HandoverFixture, TunnelRedirectsDuringHandoffWindow) {
  cfg.scheme.classify = false;  // unmarked flow -> the dual (NAR-first) path
  build();
  run_all();
  const auto& par = topo->par_agent().counters();
  const auto& nar = topo->nar_agent().counters();
  EXPECT_GT(par.redirected, 0u);
  EXPECT_GT(nar.buffered_local, 0u);
  EXPECT_EQ(nar.drained, nar.buffered_local);
}

TEST_F(HandoverFixture, LeasesReleasedAfterHandover) {
  build();
  run_all();
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().leased(), 0u);
  EXPECT_EQ(topo->par_agent().buffers().active_leases(), 0u);
  EXPECT_EQ(topo->nar_agent().buffers().active_leases(), 0u);
}

TEST_F(HandoverFixture, ContextsTornDownByLifetime) {
  build();
  run_all();
  // The default 10 s allocation lifetime starts at the RtSolPr (~t=10 s).
  topo->simulation().run_until(25_s);
  const MhId mh = topo->mobile(0).node->id();
  EXPECT_FALSE(topo->par_agent().has_par_context(mh));
  EXPECT_FALSE(topo->nar_agent().has_nar_context(mh));
}

TEST_F(HandoverFixture, PlainFastHandoverWithoutBufferRequests) {
  // request_buffers = false: the original FH signaling without BI/BR/BA.
  cfg.request_buffers = false;
  build();
  run_all();
  const auto& mh = topo->mobile(0).agent->counters();
  EXPECT_EQ(mh.handoffs, 1u);
  EXPECT_EQ(topo->nar_agent().counters().buffered_local, 0u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_GT(c.dropped, 0u);  // nothing was buffered
}

TEST_F(HandoverFixture, DisablingFastHandoverStillHandsOff) {
  cfg.use_fast_handover = false;
  build();
  run_all();
  const auto& mh = topo->mobile(0).agent->counters();
  EXPECT_EQ(mh.handoffs, 1u);
  EXPECT_EQ(mh.rtsolpr_sent, 0u);
  EXPECT_EQ(mh.fbu_sent, 0u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_GT(c.delivered, 0u);
  EXPECT_GT(c.dropped, 0u);
}

TEST_F(HandoverFixture, BounceProducesRepeatedCleanHandovers) {
  cfg.bounce = true;
  cfg.scheme.mode = BufferMode::kDual;
  build(TrafficClass::kHighPriority);
  topo->simulation().run_until(cfg.mobility_start + topo->leg_duration() * 4);
  const auto& mh = topo->mobile(0).agent->counters();
  EXPECT_GE(mh.handoffs, 3u);
  EXPECT_EQ(mh.non_anticipated, 0u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.dropped, 0u);
}

TEST_F(HandoverFixture, UplinkTrafficSurvivesHandover) {
  build();
  // MH-originated traffic toward the CN.
  auto& m = topo->mobile(0);
  UdpSink cn_sink(topo->cn(), 7700);
  CbrSource::Config c;
  c.dst = topo->cn().address();
  c.dst_port = 7700;
  c.packet_bytes = 160;
  c.interval = 20_ms;
  c.flow = 9;
  CbrSource up(*m.node, 5001, c);
  up.udp().set_source(m.regional);
  up.start(2_s);
  up.stop(16_s);
  run_all();
  const FlowCounters& fc = topo->simulation().stats().flow(9);
  EXPECT_GT(fc.delivered, 650u);
  // Uplink losses are bounded by the blackout window.
  EXPECT_LE(fc.dropped, 12u);
}

TEST_F(HandoverFixture, NonAnticipatedPathStillHandsOver) {
  // Anticipation disabled: no RtSolPr/PrRtAdv, the FBU travels via the new
  // link after attachment (§2.3.2 "No Anticipation").
  cfg.anticipate = false;
  build();
  run_all();
  const auto& mh = topo->mobile(0).agent->counters();
  EXPECT_EQ(mh.rtsolpr_sent, 0u);
  EXPECT_EQ(mh.non_anticipated, 1u);
  EXPECT_EQ(mh.handoffs, 1u);
  EXPECT_EQ(topo->par_agent().counters().fbu, 1u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // No buffers were negotiated: the blackout packets are lost, but the
  // connection recovers through the late tunnel + binding update.
  EXPECT_GE(c.dropped, 9u);
  EXPECT_EQ(c.sent, c.delivered + c.dropped);
  EXPECT_GT(c.delivered, 650u);
}

TEST_F(HandoverFixture, SimultaneousBindingBaselineStillLosesBlackout) {
  // §3.1.1: bicasting to both ARs cannot help a single-radio host — it is
  // deaf during the L2 handoff no matter where packets are sent. This is
  // the thesis's argument for buffering; verify it quantitatively.
  cfg.use_fast_handover = false;  // the alternative scheme, no FH buffers
  cfg.simultaneous_binding = true;
  build();
  run_all();
  auto& m = topo->mobile(0);
  // The anticipation trigger installed the secondary binding at the MAP.
  EXPECT_GT(topo->map_agent().packets_bicast(), 0u);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // Still lost ~a blackout's worth of packets...
  const auto missing = static_cast<std::int64_t>(c.sent) -
                       static_cast<std::int64_t>(c.delivered);
  EXPECT_GE(missing, 8);
  // ...while costing duplicate copies in the core network.
  EXPECT_GT(topo->map_agent().packets_tunneled() +
                topo->map_agent().packets_bicast(),
            c.sent);
  EXPECT_EQ(m.agent->counters().handoffs, 1u);
}

TEST_F(HandoverFixture, DeterministicAcrossRuns) {
  build();
  run_all();
  const auto first = topo->simulation().stats().flow(1);
  // Rebuild from scratch with the same seed.
  build();
  run_all();
  const auto second = topo->simulation().stats().flow(1);
  EXPECT_EQ(first.sent, second.sent);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.dropped, second.dropped);
}

}  // namespace
}  // namespace fhmip
