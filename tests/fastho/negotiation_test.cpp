#include <gtest/gtest.h>

#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// Buffer negotiation (BI/BR/BA piggybacking) and the Table 3.2 cases.
struct NegotiationFixture : ::testing::Test {
  PaperTopologyConfig cfg;
  std::unique_ptr<PaperTopology> topo;
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;

  void build() { topo = std::make_unique<PaperTopology>(cfg); }

  void add_flow(std::size_t mh_index, FlowId id,
                TrafficClass cls = TrafficClass::kUnspecified) {
    auto& m = topo->mobile(mh_index);
    const std::uint16_t port = 7000 + static_cast<std::uint16_t>(id);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.packet_bytes = 160;
    c.interval = 20_ms;
    c.tclass = cls;
    c.flow = id;
    sources.push_back(std::make_unique<CbrSource>(
        topo->cn(), static_cast<std::uint16_t>(5000 + id), c));
    sources.back()->start(2_s);
    sources.back()->stop(16_s);
  }

  void run_all() {
    topo->start();
    topo->simulation().run_until(20_s);
  }
};

TEST_F(NegotiationFixture, GrantReportedToMobileHost) {
  cfg.scheme.pool_pkts = 20;
  cfg.scheme.request_pkts = 20;
  cfg.scheme.classify = true;
  build();
  add_flow(0, 1);
  run_all();
  const BufferGrant& g = topo->mobile(0).agent->last_grant();
  EXPECT_TRUE(g.nar_ok);
  EXPECT_EQ(g.nar_pkts, 20u);
  EXPECT_TRUE(g.par_ok);  // classification on: the PAR leases its share
  EXPECT_EQ(g.par_pkts, 20u);
}

TEST_F(NegotiationFixture, ClassOffSkipsParLeaseWhenNarGranted) {
  cfg.scheme.classify = false;
  build();
  add_flow(0, 1);
  run_all();
  const BufferGrant& g = topo->mobile(0).agent->last_grant();
  EXPECT_TRUE(g.nar_ok);
  // The PAR's pool stays free as the dual backup (Figure 4.2 capacity
  // argument) unless the NAR denies.
  EXPECT_FALSE(g.par_ok);
}

TEST_F(NegotiationFixture, NarExhaustionFallsBackToPar) {
  // Two hosts, pool fits exactly one request: the second host must be
  // served by the PAR side (Table 3.2 case 3).
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 20;
  cfg.scheme.request_pkts = 20;
  cfg.num_mhs = 2;
  build();
  add_flow(0, 1);
  add_flow(1, 2);
  run_all();
  const BufferGrant& g0 = topo->mobile(0).agent->last_grant();
  const BufferGrant& g1 = topo->mobile(1).agent->last_grant();
  EXPECT_TRUE(g0.nar_ok != g1.nar_ok);  // exactly one won the NAR pool
  const BufferGrant& loser = g0.nar_ok ? g1 : g0;
  EXPECT_TRUE(loser.par_ok);
  // Both streams survive the simultaneous handoff intact.
  EXPECT_EQ(topo->simulation().stats().flow(1).dropped, 0u);
  EXPECT_EQ(topo->simulation().stats().flow(2).dropped, 0u);
}

TEST_F(NegotiationFixture, NoBuffersAnywhereIsCaseFour) {
  cfg.scheme.pool_pkts = 0;  // nothing to grant at either router
  build();
  add_flow(0, 1, TrafficClass::kBestEffort);
  run_all();
  const BufferGrant& g = topo->mobile(0).agent->last_grant();
  EXPECT_FALSE(g.nar_ok);
  EXPECT_FALSE(g.par_ok);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // Case 4.c: best effort is dropped at the PAR during the blackout.
  EXPECT_GT(c.drops_by_reason[static_cast<int>(DropReason::kPolicyDrop)], 0u);
}

TEST_F(NegotiationFixture, RealTimeForwardedUnbufferedInCaseFour) {
  cfg.scheme.pool_pkts = 0;
  build();
  add_flow(0, 1, TrafficClass::kRealTime);
  run_all();
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // Case 4.a: forwarded to the NAR without buffering -> lost while the MH
  // is detached, but never policy-dropped at the PAR.
  EXPECT_EQ(c.drops_by_reason[static_cast<int>(DropReason::kPolicyDrop)], 0u);
  EXPECT_GT(c.drops_by_reason[static_cast<int>(DropReason::kUnattached)], 0u);
}

TEST_F(NegotiationFixture, StartTimeSafetyValveRedirectsBeforeFbu) {
  // The BI start_time is the safety valve for fast movers (§3.2.2.1): the
  // PAR begins redirecting at that absolute time even with no FBU yet.
  // With the trigger at ~10 s and the FBU at ~11.1 s, a 500 ms offset
  // means ~600 ms of traffic is redirected before the FBU arrives.
  cfg.start_time_offset = 500_ms;
  cfg.scheme.classify = false;
  cfg.scheme.pool_pkts = 60;
  cfg.scheme.request_pkts = 60;
  build();
  add_flow(0, 1);
  run_all();
  const auto& par = topo->par_agent().counters();
  // Far more than the ~11 blackout packets pass through the redirect path.
  EXPECT_GT(par.redirected, 25u);
  EXPECT_EQ(topo->simulation().stats().flow(1).dropped, 0u);
}

TEST_F(NegotiationFixture, CancellationReleasesAllocation) {
  build();
  topo->start();
  Simulation& sim = topo->simulation();
  sim.run_until(SimTime::from_millis(10'300));  // after RtSolPr+BI
  auto& m = topo->mobile(0);
  ASSERT_TRUE(topo->par_agent().has_par_context(m.node->id()));
  // §3.2.2.1: RtSolPr+BI with size, start time and lifetime all zero
  // cancels the pending handoff preparation.
  RtSolPrMsg cancel;
  cancel.mh = m.node->id();
  cancel.target_ap = topo->ap_nar().id();
  cancel.has_bi = true;
  m.node->send(make_control(sim, m.agent->pcoa(),
                            topo->par_agent().address(), cancel));
  sim.run_until(SimTime::from_millis(10'400));
  EXPECT_FALSE(topo->par_agent().has_par_context(m.node->id()));
  EXPECT_EQ(topo->par_agent().buffers().leased(), 0u);
}

TEST_F(NegotiationFixture, PartialGrantExtensionNegotiates) {
  cfg.scheme.allow_partial_grant = true;
  cfg.scheme.pool_pkts = 12;
  cfg.scheme.request_pkts = 20;
  build();
  add_flow(0, 1);
  run_all();
  const BufferGrant& g = topo->mobile(0).agent->last_grant();
  EXPECT_TRUE(g.nar_ok);
  EXPECT_EQ(g.nar_pkts, 12u);  // partial: whatever the pool had
}

}  // namespace
}  // namespace fhmip
