#include <gtest/gtest.h>

#include "scenario/wlan_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

namespace fhmip {
namespace {

using namespace timeliterals;

/// §3.2.2.4 — buffering across a pure link-layer handoff (Figure 4.11
/// topology: two APs under one access router).
struct IntraFixture : ::testing::Test {
  WlanTopologyConfig cfg;
  std::unique_ptr<WlanTopology> topo;
  std::unique_ptr<UdpSink> sink;
  std::unique_ptr<CbrSource> source;

  IntraFixture() {
    cfg.scheme.pool_pkts = 40;
    cfg.scheme.request_pkts = 40;
    cfg.scheme.lifetime = 30_s;  // the L2 trigger fires well before the move
  }

  void build() {
    topo = std::make_unique<WlanTopology>(cfg);
    sink = std::make_unique<UdpSink>(topo->mh(), 7000);
    CbrSource::Config c;
    c.dst = topo->mh_coa();
    c.dst_port = 7000;
    c.packet_bytes = 160;
    c.interval = 20_ms;
    c.flow = 1;
    source = std::make_unique<CbrSource>(topo->cn(), 5000, c);
    source->start(1_s);
    source->stop(9_s);
    topo->start();
  }
};

TEST_F(IntraFixture, IntraHandoffIsAnsweredDirectly) {
  build();
  topo->schedule_handoff(5_s);
  topo->simulation().run_until(10_s);
  const auto& ar = topo->ar_agent().counters();
  const auto& mh = topo->mh_agent().counters();
  // The AR recognizes the link-layer-only case: PrRtAdv sent directly, no
  // HI/HAck exchange with any peer router (Figure 3.5).
  EXPECT_GE(ar.intra_handoffs, 1u);
  EXPECT_EQ(ar.hi_sent, 0u);
  EXPECT_EQ(ar.hi_received, 0u);
  EXPECT_GE(mh.prrtadv_received, 1u);
  EXPECT_EQ(mh.intra_handoffs, 1u);
}

TEST_F(IntraFixture, NoLossAcrossL2HandoffWithBuffering) {
  build();
  topo->schedule_handoff(5_s);
  topo->simulation().run_until(10_s);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.sent, 400u);
  EXPECT_EQ(c.delivered, 400u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_GT(topo->ar_agent().counters().buffered_local, 0u);
  EXPECT_EQ(topo->ar_agent().counters().drained,
            topo->ar_agent().counters().buffered_local);
}

TEST_F(IntraFixture, WithoutFastHandoverBlackoutLoses) {
  cfg.use_fast_handover = false;
  cfg.request_buffers = false;
  build();
  topo->schedule_handoff(5_s);
  topo->simulation().run_until(10_s);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_GE(c.dropped, 9u);   // ~200 ms at 50 p/s
  EXPECT_LE(c.dropped, 12u);
}

TEST_F(IntraFixture, RepeatedPingPongHandoffs) {
  build();
  topo->schedule_handoff(3_s);
  topo->schedule_handoff(5_s);
  topo->schedule_handoff(7_s);
  topo->simulation().run_until(10_s);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(topo->mh_agent().counters().intra_handoffs, 3u);
}

TEST_F(IntraFixture, SmallBufferTailDropsOverflow) {
  cfg.scheme.pool_pkts = 5;
  cfg.scheme.request_pkts = 5;
  build();
  topo->schedule_handoff(5_s);
  topo->simulation().run_until(10_s);
  const FlowCounters& c = topo->simulation().stats().flow(1);
  // ~10 packets arrive in the blackout; 5 fit.
  EXPECT_GE(c.dropped, 4u);
  EXPECT_LE(c.dropped, 7u);
  EXPECT_EQ(c.drops_by_reason[static_cast<int>(DropReason::kBufferTailDrop)],
            c.dropped);
}

/// The standalone smooth-handover baseline (§2.4): BI/BA then BF releases.
TEST_F(IntraFixture, SmoothHandoverBaselineBuffersOnDemand) {
  cfg.use_fast_handover = false;  // no FH signaling at all
  build();
  Simulation& sim = topo->simulation();
  // The MH asks its AR to buffer (poor link quality, §3.3), then releases.
  sim.at(4_s, [&] {
    topo->mh_agent().send_buffer_init(40, SimTime{}, 10_s);
  });
  sim.at(6_s, [&] { topo->mh_agent().send_buffer_forward(topo->ar().address()); });
  sim.run_until(10_s);
  const FlowCounters& c = sim.stats().flow(1);
  // Packets between 4 s and 6 s were held, none lost; the 2 s of audio
  // (100 packets) exceeds the 40-slot buffer, so some were tail-dropped.
  EXPECT_GT(topo->ar_agent().counters().buffered_local, 30u);
  EXPECT_GT(topo->ar_agent().counters().drained, 30u);
  EXPECT_EQ(c.delivered + c.dropped, c.sent);
}

}  // namespace
}  // namespace fhmip
