#include "sweep/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "sweep/cli.hpp"
#include "sweep/json.hpp"

namespace fhmip::sweep {
namespace {

/// A miniature share-nothing "experiment": its own Simulation, a seeded
/// event cascade, a numeric result. Any cross-run interference or result
/// reordering shows up as a value mismatch.
std::uint64_t tiny_experiment(std::uint64_t seed) {
  Simulation sim(seed);
  std::uint64_t acc = 0;
  for (int i = 0; i < 50; ++i) {
    // `i` by value: the closure runs inside sim.run(), after the loop ends.
    sim.in(SimTime::millis(1 + static_cast<std::int64_t>(seed % 7)) * i,
           [&, i] { acc = acc * 31 + sim.rng().next_u64() % 1000 + i; });
  }
  sim.run();
  return acc;
}

std::vector<SweepRunner::Job<std::uint64_t>> grid_of(int n) {
  std::vector<SweepRunner::Job<std::uint64_t>> grid;
  for (int i = 0; i < n; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) * 977 + 13;
    grid.push_back({"seed=" + std::to_string(seed),
                    [seed] { return tiny_experiment(seed); }});
  }
  return grid;
}

TEST(SweepRunner, ResultsAreIndexOrderedAndDeterministicAcrossJobCounts) {
  SweepRunner serial(1);
  const auto expected = serial.run(grid_of(24));
  ASSERT_EQ(expected.size(), 24u);
  for (const int jobs : {2, 3, 8}) {
    SweepRunner parallel(jobs);
    const auto got = parallel.run(grid_of(24));
    EXPECT_EQ(got, expected) << "jobs=" << jobs;  // byte-identical aggregate
  }
}

/// A share-nothing run that also exercises the metrics registry, returning
/// (numeric result, metrics JSON) the way the --metrics benches do.
std::pair<std::uint64_t, std::string> metric_experiment(std::uint64_t seed) {
  Simulation sim(seed);
  obs::Counter& events = sim.metrics().counter("test/events");
  obs::Histogram& delay =
      sim.metrics().histogram("test/delay_ms", {1, 5, 10, 50});
  std::uint64_t acc = 0;
  for (int i = 0; i < 40; ++i) {
    sim.in(SimTime::millis(1 + static_cast<std::int64_t>(seed % 5)) * i,
           [&, i] {
             acc = acc * 31 + sim.rng().next_u64() % 1000 + i;
             events.inc();
             delay.observe(static_cast<double>(acc % 60));
           });
  }
  sim.run();
  sim.metrics().gauge("test/final").set(static_cast<std::int64_t>(acc % 97));
  return {acc, sim.metrics().to_json()};
}

std::vector<SweepRunner::Job<std::pair<std::uint64_t, std::string>>>
metric_grid(int n) {
  std::vector<SweepRunner::Job<std::pair<std::uint64_t, std::string>>> grid;
  for (int i = 0; i < n; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) * 977 + 13;
    grid.push_back({"seed=" + std::to_string(seed),
                    [seed] { return metric_experiment(seed); }});
  }
  return grid;
}

/// Runs the metrics grid on `jobs` workers and renders the full report
/// (per-run metrics embedded) exactly as a --metrics --json bench would.
std::string metrics_report_json(int jobs) {
  SweepRunner runner(jobs);
  auto results = runner.run(metric_grid(12));
  std::vector<std::string> per_run;
  per_run.reserve(results.size());
  for (auto& r : results) per_run.push_back(std::move(r.second));
  runner.attach_metrics(std::move(per_run));
  SweepReport rep = runner.report();
  // Wall-clock timings and peak RSS are process wall-state that differs
  // run to run by nature, and the jobs field records the worker count by
  // design; normalize them so the comparison isolates the deterministic
  // payload.
  rep.total_wall_ms = 0;
  rep.jobs = 1;
  rep.peak_rss_mb = 0;
  for (auto& run : rep.runs) {
    run.wall_ms = 0;
    run.peak_rss_mb = 0;
  }
  return report_to_json("metrics_determinism", rep);
}

TEST(SweepRunner, MetricsPayloadsAreByteIdenticalAcrossJobCounts) {
  const std::string expected = metrics_report_json(1);
  EXPECT_NE(expected.find("\"metrics\": {\"counters\""), std::string::npos);
  EXPECT_NE(expected.find("test/delay_ms"), std::string::npos);
  for (const int jobs : {2, 8}) {
    EXPECT_EQ(metrics_report_json(jobs), expected) << "jobs=" << jobs;
  }
  // Repeated same-seed serial runs are byte-identical too.
  EXPECT_EQ(metrics_report_json(1), expected);
}

TEST(SweepRunner, AttachMetricsToleratesLengthMismatch) {
  SweepRunner r(1);
  r.run(grid_of(3));
  // Shorter and longer vectors must not over- or under-run the report.
  r.attach_metrics({"{}"});
  EXPECT_EQ(r.report().runs[0].metrics_json, "{}");
  EXPECT_TRUE(r.report().runs[2].metrics_json.empty());
  r.attach_metrics({"{}", "{}", "{}", "{\"extra\":1}"});
  EXPECT_EQ(r.report().runs[2].metrics_json, "{}");
}

TEST(SweepRunner, EmptyGridIsANoop) {
  SweepRunner r(8);
  const auto results = r.run(grid_of(0));
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(r.report().runs.empty());
  EXPECT_EQ(r.report().total_wall_ms, 0.0);
}

TEST(SweepRunner, ExceptionInRunPropagates) {
  for (const int jobs : {1, 4}) {
    SweepRunner r(jobs);
    std::vector<SweepRunner::Job<int>> grid;
    for (int i = 0; i < 10; ++i) {
      grid.push_back({"run " + std::to_string(i), [i]() -> int {
                        if (i == 3 || i == 7) {
                          throw std::runtime_error("boom " + std::to_string(i));
                        }
                        return i;
                      }});
    }
    // The lowest-index failure wins regardless of worker interleaving, so
    // -j1 and -jN fail identically.
    EXPECT_THROW(
        {
          try {
            r.run(std::move(grid));
          } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom 3");
            throw;
          }
        },
        std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(SweepRunner, ReportCarriesLabelsAndTimings) {
  SweepRunner r(2);
  r.run(grid_of(5));
  const SweepReport& rep = r.report();
  ASSERT_EQ(rep.runs.size(), 5u);
  EXPECT_EQ(rep.jobs, 2);
  for (std::size_t i = 0; i < rep.runs.size(); ++i) {
    EXPECT_EQ(rep.runs[i].index, i);
    EXPECT_EQ(rep.runs[i].label, "seed=" + std::to_string(i * 977 + 13));
    EXPECT_GE(rep.runs[i].wall_ms, 0.0);
  }
  EXPECT_GT(rep.total_wall_ms, 0.0);
  const std::string summary = rep.format_summary();
  EXPECT_NE(summary.find("5 runs on 2 job(s)"), std::string::npos);
}

TEST(SweepRunner, JobsClampToGridSize) {
  SweepRunner r(16);
  r.run(grid_of(3));
  EXPECT_EQ(r.report().jobs, 3);  // no idle workers reported
}

TEST(SweepJson, ReportSerializesWithEscaping) {
  SweepReport rep;
  rep.jobs = 4;
  rep.total_wall_ms = 12.3456;
  rep.runs.push_back({0, "loss=0% \"quoted\"\n", 1.5, 0.0, {}});
  rep.runs.push_back({1, "plain", 2.25, 0.0, {}});
  const std::string json = report_to_json("my_bench", rep);
  EXPECT_NE(json.find("\"bench\": \"my_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\": 2.250"), std::string::npos);
  // Empty report stays valid JSON.
  const std::string empty = report_to_json("e", SweepReport{});
  EXPECT_NE(empty.find("\"runs\": []"), std::string::npos);
}

TEST(SweepCli, ParsesJobsJsonAndSmoke) {
  const char* argv[] = {"bench", "--jobs", "8", "--json", "out.json",
                        "--smoke"};
  const ParseResult r = parse_args(6, argv);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.options.jobs, 8);
  EXPECT_EQ(r.options.json_path, "out.json");
  EXPECT_TRUE(r.options.smoke);

  const char* argv2[] = {"bench", "-j4"};
  const ParseResult r2 = parse_args(2, argv2);
  EXPECT_TRUE(r2.error.empty()) << r2.error;
  EXPECT_EQ(r2.options.jobs, 4);
}

TEST(SweepCli, ParsesRssBudget) {
  const char* argv[] = {"bench", "--rss-budget-mb", "2048"};
  const ParseResult r = parse_args(3, argv);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.options.rss_budget_mb, 2048);

  // Zero disables the gate; omitting the flag leaves the bench default.
  const char* zero[] = {"bench", "--rss-budget-mb", "0"};
  EXPECT_EQ(parse_args(3, zero).options.rss_budget_mb, 0);
  const char* absent[] = {"bench"};
  EXPECT_EQ(parse_args(1, absent).options.rss_budget_mb, -1);

  const char* neg[] = {"bench", "--rss-budget-mb", "-5"};
  EXPECT_FALSE(parse_args(3, neg).error.empty());
  const char* junk[] = {"bench", "--rss-budget-mb", "lots"};
  EXPECT_FALSE(parse_args(3, junk).error.empty());
}

TEST(SweepCli, RejectsBadInput) {
  const char* bad_jobs[] = {"bench", "--jobs", "zero"};
  EXPECT_FALSE(parse_args(3, bad_jobs).error.empty());
  const char* neg_jobs[] = {"bench", "--jobs", "-2"};
  EXPECT_FALSE(parse_args(3, neg_jobs).error.empty());
  const char* missing[] = {"bench", "--json"};
  EXPECT_FALSE(parse_args(2, missing).error.empty());
  const char* unknown[] = {"bench", "--frobnicate"};
  EXPECT_FALSE(parse_args(2, unknown).error.empty());
  EXPECT_FALSE(usage("bench").empty());
}

}  // namespace
}  // namespace fhmip::sweep
