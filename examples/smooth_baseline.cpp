// The smooth-handover buffering baseline (§2.4, Krishnamurthi et al.) used
// standalone: a mobile host that detects poor link quality asks its access
// router to park its packets (BI), rides out the bad patch, then releases
// them (BF). §3.3 points out the enhanced scheme keeps this ability —
// buffering is available on *any* handoff or link event, not only the
// inter-AR fast handover.
//
//   ./build/examples/smooth_baseline

#include <cstdio>

#include "scenario/wlan_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

int main() {
  WlanTopologyConfig cfg;
  cfg.use_fast_handover = false;  // plain host, no FH signaling
  cfg.scheme.pool_pkts = 80;
  WlanTopology topo(cfg);
  Simulation& sim = topo.simulation();
  sim.stats().set_keep_samples(true);

  UdpSink sink(topo.mh(), 7000);
  CbrSource::Config c;
  c.dst = topo.mh_coa();
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 20_ms;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  src.start(1_s);
  src.stop(9_s);

  topo.start();
  // t=4 s: link quality degrades; the host requests an 80-packet buffer
  // with a 10 s lifetime. t=5 s: conditions recover, release the buffer.
  sim.at(4_s, [&] {
    std::printf("[4.000s] MH -> AR: Buffer Initialization (80 pkts)\n");
    topo.mh_agent().send_buffer_init(80, SimTime{}, 10_s);
  });
  sim.at(5_s, [&] {
    std::printf("[5.000s] MH -> AR: Buffer Forward (release)\n");
    topo.mh_agent().send_buffer_forward(topo.ar().address());
  });
  sim.run_until(10_s);

  const FlowCounters& fc = sim.stats().flow(1);
  const auto& ar = topo.ar_agent().counters();
  std::printf("\nflow: sent %llu, delivered %llu, dropped %llu\n",
              static_cast<unsigned long long>(fc.sent),
              static_cast<unsigned long long>(fc.delivered),
              static_cast<unsigned long long>(fc.dropped));
  std::printf("AR buffered %llu packets and drained %llu on release\n",
              static_cast<unsigned long long>(ar.buffered_local),
              static_cast<unsigned long long>(ar.drained));

  // Show the delay hump: packets sent during the hold waited in the AR.
  double max_delay = 0;
  for (const auto& s : sim.stats().samples(1)) {
    max_delay = std::max(max_delay, s.delay.sec());
  }
  std::printf("max end-to-end delay %.3f s (the oldest parked packet "
              "waited out the hold)\n", max_delay);
  return fc.dropped == 0 ? 0 : 1;
}
