// simulate — a small CLI around the paper scenario, for poking at the
// scheme without writing code. Prints per-flow results; optionally dumps an
// ns-2-style packet trace of the handover window.
//
// usage: ./build/examples/simulate [key=value ...]
//   mode=dual|nar|par|none   buffering mechanism        (default dual)
//   classify=0|1             per-class policy           (default 1)
//   pool=N                   buffer pool per AR, pkts   (default 20)
//   request=N                per-MH request, pkts       (default 20)
//   mhs=N                    mobile hosts               (default 1)
//   kbps=X                   per-flow rate              (default 128)
//   blackout_ms=N            L2 handoff delay           (default 200)
//   bounce=0|1               back-and-forth motion      (default 0)
//   speed=X                  m/s                        (default 10)
//   seconds=N                simulated time             (default 20)
//   seed=N                   RNG seed                   (default 1)
//   trace=0|1                dump handover packet trace (default 0)

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "scenario/paper_topology.hpp"
#include "stats/flow_table.hpp"
#include "stats/recorder.hpp"
#include "stats/table.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "ignoring argument without '=': %s\n", argv[i]);
      continue;
    }
    kv[std::string(argv[i], static_cast<std::size_t>(eq - argv[i]))] =
        std::string(eq + 1);
  }
  return kv;
}

double num(const std::map<std::string, std::string>& kv, const char* key,
           double fallback) {
  auto it = kv.find(key);
  return it == kv.end() ? fallback : std::atof(it->second.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto kv = parse_args(argc, argv);

  PaperTopologyConfig cfg;
  const std::string mode = kv.count("mode") ? kv.at("mode") : "dual";
  if (mode == "nar") {
    cfg.scheme.mode = BufferMode::kNarOnly;
  } else if (mode == "par") {
    cfg.scheme.mode = BufferMode::kParOnly;
  } else if (mode == "none") {
    cfg.scheme.mode = BufferMode::kNone;
  } else {
    cfg.scheme.mode = BufferMode::kDual;
  }
  cfg.scheme.classify = num(kv, "classify", 1) != 0;
  cfg.scheme.pool_pkts = static_cast<std::uint32_t>(num(kv, "pool", 20));
  cfg.scheme.request_pkts =
      static_cast<std::uint32_t>(num(kv, "request", 20));
  cfg.num_mhs = static_cast<int>(num(kv, "mhs", 1));
  cfg.bounce = num(kv, "bounce", 0) != 0;
  cfg.speed_mps = num(kv, "speed", 10);
  cfg.seed = static_cast<std::uint64_t>(num(kv, "seed", 1));
  cfg.wlan.l2_handoff_delay = SimTime::from_millis(num(kv, "blackout_ms", 200));
  const double kbps = num(kv, "kbps", 128);
  const double seconds = num(kv, "seconds", 20);

  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();
  sim.stats().set_keep_samples(true);

  if (num(kv, "trace", 0) != 0) {
    // Trace only the interesting window around the first handover.
    sim.trace().set_sink([&](const TraceEvent& e) {
      if (e.at > 10_s && e.at < 13_s && e.flow != kNoFlow) {
        std::puts(format_trace_line(e).c_str());
      }
    });
  }

  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  for (int m = 0; m < cfg.num_mhs; ++m) {
    auto& mobile = topo.mobile(m);
    for (int i = 0; i < 3; ++i) {
      const FlowId flow = m * 3 + i + 1;
      const auto port = static_cast<std::uint16_t>(7000 + i);
      sinks.push_back(std::make_unique<UdpSink>(*mobile.node, port));
      CbrSource::Config c;
      c.dst = mobile.regional;
      c.dst_port = port;
      c.packet_bytes = 160;
      c.interval = CbrSource::interval_for_rate(kbps, 160);
      c.tclass = classes[i];
      c.flow = flow;
      sources.push_back(std::make_unique<CbrSource>(
          topo.cn(), static_cast<std::uint16_t>(20000 + flow), c));
      sources.back()->start(2_s);
      sources.back()->stop(SimTime::from_seconds(seconds - 2));
    }
  }

  topo.start();
  sim.run_until(SimTime::from_seconds(seconds));

  const TextTable t = flow_table(sim.stats(), [&](FlowId f) {
    return std::string(to_string(classes[(f - 1) % 3]));
  });
  t.print("per-flow results (" + mode + ", classify=" +
          (cfg.scheme.classify ? "on" : "off") + ")");

  std::printf("\nhandoffs started: %zu; events executed: %llu\n",
              topo.wlan().handoffs_started(),
              static_cast<unsigned long long>(
                  sim.scheduler().events_executed()));
  return 0;
}
