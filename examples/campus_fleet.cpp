// Campus fleet: a shuttle full of devices crosses from one WLAN cell to the
// next, all handing off at once — the scalability problem of §3.1.1. The
// example compares how many concurrent audio streams each buffering
// mechanism carries through the handover without loss (the Figure 4.2
// capacity story, played as an application).
//
//   ./build/examples/campus_fleet [num_devices]

#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"
#include "stats/table.hpp"

using namespace fhmip;

int main(int argc, char** argv) {
  const int devices = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("%d devices on the shuttle, one 64 kb/s stream each;\n"
              "access routers hold a 36-packet pool, each device asks for "
              "12 packets\n\n",
              devices);

  TextTable t({"mechanism", "streams intact", "packets dropped",
               "drop rate %"});
  struct Row {
    const char* name;
    BufferMode mode;
  };
  const Row rows[] = {
      {"fast handover, no buffer", BufferMode::kNone},
      {"original FH (NAR buffer)", BufferMode::kNarOnly},
      {"PAR buffer only", BufferMode::kParOnly},
      {"proposed (dual buffers)", BufferMode::kDual},
  };
  for (const Row& row : rows) {
    SimultaneousHandoffParams p;
    p.mode = row.mode;
    p.classify = false;
    p.num_mhs = devices;
    p.pool_pkts = 36;
    p.request_pkts = 12;
    const auto r = run_simultaneous_handoffs(p);
    // A stream is "intact" if it lost nothing; estimate from totals: each
    // unserved device loses the ~10-12 blackout packets.
    const int lost_streams =
        static_cast<int>((r.total_dropped + 6) / 11);  // round to devices
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f",
                  100.0 * static_cast<double>(r.total_dropped) /
                      static_cast<double>(r.total_sent));
    t.add_row({row.name,
               std::to_string(std::max(0, devices - lost_streams)) + "/" +
                   std::to_string(devices),
               std::to_string(r.total_dropped), rate});
  }
  t.print("simultaneous-handover capacity by buffering mechanism");

  std::printf("\nthe dual scheme serves about twice the devices of either "
              "single-buffer variant\nbecause hosts denied at the NAR fall "
              "back to PAR-side buffering (Table 3.2 case 3).\n");
  return 0;
}
