// TCP across an access-point switch (Figure 4.11 scenario): a laptop on an
// FTP download roams between two APs of the same access router. The L2
// handoff blacks the radio out for 200 ms.
//
// Without buffering every in-flight segment dies and TCP stalls on its
// coarse retransmission timer (1-1.5 s). With the thesis's §3.2.2.4
// link-layer buffering the router parks the segments and replays them on
// reattachment — no loss, no timeout.
//
//   ./build/examples/tcp_wlan_handoff

#include <cstdio>

#include "scenario/experiment.hpp"
#include "stats/table.hpp"

using namespace fhmip;

int main() {
  std::printf("FTP/TCP download across a 200 ms AP-to-AP handoff at "
              "t = 11.47 s\n\n");

  TextTable t({"mode", "bytes acked (1-16 s)", "timeouts",
               "fast retransmits", "receiver stall (s)"});
  TcpHandoffResult results[2];
  for (int i = 0; i < 2; ++i) {
    TcpHandoffParams p;
    p.buffering = i == 1;
    results[i] = run_tcp_handoff(p);
    char stall[32];
    std::snprintf(stall, sizeof(stall), "%.3f",
                  max_receiver_gap(results[i], 11.0, 14.0).sec());
    t.add_row({p.buffering ? "proposed (buffered)" : "no buffering",
               std::to_string(results[i].bytes_acked),
               std::to_string(results[i].timeouts),
               std::to_string(results[i].fast_retransmits), stall});
  }
  t.print("handoff impact on the TCP connection");

  const Series thr_buf =
      tcp_throughput_series(results[1], "buffered", 11.0, 13.5);
  const Series thr_nobuf =
      tcp_throughput_series(results[0], "no buffer", 11.0, 13.5);
  print_series_table("TCP throughput around the handoff (Mbit/s)",
                     "time (s)", {thr_buf, thr_nobuf});

  const double gain =
      100.0 * (static_cast<double>(results[1].bytes_acked) /
                   static_cast<double>(results[0].bytes_acked) -
               1.0);
  std::printf("\nbuffering recovered %.1f%% goodput over the run.\n", gain);
  return 0;
}
