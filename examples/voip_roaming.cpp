// VoIP roaming: a commuter bounces between two WLAN cells for two minutes
// while receiving three audio streams of different service classes —
// a real-time stream (voice), a high-priority stream (signalling/critical
// data) and a best-effort stream (background sync).
//
// The example runs the scenario twice — with the classification function
// off and on — and prints the per-class loss and delay, showing what the
// enhanced buffer management buys (Chapter 4.2.2 of the thesis).
//
//   ./build/examples/voip_roaming

#include <cstdio>
#include <memory>
#include <vector>

#include "scenario/paper_topology.hpp"
#include "stats/table.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

namespace {

struct RunResult {
  std::uint64_t sent[3], delivered[3], dropped[3];
  double max_delay[3];
};

RunResult run(bool classify) {
  PaperTopologyConfig cfg;
  cfg.bounce = true;
  cfg.scheme.mode = BufferMode::kDual;
  cfg.scheme.classify = classify;
  cfg.scheme.pool_pkts = 20;
  cfg.scheme.request_pkts = 20;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();
  sim.stats().set_keep_samples(true);

  auto& m = topo.mobile(0);
  const TrafficClass classes[3] = {TrafficClass::kRealTime,
                                   TrafficClass::kHighPriority,
                                   TrafficClass::kBestEffort};
  std::vector<std::unique_ptr<UdpSink>> sinks;
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (int i = 0; i < 3; ++i) {
    const std::uint16_t port = static_cast<std::uint16_t>(7000 + i);
    sinks.push_back(std::make_unique<UdpSink>(*m.node, port));
    CbrSource::Config c;
    c.dst = m.regional;
    c.dst_port = port;
    c.packet_bytes = 160;
    c.interval = 10_ms;  // 128 kb/s audio
    c.tclass = classes[i];
    c.flow = i + 1;
    sources.push_back(std::make_unique<CbrSource>(
        topo.cn(), static_cast<std::uint16_t>(5000 + i), c));
    sources.back()->start(2_s);
    sources.back()->stop(118_s);
  }
  topo.start();
  sim.run_until(120_s);

  RunResult r{};
  for (int i = 0; i < 3; ++i) {
    const FlowCounters& c = sim.stats().flow(i + 1);
    r.sent[i] = c.sent;
    r.delivered[i] = c.delivered;
    r.dropped[i] = c.dropped;
    double mx = 0;
    for (const auto& s : sim.stats().samples(i + 1)) {
      mx = std::max(mx, s.delay.sec());
    }
    r.max_delay[i] = mx;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("VoIP roaming across ~5 handovers (120 s, 10 m/s bounce)\n");
  std::printf("three 128 kb/s flows: F1 real-time, F2 high priority, "
              "F3 best effort; buffer 20 pkts per AR\n\n");

  const RunResult off = run(false);
  const RunResult on = run(true);

  TextTable t({"flow", "class", "mode", "sent", "delivered", "dropped",
               "loss %", "max delay (ms)"});
  const char* names[3] = {"F1", "F2", "F3"};
  const char* classes[3] = {"real-time", "high-priority", "best-effort"};
  for (int mode = 0; mode < 2; ++mode) {
    const RunResult& r = mode == 0 ? off : on;
    for (int i = 0; i < 3; ++i) {
      char loss[32], delay[32];
      std::snprintf(loss, sizeof(loss), "%.2f",
                    100.0 * static_cast<double>(r.dropped[i]) /
                        static_cast<double>(r.sent[i]));
      std::snprintf(delay, sizeof(delay), "%.1f", r.max_delay[i] * 1000);
      t.add_row({names[i], classes[i],
                 mode == 0 ? "class off" : "class on",
                 std::to_string(r.sent[i]), std::to_string(r.delivered[i]),
                 std::to_string(r.dropped[i]), loss, delay});
    }
  }
  t.print("per-class outcome, classification off vs. on");

  std::printf("\nwhat to look for:\n");
  std::printf(" * class off — all three flows lose the same share.\n");
  std::printf(" * class on  — the high-priority flow is protected (lowest"
              " loss),\n   real-time keeps the lowest buffered delay"
              " (stale packets are evicted,\n   fresh ones wait at the NAR"
              " instead of crossing the inter-AR link).\n");
  return 0;
}
