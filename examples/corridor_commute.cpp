// Corridor commute: a device streams audio while its user walks past a
// row of WLAN cells (multi-AR corridor). Each interior access router first
// receives the host (NAR role), then hands it onward (PAR role); the
// stream survives every 200 ms blackout through the dual-buffer scheme.
//
//   ./build/examples/corridor_commute [num_ars]

#include <cstdio>
#include <cstdlib>

#include "scenario/corridor_topology.hpp"
#include "stats/recorder.hpp"
#include "stats/table.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;
using namespace fhmip::timeliterals;

int main(int argc, char** argv) {
  CorridorConfig cfg;
  cfg.num_ars = argc > 1 ? std::atoi(argv[1]) : 5;
  CorridorTopology topo(cfg);
  Simulation& sim = topo.simulation();
  sim.stats().set_keep_samples(true);

  UdpSink sink(topo.mh(), 7000);
  CbrSource::Config c;
  c.dst = topo.mh_regional();
  c.dst_port = 7000;
  c.packet_bytes = 160;
  c.interval = 10_ms;
  c.tclass = TrafficClass::kRealTime;
  c.flow = 1;
  CbrSource src(topo.cn(), 5000, c);
  const SimTime end = cfg.mobility_start + topo.walk_duration() + 5_s;
  src.start(2_s);
  src.stop(end - 2_s);

  topo.start();
  sim.run_until(end);

  std::printf("corridor of %d cells (%.0f m), walked at %.0f m/s in %.0f s\n\n",
              cfg.num_ars, cfg.ap_spacing_m * (cfg.num_ars - 1),
              cfg.speed_mps, topo.walk_duration().sec());

  TextTable t({"router", "HI sent (PAR)", "HI recv (NAR)", "buffered",
               "drained", "delivered"});
  for (std::size_t i = 0; i < topo.num_ars(); ++i) {
    const auto& cnt = topo.ar_agent(i).counters();
    t.add_row({"ar" + std::to_string(i + 1), std::to_string(cnt.hi_sent),
               std::to_string(cnt.hi_received),
               std::to_string(cnt.buffered_local),
               std::to_string(cnt.drained),
               std::to_string(cnt.delivered_wireless)});
  }
  t.print("per-router handover activity");

  const FlowCounters& fc = sim.stats().flow(1);
  const DelaySummary d = summarize_delays(sim.stats().samples(1));
  std::printf("\nstream: %llu sent, %llu delivered, %llu dropped over %u "
              "handovers\n",
              static_cast<unsigned long long>(fc.sent),
              static_cast<unsigned long long>(fc.delivered),
              static_cast<unsigned long long>(fc.dropped),
              topo.mh_agent().counters().handoffs);
  std::printf("delay: mean %.1f ms, p99 %.1f ms, max %.1f ms, jitter %.2f ms\n",
              d.mean * 1000, d.p99 * 1000, d.max * 1000, d.jitter * 1000);
  return fc.dropped == 0 ? 0 : 1;
}
