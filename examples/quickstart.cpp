// Quickstart: one mobile host crosses from PAR to NAR while receiving a
// 64 kb/s audio stream. Shows the enhanced-buffer fast handover keeping the
// stream intact across the 200 ms link-layer blackout.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "scenario/paper_topology.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"

using namespace fhmip;

int main() {
  // Figure 4.1 network with the thesis defaults: 212 m between access
  // routers, 112 m coverage, 10 m/s walkspeed, 200 ms L2 handoff.
  PaperTopologyConfig cfg;
  cfg.scheme.mode = BufferMode::kDual;  // the proposed scheme
  cfg.scheme.classify = true;
  cfg.scheme.pool_pkts = 20;
  cfg.scheme.request_pkts = 20;
  PaperTopology topo(cfg);
  Simulation& sim = topo.simulation();

  // A 64 kb/s real-time audio flow from the correspondent node to the MH.
  auto& mobile = topo.mobile(0);
  UdpSink sink(*mobile.node, 7000);
  CbrSource::Config flow;
  flow.dst = mobile.regional;
  flow.dst_port = 7000;
  flow.packet_bytes = 160;
  flow.interval = SimTime::millis(20);
  flow.tclass = TrafficClass::kRealTime;
  flow.flow = 1;
  CbrSource source(topo.cn(), 5000, flow);
  source.start(SimTime::seconds(2));
  source.stop(SimTime::seconds(18));

  topo.start();
  sim.run_until(SimTime::seconds(20));

  const FlowCounters& c = sim.stats().flow(1);
  const auto& mh = *mobile.agent;
  const auto& par = topo.par_agent().counters();
  const auto& nar = topo.nar_agent().counters();

  std::printf("fhmip quickstart — one PAR→NAR handover, 64 kb/s audio\n");
  std::printf("------------------------------------------------------\n");
  std::printf("handoffs completed        : %u\n", mh.counters().handoffs);
  std::printf("anticipation (RtSolPr+BI) : %u sent, PrRtAdv %u received\n",
              mh.counters().rtsolpr_sent, mh.counters().prrtadv_received);
  std::printf("FBU sent / FNA+BF sent    : %u / %u\n",
              mh.counters().fbu_sent, mh.counters().fna_sent);
  std::printf("buffer grant (NAR/PAR)    : %u / %u packets\n",
              mh.last_grant().nar_pkts, mh.last_grant().par_pkts);
  std::printf("PAR redirected %llu, NAR buffered %llu, drained %llu\n",
              static_cast<unsigned long long>(par.redirected),
              static_cast<unsigned long long>(nar.buffered_local),
              static_cast<unsigned long long>(nar.drained));
  std::printf("flow: sent %llu  delivered %llu  dropped %llu\n",
              static_cast<unsigned long long>(c.sent),
              static_cast<unsigned long long>(c.delivered),
              static_cast<unsigned long long>(c.dropped));
  std::printf("binding updates to MAP    : %u (acked %u)\n",
              mobile.mip->updates_sent(), mobile.mip->acks_received());
  return (mh.counters().handoffs == 1 && c.delivered > 0) ? 0 : 1;
}
