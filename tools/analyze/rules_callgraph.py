"""Whole-program (call-graph) rules for fhmip_analyze.

Three rule families over the Program call graph (callgraph.py), each
configured by a section of tools/analyze/roots.toml:

  PERF-01  heap allocation (`new`, make_shared/make_unique/make_packet,
           growing std::vector/std::string/std::deque, std::function
           construction, std::map insertion) in any function reachable
           from the declared packet-forward roots. This is the triaged
           evidence list the arena/packet-pool overhaul starts from.
  CONC-01  mutable namespace-scope / function-local-static / class-static
           state read or written by functions reachable from the
           SweepRunner per-run closures, without atomic/mutex/
           thread_local protection — a static complement to TSan that
           also covers configs the tsan preset never executes.
  PROTO-01 a send/guard pairing rule: a function in src/fastho or
           src/mip that constructs one of the reliable request message
           types and hands it to a send-family call must live in a class
           with a retransmission-timer guard (the MhAgent arm()/
           *_timeout() idiom); response/ack types are exempt because the
           requester's retransmission re-elicits them (PR 2's idempotent
           receivers).

Every finding carries its reachability path (root -> ... -> function),
rendered in text output and as a SARIF codeFlow. A root name in
roots.toml that matches no function is itself a finding, so root sets
cannot silently rot when code is renamed.
"""

from __future__ import annotations

from cpplex import ID
from registry import Finding, Rule

_GROW_METHODS = {
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "insert_or_assign", "try_emplace", "resize", "reserve",
    "append", "assign", "push", "operator+=",
}
_DEFAULT_ALLOC_CALLS = ["make_shared", "make_unique", "make_packet",
                        "make_control", "clone", "to_string"]
_MAP_WORDS = ("map", "unordered_map", "multimap")
_LOCK_TOKENS = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}


def _mk(ctx, rule, sev, path, line, msg, trace):
    return Finding(rule, sev, path, line, msg, ctx.fingerprint(path, line),
                   path_trace=list(trace))


def _root_findings(ctx, rule_id, program, rr):
    """A root that matches nothing is a config bug — report it loudly at
    the roots.toml file instead of silently shrinking coverage."""
    for r in rr.unmatched_roots:
        yield Finding(rule_id, "error", "tools/analyze/roots.toml", 1,
                      f"root '{r}' matches no function in the scanned "
                      f"sources — fix roots.toml after the rename",
                      ctx.fingerprint("tools/analyze/roots.toml", 1)
                      if (ctx.root / "tools/analyze/roots.toml").exists()
                      else "")


def _expanded(program, type_text):
    return program.expanded_type(type_text) if type_text else ""


def _audit_spans(toks, lo, hi):
    """Token spans of FHMIP_AUDIT*(...) argument groups. Audit detail
    strings are evaluated lazily (only on failure), so allocations inside
    them are not hot-path allocations."""
    spans = []
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == ID and t.text.startswith("FHMIP_AUDIT") \
                and i + 1 < hi and toks[i + 1].text == "(":
            depth = 0
            j = i + 1
            while j < hi:
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            spans.append((i + 1, j))
            i = j
        i += 1
    return spans


def _container_word(program, type_text):
    exp = _expanded(program, type_text)
    flat = exp.replace("<", " ").replace(">", " ").replace("::", " ")
    for w in flat.split():
        if w in ("vector", "string", "basic_string", "deque", "list",
                 "map", "unordered_map", "multimap", "set", "unordered_set",
                 "ostringstream", "stringstream", "queue"):
            return w
    return ""


# -- PERF-01 -----------------------------------------------------------------

def check_perf01(ctx, program):
    cfg = program.config.get("PERF-01")
    if not cfg:
        return
    rr = program.reach(list(cfg.get("roots", [])))
    yield from _root_findings(ctx, "PERF-01", program, rr)
    prefixes = tuple(cfg.get("src_prefixes", ["src/"]))
    alloc_calls = set(cfg.get("alloc_calls", _DEFAULT_ALLOC_CALLS))
    fn_sinks = set(cfg.get("function_sinks", []))
    for idx in sorted(rr.parents):
        node = program.nodes[idx]
        if not node.path.startswith(prefixes):
            continue
        trace = rr.path(program, idx)
        fn = node.fn
        toks = fn.file.lexed.tokens
        lo, hi = fn.scope.body_start, fn.scope.body_end
        spans = _audit_spans(toks, lo, hi)

        def in_audit(ti):
            return any(a <= ti <= b for a, b in spans)

        emitted = set()

        def emit(line, what):
            k = (line, what)
            if k not in emitted:
                emitted.add(k)
                return _mk(ctx, "PERF-01", "warning", node.path, line,
                           f"{node.qual} {what} on the packet-forward path "
                           f"(root: {rr.root_name[idx]})", trace)
            return None

        for i in range(lo, hi):
            t = toks[i]
            if t.kind != ID or in_audit(i):
                continue
            prev = toks[i - 1] if i > 0 else None
            if t.text == "new" and (prev is None
                                    or prev.text not in ("operator", "=")):
                f = emit(t.line, "allocates with `new`")
                if f:
                    yield f
            # std::map subscript may insert a node.
            if i + 1 < hi and toks[i + 1].text == "[" \
                    and (prev is None or prev.text not in (".", "->", "::")):
                ty = _expanded(program, program._entity_type(node, t.text))
                if any(w in ty.split() or w + " <" in ty for w in _MAP_WORDS):
                    f = emit(t.line, f"subscripts map '{t.text}' "
                                     f"(operator[] inserts on miss)")
                    if f:
                        yield f
            # String append via +=.
            if i + 1 < hi and toks[i + 1].text == "+=":
                ty = _expanded(program, program._entity_type(node, t.text))
                if "string" in ty.replace("<", " ").replace("::", " ").split():
                    f = emit(t.line, f"appends to std::string '{t.text}' "
                                     f"via +=")
                    if f:
                        yield f
        for site in node.sites:
            if in_audit(site.tok_index):
                continue
            if site.name in alloc_calls:
                f = emit(site.line, f"calls {site.name}() (heap allocation)")
                if f:
                    yield f
            elif site.kind == "container" and site.name in _GROW_METHODS:
                cont = _container_word(program, site.recv_type) or "container"
                f = emit(site.line, f"grows std::{cont} '{site.recv_name}' "
                                    f"via {site.name}()")
                if f:
                    yield f
            elif site.has_lambda_arg and site.name in fn_sinks:
                f = emit(site.line, f"passes a lambda to {site.name}() "
                                    f"(std::function construction)")
                if f:
                    yield f


# -- CONC-01 -----------------------------------------------------------------

def check_conc01(ctx, program):
    cfg = program.config.get("CONC-01")
    if not cfg:
        return
    rr = program.reach(list(cfg.get("roots", [])))
    yield from _root_findings(ctx, "CONC-01", program, rr)
    by_name: dict[str, list] = {}
    for g in program.globals:
        if not g.is_protected():
            by_name.setdefault(g.name, []).append(g)
    if not by_name:
        return
    for idx in sorted(rr.parents):
        node = program.nodes[idx]
        fn = node.fn
        toks = fn.file.lexed.tokens
        lo, hi = fn.scope.body_start, fn.scope.body_end
        # Heuristic mutex recognition: a function that takes a lock is
        # treated as protected access.
        if any(toks[i].kind == ID and toks[i].text in _LOCK_TOKENS
               for i in range(lo, hi)):
            continue
        trace = rr.path(program, idx)
        seen = set()
        for i in range(lo, hi):
            t = toks[i]
            if t.kind != ID or t.text not in by_name:
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and prev.text in (".", "->"):
                continue  # member access on some object, not the global
            for g in by_name[t.text]:
                if g.kind == "local-static" and g.owner != node.qual:
                    continue
                if g.kind == "class-static" and node.cls != g.owner \
                        and not (prev is not None and prev.text == "::"
                                 and i >= 2
                                 and toks[i - 2].text == g.owner):
                    continue
                k = (g.name, g.path, g.line)
                if k in seen:
                    continue
                seen.add(k)
                yield _mk(ctx, "CONC-01", "error", node.path, t.line,
                          f"{node.qual} touches mutable {g.kind} state "
                          f"'{g.name}' ({g.path}:{g.line}) without atomic/"
                          f"mutex protection, but is reachable from sweep "
                          f"root '{rr.root_name[idx]}' — per-run closures "
                          f"must be share-nothing", trace)


# -- PROTO-01 ----------------------------------------------------------------

def _class_has_guard(program, cls, guard_tokens):
    for m in program.class_methods.get(cls, []):
        fn = m.fn
        toks = fn.file.lexed.tokens
        for i in range(fn.scope.body_start, fn.scope.body_end):
            if toks[i].kind == ID and toks[i].text in guard_tokens:
                return True
    return False


def check_proto01(ctx, program):
    cfg = program.config.get("PROTO-01")
    if not cfg:
        return
    dirs = tuple(d.rstrip("/") + "/" for d in cfg.get("dirs", []))
    send_calls = set(cfg.get("send_calls", ["send"]))
    guarded = set(cfg.get("guarded_messages", []))
    guard_tokens = set(cfg.get("guard_tokens", ["arm"]))
    if not dirs or not guarded:
        return
    guard_cache: dict[str, bool] = {}
    for node in program.nodes:
        if not node.path.startswith(dirs):
            continue
        fn = node.fn
        toks = fn.file.lexed.tokens
        lo, hi = fn.scope.body_start, fn.scope.body_end
        # Construction evidence only: the type name must be followed by a
        # declarator or a braced temporary. A bare mention as a template
        # argument (std::get_if<Msg>, holds_alternative<Msg>) is how a
        # *responder* inspects an incoming message — responders are exempt
        # because the requester's retransmission re-elicits the reply.
        constructed = set()
        for i in range(lo, hi):
            t = toks[i]
            if t.kind != ID or t.text not in guarded:
                continue
            nxt = toks[i + 1] if i + 1 < hi else None
            if nxt is not None and (nxt.kind == ID or nxt.text == "{"):
                constructed.add(t.text)
        msgs = sorted(constructed)
        if not msgs:
            continue
        send_sites = [s for s in node.sites if s.name in send_calls]
        if not send_sites:
            continue
        cls = node.cls
        if cls not in guard_cache:
            guard_cache[cls] = bool(cls) and _class_has_guard(
                program, cls, guard_tokens)
        if guard_cache[cls]:
            continue
        anchor = send_sites[0].line
        where = f"class {cls}" if cls else "the enclosing scope"
        for m in msgs:
            yield _mk(ctx, "PROTO-01", "error", node.path, anchor,
                      f"{node.qual} sends {m} but {where} has no "
                      f"retransmission-timer guard "
                      f"({'/'.join(sorted(guard_tokens))}) — a lost "
                      f"message stalls the handover choreography",
                      [node.qual])


def register(registry):
    registry.add(Rule("PERF-01", "warning",
                      "heap allocation reachable from the packet-forward "
                      "roots (evidence list for the packet-pool overhaul)",
                      check_program=check_perf01))
    registry.add(Rule("CONC-01", "error",
                      "unsynchronized mutable static state reachable from "
                      "SweepRunner per-run closures",
                      check_program=check_conc01))
    registry.add(Rule("PROTO-01", "error",
                      "control-message send without a retransmission-timer "
                      "guard in its class",
                      check_program=check_proto01))
