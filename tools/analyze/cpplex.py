"""Tokenizer for the fhmip semantic analyzer.

A pragmatic C++ lexer: it produces a flat token stream (identifiers,
numbers, string/char literals, punctuators) with line numbers, records
`//` comments per line (for `NOLINT-FHMIP(...)` suppression lookup), and
swallows preprocessor directives into a separate list so the structural
parser never sees them. It does not expand macros — macro names like
FHMIP_AUDIT appear as ordinary identifier tokens, which is exactly what
the rules want.

Handled: raw strings (R"delim(...)delim"), encoding prefixes (u8/u/U/L),
digit separators (100'000), line continuations in directives, block
comments spanning lines. Line numbers always refer to the original file.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"
CHAR = "char"
PUNCT = "punct"

# Two-character punctuators the structural parser cares about. Everything
# else is emitted one character at a time, which is fine for our rules.
_TWO_CHAR = {
    "::", "->", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
}

_STRING_PREFIXES = {"u8", "u", "U", "L", "R", "u8R", "uR", "UR", "LR"}


@dataclass
class Tok:
    kind: str
    text: str
    line: int

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}@{self.line}"


class LexedFile:
    """Token stream plus side tables for one source file."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.tokens: list[Tok] = []
        # line -> concatenated `//` comment text on that line.
        self.line_comments: dict[int, str] = {}
        # (line, full directive text) for every preprocessor directive.
        self.pp_directives: list[tuple[int, str]] = []
        self.num_lines = text.count("\n") + 1
        self._lex(text)

    # -- lexing --------------------------------------------------------------

    def _lex(self, text: str):
        i, n, line = 0, len(text), 1
        toks = self.tokens
        at_line_start = True
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                i += 1
                at_line_start = True
                continue
            if c in " \t\r\f\v":
                i += 1
                continue
            nxt = text[i + 1] if i + 1 < n else ""
            # Comments.
            if c == "/" and nxt == "/":
                j = text.find("\n", i)
                j = n if j == -1 else j
                prev = self.line_comments.get(line, "")
                self.line_comments[line] = prev + text[i:j]
                i = j
                continue
            if c == "/" and nxt == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                line += text.count("\n", i, j)
                i = j
                at_line_start = True if i < n and text[i - 1] == "\n" else False
                continue
            # Preprocessor directive (only at line start).
            if c == "#" and at_line_start:
                start_line = line
                parts = []
                while i < n:
                    j = text.find("\n", i)
                    j = n if j == -1 else j
                    seg = text[i:j]
                    parts.append(seg)
                    i = j + 1
                    line += 1
                    if not seg.rstrip().endswith("\\"):
                        break
                self.pp_directives.append((start_line, "\n".join(parts)))
                at_line_start = True
                continue
            at_line_start = False
            # Identifier or keyword (may turn out to be a string prefix).
            if c.isalpha() or c == "_":
                j = i + 1
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                word = text[i:j]
                if word in _STRING_PREFIXES and j < n and text[j] == '"':
                    i, line = self._lex_string(text, j, line,
                                               raw=word.endswith("R"))
                    continue
                toks.append(Tok(ID, word, line))
                i = j
                continue
            # Number (digit separators like 100'000 stay inside the token).
            if c.isdigit() or (c == "." and nxt.isdigit()):
                j = i + 1
                while j < n:
                    ch = text[j]
                    if ch.isalnum() or ch in "._":
                        j += 1
                    elif ch == "'" and j + 1 < n and text[j + 1].isalnum():
                        j += 1
                    elif ch in "+-" and text[j - 1] in "eEpP":
                        j += 1
                    else:
                        break
                toks.append(Tok(NUM, text[i:j], line))
                i = j
                continue
            if c == '"':
                i, line = self._lex_string(text, i, line, raw=False)
                continue
            if c == "'":
                j = i + 1
                while j < n and text[j] != "'":
                    j += 2 if text[j] == "\\" else 1
                toks.append(Tok(CHAR, text[i : j + 1], line))
                line += text.count("\n", i, min(j + 1, n))
                i = j + 1
                continue
            # Punctuator.
            two = text[i : i + 2]
            if two in _TWO_CHAR:
                toks.append(Tok(PUNCT, two, line))
                i += 2
            else:
                toks.append(Tok(PUNCT, c, line))
                i += 1

    def _lex_string(self, text: str, i: int, line: int,
                    raw: bool) -> tuple[int, int]:
        """Lexes a string literal starting at the opening quote; returns
        (index just past the closing quote, updated line number). Emits one
        STR token (content elided — rules never look inside string
        literals). Raw strings may span lines; the newlines they swallow
        must still advance the line counter or every token after the
        literal is misattributed (and NOLINT lookup breaks)."""
        n = len(text)
        if raw:
            # R"delim( ... )delim"
            j = text.find("(", i + 1)
            if j == -1:
                self.tokens.append(Tok(STR, '""', line))
                return n, line + text.count("\n", i, n)
            delim = text[i + 1 : j]
            close = text.find(")" + delim + '"', j + 1)
            close = n if close == -1 else close + len(delim) + 2
            self.tokens.append(Tok(STR, '""', line))
            return close, line + text.count("\n", i, close)
        j = i + 1
        while j < n and text[j] not in '"\n':
            j += 2 if text[j] == "\\" else 1
        self.tokens.append(Tok(STR, '""', line))
        # An escaped backslash-newline inside the literal is skipped by the
        # j += 2 branch above; recount so `line` stays exact.
        end = min(j + 1, n)
        return end, line + text.count("\n", i, end)

    # -- suppression lookup --------------------------------------------------

    def nolint_rules(self, lineno: int) -> set[str]:
        """Rules suppressed at `lineno` via `// NOLINT-FHMIP(rule,...)` on
        the same line or the line directly above (for long lines)."""
        rules: set[str] = set()
        for ln in (lineno, lineno - 1):
            comment = self.line_comments.get(ln)
            if not comment or "NOLINT-FHMIP" not in comment:
                continue
            start = comment.index("NOLINT-FHMIP")
            rest = comment[start + len("NOLINT-FHMIP") :]
            if rest.startswith("("):
                end = rest.find(")")
                if end > 0:
                    for r in rest[1:end].split(","):
                        rules.add(r.strip())
        return rules
