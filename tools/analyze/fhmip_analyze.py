#!/usr/bin/env python3
"""fhmip_analyze — semantic static analysis for the fhmip simulator.

Usage:
  fhmip_analyze.py <repo-root> [subdirs...] [options]

Options:
  --json FILE        write a SARIF-lite JSON report (CI artifact)
  --json-per-tier D  write one SARIF file per analysis tier under D
                     (analyze-lint.sarif, analyze-dataflow.sarif, ...)
  --baseline FILE    suppression baseline (default:
                     <root>/tools/analyze/baseline.txt)
  --no-baseline      ignore the baseline (fixture tests)
  --write-baseline   (re)write the baseline skeleton from current findings
  --fix-baseline     regenerate the baseline in place: keep matching
                     entries verbatim, rewrite fingerprints of findings
                     that merely moved (justifications preserved), drop
                     stale entries, append new findings with TODOs
  --rules R1,R2      run only these rules
  --tier T1,T2       run only these tiers (lint/semantic/callgraph/
                     dataflow); composes with --rules
  --list-rules       print the rule catalogue and exit
  --roots FILE       call-graph root sets (default:
                     <root>/tools/analyze/roots.toml)
  --protocol FILE    PROTO-02 message catalogue (default:
                     <root>/tools/analyze/protocol.toml; absent = skip)
  --no-cache         bypass the build/analyze_cache token cache
  --explain-stale    print a readable diff for stale baseline entries
                     (nearest current findings per stale entry)

Exit status: 0 clean, 1 active findings or stale baseline entries,
2 usage/configuration error.

Architecture: a C++ lexer (cpplex) feeds a brace/scope tracker that builds
a per-file symbol model (cppmodel); .cpp files are merged with their
paired headers into translation units so rules see a class together with
its out-of-line methods; a whole-program call graph over the merged
units (callgraph.py) drives reachability-based rules. Rules live in rule
modules (rules_lint: the former fhmip_lint conventions; rules_semantic:
LIFE-01/DET-01/DET-02/AUD-01/EXC-01; rules_callgraph: PERF-01/CONC-01/
PROTO-01 rooted in roots.toml) registered on a shared registry. Findings
are suppressed
inline with `// NOLINT-FHMIP(rule)` (same line or line above) or via the
checked-in baseline, whose unmatched entries fail the run (stale
detection). See DESIGN.md § Static analysis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import rules_callgraph
import rules_dataflow
import rules_lint
import rules_protocol
import rules_semantic
from baseline import Baseline, fix_baseline, write_baseline
from cache import TokenCache
from callgraph import Program
from cpplex import LexedFile
from cppmodel import FileModel, Unit
from registry import Registry, line_fingerprint
from report import print_text, write_sarif, write_sarif_per_tier

DEFAULT_DIRS = ["src", "tests", "bench", "examples", "tools"]
# The analyzer's own test corpus: deliberately-broken snippets.
EXCLUDED = ("tests/tools/fixtures",)


class Context:
    """Shared caches handed to every rule."""

    def __init__(self, root: Path, cache: TokenCache | None = None):
        self.root = root
        self.cache = cache
        self.program: Program | None = None
        # PROTO-02 catalogue (parsed protocol.toml) + its repo-relative
        # path for finding anchors; None/empty when no catalogue exists.
        self.protocol: dict | None = None
        self.protocol_path: str = ""
        self._raw: dict[str, str] = {}
        self._stripped: dict[str, str] = {}
        self._lexed: dict[str, LexedFile] = {}

    def raw_text(self, rel: str) -> str:
        if rel not in self._raw:
            self._raw[rel] = (self.root / rel).read_text(encoding="utf-8")
        return self._raw[rel]

    def stripped_text(self, rel: str) -> str:
        if rel not in self._stripped:
            self._stripped[rel] = rules_lint.strip_comments_and_strings(
                self.raw_text(rel))
        return self._stripped[rel]

    def lexed(self, rel: str) -> LexedFile:
        if rel not in self._lexed:
            text = self.raw_text(rel)
            lf = self.cache.get(rel, text) if self.cache else None
            if lf is None:
                lf = LexedFile(rel, text)
                if self.cache:
                    self.cache.put(rel, text, lf)
            self._lexed[rel] = lf
        return self._lexed[rel]

    def fingerprint(self, rel: str, lineno: int) -> str:
        lines = self.raw_text(rel).splitlines()
        raw = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        return line_fingerprint(raw)


def collect_files(root: Path, subdirs: list[str]) -> list[str]:
    files: list[str] = []
    for d in subdirs:
        base = root / d
        if not base.exists():
            continue
        # Asking for an excluded directory by name overrides the exclusion
        # (that's how the fixture tests point the analyzer at the corpus).
        excluded = tuple(e for e in EXCLUDED
                         if not d.rstrip("/").startswith(e.rstrip("/")))
        for pattern in ("*.hpp", "*.cpp"):
            for p in sorted(base.rglob(pattern)):
                rel = p.relative_to(root).as_posix()
                if any(rel.startswith(e) for e in excluded):
                    continue
                files.append(rel)
    return files


def build_units(ctx: Context, files: list[str]) -> list[Unit]:
    """Pairs foo.cpp with a sibling foo.hpp into one unit; unpaired files
    become single-file units. Each file lands in exactly one unit so no
    finding is produced twice."""
    fileset = set(files)
    units: list[Unit] = []
    paired_hpp: set[str] = set()
    for rel in files:
        if not rel.endswith(".cpp"):
            continue
        hpp = rel[: -len(".cpp")] + ".hpp"
        models = []
        if hpp in fileset:
            paired_hpp.add(hpp)
            models.append(FileModel(ctx.lexed(hpp)))
        models.append(FileModel(ctx.lexed(rel)))
        units.append(Unit(models))
    for rel in files:
        if rel.endswith(".hpp") and rel not in paired_hpp:
            units.append(Unit([FileModel(ctx.lexed(rel))]))
    return units


def build_registry() -> Registry:
    registry = Registry()
    for module, tier in ((rules_lint, "lint"),
                         (rules_semantic, "semantic"),
                         (rules_callgraph, "callgraph"),
                         (rules_dataflow, "dataflow"),
                         (rules_protocol, "dataflow")):
        before = len(registry.rules)
        module.register(registry)
        for rule in registry.rules[before:]:
            rule.tier = tier
    return registry


def load_roots_config(path: Path) -> dict:
    """Parses roots.toml / protocol.toml; an absent file means the rules
    it configures skip (fixture scratch roots stage their own)."""
    if not path.exists():
        return {}
    import tomllib
    with path.open("rb") as fh:
        return tomllib.load(fh)


def run(root: Path, subdirs: list[str], registry: Registry,
        rule_filter: set[str] | None = None,
        roots_config: dict | None = None,
        cache: TokenCache | None = None,
        protocol_config: dict | None = None,
        protocol_path: str = ""):
    """Runs every (selected) rule; returns (findings, num_files). Inline
    NOLINT suppression is applied here; baseline matching is the caller's
    job."""
    ctx = Context(root, cache)
    ctx.protocol = protocol_config
    ctx.protocol_path = protocol_path
    files = collect_files(root, subdirs)
    findings = []
    seen = set()
    for rule in registry.rules:
        if rule_filter is not None and rule.rule_id not in rule_filter:
            continue
        if rule.check_file is not None:
            for rel in files:
                for f in rule.check_file(ctx, rel) or ():
                    if (f.rule_id, f.path, f.line, f.message) not in seen:
                        seen.add((f.rule_id, f.path, f.line, f.message))
                        findings.append(f)
    units = build_units(ctx, files)
    # The whole-program view is built before unit rules run so they can
    # use call-graph context (transitive delegation, cross-unit sinks).
    ctx.program = Program(units, roots_config or {})
    for rule in registry.rules:
        if rule_filter is not None and rule.rule_id not in rule_filter:
            continue
        if rule.check_unit is not None:
            for unit in units:
                for f in rule.check_unit(ctx, unit) or ():
                    if (f.rule_id, f.path, f.line, f.message) not in seen:
                        seen.add((f.rule_id, f.path, f.line, f.message))
                        findings.append(f)
    for rule in registry.rules:
        if rule_filter is not None and rule.rule_id not in rule_filter:
            continue
        if rule.check_program is not None:
            for f in rule.check_program(ctx, ctx.program) or ():
                if (f.rule_id, f.path, f.line, f.message) not in seen:
                    seen.add((f.rule_id, f.path, f.line, f.message))
                    findings.append(f)
    # Inline suppression.
    for f in findings:
        if not f.path.endswith((".hpp", ".cpp")):
            continue  # e.g. findings anchored at roots.toml
        if f.rule_id in ctx.lexed(f.path).nolint_rules(f.line):
            f.suppressed = "nolint"
    return findings, len(files)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="fhmip_analyze", add_help=True)
    ap.add_argument("root")
    ap.add_argument("subdirs", nargs="*", default=None)
    ap.add_argument("--json", metavar="FILE")
    ap.add_argument("--json-per-tier", metavar="DIR")
    ap.add_argument("--baseline", metavar="FILE")
    ap.add_argument("--no-baseline", action="store_true")
    ap.add_argument("--write-baseline", action="store_true")
    ap.add_argument("--fix-baseline", action="store_true")
    ap.add_argument("--rules", metavar="IDS")
    ap.add_argument("--tier", metavar="TIER")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--roots", metavar="FILE")
    ap.add_argument("--protocol", metavar="FILE")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--explain-stale", action="store_true")
    args = ap.parse_args(argv)

    registry = build_registry()
    if args.list_rules:
        for r in registry.rules:
            kind = "file" if r.check_file else (
                "unit" if r.check_unit else "program")
            print(f"{r.rule_id:20s} {r.severity:8s} [{r.tier}/{kind}] "
                  f"{r.description}")
        return 0

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"fhmip_analyze: {root} does not look like a repo root "
              f"(no src/)", file=sys.stderr)
        return 2
    subdirs = args.subdirs or DEFAULT_DIRS
    rule_filter = None
    if args.rules:
        rule_filter = {r.strip() for r in args.rules.split(",")}
        unknown = [r for r in rule_filter if registry.by_id(r) is None]
        if unknown:
            print(f"fhmip_analyze: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    if args.tier:
        tiers = {t.strip() for t in args.tier.split(",")}
        known = {r.tier for r in registry.rules}
        if not tiers <= known:
            print(f"fhmip_analyze: unknown tier(s): "
                  f"{', '.join(sorted(tiers - known))} "
                  f"(have: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
        tier_ids = {r.rule_id for r in registry.rules if r.tier in tiers}
        rule_filter = tier_ids if rule_filter is None \
            else rule_filter & tier_ids

    roots_path = Path(args.roots) if args.roots \
        else root / "tools" / "analyze" / "roots.toml"
    protocol_path = Path(args.protocol) if args.protocol \
        else root / "tools" / "analyze" / "protocol.toml"
    try:
        roots_config = load_roots_config(roots_path)
        protocol_config = load_roots_config(protocol_path)
    except Exception as exc:  # tomllib.TOMLDecodeError and friends
        print(f"fhmip_analyze: cannot parse analyzer spec: {exc}",
              file=sys.stderr)
        return 2
    try:
        protocol_rel = protocol_path.resolve().relative_to(root).as_posix()
    except ValueError:
        protocol_rel = protocol_path.as_posix()
    extra_spec = [p for p in (roots_path, protocol_path) if p.exists()]
    cache = TokenCache(root, enabled=not args.no_cache,
                       extra_files=extra_spec)
    findings, num_files = run(root, subdirs, registry, rule_filter,
                              roots_config, cache,
                              protocol_config, protocol_rel)

    baseline_path = Path(args.baseline) if args.baseline \
        else root / "tools" / "analyze" / "baseline.txt"
    if args.fix_baseline:
        stats = fix_baseline(baseline_path,
                             [f for f in findings
                              if f.suppressed != "nolint"])
        print(f"fhmip_analyze: baseline {baseline_path}: "
              f"{stats['kept']} kept, {stats['rewritten']} fingerprint(s) "
              f"rewritten in place, {stats['deleted']} stale entr(ies) "
              f"removed, {stats['added']} new finding(s) appended "
              f"(TODO justifications)")
        return 0
    if args.write_baseline:
        write_baseline(baseline_path,
                       [f for f in findings if not f.suppressed])
        print(f"fhmip_analyze: wrote "
              f"{len({(f.rule_id, f.path, f.fingerprint) for f in findings if not f.suppressed})} "
              f"baseline entr(ies) to {baseline_path}")
        return 0

    stale = []
    if not args.no_baseline:
        bl = Baseline.load(baseline_path)
        if bl.parse_errors:
            for e in bl.parse_errors:
                print(e, file=sys.stderr)
            return 2
        for f in findings:
            if not f.suppressed and bl.match(f):
                f.suppressed = "baseline"
        stale = bl.stale_entries()

    print_text(findings, stale, num_files, sys.stdout)
    if args.explain_stale and stale:
        print_stale_diff(stale, findings, baseline_path, sys.stdout)
    if args.json:
        write_sarif(Path(args.json), findings, stale, registry)
    if args.json_per_tier:
        write_sarif_per_tier(Path(args.json_per_tier), findings, stale,
                             registry)
    active = [f for f in findings if not f.suppressed]
    return 1 if (active or stale) else 0


def print_stale_diff(stale, findings, baseline_path, out):
    """Readable triage output for stale baseline entries: shows each stale
    line and the nearest current findings of the same rule/file (their
    fingerprints are what the entry should be updated to, if the finding
    merely moved)."""
    print(f"\nstale baseline entries in {baseline_path}:", file=out)
    for e in stale:
        print(f"  - line {e.lineno}: {e.rule_id}  {e.path}  "
              f"{e.fingerprint}  # {e.justification}", file=out)
        near = [f for f in findings
                if f.rule_id == e.rule_id and f.path == e.path]
        if near:
            print(f"    current {e.rule_id} findings in {e.path} "
                  f"(update the fingerprint if the code moved):", file=out)
            for f in sorted(near, key=lambda f: f.line):
                print(f"      {f.fingerprint}  L{f.line}: {f.message}",
                      file=out)
        else:
            print(f"    no current {e.rule_id} findings in {e.path} — the "
                  f"code this entry excused is gone; delete the entry",
                  file=out)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
