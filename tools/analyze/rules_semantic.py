"""Semantic rules for fhmip_analyze.

Five rules over the per-unit symbol model, each targeting a bug class
this repo has actually shipped (see ISSUE 4 / DESIGN.md):

  LIFE-01  this-capturing lambda registered as a control/port/forward
           handler or timer in a class whose destructor does not cancel
           the registration (PR 1's dangling-handler ASan class).
  DET-01   nondeterminism sources in src/: wall clocks, unseeded RNG,
           getenv, pointer values used as ordering/hash keys.
  DET-02   iteration over unordered_{map,set} inside a code path that
           prints, serializes, or accumulates order-sensitive results
           (breaks the sweep engine's byte-identical-stdout guarantee).
  AUD-01   classes that use FHMIP_AUDIT but expose public mutating
           methods that never audit (directly or via one delegated call).
  EXC-01   throw-capable expressions inside destructors or noexcept
           functions (std::terminate at runtime).
"""

from __future__ import annotations

from cpplex import ID
from registry import Finding, Rule

# -- shared helpers ----------------------------------------------------------

_MUTATOR_CALLS = {
    "push_back", "emplace_back", "emplace", "insert", "erase", "clear",
    "pop", "pop_back", "pop_front", "push", "push_front", "resize",
    "assign", "reset", "store", "swap",
}
_OUTPUT_CALLS = {
    "printf", "fprintf", "snprintf", "sprintf", "vprintf", "puts", "fputs",
    "fwrite", "add_row", "append", "print", "render", "write",
    "print_series_table", "print_series_csv",
    # Deterministic-export surfaces of the observability layer (src/obs):
    # these renderings are byte-compared by the golden-trace and sweep
    # --jobs determinism tests, so feeding them from hash-ordered
    # iteration is an output-order bug like any print.
    "to_json", "format_text", "format_timeline", "format_trace_line",
    "emit",
}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


def _unit_class(ctx, unit, fn):
    owner = getattr(fn, "owner", None)
    if owner is None:
        return None
    return unit.classes.get(owner.name)


def _in_src(path: str) -> bool:
    return path.split("/")[0] == "src"


def _fn_file(fn) -> str:
    return fn.file.lexed.path


def _mk(ctx, rule, sev, fn_or_path, line, msg):
    path = fn_or_path if isinstance(fn_or_path, str) else _fn_file(fn_or_path)
    return Finding(rule, sev, path, line, msg, ctx.fingerprint(path, line))


def _balanced_group(toks, open_idx, end):
    """Token span (open_idx+1, close_idx) of the paren group opening at
    open_idx, or None."""
    depth = 0
    j = open_idx
    while j < end:
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return (open_idx + 1, j)
        j += 1
    return None


def _lambda_in_span(fn, lo, hi):
    """Lambdas recorded for fn whose body starts within [lo, hi)."""
    return [l for l in fn.lambdas if lo <= l.body[0] < hi]


# -- LIFE-01 -----------------------------------------------------------------

# registration call -> token the destructor must reach (directly or via one
# call into another method of the same class).
_HANDLER_PAIRS = {
    "add_control_handler": "remove_control_handler",
    "register_port": "unregister_port",
    "set_forward_filter": "set_forward_filter",
}
_TIMER_CALLS = {"in", "at", "schedule_in", "schedule_at"}


def _dtor_reaches(cls, dtor, token_text) -> bool:
    """Transitive same-class closure: true when the destructor — directly
    or through any chain of this class's methods — reaches the cancelling
    token. (Was one-level delegation before the call-graph PR; transitive
    reach only removes false positives.)"""
    if dtor is None:
        return False
    by_name: dict[str, list] = {}
    for m in cls.methods:
        by_name.setdefault(m.name, []).append(m)
    seen: set[int] = set()
    stack = [dtor]
    while stack:
        m = stack.pop()
        if id(m) in seen:
            continue
        seen.add(id(m))
        names = {t.text for t in m.body_tokens() if t.kind == ID}
        if token_text in names:
            return True
        for nm in sorted(names & set(by_name)):
            stack.extend(by_name[nm])
    return False


def check_life01(ctx, unit):
    for cls in unit.classes.values():
        if not cls.methods:
            continue
        dtor = next((m for m in cls.methods if m.scope.is_dtor), None)
        for fn in cls.methods:
            if fn.scope.is_dtor:
                continue
            toks = fn.file.lexed.tokens
            lo, hi = fn.scope.body_start, fn.scope.body_end
            i = lo
            while i < hi:
                t = toks[i]
                if t.kind == ID and i + 1 < hi and toks[i + 1].text == "(":
                    name = t.text
                    required = None
                    kind = ""
                    if name in _HANDLER_PAIRS:
                        required = _HANDLER_PAIRS[name]
                        kind = "handler"
                    elif name in _TIMER_CALLS and i > 0 \
                            and toks[i - 1].text in (".", "->"):
                        required = "cancel"
                        kind = "timer"
                    if required is not None:
                        grp = _balanced_group(toks, i + 1, hi)
                        if grp is not None:
                            lams = _lambda_in_span(fn, grp[0], grp[1])
                            if any(l.captures_this() for l in lams):
                                if not _dtor_reaches(cls, dtor, required):
                                    what = ("no destructor"
                                            if dtor is None else
                                            f"destructor never calls "
                                            f"{required}")
                                    yield _mk(
                                        ctx, "LIFE-01", "error", fn, t.line,
                                        f"{cls.name}::{fn.name} registers a "
                                        f"this-capturing {kind} via {name}() "
                                        f"but {what} — the callback dangles "
                                        f"if the object dies first")
                                i = grp[1]
                i += 1


# -- DET-01 ------------------------------------------------------------------

_BANNED_IDS = {
    "random_device": "std::random_device is nondeterministically seeded",
    "system_clock": "wall clock breaks run-to-run determinism",
    "high_resolution_clock": "wall clock breaks run-to-run determinism",
    "steady_clock": "host clock breaks run-to-run determinism "
                    "(timing belongs on stderr/JSON only)",
    "getenv": "environment lookups make runs machine-dependent",
    "secure_getenv": "environment lookups make runs machine-dependent",
    "gettimeofday": "wall clock breaks run-to-run determinism",
    "clock_gettime": "wall clock breaks run-to-run determinism",
    "timespec_get": "wall clock breaks run-to-run determinism",
}
_BANNED_FREE_CALLS = {"time", "clock"}


def _first_template_arg(type_text: str, container: str) -> str:
    idx = type_text.find(container + " <")
    if idx == -1:
        idx = type_text.find(container + "<")
        if idx == -1:
            return ""
    lt = type_text.find("<", idx)
    depth = 0
    arg = []
    for ch_tok in type_text[lt:].split():
        if ch_tok == "<":
            depth += 1
            if depth == 1:
                continue
        elif ch_tok in (">", ">>"):
            depth -= 2 if ch_tok == ">>" else 1
            if depth <= 0:
                break
        elif ch_tok == "," and depth == 1:
            break
        arg.append(ch_tok)
    return " ".join(arg)


def _decl_sites(unit):
    """Yields (path, line, name, type_text, model) for every field and
    local declaration in the unit."""
    for m in unit.models:
        for cls in m.classes.values():
            for fname, ftype in cls.fields.items():
                yield (m.lexed.path, cls.field_lines.get(fname, 1), fname,
                       ftype, m)
        for fn in m.functions:
            for lname, ltype in fn.locals.items():
                yield (m.lexed.path, fn.line, lname, ltype, m)


def _iterated_names(unit) -> set[str]:
    names = set()
    for fn in unit.functions():
        for rf in fn.range_fors:
            base = _range_base(rf)
            if base:
                names.add(base)
    return names


def _program_iterated(ctx) -> set[str] | None:
    """Range-for'd names across the whole program (call-graph context):
    a pointer-keyed unordered container declared in one unit but iterated
    from another is just as nondeterministic."""
    prog = getattr(ctx, "program", None)
    if prog is None:
        return None
    cached = getattr(prog, "_iterated_names", None)
    if cached is None:
        cached = set()
        for node in prog.nodes:
            for rf in node.fn.range_fors:
                base = _range_base(rf)
                if base:
                    cached.add(base)
        prog._iterated_names = cached
    return cached


def _printing_helpers(ctx) -> frozenset:
    """Names of program functions that directly call an output surface —
    a depth-1 interprocedural sink set for DET-02: an unordered loop that
    calls such a helper writes output just as surely as one that calls
    printf itself."""
    prog = getattr(ctx, "program", None)
    if prog is None:
        return frozenset()
    cached = getattr(prog, "_printing_helpers", None)
    if cached is None:
        names = set()
        for node in prog.nodes:
            fn = node.fn
            toks = fn.file.lexed.tokens
            lo, hi = fn.scope.body_start, fn.scope.body_end
            for i in range(lo, hi):
                t = toks[i]
                if t.kind == ID and t.text in _OUTPUT_CALLS \
                        and i + 1 < hi and toks[i + 1].text == "(":
                    names.add(fn.name)
                    break
        cached = frozenset(names)
        prog._printing_helpers = cached
    return cached


def _range_base(rf) -> str:
    ids = [t for t in rf.expr if t.kind == ID and t.text != "this"]
    if not ids:
        return ""
    # `m_`, `this->m_`, `obj.m_` — a trailing call means we can't resolve.
    if any(t.text == "(" for t in rf.expr):
        return ""
    return ids[-1].text


def check_det01(ctx, unit):
    for m in unit.models:
        path = m.lexed.path
        if not _in_src(path):
            continue
        toks = m.lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != ID:
                continue
            if t.text in _BANNED_IDS:
                yield _mk(ctx, "DET-01", "error", path, t.line,
                          f"{t.text}: {_BANNED_IDS[t.text]}")
            elif t.text in _BANNED_FREE_CALLS and i + 1 < len(toks) \
                    and toks[i + 1].text == "(":
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and prev.text in (".", "->"):
                    continue  # member call like tx_time(...)
                if prev is not None and prev.text == "::" \
                        and i >= 2 and toks[i - 2].text != "std":
                    continue
                yield _mk(ctx, "DET-01", "error", path, t.line,
                          f"{t.text}(): wall clock breaks run-to-run "
                          f"determinism")
    # Pointer-keyed containers.
    prog_iterated = _program_iterated(ctx)
    iterated = prog_iterated if prog_iterated is not None \
        else _iterated_names(unit)
    for path, line, name, type_text, m in _decl_sites(unit):
        if not _in_src(path):
            continue
        for cont, needs_iter in (("map", False), ("set", False),
                                 ("unordered_map", True),
                                 ("unordered_set", True)):
            # exact container name (avoid matching unordered_map under
            # the plain "map" probe).
            words = type_text.split()
            if cont not in words:
                continue
            arg = _first_template_arg(type_text, cont)
            if "*" not in arg:
                continue
            if needs_iter and name not in iterated:
                continue
            what = ("iteration over a pointer-keyed unordered container"
                    if needs_iter else
                    "pointer-keyed ordered container: iteration order is "
                    "the address order")
            yield _mk(ctx, "DET-01", "error", path, line,
                      f"{name} uses an object address as its key — {what} "
                      f"varies across runs (ASLR)")
            break


# -- DET-02 ------------------------------------------------------------------

def _resolve_type(name, fn, unit):
    if name in fn.locals:
        return fn.locals[name]
    if name in fn.params:
        return fn.params[name]
    cls = None
    owner = getattr(fn, "owner", None)
    if owner is not None:
        cls = unit.classes.get(owner.name)
    if cls is not None and name in cls.fields:
        return cls.fields[name]
    return ""


def _fp_accumulation(toks, lo, hi, fn, unit):
    """Line of a `lhs += ...` inside [lo,hi) whose lhs base has a
    floating-point declared type, else None."""
    for i in range(lo, hi):
        if toks[i].text in ("+=", "-=", "*=", "/="):
            j = i - 1
            base = None
            while j >= lo:
                t = toks[j]
                if t.kind == ID:
                    base = t.text
                    j -= 1
                elif t.text in (".", "->", "]", "["):
                    j -= 1
                else:
                    break
            if base:
                ty = _resolve_type(base, fn, unit)
                if "double" in ty.split() or "float" in ty.split():
                    return toks[i].line
    return None


def _sorted_later(toks, seq_name, start, end) -> bool:
    """True if `sort`/`stable_sort` is called on `seq_name` in [start,end)
    — the collect-into-a-vector-then-sort snapshot idiom, which makes the
    hash-order collection loop harmless."""
    for i in range(start, end):
        t = toks[i]
        if t.kind == ID and t.text in ("sort", "stable_sort") \
                and i + 1 < end and toks[i + 1].text == "(":
            grp = _balanced_group(toks, i + 1, end)
            if grp is not None and any(
                    toks[j].kind == ID and toks[j].text == seq_name
                    for j in range(grp[0], grp[1])):
                return True
    return False


def check_det02(ctx, unit):
    for fn in unit.functions():
        toks = fn.file.lexed.tokens
        for rf in fn.range_fors:
            base = _range_base(rf)
            if not base:
                continue
            ty = _resolve_type(base, fn, unit)
            if "unordered_map" not in ty and "unordered_set" not in ty:
                continue
            lo, hi = rf.body
            sink = None
            for i in range(lo, hi):
                t = toks[i]
                if t.text == "<<":
                    sink = (t.line, "streams output")
                    break
                if t.kind == ID and i + 1 < hi and toks[i + 1].text == "(":
                    if t.text in _OUTPUT_CALLS:
                        sink = (t.line, f"prints via {t.text}()")
                        break
                    if t.text in ("push_back", "emplace_back"):
                        # Collecting into a sequence that is sorted before
                        # use is the sanctioned sorted-snapshot idiom.
                        seq = None
                        if i >= 2 and toks[i - 1].text in (".", "->") \
                                and toks[i - 2].kind == ID:
                            seq = toks[i - 2].text
                        if seq and _sorted_later(toks, seq, hi,
                                                 fn.scope.body_end):
                            continue
                        sink = (t.line, f"builds an ordered sequence via "
                                        f"{t.text}()")
                        break
                    if t.text in _printing_helpers(ctx) \
                            and t.text not in ("push_back", "emplace_back"):
                        sink = (t.line, f"calls {t.text}(), which writes "
                                        f"output (interprocedural sink)")
                        break
            if sink is None:
                line = _fp_accumulation(toks, lo, hi, fn, unit)
                if line is not None:
                    sink = (line, "accumulates floating-point values "
                                  "(non-associative, order-sensitive)")
            if sink is not None:
                yield _mk(ctx, "DET-02", "error", fn, rf.line,
                          f"{fn.name} iterates unordered container "
                          f"'{base}' and {sink[1]} — iteration order is "
                          f"hash-layout dependent; iterate a sorted "
                          f"snapshot instead")


# -- AUD-01 ------------------------------------------------------------------

def _has_audit(fn) -> bool:
    return any(t.kind == ID and t.text.startswith("FHMIP_AUDIT")
               for t in fn.body_tokens())


def _mutates_fields(fn, fields) -> bool:
    toks = fn.body_tokens()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != ID or t.text not in fields:
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.text in (".", "->", "::"):
            continue  # someone else's member
        nxt = toks[i + 1] if i + 1 < n else None
        if nxt is None:
            continue
        if nxt.text in _ASSIGN_OPS or nxt.text in ("++", "--"):
            return True
        if prev is not None and prev.text in ("++", "--"):
            return True
        if nxt.text in (".", "->") and i + 2 < n \
                and toks[i + 2].text in _MUTATOR_CALLS \
                and i + 3 < n and toks[i + 3].text == "(":
            return True
        if nxt.text == "[" :
            # field[...] = ...
            depth = 0
            j = i + 1
            while j < n:
                if toks[j].text == "[":
                    depth += 1
                elif toks[j].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j + 1 < n and toks[j + 1].text in _ASSIGN_OPS:
                return True
    return False


def _method_access(fn, cls) -> str:
    if fn.scope.access:
        return fn.scope.access
    decl = next((d for d in cls.decls if d.name == fn.name), None)
    if decl is not None:
        return decl.access
    if cls.scope is not None:
        return cls.scope.default_access
    return "private"


def check_aud01(ctx, unit):
    for cls in unit.classes.values():
        if not cls.methods:
            continue
        audited = [m for m in cls.methods if _has_audit(m)]
        if not audited:
            continue
        # Transitive delegation closure within the class: a method counts
        # as auditing when any same-class call chain from it reaches an
        # FHMIP_AUDIT (was one level before the call-graph PR).
        audit_names = {m.name for m in audited}
        changed = True
        while changed:
            changed = False
            for m in cls.methods:
                if m.name in audit_names:
                    continue
                if m.calls & audit_names:
                    audit_names.add(m.name)
                    changed = True
        for fn in cls.methods:
            if not _in_src(_fn_file(fn)):
                continue
            if fn.scope.is_ctor or fn.scope.is_dtor or fn.scope.is_const \
                    or fn.scope.is_static:
                continue
            if _method_access(fn, cls) != "public":
                continue
            if _has_audit(fn):
                continue
            # One level of delegation: calling any method of this class
            # that audits counts.
            if fn.calls & audit_names:
                continue
            if not _mutates_fields(fn, cls.fields):
                continue
            yield _mk(ctx, "AUD-01", "warning", fn, fn.line,
                      f"{cls.name}::{fn.name} mutates audited state but "
                      f"neither audits nor delegates to an auditing "
                      f"method — add FHMIP_AUDIT or baseline with a "
                      f"justification")


# -- EXC-01 ------------------------------------------------------------------

def _throws_directly(prog, fn) -> bool:
    cache = getattr(prog, "_throws_cache", None)
    if cache is None:
        cache = {}
        prog._throws_cache = cache
    k = id(fn)
    if k not in cache:
        toks = fn.file.lexed.tokens
        hit = False
        for i in range(fn.scope.body_start, fn.scope.body_end):
            t = toks[i]
            if t.kind == ID and t.text in ("throw", "rethrow_exception") \
                    and not any(lo <= i < hi for lo, hi in fn.try_spans):
                hit = True
                break
        cache[k] = hit
    return cache[k]


def check_exc01(ctx, unit):
    prog = getattr(ctx, "program", None)
    for fn in unit.functions():
        sc = fn.scope
        if not (sc.is_dtor or sc.is_noexcept):
            continue
        if sc.is_dtor and getattr(sc, "is_noexcept_false", False):
            continue
        where = "destructor" if sc.is_dtor else "noexcept function"
        toks = fn.file.lexed.tokens
        for i in range(sc.body_start, sc.body_end):
            t = toks[i]
            if t.kind == ID and t.text in ("throw", "rethrow_exception"):
                if any(lo <= i < hi for lo, hi in fn.try_spans):
                    continue
                yield _mk(ctx, "EXC-01", "error", fn, t.line,
                          f"{t.text} inside {where} {fn.name} — escapes "
                          f"call std::terminate")
        # Call-graph context (depth 1): a call, outside any try, into a
        # project function whose body throws at top level.
        node = prog.node_for(fn) if prog is not None else None
        if node is None:
            continue
        reported = set()
        for site in node.sites:
            if any(lo <= site.tok_index < hi for lo, hi in fn.try_spans):
                continue
            for tgt in prog.resolve_site(node, site):
                if tgt.fn is fn or tgt.fn.scope.is_noexcept:
                    continue
                if _throws_directly(prog, tgt.fn) \
                        and (site.line, tgt.qual) not in reported:
                    reported.add((site.line, tgt.qual))
                    yield _mk(ctx, "EXC-01", "error", fn, site.line,
                              f"{where} {fn.name} calls {tgt.qual}(), "
                              f"which throws outside any try — escapes "
                              f"call std::terminate")


def register(registry):
    registry.add(Rule("LIFE-01", "error",
                      "this-capturing handler/timer registered without a "
                      "matching cancel in the destructor",
                      check_unit=check_life01))
    registry.add(Rule("DET-01", "error",
                      "nondeterminism source in src/ (wall clock, env, "
                      "address-as-key)",
                      check_unit=check_det01))
    registry.add(Rule("DET-02", "error",
                      "ordering-sensitive output/accumulation over an "
                      "unordered container",
                      check_unit=check_det02))
    registry.add(Rule("AUD-01", "warning",
                      "public mutating method of an audited class without "
                      "an audit call",
                      check_unit=check_aud01))
    registry.add(Rule("EXC-01", "error",
                      "throw-capable expression in destructor/noexcept "
                      "function",
                      check_unit=check_exc01))
