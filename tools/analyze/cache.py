"""Incremental per-file token cache for fhmip_analyze.

Lexing is the analyzer's hottest loop (a char-by-char Python scan); the
symbol model and all rules derive from the token stream. This cache
stores, per source file, the lexed artifacts keyed by a content hash, so
re-runs on an unchanged tree skip the lexer entirely. Cache entries live
under `<root>/build/analyze_cache/` (the build tree is gitignored and
disposable), one pickle per file keyed by the repo-relative path.

Invalidation is entirely content-driven:
  * the entry embeds the sha1 of the file's text — any edit misses;
  * the cache directory is versioned by a digest of the analyzer
    configuration: every tools/analyze/*.py rule/engine module and *.toml
    spec file (roots.toml, protocol.toml), plus any spec files passed on
    the command line from elsewhere. Editing the lexer, a rule module, or
    a spec invalidates everything without a manual bump — stale cached
    results are never silently reused across analyzer changes.

The cache is an optimization only: a corrupt/unreadable entry or an
unwritable build tree degrades to a cold lex, never to an error, and
`--no-cache` bypasses it (the fixture suite proves cold and cached runs
produce byte-identical findings).
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from cpplex import LexedFile, Tok

_FORMAT = 2  # bump when the pickled shape changes


def _config_version(extra_files=()) -> str:
    """Digest of the analyzer's own code and spec files. Any change to a
    rule module, the lexer/model/engine, roots.toml, or protocol.toml
    lands in a fresh cache directory."""
    here = Path(__file__).resolve().parent
    inputs = sorted(
        {p.resolve() for p in list(here.glob("*.py")) + list(here.glob("*.toml"))}
        | {Path(p).resolve() for p in extra_files})
    h = hashlib.sha1()
    for p in inputs:
        h.update(p.name.encode())
        try:
            h.update(p.read_bytes())
        except OSError:
            h.update(b"<unreadable>")
    return h.hexdigest()[:12]


class TokenCache:
    def __init__(self, root: Path, enabled: bool = True, extra_files=()):
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.dir = root / "build" / "analyze_cache" / \
            f"v{_FORMAT}-{_config_version(extra_files)}"
        if enabled:
            try:
                self.dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                self.enabled = False
        if self.enabled:
            # One live version at a time: every analyzer/spec edit starts a
            # fresh directory, so prune the superseded ones.
            import shutil
            for sibling in self.dir.parent.glob("v*"):
                if sibling != self.dir and sibling.is_dir():
                    shutil.rmtree(sibling, ignore_errors=True)

    def _entry_path(self, rel: str) -> Path:
        return self.dir / (hashlib.sha1(rel.encode()).hexdigest() + ".pkl")

    def get(self, rel: str, text: str) -> LexedFile | None:
        if not self.enabled:
            return None
        p = self._entry_path(rel)
        try:
            with p.open("rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return None
        digest = hashlib.sha1(text.encode("utf-8")).hexdigest()
        if entry.get("hash") != digest or entry.get("rel") != rel:
            return None
        self.hits += 1
        lf = LexedFile.__new__(LexedFile)
        lf.path = rel
        lf.tokens = [Tok(k, t, ln) for k, t, ln in entry["tokens"]]
        lf.line_comments = dict(entry["line_comments"])
        lf.pp_directives = list(entry["pp_directives"])
        lf.num_lines = entry["num_lines"]
        return lf

    def put(self, rel: str, text: str, lexed: LexedFile):
        if not self.enabled:
            return
        self.misses += 1
        entry = {
            "hash": hashlib.sha1(text.encode("utf-8")).hexdigest(),
            "rel": rel,
            "tokens": [(t.kind, t.text, t.line) for t in lexed.tokens],
            "line_comments": lexed.line_comments,
            "pp_directives": lexed.pp_directives,
            "num_lines": lexed.num_lines,
        }
        tmp = self._entry_path(rel).with_suffix(".tmp")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(self._entry_path(rel))
        except OSError:
            self.enabled = False
