"""Structural C++ model for the fhmip semantic analyzer.

Builds, from the token stream of one file, a scope tree (namespaces,
classes, enums, functions, lambdas, blocks) via brace tracking, then a
per-file symbol model:

  * classes: fields (name -> type text), declared methods (access/const/
    static), in-class defined methods;
  * functions: qualified owner class, ctor/dtor flags, noexcept, const,
    parameter and local declarations, range-for loops, lambdas with
    capture lists, call sites, try-block spans.

Two files that form a translation unit (foo.hpp + foo.cpp) can be merged
into one `Unit`, so rules see a class declared in the header together
with its out-of-line method definitions in the .cpp. The model is
heuristic — it does not resolve templates or overloads — but it is a real
lexer + scope tracker, which is enough to mechanize the handler-lifetime,
determinism and audit-coverage rules without the false-positive swamp a
line-regex pass produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpplex import ID, PUNCT, LexedFile, Tok

_ACCESS = ("public", "private", "protected")
_DECL_MODIFIERS = {
    "explicit", "virtual", "static", "inline", "constexpr", "friend",
    "mutable", "typename", "extern",
}
_CONTROL = {"if", "else", "for", "while", "switch", "do", "try", "catch"}
_TYPE_EXTRAS = {"const", "unsigned", "signed", "long", "short", "struct",
                "class", "typename", "volatile"}
_NOT_DECL_START = _CONTROL | {
    "return", "break", "continue", "case", "default", "goto", "throw",
    "using", "typedef", "delete", "new", "operator", "template", "public",
    "private", "protected", "sizeof", "static_assert",
}


@dataclass
class Scope:
    kind: str  # namespace | class | enum | function | lambda | block | init
    name: str = ""
    parent: "Scope | None" = None
    body_start: int = 0  # token index just past '{'
    body_end: int = 0  # token index of '}'
    head_start: int = 0  # first token of the introducing statement
    children: list["Scope"] = field(default_factory=list)
    # function-only:
    qual_class: str = ""
    is_ctor: bool = False
    is_dtor: bool = False
    is_const: bool = False
    is_static: bool = False
    is_noexcept: bool = False  # noexcept or noexcept(true)
    is_noexcept_false: bool = False  # explicitly noexcept(false)
    access: str = ""  # for in-class definitions / declarations
    # class-only:
    default_access: str = "private"


@dataclass
class MethodDecl:
    """A method declared (not defined) inside a class body."""

    name: str
    access: str
    is_const: bool
    is_static: bool
    line: int
    is_virtual: bool = False  # virtual / override / final / = 0


@dataclass
class ClassInfo:
    name: str
    scope: Scope | None  # None for "external" classes seen only via X::f
    fields: dict[str, str] = field(default_factory=dict)  # name -> type text
    field_lines: dict[str, int] = field(default_factory=dict)
    decls: list[MethodDecl] = field(default_factory=list)
    methods: list["FunctionInfo"] = field(default_factory=list)


@dataclass
class RangeFor:
    expr: list[Tok]  # tokens of the range expression
    body: tuple[int, int]  # token span of the loop body
    line: int


@dataclass
class LambdaInfo:
    captures: list[Tok]
    body: tuple[int, int]
    line: int

    def captures_this(self) -> bool:
        """True when the capture list captures `this` — explicitly, or
        implicitly via a default capture (`[&]` / `[=]`)."""
        for idx, t in enumerate(self.captures):
            if t.text == "this":
                return True
            if t.text in ("&", "="):
                nxt = self.captures[idx + 1] if idx + 1 < len(self.captures) \
                    else None
                if nxt is None or nxt.text == ",":
                    return True
        return False


@dataclass
class FunctionInfo:
    name: str
    scope: Scope
    file: "FileModel"
    params: dict[str, str] = field(default_factory=dict)
    locals: dict[str, str] = field(default_factory=dict)
    range_fors: list[RangeFor] = field(default_factory=list)
    lambdas: list[LambdaInfo] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    try_spans: list[tuple[int, int]] = field(default_factory=list)
    n_params: int = 0  # declared parameter-group count (incl. unnamed)
    n_defaults: int = 0  # how many of those carry a default argument

    @property
    def line(self) -> int:
        toks = self.file.lexed.tokens
        i = min(self.scope.head_start, len(toks) - 1)
        return toks[i].line if toks else 1

    def body_tokens(self) -> list[Tok]:
        return self.file.lexed.tokens[self.scope.body_start : self.scope.body_end]


class FileModel:
    """Scope tree + symbols for one lexed file."""

    def __init__(self, lexed: LexedFile):
        self.lexed = lexed
        self.root = Scope("block", name="<file>")
        self.classes: dict[str, ClassInfo] = {}
        self.functions: list[FunctionInfo] = []
        self._build_scopes()
        self._build_symbols()

    # -- structural pass -----------------------------------------------------

    def _build_scopes(self):
        toks = self.lexed.tokens
        cur = self.root
        stmt_start = 0
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == PUNCT and t.text == "{":
                head = toks[stmt_start:i]
                sc = self._classify(head, cur)
                sc.parent = cur
                sc.head_start = stmt_start
                sc.body_start = i + 1
                cur.children.append(sc)
                cur = sc
                stmt_start = i + 1
            elif t.kind == PUNCT and t.text == "}":
                cur.body_end = i
                if cur.parent is not None:
                    cur = cur.parent
                stmt_start = i + 1
            elif t.kind == PUNCT and t.text == ";":
                stmt_start = i + 1
            elif t.kind == ID and t.text in _ACCESS and i + 1 < n \
                    and toks[i + 1].text == ":" and cur.kind == "class":
                stmt_start = i + 2
                i += 1
            i += 1
        self.root.body_end = n

    def _classify(self, head: list[Tok], parent: Scope) -> Scope:
        head = self._strip_head(head)
        if head and head[0].text == "namespace":
            name = head[1].text if len(head) > 1 and head[1].kind == ID else ""
            return Scope("namespace", name=name)
        if head and head[0].text == "enum":
            return Scope("enum")
        if head and head[0].text in ("class", "struct", "union"):
            # A '(' at top level would mean a function returning a struct;
            # class heads have none before the brace (bases use ':').
            name = ""
            for t in head[1:]:
                if t.kind == ID and t.text not in ("final", "alignas"):
                    name = t.text
                    break
                if t.text in (":", "{"):
                    break
            sc = Scope("class", name=name)
            sc.default_access = "public" if head[0].text in ("struct", "union") \
                else "private"
            return sc
        lam = self._match_lambda(head)
        if lam is not None:
            return lam
        fn = self._match_function(head)
        if fn is not None:
            return fn
        if head and head[0].text in _CONTROL:
            return Scope("block", name=head[0].text)
        if head:
            last = head[-1]
            if last.kind == PUNCT and last.text in ("=", "(", ",", "<", ">"):
                return Scope("init")
            if last.text == "return":
                return Scope("init")
        else:
            # '{' directly after ';' / '}' / start: plain block or braced
            # initializer at class scope; treat as block.
            return Scope("block")
        return Scope("block")

    @staticmethod
    def _strip_head(head: list[Tok]) -> list[Tok]:
        """Removes leading template<...> groups, attributes and access
        labels so classification sees the interesting keyword first."""
        i = 0
        n = len(head)
        while i < n:
            t = head[i]
            if t.text == "template" and i + 1 < n and head[i + 1].text == "<":
                depth = 0
                j = i + 1
                while j < n:
                    if head[j].text == "<":
                        depth += 1
                    elif head[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif head[j].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    j += 1
                i = j + 1
            elif t.text in _ACCESS and i + 1 < n and head[i + 1].text == ":":
                i += 2
            elif t.text == "[" and i + 1 < n and head[i + 1].text == "[":
                depth = 0
                j = i
                while j < n:
                    if head[j].text == "[":
                        depth += 1
                    elif head[j].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                i = j + 1
            elif t.text in ("inline", "explicit", "virtual", "constexpr",
                            "friend"):
                i += 1
            else:
                break
        return head[i:]

    @staticmethod
    def _match_lambda(head: list[Tok]) -> Scope | None:
        """Recognizes `... [caps] (params) specs {` or `... [caps] {`."""
        k = len(head) - 1
        # Strip trailing specifiers and -> return type.
        k = FileModel._strip_trailing_specifiers(head, k)
        if k < 0:
            return None
        if head[k].text == ")":
            depth = 0
            j = k
            while j >= 0:
                if head[j].text == ")":
                    depth += 1
                elif head[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j <= 0:
                return None
            k = j - 1
            k = FileModel._strip_trailing_specifiers(head, k)
        if k < 0 or head[k].text != "]":
            return None
        depth = 0
        j = k
        while j >= 0:
            if head[j].text == "]":
                depth += 1
            elif head[j].text == "[":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j < 0:
            return None
        # Exclude array subscript / array declarator: `a[` / `](` after id.
        prev = head[j - 1] if j > 0 else None
        if prev is not None and (prev.kind == ID or prev.text in (")", "]")):
            return None
        sc = Scope("lambda")
        sc.is_noexcept = any(t.text == "noexcept" for t in head[k:])
        # Stash capture tokens via name field? keep them on the scope:
        sc.name = "<lambda>"
        sc.captures = head[j + 1 : k]  # type: ignore[attr-defined]
        return sc

    @staticmethod
    def _strip_trailing_specifiers(head: list[Tok], k: int) -> int:
        changed = True
        while changed and k >= 0:
            changed = False
            t = head[k]
            if t.kind == ID and t.text in ("mutable", "const", "noexcept",
                                           "override", "final"):
                k -= 1
                changed = True
            elif t.text in ("&", "&&"):
                k -= 1
                changed = True
            elif t.text == ")" :
                # possibly noexcept(...) — strip the group only if it is
                # preceded (transitively) by `noexcept`.
                depth = 0
                j = k
                while j >= 0:
                    if head[j].text == ")":
                        depth += 1
                    elif head[j].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                if j > 0 and head[j - 1].text == "noexcept":
                    k = j - 2
                    changed = True
            elif t.kind in (ID, PUNCT) and "->" in [h.text for h in head[max(0, k - 6) : k + 1]]:
                # trailing return type: cut at the '->'
                for j in range(k, max(-1, k - 12), -1):
                    if head[j].text == "->":
                        k = j - 1
                        changed = True
                        break
                else:
                    break
        return k

    @staticmethod
    def _match_function(head: list[Tok]) -> Scope | None:
        """Recognizes function definitions: `type name(params) specs {`,
        `Cls::name(params) ... {`, ctor-init lists, `~Cls()` dtors."""
        if not head:
            return None
        # Cut a ctor-initializer list: the last top-level ':' that follows
        # a ')' (and is not '::' — those are single tokens here).
        depth = 0
        cut = -1
        seen_close = False
        for idx, t in enumerate(head):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
                if t.text == ")":
                    seen_close = True
            elif t.text == ":" and depth == 0 and seen_close:
                cut = idx
                break
            elif t.text == "?" and depth == 0:
                return None  # ternary expression statement
        if cut != -1:
            head = head[:cut]
        k = len(head) - 1
        noexc = any(t.text == "noexcept" for t in head)
        noexc_false = False
        for idx, t in enumerate(head):
            if t.text == "noexcept" and idx + 2 < len(head) \
                    and head[idx + 1].text == "(" and head[idx + 2].text == "false":
                noexc_false = True
        is_const = False
        # Strip trailing specifiers (const, noexcept, override, -> type).
        while k >= 0:
            t = head[k]
            if t.kind == ID and t.text in ("const", "noexcept", "override",
                                           "final", "mutable"):
                if t.text == "const":
                    is_const = True
                k -= 1
            elif t.text in ("&", "&&"):
                k -= 1
            elif t.text == ")":
                depth2 = 0
                j = k
                while j >= 0:
                    if head[j].text == ")":
                        depth2 += 1
                    elif head[j].text == "(":
                        depth2 -= 1
                        if depth2 == 0:
                            break
                    j -= 1
                if j > 0 and head[j - 1].text == "noexcept":
                    k = j - 2
                else:
                    break
            else:
                # trailing return type `-> T`
                found = False
                for j in range(k, -1, -1):
                    if head[j].text == "->":
                        k = j - 1
                        found = True
                        break
                    if head[j].text == ")":
                        break
                if not found:
                    break
        if k < 0 or head[k].text != ")":
            return None
        depth = 0
        j = k
        while j >= 0:
            if head[j].text == ")":
                depth += 1
            elif head[j].text == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j <= 0:
            return None
        name_tok = head[j - 1]
        if name_tok.kind != ID or name_tok.text in _CONTROL \
                or name_tok.text in ("return", "new", "delete", "sizeof",
                                     "defined", "alignof", "decltype"):
            return None
        sc = Scope("function", name=name_tok.text)
        sc.is_noexcept = noexc and not noexc_false
        sc.is_noexcept_false = noexc_false
        sc.is_const = is_const
        sc.param_span = (j + 1, k)  # type: ignore[attr-defined]
        sc.head_tokens = head  # type: ignore[attr-defined]
        p = j - 2
        if p >= 0 and head[p].text == "~":
            sc.is_dtor = True
            p -= 1
        if p >= 1 and head[p].text == "::" and head[p - 1].kind == ID:
            sc.qual_class = head[p - 1].text
            if sc.is_dtor or sc.qual_class == sc.name:
                sc.is_ctor = not sc.is_dtor
        # In-class ctor/dtor: `Node(...)` / `~Node()` with no return type.
        if not sc.qual_class:
            has_type = any(t.kind == ID and t.text not in _DECL_MODIFIERS
                           for t in head[:max(0, p + 1)])
            if not has_type:
                if sc.is_dtor:
                    pass
                else:
                    sc.is_ctor = True  # confirmed against class name later
        sc.is_static = any(t.text == "static" for t in head[: j])
        return sc

    # -- symbol pass ---------------------------------------------------------

    def _build_symbols(self):
        self._walk(self.root, enclosing_class=None, access="")

    def _walk(self, scope: Scope, enclosing_class: ClassInfo | None,
              access: str):
        for child in scope.children:
            if child.kind == "namespace" or (child.kind == "block"
                                             and scope is self.root):
                self._walk(child, enclosing_class, access)
            elif child.kind == "class":
                ci = self.classes.setdefault(child.name or "<anon>",
                                             ClassInfo(child.name, child))
                if ci.scope is None:
                    ci.scope = child
                self._scan_class_body(child, ci)
                self._walk(child, ci, child.default_access)
            elif child.kind == "function":
                fn = self._analyze_function(child)
                self.functions.append(fn)
                owner = None
                if child.qual_class:
                    owner = self.classes.setdefault(
                        child.qual_class, ClassInfo(child.qual_class, None))
                elif enclosing_class is not None:
                    owner = enclosing_class
                    if child.name == enclosing_class.name:
                        child.is_ctor = True
                    elif child.is_dtor is False and child.name.startswith("~"):
                        child.is_dtor = True
                if owner is not None:
                    owner.methods.append(fn)
                    fn.owner = owner  # type: ignore[attr-defined]
            else:
                self._walk(child, enclosing_class, access)

    def _scan_class_body(self, cls: Scope, ci: ClassInfo):
        """Scans tokens at class depth (outside child scopes) for field and
        method declarations, tracking access labels."""
        toks = self.lexed.tokens
        spans = sorted((c.head_start, c.body_end) for c in cls.children)
        access = cls.default_access
        i = cls.body_start
        stmt: list[Tok] = []
        span_idx = 0
        while i < cls.body_end:
            # Skip child scopes (their heads are part of the child, but the
            # head tokens before '{' still belong to the statement; we only
            # skip the brace bodies).
            while span_idx < len(spans) and spans[span_idx][1] < i:
                span_idx += 1
            t = toks[i]
            if t.kind == ID and t.text in _ACCESS and i + 1 < cls.body_end \
                    and toks[i + 1].text == ":":
                access = t.text
                # also mark in-class defined methods that follow
                stmt = []
                i += 2
                continue
            if t.text == "{":
                # find matching close, skip the body
                depth = 1
                j = i + 1
                while j < cls.body_end and depth:
                    if toks[j].text == "{":
                        depth += 1
                    elif toks[j].text == "}":
                        depth -= 1
                    j += 1
                # was this a method definition? record access (and whether
                # the head marks it virtual/override) on the scope
                for c in cls.children:
                    if c.body_start == i + 1 and c.kind == "function":
                        c.access = access
                        head = toks[c.head_start : c.body_start - 1]
                        c.is_virtual = any(  # type: ignore[attr-defined]
                            t.text in ("virtual", "override", "final")
                            for t in head)
                i = j
                stmt = []
                continue
            if t.text == ";":
                self._record_class_stmt(stmt, access, ci)
                stmt = []
                i += 1
                continue
            stmt.append(t)
            i += 1

    def _record_class_stmt(self, stmt: list[Tok], access: str, ci: ClassInfo):
        if not stmt:
            return
        first = stmt[0].text
        if first in ("using", "typedef", "friend", "template", "enum",
                     "class", "struct", "static_assert", "public", "private",
                     "protected", "operator"):
            return
        if any(t.text == "operator" for t in stmt):
            return
        # Method declaration: top-level '(' (outside template angles).
        angle = paren = 0
        is_method = False
        name = ""
        is_const = is_static = False
        prev: Tok | None = None
        for idx, t in enumerate(stmt):
            if t.text == "<" and prev is not None and (prev.kind == ID
                                                       or prev.text == ">"):
                angle += 1
            elif t.text in (">", ">>") and angle > 0:
                angle -= 2 if t.text == ">>" else 1
                angle = max(angle, 0)
            elif t.text == "(" and angle == 0:
                paren += 1
                if paren == 1 and not is_method and prev is not None \
                        and prev.kind == ID:
                    is_method = True
                    name = prev.text
            elif t.text == ")" and angle == 0 and paren > 0:
                paren -= 1
                if paren == 0 and idx + 1 < len(stmt) \
                        and stmt[idx + 1].text == "const":
                    is_const = True
            prev = t
        if stmt[0].text == "static":
            is_static = True
        if is_method and name:
            is_virtual = any(t.text in ("virtual", "override", "final")
                             for t in stmt)
            ci.decls.append(MethodDecl(name, access, is_const, is_static,
                                       stmt[0].line, is_virtual))
            return
        # Field declaration: type tokens then name, optionally `= init`.
        decl = _parse_decl(stmt)
        if decl is not None:
            tname, ttype, line = decl
            ci.fields[tname] = ttype
            ci.field_lines[tname] = line

    def _analyze_function(self, scope: Scope) -> FunctionInfo:
        fn = FunctionInfo(scope.name, scope, self)
        toks = self.lexed.tokens
        # Parameters.
        span = getattr(scope, "param_span", None)
        head = getattr(scope, "head_tokens", None)
        if span and head is not None:
            self._parse_params(head, fn)
        # Body scan.
        i = scope.body_start
        end = scope.body_end
        stmt: list[Tok] = []
        prev: Tok | None = None
        while i < end:
            t = toks[i]
            if t.kind == ID and t.text == "for" and i + 1 < end \
                    and toks[i + 1].text == "(":
                i = self._scan_for(i, end, fn)
                stmt = []
                prev = t
                continue
            if t.kind == ID and t.text == "try":
                j = i + 1
                while j < end and toks[j].text != "{":
                    j += 1
                if j < end:
                    depth = 1
                    k = j + 1
                    while k < end and depth:
                        if toks[k].text == "{":
                            depth += 1
                        elif toks[k].text == "}":
                            depth -= 1
                        k += 1
                    fn.try_spans.append((j + 1, k - 1))
            if t.text == "[" and (prev is None or not (prev.kind == ID or
                                                       prev.text in (")", "]"))):
                j = i + 1
                depth = 1
                while j < end and depth:
                    if toks[j].text == "[":
                        depth += 1
                    elif toks[j].text == "]":
                        depth -= 1
                    j += 1
                caps = toks[i + 1 : j - 1]
                # find the lambda body '{' (skip params/specifiers)
                k = j
                pd = 0
                while k < end:
                    if toks[k].text == "(":
                        pd += 1
                    elif toks[k].text == ")":
                        pd -= 1
                    elif toks[k].text == "{" and pd == 0:
                        break
                    elif toks[k].text in (";", ",") and pd == 0:
                        k = -1
                        break
                    k += 1
                if k != -1 and k < end:
                    depth = 1
                    m = k + 1
                    while m < end and depth:
                        if toks[m].text == "{":
                            depth += 1
                        elif toks[m].text == "}":
                            depth -= 1
                        m += 1
                    fn.lambdas.append(
                        LambdaInfo(list(caps), (k + 1, m - 1), toks[i].line))
            if t.kind == ID and i + 1 < end and toks[i + 1].text == "(":
                fn.calls.add(t.text)
            if t.text in (";", "{", "}"):
                if stmt:
                    d = _parse_decl(stmt)
                    if d is not None:
                        fn.locals[d[0]] = d[1]
                stmt = []
            else:
                stmt.append(t)
            prev = t
            i += 1
        return fn

    def _parse_params(self, head: list[Tok], fn: FunctionInfo):
        span = getattr(fn.scope, "param_span", None)
        if span is None:
            return
        lo, hi = span
        depth = 0
        group: list[Tok] = []
        groups: list[list[Tok]] = []
        for t in head[lo:hi]:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                groups.append(group)
                group = []
            else:
                group.append(t)
        if group:
            groups.append(group)
        groups = [g for g in groups if any(t.text != "void" for t in g)]
        fn.n_params = len(groups)
        for g in groups:
            # name = last id before a default '='
            eq = next((idx for idx, t in enumerate(g) if t.text == "="), len(g))
            if eq < len(g):
                fn.n_defaults += 1
            ids = [t for t in g[:eq] if t.kind == ID]
            if len(ids) >= 2:
                fn.params[ids[-1].text] = " ".join(t.text for t in g[:eq][:-1])

    def _scan_for(self, i: int, end: int, fn: FunctionInfo) -> int:
        """Parses a `for` statement at token index i; records range-fors and
        `.begin()`-style iterator loops; returns index to resume at (start
        of the loop body, which the main scan continues through)."""
        toks = self.lexed.tokens
        j = i + 1  # at '('
        depth = 0
        colon = -1
        k = j
        while k < end:
            if toks[k].text == "(":
                depth += 1
            elif toks[k].text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif toks[k].text == ":" and depth == 1 and colon == -1:
                colon = k
            k += 1
        close = k
        if close >= end:
            return i + 1
        # Loop body span.
        b = close + 1
        if b < end and toks[b].text == "{":
            depth = 1
            m = b + 1
            while m < end and depth:
                if toks[m].text == "{":
                    depth += 1
                elif toks[m].text == "}":
                    depth -= 1
                m += 1
            body = (b + 1, m - 1)
        else:
            m = b
            depth = 0
            while m < end:
                if toks[m].text in ("(", "[", "{"):
                    depth += 1
                elif toks[m].text in (")", "]", "}"):
                    depth -= 1
                elif toks[m].text == ";" and depth == 0:
                    break
                m += 1
            body = (b, m)
        if colon != -1:
            expr = toks[colon + 1 : close]
            fn.range_fors.append(RangeFor(expr, body, toks[i].line))
        else:
            # Iterator loop: look for `X.begin()` / `X->begin()` in header.
            hdr = toks[j + 1 : close]
            for idx in range(len(hdr) - 2):
                if hdr[idx + 1].text in (".", "->") and \
                        hdr[idx + 2].text in ("begin", "cbegin") and \
                        hdr[idx].kind == ID:
                    fn.range_fors.append(
                        RangeFor([hdr[idx]], body, toks[i].line))
                    break
        return close + 1


def _parse_decl(stmt: list[Tok]) -> tuple[str, str, int] | None:
    """Heuristic variable-declaration parser. Returns (name, type-text,
    line) or None. Requires at least one type token before the name so
    plain calls/assignments are not mistaken for declarations."""
    if not stmt:
        return None
    if stmt[0].kind != ID or stmt[0].text in _NOT_DECL_START:
        return None
    angle = 0
    type_toks: list[Tok] = []
    i = 0
    n = len(stmt)
    prev: Tok | None = None
    while i < n:
        t = stmt[i]
        if t.text == "<" and prev is not None and (prev.kind == ID or
                                                   prev.text == ">"):
            angle += 1
            type_toks.append(t)
        elif t.text in (">", ">>") and angle > 0:
            angle -= 2 if t.text == ">>" else 1
            angle = max(angle, 0)
            type_toks.append(t)
        elif angle > 0:
            type_toks.append(t)
        elif t.kind == ID or t.text in ("::", "*", "&", "&&"):
            type_toks.append(t)
        else:
            break
        prev = t
        i += 1
    nxt = stmt[i] if i < n else None
    # The candidate name is the last plain identifier collected; everything
    # before it is the type. Need >= 2 ids (type + name) unless 'auto'.
    ids = [t for t in type_toks if t.kind == ID]
    if len(ids) < 2:
        return None
    name_tok = type_toks[-1]
    if name_tok.kind != ID:
        return None
    if nxt is not None and nxt.text not in ("=", "{", ";", ",", "("):
        return None
    if nxt is not None and nxt.text == "(":
        # `Type name(args);` direct-init declaration vs. a call `f(args)`:
        # calls were already excluded by the >= 2 id requirement.
        pass
    ttype = " ".join(t.text for t in type_toks[:-1])
    if name_tok.text in _NOT_DECL_START or not ttype:
        return None
    return name_tok.text, ttype, name_tok.line


class Unit:
    """A translation unit view: one or two FileModels (header + source)
    with classes merged by name."""

    def __init__(self, models: list[FileModel]):
        self.models = models
        self.classes: dict[str, ClassInfo] = {}
        for m in models:
            for name, ci in m.classes.items():
                if name not in self.classes:
                    merged = ClassInfo(name, ci.scope)
                    self.classes[name] = merged
                merged = self.classes[name]
                if merged.scope is None:
                    merged.scope = ci.scope
                merged.fields.update(ci.fields)
                merged.field_lines.update(ci.field_lines)
                merged.decls.extend(ci.decls)
                merged.methods.extend(ci.methods)

    def functions(self):
        for m in self.models:
            yield from m.functions
