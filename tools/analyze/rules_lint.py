"""Legacy fhmip_lint rules, folded into the analyzer as rule modules.

These are the project-convention rules from tools/lint/fhmip_lint.py
(PR 1), ported verbatim onto the shared engine: text-level checks over
comment/string-stripped source. Rule ids are unchanged so historical
references stay greppable; the old per-file ALLOWLIST moved to the
checked-in baseline (tools/analyze/baseline.txt) where each entry carries
a justification and goes stale loudly when the code stops matching.
"""

from __future__ import annotations

import re
import subprocess

from registry import Finding, Rule, line_fingerprint


def _is_digit_separator(text: str, i: int) -> bool:
    """True when the apostrophe at `text[i]` is a C++14 digit separator
    (`1'000'000`), i.e. it sits inside a pp-number: the alnum run ending
    just before it starts with a digit, and a digit/hex-digit follows.
    `u8'x'` is a char literal (run starts with a letter), `1'000` is not."""
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] in "._"):
        j -= 1
    run = text[j + 1 : i]
    return (bool(run) and run[0].isdigit()
            and i + 1 < len(text) and text[i + 1].isalnum())


def _raw_string_prefix(text: str, i: int) -> bool:
    """True when the `"` at `text[i]` opens a raw string literal, i.e. the
    identifier run ending just before it is R / u8R / uR / UR / LR."""
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] == "_"):
        j -= 1
    run = text[j + 1 : i]
    return run in ("R", "u8R", "uR", "UR", "LR")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers match the source.

    Handles raw strings (`R"delim(...)delim"` — a `"` or `//` inside one
    must not terminate the literal or start a comment) and digit
    separators (`1'000'000` — the `'` is part of the number, not a char
    literal, so it must not swallow the rest of the line)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == '"' and _raw_string_prefix(text, i):
            lparen = text.find("(", i + 1)
            if lparen == -1:
                out.append('"')
                i += 1
                continue
            delim = text[i + 1 : lparen]
            close = text.find(")" + delim + '"', lparen + 1)
            close = n if close == -1 else close + len(delim) + 2
            seg = text[i:close]
            out.append('"' + "".join(ch if ch == "\n" else " "
                                     for ch in seg[1:-1]) + '"')
            i = close
        elif c == "'" and _is_digit_separator(text, i):
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + "".join(ch if ch == "\n" else " "
                                       for ch in text[i + 1 : j]) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _f(rule, sev, path, lineno, msg, ctx):
    return Finding(rule, sev, path, lineno, msg,
                   ctx.fingerprint(path, lineno))


# -- pragma-once -------------------------------------------------------------

def check_pragma_once(ctx, path):
    if not path.endswith(".hpp"):
        return
    text = ctx.raw_text(path)
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped != "#pragma once":
            yield _f("pragma-once", "error", path, lineno,
                     "header must start with #pragma once", ctx)
        return
    yield _f("pragma-once", "error", path, 1, "empty header", ctx)


# -- self-include-first ------------------------------------------------------

def check_self_include_first(ctx, path):
    if not path.endswith(".cpp") or "src" not in path.split("/"):
        return
    parts = path.split("/")
    own = "/".join(parts[parts.index("src") + 1 :])
    own = own[: -len(".cpp")] + ".hpp"
    if not (ctx.root / "src" / own).exists():
        return  # .cpp without a paired header (e.g. a main)
    raw_lines = ctx.raw_text(path).splitlines()
    code = ctx.stripped_text(path)
    for lineno, line in enumerate(code.splitlines(), 1):
        if re.match(r"\s*#\s*include\s+<", line):
            yield _f("self-include-first", "error", path, lineno,
                     f'first include must be "{own}"', ctx)
            return
        if re.match(r'\s*#\s*include\s+"', line):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', raw_lines[lineno - 1])
            if m and m.group(1) != own:
                yield _f("self-include-first", "error", path, lineno,
                         f'first include must be "{own}", '
                         f'got "{m.group(1)}"', ctx)
            return


# -- regex rules -------------------------------------------------------------

def check_banned_random(ctx, path):
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if re.search(r"\b(?:std::)?s?rand\s*\(|\brandom_shuffle\b", line):
            yield _f("banned-random", "error", path, lineno,
                     "use fhmip::Rng (deterministic, per-Simulation)", ctx)


def check_using_namespace_std(ctx, path):
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if re.search(r"\busing\s+namespace\s+std\b", line):
            yield _f("using-namespace-std", "error", path, lineno,
                     "qualify std:: names explicitly", ctx)


def check_simtime_float_eq(ctx, path):
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if re.search(r"\.(?:sec|millis_f|micros_f)\(\)\s*[!=]=|"
                     r"[!=]=\s*[\w.:()]+\.(?:sec|millis_f|micros_f)\(\)",
                     line):
            yield _f("simtime-float-eq", "error", path, lineno,
                     "compare SimTime values directly (integer ns), "
                     "not their floating-point views", ctx)


def check_stale_eventid(ctx, path):
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if "EventId" in line and re.search(
                r"EventId\s+\w+(?:\s*=\s*|\s*\{\s*)0\b", line):
            yield _f("stale-eventid", "error", path, lineno,
                     "initialise EventId handles from kInvalidEvent", ctx)
        if re.search(r"\b\w+(?:\.|->)\w*(?:timer|event\w*id)\w*\s*[!=]="
                     r"\s*0\b", line, re.IGNORECASE):
            yield _f("stale-eventid", "error", path, lineno,
                     "compare EventId handles against kInvalidEvent", ctx)


def check_raw_new_delete(ctx, path):
    if "src" not in path.split("/"):
        return
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if re.search(r"\bnew\s+[A-Za-z_(]", line) and \
                not re.search(r"\boperator\s+new\b", line):
            yield _f("raw-new-delete", "error", path, lineno,
                     "raw new — use containers/smart pointers", ctx)
        if re.search(r"\bdelete\s+[A-Za-z_*]|\bdelete\[\]", line) and \
                not re.search(r"=\s*delete\b", line):
            yield _f("raw-new-delete", "error", path, lineno,
                     "raw delete — use containers/smart pointers", ctx)


def check_direct_stdio(ctx, path):
    if "src" not in path.split("/"):
        return
    for lineno, line in enumerate(ctx.stripped_text(path).splitlines(), 1):
        if re.search(r"\bstd::(?:printf|puts|cout|cerr)\b|"
                     r"(?<!\w)f?printf\s*\(", line):
            yield _f("direct-stdio", "error", path, lineno,
                     "report through Logger or PacketTrace", ctx)
        if re.search(r"#\s*include\s+<iostream>", line):
            yield _f("direct-stdio", "error", path, lineno,
                     "<iostream> banned in src/ (static-init cost); "
                     "report through Logger or PacketTrace", ctx)


# -- tracked-build-tree ------------------------------------------------------
#
# Build trees must never be committed (PR 7 accidentally tracked 795
# build-asan/* files). The guard asks git for the tracked file list and
# fails on anything that lives under a build-tree-shaped top-level
# directory, so `cmake -B build-foo` output can't silently ride along in a
# commit again. Runs once per analysis (check_program hook); silently does
# nothing when the root is not a git work tree (fixture corpora).

_BUILD_TREE_RE = re.compile(r"^(?:build[^/]*|out|Testing)/")


def tracked_build_tree_paths(root):
    """Tracked paths under a build-tree directory, [] when not a repo."""
    try:
        ls = subprocess.run(
            ["git", "-C", str(root), "ls-files"],
            capture_output=True, text=True, timeout=60, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return []
    if ls.returncode != 0:
        return []
    return [p for p in ls.stdout.splitlines() if _BUILD_TREE_RE.match(p)]


def check_tracked_build_tree(ctx, _program):
    offenders = tracked_build_tree_paths(ctx.root)
    # One finding per offending tree, not per file: 795 identical findings
    # help nobody, and the baseline should never be able to absorb them
    # one-by-one.
    trees = sorted({p.split("/", 1)[0] for p in offenders})
    for tree in trees:
        count = sum(1 for p in offenders if p.split("/", 1)[0] == tree)
        yield Finding(
            "tracked-build-tree", "error", tree + "/", 1,
            f"{count} build-tree file(s) tracked by git — "
            f"`git rm -r --cached {tree}` and check .gitignore",
            line_fingerprint(tree))


def register(registry):
    registry.add(Rule("pragma-once", "error",
                      "every header starts with #pragma once",
                      check_file=check_pragma_once))
    registry.add(Rule("self-include-first", "error",
                      "src/<mod>/<name>.cpp includes its own header first",
                      check_file=check_self_include_first))
    registry.add(Rule("banned-random", "error",
                      "rand()/srand()/random_shuffle banned; use fhmip::Rng",
                      check_file=check_banned_random))
    registry.add(Rule("using-namespace-std", "error",
                      "no `using namespace std`",
                      check_file=check_using_namespace_std))
    registry.add(Rule("simtime-float-eq", "error",
                      "no ==/!= on SimTime floating-point views",
                      check_file=check_simtime_float_eq))
    registry.add(Rule("stale-eventid", "error",
                      "EventId handles use kInvalidEvent, not literal 0",
                      check_file=check_stale_eventid))
    registry.add(Rule("raw-new-delete", "error",
                      "no raw new/delete in src/",
                      check_file=check_raw_new_delete))
    registry.add(Rule("direct-stdio", "error",
                      "src/ reports through Logger/PacketTrace, not stdio",
                      check_file=check_direct_stdio))
    registry.add(Rule("tracked-build-tree", "error",
                      "no build-tree files tracked by git",
                      check_program=check_tracked_build_tree))
