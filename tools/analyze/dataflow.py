"""Intra-procedural, branch-aware dataflow engine for fhmip_analyze.

Third analysis tier, built on the cppmodel scope tracker: a structured
statement-tree parser over a function's token span (if/else, while, for,
range-for, do-while, switch with fallthrough, try/catch, return, break,
continue) and an abstract interpreter that enumerates ownership states of
move-only locals along every path. The rule layer (rules_dataflow.py)
uses it to prove packet obligations: every `PacketPtr` created by or
handed to a function must be moved out (into a terminal accounting call,
a buffer, a closure, or the caller) on every path — the static complement
of the runtime PacketLedger.

Abstract states per tracked variable:

  OWNED  definitely holds a live object (factory result, by-value param,
         true-branch of a null check)
  MAYBE  may hold one (result of an unknown call such as `pop()`, or
         passed by reference to an unknown callee which may have consumed
         it)
  MOVED  definitely empty because this path moved it out
  NULL   definitely empty for a benign reason (default-init, reset,
         refuted null check)

The interpreter is path-sensitive with null-condition refinement
(`if (p)` / `if (!p)` / `== nullptr` / `!= nullptr`, including
condition-declared variables), unrolls every loop body twice (catching
loop-carried double-moves without fixpoint iteration), and checks
obligations at each return, at each scope exit, and at function end.
Reported events:

  leak        OWNED at a return/scope end — the object is destroyed with
              no accounting call on this path
  double      a move of an already-MOVED variable — two terminal calls on
              one path
  overwrite   assignment/reset of an OWNED variable — the old object is
              destroyed silently

MAYBE at scope end is deliberately not reported (the unknown callee may
have consumed it); this under-approximation is what keeps the rule
near-zero-noise on real code. Nested lambda bodies are skipped during the
enclosing function's scan (they run later) and analyzed separately as
pseudo-functions whose tracked variables are by-value owning parameters
and move-initialized captures.

Everything here is heuristic token analysis, not a compiler; the
boundaries (configured creator calls, owning type names, sink functions)
live in roots.toml [FLOW-01].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpplex import ID, NUM, PUNCT

OWNED = "owned"
MAYBE = "maybe"
MOVED = "moved"
NULL = "null"
# Still holds the object, but its death was accounted on this path: the
# packet was named in a call to one of the configured account_calls
# (record_drop/record_delivery/trace_packet idiom — the repo's second
# terminal form, where the packet is allowed to die in place after the
# ledger/trace write instead of being moved into a sink).
ACCOUNTED = "accounted"

# Path-state merge points keep at most this many distinct states; beyond
# it the extras are dropped (missing a finding beats fabricating one).
MAX_STATES = 64


@dataclass
class FlowConfig:
    owning_types: tuple[str, ...] = ("PacketPtr",)
    creator_calls: tuple[str, ...] = ("make_packet", "make_control", "clone")
    # Functions with these names (bare, or Class::method qualified) ARE
    # terminal accounting sinks or post-terminal handlers: their by-value
    # owning parameters are allowed to die in the body.
    sink_functions: tuple[str, ...] = ("drop",)
    # Calls that account a packet's death in place: a tracked variable
    # named anywhere in the argument list becomes ACCOUNTED and may then
    # die at scope end without a move.
    account_calls: tuple[str, ...] = ()


@dataclass
class FlowEvent:
    kind: str  # leak | double | overwrite
    var: str
    line: int


# ---------------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------------

@dataclass
class Simple:
    lo: int
    hi: int  # exclusive, past the ';'


@dataclass
class Block:
    stmts: list


@dataclass
class If:
    init: tuple[int, int] | None  # C++17 if-init statement span
    cond: tuple[int, int]
    then: object
    els: object | None
    line: int


@dataclass
class Loop:
    kind: str  # while | for | rangefor | do
    init: tuple[int, int] | None
    cond: tuple[int, int] | None
    step: tuple[int, int] | None
    body: object
    line: int


@dataclass
class Switch:
    init: tuple[int, int] | None
    cond: tuple[int, int]
    segments: list  # list[Block], in label order
    has_default: bool
    line: int


@dataclass
class Return:
    lo: int
    hi: int  # expression span (may be empty)
    line: int
    # `throw` also ends the path, but without an obligation check: owned
    # locals on an exception path are unwound, and flagging them would
    # punish ordinary error propagation.
    is_throw: bool = False


@dataclass
class Jump:
    kind: str  # break | continue
    line: int


@dataclass
class Try:
    body: object
    handlers: list


class ParseError(Exception):
    pass


def _match_close(toks, i, end, opener, closer):
    """Index of the token closing the group opened at `i`."""
    depth = 0
    while i < end:
        tx = toks[i].text
        if tx == opener:
            depth += 1
        elif tx == closer:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    raise ParseError("unbalanced " + opener)


def _scan_semicolon(toks, i, end):
    """Index of the next ';' at group depth 0 (parens/braces/brackets)."""
    depth = 0
    while i < end:
        tx = toks[i].text
        if tx in ("(", "{", "["):
            depth += 1
        elif tx in (")", "}", "]"):
            if depth == 0:
                return i  # malformed; let the caller stop here
            depth -= 1
        elif tx == ";" and depth == 0:
            return i
        i += 1
    return end


def _split_cond(toks, lo, hi):
    """Splits an if/switch condition at a top-level ';' (the C++17
    init-statement form). Returns (init_span | None, cond_span)."""
    depth = 0
    for i in range(lo, hi):
        tx = toks[i].text
        if tx in ("(", "{", "["):
            depth += 1
        elif tx in (")", "}", "]"):
            depth -= 1
        elif tx == ";" and depth == 0:
            return (lo, i), (i + 1, hi)
    return None, (lo, hi)


def parse_block(toks, i, end):
    """Parses statements in toks[i:end]; returns Block."""
    stmts = []
    while i < end:
        node, i = parse_stmt(toks, i, end)
        if node is not None:
            stmts.append(node)
    return Block(stmts)


def parse_stmt(toks, i, end):
    while i < end and toks[i].text == ";":
        i += 1
    if i >= end:
        return None, end
    t = toks[i]

    if t.text == "{":
        close = _match_close(toks, i, end, "{", "}")
        return parse_block(toks, i + 1, close), close + 1

    if t.kind == ID and t.text == "if":
        j = i + 1
        if j < end and toks[j].text == "constexpr":
            j += 1
        if j >= end or toks[j].text != "(":
            raise ParseError("if without (")
        close = _match_close(toks, j, end, "(", ")")
        init, cond = _split_cond(toks, j + 1, close)
        then, k = parse_stmt(toks, close + 1, end)
        els = None
        if k < end and toks[k].kind == ID and toks[k].text == "else":
            els, k = parse_stmt(toks, k + 1, end)
        return If(init, cond, then, els, t.line), k

    if t.kind == ID and t.text == "while":
        close = _match_close(toks, i + 1, end, "(", ")")
        body, k = parse_stmt(toks, close + 1, end)
        return Loop("while", None, (i + 2, close), None, body, t.line), k

    if t.kind == ID and t.text == "do":
        body, k = parse_stmt(toks, i + 1, end)
        if k < end and toks[k].text == "while":
            close = _match_close(toks, k + 1, end, "(", ")")
            semi = _scan_semicolon(toks, close + 1, end)
            return Loop("do", None, (k + 2, close), None, body, t.line), \
                semi + 1
        raise ParseError("do without while")

    if t.kind == ID and t.text == "for":
        close = _match_close(toks, i + 1, end, "(", ")")
        # Range-for: a ':' at paren depth 1 before any top-level ';'.
        depth = 0
        colon = -1
        semis = []
        for k in range(i + 1, close):
            tx = toks[k].text
            if tx in ("(", "{", "["):
                depth += 1
            elif tx in (")", "}", "]"):
                depth -= 1
            elif tx == ";" and depth == 1:
                semis.append(k)
            elif tx == ":" and depth == 1 and colon == -1 and not semis:
                colon = k
        body, k = parse_stmt(toks, close + 1, end)
        if colon != -1:
            return Loop("rangefor", None, (colon + 1, close), None, body,
                        t.line), k
        if len(semis) >= 2:
            return Loop("for", (i + 2, semis[0]),
                        (semis[0] + 1, semis[1]),
                        (semis[1] + 1, close), body, t.line), k
        return Loop("for", None, None, None, body, t.line), k

    if t.kind == ID and t.text == "switch":
        close = _match_close(toks, i + 1, end, "(", ")")
        init, cond = _split_cond(toks, i + 2, close)
        if close + 1 >= end or toks[close + 1].text != "{":
            raise ParseError("switch without {")
        bclose = _match_close(toks, close + 1, end, "{", "}")
        segments, has_default = _parse_switch_body(toks, close + 2, bclose)
        return Switch(init, cond, segments, has_default, t.line), bclose + 1

    if t.kind == ID and t.text == "return":
        semi = _scan_semicolon(toks, i + 1, end)
        return Return(i + 1, semi, t.line), semi + 1

    if t.kind == ID and t.text == "throw":
        semi = _scan_semicolon(toks, i + 1, end)
        return Return(i + 1, semi, t.line, is_throw=True), semi + 1

    if t.kind == ID and t.text in ("break", "continue"):
        return Jump(t.text, t.line), i + 2  # skip the ';'

    if t.kind == ID and t.text == "try":
        body, k = parse_stmt(toks, i + 1, end)
        handlers = []
        while k < end and toks[k].kind == ID and toks[k].text == "catch":
            close = _match_close(toks, k + 1, end, "(", ")")
            h, k = parse_stmt(toks, close + 1, end)
            handlers.append(h)
        return Try(body, handlers), k

    # Plain statement up to the next top-level ';'.
    semi = _scan_semicolon(toks, i, end)
    if semi == i:  # stray closing token: malformed region
        raise ParseError("unexpected " + toks[i].text)
    return Simple(i, semi), semi + 1


def _parse_switch_body(toks, lo, hi):
    """Partitions a switch body into per-label segments (fallthrough is
    modeled by the interpreter: each segment's fall-out feeds the next)."""
    labels = []  # (kw_index, stmt_start, is_default)
    i = lo
    depth = 0
    while i < hi:
        tx = toks[i].text
        if tx in ("(", "{", "["):
            depth += 1
        elif tx in (")", "}", "]"):
            depth -= 1
        elif depth == 0 and toks[i].kind == ID and tx in ("case", "default"):
            j = i + 1
            # the ':' ending the label ('::' is a single token, so the
            # first bare ':' is it)
            while j < hi and toks[j].text != ":":
                j += 1
            labels.append((i, j + 1, tx == "default"))
            i = j
        i += 1
    segments = []
    has_default = False
    for idx, (_, start, is_default) in enumerate(labels):
        seg_end = labels[idx + 1][0] if idx + 1 < len(labels) else hi
        segments.append(parse_block(toks, start, seg_end))
        has_default = has_default or is_default
    return segments, has_default


# ---------------------------------------------------------------------------
# Ownership interpreter
# ---------------------------------------------------------------------------

class OwnershipAnalysis:
    """Runs one function-like body. `skip_spans` are nested lambda bodies
    (absolute token spans) whose tokens must not be interpreted as part of
    this body's control flow."""

    def __init__(self, toks, body_lo, body_hi, entry_state, config,
                 skip_spans=()):
        self.toks = toks
        self.lo = body_lo
        self.hi = body_hi
        self.config = config
        self.skip_spans = sorted(skip_spans)
        self.events: list[FlowEvent] = []
        self._reported: set[tuple[str, str, int]] = set()
        self.entry = dict(entry_state)
        self.failed = False

    def run(self):
        try:
            tree = parse_block(self.toks, self.lo, self.hi)
        except (ParseError, RecursionError):
            self.failed = True
            return self.events
        ctx = _ExecCtx()
        try:
            outs = self._exec(tree, [dict(self.entry)], ctx)
        except RecursionError:
            self.failed = True
            return self.events
        end_line = self.toks[self.hi].line if self.hi < len(self.toks) \
            else (self.toks[-1].line if self.toks else 1)
        for st in outs:
            self._check_exit(st, st.keys(), end_line)
        return self.events

    # -- reporting -----------------------------------------------------------

    def _report(self, kind, var, line):
        k = (kind, var, line)
        if k not in self._reported:
            self._reported.add(k)
            self.events.append(FlowEvent(kind, var, line))

    def _check_exit(self, state, vars_dying, line):
        for v in list(vars_dying):
            if state.get(v) == OWNED:
                self._report("leak", v, line)

    # -- statement dispatch ----------------------------------------------------

    def _exec(self, node, states, ctx):
        """Returns the list of fall-through states. Path-ending constructs
        (return/break/continue) produce none and park their states on ctx."""
        states = _dedup(states)
        if not states:
            return []
        if isinstance(node, Block):
            return self._exec_scope(node.stmts, states, ctx)
        if isinstance(node, Simple):
            return [self._exec_span(node.lo, node.hi, st) for st in states]
        if isinstance(node, If):
            return self._exec_if(node, states, ctx)
        if isinstance(node, Loop):
            return self._exec_loop(node, states, ctx)
        if isinstance(node, Switch):
            return self._exec_switch(node, states, ctx)
        if isinstance(node, Return):
            for st in states:
                self._exec_return(node, st)
            return []
        if isinstance(node, Jump):
            dest = ctx.breaks if node.kind == "break" else ctx.continues
            if dest is None:
                return states  # malformed / jump out of analyzed region
            dest.extend(states)
            return []
        if isinstance(node, Try):
            outs = self._exec(node.body, [dict(s) for s in states], ctx)
            for h in node.handlers:
                if h is not None:
                    outs += self._exec(h, [dict(s) for s in states], ctx)
            return _dedup(outs)
        return states

    def _exec_scope(self, stmts, states, ctx):
        entry_vars = set(states[0].keys()) if states else set()
        for s in stmts:
            states = self._exec(s, states, ctx)
            if not states:
                return []
        last_line = self._last_line(stmts)
        for st in states:
            dying = [v for v in st if v not in entry_vars]
            self._check_exit(st, dying, last_line)
            for v in dying:
                del st[v]
        return _dedup(states)

    def _last_line(self, stmts):
        for s in reversed(stmts):
            for attr in ("hi", "line"):
                v = getattr(s, attr, None)
                if isinstance(v, int):
                    if attr == "hi" and v - 1 < len(self.toks):
                        return self.toks[min(v, len(self.toks) - 1)].line
                    return v
        return self.toks[min(self.hi, len(self.toks) - 1)].line \
            if self.toks else 1

    def _exec_if(self, node, states, ctx):
        outs = []
        for st in states:
            entry_vars = set(st.keys())
            if node.init is not None:
                st = self._exec_span(node.init[0], node.init[1], st)
            declared = self._exec_cond_decl(node.cond, st)
            st = self._exec_span_events_only(node.cond, st,
                                             skip_decl=declared)
            t_st = self._refine(node.cond, dict(st), True, declared)
            f_st = self._refine(node.cond, dict(st), False, declared)
            branch_outs = []
            if t_st is not None and node.then is not None:
                branch_outs += self._exec(node.then, [t_st], ctx)
            elif t_st is not None:
                branch_outs.append(t_st)
            if f_st is not None:
                if node.els is not None:
                    branch_outs += self._exec(node.els, [f_st], ctx)
                else:
                    branch_outs.append(f_st)
            line = node.line
            for out in branch_outs:
                dying = [v for v in out if v not in entry_vars]
                self._check_exit(out, dying, line)
                for v in dying:
                    del out[v]
            outs += branch_outs
        return _dedup(outs)

    def _exec_loop(self, node, states, ctx):
        outs = []
        for st in states:
            entry_vars = set(st.keys())
            if node.init is not None:
                st = self._exec_span(node.init[0], node.init[1], st)
            exits = []
            body_ctx = _ExecCtx(breaks=[], continues=[])

            def once(s):
                """One iteration from state s: returns fall-out states
                (body fall-through + continues, after the step expr)."""
                fall = self._exec(node.body, [s], body_ctx) \
                    if node.body is not None else [s]
                fall = fall + body_ctx.continues
                body_ctx.continues = []
                if node.step is not None:
                    fall = [self._exec_span(node.step[0], node.step[1], f)
                            for f in fall]
                return _dedup(fall)

            def enter(s):
                declared = self._exec_cond_decl(node.cond, s) \
                    if node.cond else None
                s = self._exec_span_events_only(node.cond, s,
                                                skip_decl=declared) \
                    if node.cond else s
                t = self._refine(node.cond, dict(s), True, declared) \
                    if node.cond else dict(s)
                f = self._refine(node.cond, dict(s), False, declared) \
                    if node.cond else None
                return t, f

            if node.kind == "do":
                round1 = once(dict(st))
                for s in round1:
                    t, f = enter(s)
                    if f is not None:
                        exits.append(f)
                    if t is not None:
                        for s2 in once(t):
                            t2, f2 = enter(s2)
                            if f2 is not None:
                                exits.append(f2)
                            # further iterations truncated
            else:
                t0, f0 = enter(dict(st))
                if f0 is not None:
                    exits.append(f0)
                if t0 is not None:
                    for s1 in once(t0):
                        t1, f1 = enter(s1)
                        if f1 is not None:
                            exits.append(f1)
                        if t1 is not None:
                            for s2 in once(t1):
                                _, f2 = enter(s2)
                                if f2 is not None:
                                    exits.append(f2)
            exits += body_ctx.breaks
            line = node.line
            for out in exits:
                dying = [v for v in out if v not in entry_vars]
                self._check_exit(out, dying, line)
                for v in dying:
                    del out[v]
            outs += exits
        return _dedup(outs)

    def _exec_switch(self, node, states, ctx):
        outs = []
        for st in states:
            entry_vars = set(st.keys())
            if node.init is not None:
                st = self._exec_span(node.init[0], node.init[1], st)
            st = self._exec_span_events_only(node.cond, st)
            body_ctx = _ExecCtx(breaks=[], continues=ctx.continues)
            fall = []  # fallthrough from the previous segment
            exits = []
            for seg in node.segments:
                entries = _dedup([dict(st)] + fall)
                fall = self._exec(seg, entries, body_ctx)
            exits += fall + body_ctx.breaks
            # A switch with no default is treated as exhaustive: the repo
            # switches over enum classes under -Wswitch, so the no-match
            # skip path is compiler-excluded dead code and modeling it
            # would flag every all-cases-consume dispatch as a leak.
            if not node.segments:
                exits.append(dict(st))
            line = node.line
            for out in exits:
                dying = [v for v in out if v not in entry_vars]
                self._check_exit(out, dying, line)
                for v in dying:
                    del out[v]
            outs += exits
        return _dedup(outs)

    def _exec_return(self, node, state):
        toks = self.toks
        # `return var;` / `return std::move(var);` hands ownership to the
        # caller — consumption without a double-move complaint for MOVED
        # (that is caught by the inner move pattern already).
        expr = [toks[i] for i in self._span_indices(node.lo, node.hi)]
        names = [t.text for t in expr]
        var = None
        if len(names) == 1 and names[0] in state:
            var = names[0]
        state = self._exec_span(node.lo, node.hi, state)
        if var is not None and state.get(var) in (OWNED, MAYBE, ACCOUNTED):
            state[var] = MOVED
        if not node.is_throw:
            self._check_exit(state, state.keys(), node.line)

    # -- expression-level events ----------------------------------------------

    def _span_indices(self, lo, hi):
        """Token indices in [lo, hi) minus nested-lambda body spans."""
        out = []
        i = lo
        for a, b in self.skip_spans:
            if b <= lo or a >= hi:
                continue
            out.extend(range(i, max(i, a)))
            i = max(i, b)
        out.extend(range(i, hi))
        return out

    def _in_skip(self, i):
        return any(a <= i < b for a, b in self.skip_spans)

    def _exec_span(self, lo, hi, state):
        """Interprets one expression/declaration span: declarations,
        moves, escapes, assignments, resets."""
        state = dict(state)
        toks = self.toks
        decl = self._parse_owned_decl(lo, hi)
        if decl is not None:
            name, init_lo, init_hi = decl
            # events inside the initializer run before the var exists
            self._scan_events(init_lo, init_hi, state)
            state[name] = self._classify_init(init_lo, init_hi, state)
            return state
        self._scan_events(lo, hi, state)
        return state

    def _exec_span_events_only(self, span, state, skip_decl=None):
        state = dict(state)
        if span is None:
            return state
        lo, hi = span
        if skip_decl is not None:
            # condition-declared variable: initializer events only
            name, init_lo, init_hi = skip_decl
            self._scan_events(init_lo, init_hi, state)
            state[name] = self._classify_init(init_lo, init_hi, state)
            return state
        self._scan_events(lo, hi, state)
        return state

    def _exec_cond_decl(self, span, state):
        if span is None:
            return None
        return self._parse_owned_decl(span[0], span[1])

    def _parse_owned_decl(self, lo, hi):
        """Detects `PacketPtr p = init` / `PacketPtr p{init}` /
        `PacketPtr p;` / `auto p = <creator>(...)` at span start. Returns
        (name, init_lo, init_hi) or None."""
        idx = self._span_indices(lo, hi)
        if len(idx) < 2:
            return None
        toks = self.toks
        i = 0
        # optional leading const (const PacketPtr is useless but harmless)
        if toks[idx[i]].text == "const":
            i += 1
        t0 = idx[i] if i < len(idx) else None
        if t0 is None or toks[t0].kind != ID:
            return None
        type_name = toks[t0].text
        is_auto = type_name == "auto"
        if not is_auto and type_name not in self.config.owning_types:
            return None
        j = i + 1
        if j >= len(idx):
            return None
        # reference/pointer declarations are not owning locals
        if toks[idx[j]].text in ("&", "&&", "*"):
            return None
        if toks[idx[j]].kind != ID:
            return None
        name = toks[idx[j]].text
        k = j + 1
        if k >= len(idx):
            return (name, hi, hi) if not is_auto else None
        nxt = toks[idx[k]].text
        if nxt == ";":
            return (name, hi, hi) if not is_auto else None
        if nxt not in ("=", "{", "("):
            return None
        init_lo = idx[k] + 1 if nxt == "=" else idx[k]
        if is_auto:
            # Only an initializer HEADED by a creator call makes an `auto`
            # local owning: `auto p = make_packet(...)` yes,
            # `auto h = std::shared_ptr<Packet>(x.clone().release())` no
            # (the result type is not the owning handle).
            first = None
            for x in self._span_indices(init_lo, hi):
                tk = toks[x]
                if tk.kind == ID and tk.text != "std":
                    first = tk.text
                    break
                if tk.kind != ID and tk.text != "::":
                    break
            if first not in self.config.creator_calls:
                return None
        return (name, init_lo, hi)

    def _classify_init(self, lo, hi, state):
        idx = self._span_indices(lo, hi)
        toks = self.toks
        names = [toks[x].text for x in idx]
        if not names or names == ["nullptr"] or set(names) <= {"{", "}"}:
            return NULL
        if any(c in names for c in self.config.creator_calls):
            return OWNED
        # `= std::move(other)` transfers the source's state
        for k, x in enumerate(idx):
            if toks[x].text == "move" and k + 2 < len(idx) \
                    and toks[idx[k + 1]].text == "(" \
                    and toks[idx[k + 2]].text in state:
                return OWNED if state[toks[idx[k + 2]].text] == OWNED \
                    else MAYBE
        return MAYBE

    def _scan_events(self, lo, hi, state):
        toks = self.toks
        idx = self._span_indices(lo, hi)
        n = len(idx)
        handled = set()  # positions consumed by a multi-token pattern
        for k in range(n):
            if k in handled:
                continue
            i = idx[k]
            t = toks[i]
            if t.kind != ID:
                continue
            nxt = toks[idx[k + 1]] if k + 1 < n else None
            nxt2 = toks[idx[k + 2]] if k + 2 < n else None
            nxt3 = toks[idx[k + 3]] if k + 3 < n else None
            prev = toks[idx[k - 1]] if k > 0 else None

            # std::move(var) / var.release()
            if t.text == "move" and nxt is not None and nxt.text == "(" \
                    and nxt2 is not None and nxt2.text in state \
                    and nxt3 is not None and nxt3.text == ")" \
                    and (prev is None or prev.text not in (".", "->")):
                self._consume(nxt2.text, state, nxt2.line)
                handled.add(k + 2)
                continue
            # account_call(... var ...): the packet's death is recorded on
            # this path — it may now die in place.
            if t.text in self.config.account_calls and nxt is not None \
                    and nxt.text == "(":
                depth = 0
                j = k + 1
                while j < n:
                    tx = toks[idx[j]].text
                    if tx == "(":
                        depth += 1
                    elif tx == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif toks[idx[j]].kind == ID and tx in state \
                            and state[tx] in (OWNED, MAYBE):
                        state[tx] = ACCOUNTED
                    j += 1
                continue
            if t.text not in state:
                continue
            if prev is not None and prev.text in (".", "->", "::"):
                continue  # member of some other entity
            var = t.text
            if nxt is not None and nxt.text == "." and nxt2 is not None:
                if nxt2.text == "release":
                    self._consume(var, state, t.line)
                elif nxt2.text == "reset":
                    # reset() destroys; reset(x) destroys then owns x
                    if state.get(var) == OWNED:
                        self._report("overwrite", var, t.line)
                    has_arg = (k + 4 < n
                               and toks[idx[k + 4]].text != ")")
                    state[var] = MAYBE if has_arg else NULL
                continue
            if nxt is not None and nxt.text == "=":
                if state.get(var) == OWNED:
                    self._report("overwrite", var, t.line)
                rhs_lo = idx[k + 2] if k + 2 < n else hi
                state[var] = self._classify_init(rhs_lo, hi, state)
                continue
            # bare var (or &var) as a whole call argument: the callee may
            # consume it through the reference
            arg_prev = prev
            if arg_prev is not None and arg_prev.text == "&" and k >= 2:
                arg_prev = toks[idx[k - 2]]
            if arg_prev is not None and arg_prev.text in ("(", ",") \
                    and nxt is not None and nxt.text in (",", ")"):
                if state.get(var) in (OWNED, MAYBE):
                    state[var] = MAYBE

    def _consume(self, var, state, line):
        st = state.get(var)
        if st == MOVED:
            self._report("double", var, line)
            state[var] = NULL
        elif st == NULL:
            pass  # moving a definitely-null pointer is a no-op
        else:
            state[var] = MOVED

    # -- condition refinement --------------------------------------------------

    def _refine(self, span, state, branch_true, declared=None):
        """Narrows `state` along one branch of a null-check condition.
        Returns the refined state, or None when the branch is infeasible
        (e.g. the false branch of `if (p)` with p OWNED)."""
        if span is None:
            return state
        toks = self.toks
        idx = [i for i in self._span_indices(span[0], span[1])
               if toks[i].text not in ("(", ")")]
        if declared is not None:
            var = declared[0]
            return self._apply_nullcheck(state, var, branch_true)
        names = [toks[i].text for i in idx]
        if len(names) == 1 and names[0] in state:
            return self._apply_nullcheck(state, names[0], branch_true)
        if len(names) == 2 and names[0] == "!" and names[1] in state:
            return self._apply_nullcheck(state, names[1], not branch_true)
        if len(names) == 3 and names[1] in ("==", "!="):
            var = None
            if names[0] in state and names[2] == "nullptr":
                var = names[0]
            elif names[2] in state and names[0] == "nullptr":
                var = names[2]
            if var is not None:
                nonnull = branch_true if names[1] == "!=" else not branch_true
                return self._apply_nullcheck(state, var, nonnull)
        return state

    def _apply_nullcheck(self, state, var, nonnull):
        st = state.get(var)
        if nonnull:
            if st in (MOVED, NULL):
                return None  # infeasible: definitely empty, branch taken
            if st != ACCOUNTED:
                state[var] = OWNED
            return state
        if st in (OWNED, ACCOUNTED):
            return None  # infeasible: definitely live, branch refuted
        if st == MAYBE:
            state[var] = NULL
        return state


@dataclass
class _ExecCtx:
    breaks: list | None = None
    continues: list | None = None


def _dedup(states):
    seen = set()
    out = []
    for st in states:
        k = frozenset(st.items())
        if k not in seen:
            seen.add(k)
            out.append(st)
            if len(out) >= MAX_STATES:
                break
    return out


# ---------------------------------------------------------------------------
# Function-level driver
# ---------------------------------------------------------------------------

def _param_state(type_text, config):
    """Initial state for a parameter of the given type text, or None when
    the parameter is not an owning local (references, pointers)."""
    words = type_text.split()
    if not any(w in config.owning_types for w in words):
        return None
    if "&&" in words:
        return MAYBE  # caller may pass a moved-from or null handle
    if "&" in words or "*" in words:
        return None
    return OWNED


def _lambda_param_state(toks, body_lo, config):
    """Tracked by-value owning params of the lambda whose body starts at
    body_lo (token index just past '{')."""
    out = {}
    b = body_lo - 1  # at '{'
    k = b - 1
    # skip trailing specifiers / return type tokens back to ')'
    guard = 0
    while k >= 0 and toks[k].text != ")" and guard < 8:
        if toks[k].text == "]":
            return out  # no parameter list
        k -= 1
        guard += 1
    if k < 0 or toks[k].text != ")":
        return out
    depth = 0
    j = k
    while j >= 0:
        if toks[j].text == ")":
            depth += 1
        elif toks[j].text == "(":
            depth -= 1
            if depth == 0:
                break
        j -= 1
    if j < 0:
        return out
    groups = []
    group = []
    d = 0
    for t in toks[j + 1 : k]:
        if t.text in ("(", "<", "[", "{"):
            d += 1
        elif t.text in (")", ">", "]", "}"):
            d -= 1
        if t.text == "," and d == 0:
            groups.append(group)
            group = []
        else:
            group.append(t)
    if group:
        groups.append(group)
    for g in groups:
        ids = [t for t in g if t.kind == ID]
        if len(ids) < 2:
            continue
        type_text = " ".join(t.text for t in g[:-1])
        st = _param_state(type_text, config)
        if st is not None:
            out[ids[-1].text] = st
    return out


def _move_captures(captures, config):
    """Capture-init moves (`[p = std::move(x)]`): the closure owns them."""
    out = {}
    for i, t in enumerate(captures):
        if t.kind == ID and i + 1 < len(captures) \
                and captures[i + 1].text == "=":
            rest = [c.text for c in captures[i + 2 : i + 7]]
            if "move" in rest:
                out[t.text] = OWNED
    return out


def analyze_function(fn, config):
    """Analyzes one FunctionInfo plus its nested lambdas. Returns
    (events, analyzed) — analyzed False when the body failed to parse."""
    toks = fn.file.lexed.tokens
    events = []
    bare = fn.name.split("::")[-1]
    qual = f"{fn.scope.qual_class}::{bare}" if fn.scope.qual_class else bare
    entry = {}
    if bare not in config.sink_functions \
            and qual not in config.sink_functions:
        for name, type_text in fn.params.items():
            st = _param_state(type_text, config)
            if st is not None:
                entry[name] = st
    lam_spans = [lam.body for lam in fn.lambdas]
    a = OwnershipAnalysis(toks, fn.scope.body_start, fn.scope.body_end,
                          entry, config, skip_spans=lam_spans)
    events += a.run()
    analyzed = not a.failed
    for lam in fn.lambdas:
        lo, hi = lam.body
        entry = _lambda_param_state(toks, lo, config)
        entry.update(_move_captures(lam.captures, config))
        if not entry:
            continue
        inner = [s for s in lam_spans
                 if s != (lo, hi) and lo <= s[0] and s[1] <= hi]
        la = OwnershipAnalysis(toks, lo, hi, entry, config,
                               skip_spans=inner)
        events += la.run()
        analyzed = analyzed and not la.failed
    return events, analyzed
