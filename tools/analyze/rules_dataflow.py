"""Dataflow-tier rules: FLOW-01 (packet obligations) and UNIT-01 (time
units). See dataflow.py for the engine and DESIGN.md § Static analysis.

FLOW-01 — static packet-obligation proofs
  Every `PacketPtr` a function creates or receives by value must be moved
  out (deliver/drop/forward/buffer admission/send, a closure, or the
  caller) on every control-flow path. The dataflow engine enumerates
  branch/loop/early-return paths and reports:
    * a path reaching scope end with the packet still definitely owned
      (the static shape of the PR 1 in-flight leak class),
    * a second move of an already-moved packet (double accounting),
    * overwriting a live packet (silent drop with no accounting).
  Configured in roots.toml [FLOW-01]: `owning_types` (move-only handle
  type names), `creator_calls` (factories whose result is a live packet),
  `sink_functions` (bare names of the terminal accounting functions —
  their by-value owning params are allowed to die in the body), and
  `src_prefixes` (where the rule applies). Absent section -> rule skips,
  like the call-graph rules.

UNIT-01 — SimTime unit hygiene
  SimTime is integer nanoseconds with named constructors and unit-bearing
  views; raw numeric literals mixed into that arithmetic are where unit
  bugs live. Four shapes are flagged, per statement, in src/:
    * mixing two different unit views in one additive expression
      (`a.ns() + b.sec()`),
    * scaling a unit view by a power-of-10 literal (`t.ns() / 1000000` —
      that's spelled `t.millis_f()` or a named constructor),
    * adding/subtracting a raw literal to a `.ns()` view (`d.ns() + 1000`
      — 1000 *what*? use `d + SimTime::micros(1)`),
    * passing a floating literal to an integer named constructor
      (`SimTime::millis(0.5)` compiles and silently truncates to zero —
      use `from_millis`/`from_seconds`).
  `exempt_files` (the SimTime implementation itself, which legitimately
  owns the conversion factors) come from roots.toml [UNIT-01].
"""

from __future__ import annotations

from cpplex import ID, NUM
from dataflow import FlowConfig, analyze_function
from registry import Finding, Rule

_FLOW_MESSAGES = {
    "leak": "packet '{var}' can reach scope end still owned on some path "
            "— no deliver/drop/forward/buffer/send accounted for it",
    "double": "packet '{var}' moved out twice on one path "
              "(double terminal accounting)",
    "overwrite": "packet '{var}' overwritten while still owning a live "
                 "packet — silent drop with no accounting",
}


def _flow_config(ctx):
    cfg = (ctx.program.config if ctx.program else {}).get("FLOW-01")
    if cfg is None:
        return None, ()
    return FlowConfig(
        owning_types=tuple(cfg.get("owning_types", ["PacketPtr"])),
        creator_calls=tuple(cfg.get("creator_calls",
                                    ["make_packet", "make_control",
                                     "clone"])),
        sink_functions=tuple(cfg.get("sink_functions", ["drop"])),
        account_calls=tuple(cfg.get("account_calls", [])),
    ), tuple(cfg.get("src_prefixes", ["src/"]))


def check_flow(ctx, unit):
    config, prefixes = _flow_config(ctx)
    if config is None:
        return
    for fn in unit.functions():
        path = fn.file.lexed.path
        if not path.startswith(prefixes):
            continue
        events, _analyzed = analyze_function(fn, config)
        for ev in events:
            yield Finding(
                "FLOW-01", "error", path, ev.line,
                _FLOW_MESSAGES[ev.kind].format(var=ev.var),
                ctx.fingerprint(path, ev.line))


# ---------------------------------------------------------------------------
# UNIT-01
# ---------------------------------------------------------------------------

_VIEWS = {"ns": "ns", "micros_f": "us", "millis_f": "ms", "sec": "s"}
_INT_CTORS = ("nanos", "micros", "millis", "seconds")
_POW10 = {
    "10", "100", "1000", "10000", "100000", "1000000", "10000000",
    "100000000", "1000000000",
}


def _is_pow10(text):
    t = text.replace("'", "").lower()
    if t in _POW10:
        return True
    # scientific / float spellings of the same factors
    try:
        v = float(t)
    except ValueError:
        return False
    if v <= 0:
        return False
    import math
    lg = math.log10(v)
    return abs(lg - round(lg)) < 1e-9 and round(lg) != 0


def _is_float_literal(text):
    t = text.replace("'", "").lower()
    if t.startswith("0x"):
        return False
    return "." in t or ("e" in t and not t.endswith(("f", "l"))) \
        or t.endswith(("f", "l")) and any(c.isdigit() for c in t)


def _unit_config(ctx):
    cfg = (ctx.program.config if ctx.program else {}).get("UNIT-01")
    if cfg is None:
        return None
    return (tuple(cfg.get("src_prefixes", ["src/"])),
            tuple(cfg.get("exempt_files", [])))


def check_units(ctx, unit):
    cfg = _unit_config(ctx)
    if cfg is None:
        return
    prefixes, exempt = cfg
    for model in unit.models:
        path = model.lexed.path
        if not path.startswith(prefixes) or path in exempt:
            continue
        yield from _scan_file(ctx, model.lexed)


def _scan_file(ctx, lexed):
    toks = lexed.tokens
    n = len(toks)
    chunk_start = 0
    i = 0
    while i <= n:
        if i == n or toks[i].text == ";":
            yield from _scan_chunk(ctx, lexed.path, toks, chunk_start, i)
            chunk_start = i + 1
        i += 1


def _view_at(toks, i, n):
    """Unit string when toks[i] is a `.view()` / `->view()` call."""
    t = toks[i]
    if t.kind != ID or t.text not in _VIEWS:
        return None
    if i == 0 or toks[i - 1].text not in (".", "->"):
        return None
    if i + 2 >= n or toks[i + 1].text != "(" or toks[i + 2].text != ")":
        return None
    return _VIEWS[t.text]


def _scan_chunk(ctx, path, toks, lo, hi):
    views = []  # (index, unit) — index of the closing ')' is idx+2
    for i in range(lo, hi):
        u = _view_at(toks, i, hi)
        if u is not None:
            views.append((i, u))

    def f(line, msg):
        return Finding("UNIT-01", "error", path, line, msg,
                       ctx.fingerprint(path, line))

    # U1: two different unit views joined additively.
    for k in range(len(views) - 1):
        i, u1 = views[k]
        j, u2 = views[k + 1]
        if u1 == u2:
            continue
        after = toks[i + 3] if i + 3 < hi else None
        if after is not None and after.text in ("+", "-"):
            yield f(toks[i].line,
                    f"mixed time units in one expression: .{toks[i].text}() "
                    f"({u1}) combined with .{toks[j].text}() ({u2}) — "
                    f"convert to one unit or keep SimTime arithmetic")

    for i, u in views:
        t = toks[i]
        close = i + 2
        nxt = toks[close + 1] if close + 1 < hi else None
        nxt2 = toks[close + 2] if close + 2 < hi else None
        # U2: view scaled by a power-of-10 literal (either side).
        if nxt is not None and nxt.text in ("*", "/") and nxt2 is not None \
                and nxt2.kind == NUM and _is_pow10(nxt2.text):
            yield f(t.line,
                    f".{t.text}() {nxt.text} {nxt2.text}: unit conversion "
                    f"via raw factor — use the SimTime view or named "
                    f"constructor for the target unit")
            continue
        prev3 = toks[i - 3] if i - 3 >= lo else None
        prev4 = toks[i - 4] if i - 4 >= lo else None
        # `1000 * x.view()`: NUM '*' <obj> '.' view — the view token sits
        # at i, '.'/'->' at i-1, the object at i-2, '*' at i-3, NUM at i-4
        if prev3 is not None and prev4 is not None \
                and prev3.text == "*" and prev4.kind == NUM \
                and _is_pow10(prev4.text):
            yield f(t.line,
                    f"{prev4.text} * .{t.text}(): unit conversion via raw "
                    f"factor — use the SimTime view or named constructor "
                    f"for the target unit")
            continue
        # U3: additive raw literal on a .ns() view.
        if u == "ns" and nxt is not None and nxt.text in ("+", "-") \
                and nxt2 is not None and nxt2.kind == NUM \
                and nxt2.text not in ("0", "0.0"):
            yield f(t.line,
                    f".ns() {nxt.text} {nxt2.text}: raw literal added to a "
                    f"nanosecond count — keep SimTime arithmetic "
                    f"(e.g. t + SimTime::micros(...)) so the unit is named")

    # U4: float literal into an integer named constructor.
    for i in range(lo, hi - 4):
        if toks[i].kind == ID and toks[i].text == "SimTime" \
                and toks[i + 1].text == "::" \
                and toks[i + 2].kind == ID \
                and toks[i + 2].text in _INT_CTORS \
                and toks[i + 3].text == "(" \
                and toks[i + 4].kind == NUM \
                and _is_float_literal(toks[i + 4].text):
            yield f(toks[i].line,
                    f"SimTime::{toks[i + 2].text}({toks[i + 4].text}) "
                    f"truncates the fraction silently (integer parameter) "
                    f"— use SimTime::from_millis/from_seconds")


def register(registry):
    registry.add(Rule("FLOW-01", "error",
                      "every PacketPtr path ends in exactly one terminal "
                      "accounting call (static packet-obligation proof)",
                      check_unit=check_flow))
    registry.add(Rule("UNIT-01", "error",
                      "no raw-literal unit conversion or unit mixing in "
                      "SimTime arithmetic",
                      check_unit=check_units))
