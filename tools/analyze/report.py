"""Output backends for fhmip_analyze: text (one line per finding, the
format fhmip_lint used) and SARIF-lite JSON for the CI artifact."""

from __future__ import annotations

import json
from pathlib import Path


def print_text(findings, stale, num_files, out):
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for f in sorted(active, key=lambda f: (f.path, f.line, f.rule_id)):
        print(f"{f.path}:{f.line}: [{f.rule_id}] {f.severity}: {f.message}",
              file=out)
        if f.path_trace:
            print(f"    reachable via: {' -> '.join(f.path_trace)}",
                  file=out)
    for e in stale:
        print(f"{e.rule_id}  {e.path}  {e.fingerprint}: stale baseline "
              f"entry (line {e.lineno}) — no current finding matches; "
              f"remove it", file=out)
    print(f"fhmip_analyze: {num_files} files, {len(active)} finding(s), "
          f"{len(suppressed)} suppressed, {len(stale)} stale baseline "
          f"entr{'y' if len(stale) == 1 else 'ies'}", file=out)


def write_sarif_per_tier(outdir: Path, findings, stale, registry):
    """One SARIF file per analysis tier (lint/semantic/callgraph/dataflow)
    under `outdir`, so CI can upload tier-scoped artifacts. Findings and
    stale entries are bucketed by their rule's tier; rules whose module
    didn't declare one land in 'other'."""
    outdir.mkdir(parents=True, exist_ok=True)
    tier_of = {r.rule_id: (r.tier or "other") for r in registry.rules}
    tiers = sorted({t for t in tier_of.values()})
    for tier in tiers:
        fs = [f for f in findings if tier_of.get(f.rule_id) == tier]
        es = [e for e in stale if tier_of.get(e.rule_id) == tier]
        sub = type(registry)()
        for r in registry.rules:
            if (r.tier or "other") == tier:
                sub.rules.append(r)
        write_sarif(outdir / f"analyze-{tier}.sarif", fs, es, sub)


def write_sarif(path: Path, findings, stale, registry):
    """SARIF-lite: the subset of SARIF 2.1.0 that CI artifact viewers and
    jq one-liners actually consume."""
    results = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule_id)):
        r = {
            "ruleId": f.rule_id,
            "level": "warning" if f.severity == "warning" else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line},
                }
            }],
            "fingerprints": {"fhmipLine/v1": f.fingerprint},
        }
        if f.path_trace:
            # Reachability evidence: root -> ... -> finding, one codeFlow
            # location per hop (SARIF codeFlows subset).
            r["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [{
                        "location": {"message": {"text": hop}}
                    } for hop in f.path_trace]
                }]
            }]
        if f.suppressed:
            r["suppressions"] = [{
                "kind": "inSource" if f.suppressed == "nolint" else "external",
            }]
        results.append(r)
    for e in stale:
        results.append({
            "ruleId": "stale-baseline",
            "level": "error",
            "message": {"text": f"stale baseline entry for {e.rule_id} "
                                f"{e.path} {e.fingerprint}: no current "
                                f"finding matches"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": "tools/analyze/baseline.txt"},
                    "region": {"startLine": e.lineno},
                }
            }],
        })
    doc = {
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "fhmip_analyze",
                    "informationUri":
                        "tools/analyze/fhmip_analyze.py",
                    "rules": [{
                        "id": r.rule_id,
                        "shortDescription": {"text": r.description},
                        "defaultConfiguration": {"level": r.severity},
                    } for r in registry.rules],
                }
            },
            "results": results,
        }],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
