"""PROTO-02: spec-driven FMIPv6/buffer-message conformance.

protocol.toml is the machine-readable catalogue of the control-plane
choreography: every alternative of the packet `MessageVariant` is either
a catalogued `[[message]]` carrying its reliability contract, or an
`[[exempt]]` entry with a reason. For each catalogued message the rule
cross-checks the extracted program model against the contract's quad:

  1. a receiver exists (`std::get_if<X>` / `holds_alternative<X>` in the
     protocol sources),
  2. the receiver is duplicate-safe: either the declared `dedup` state
     tokens (sequence caches, dup counters) appear in a unit that also
     handles X, or the entry carries an `idempotent` justification,
  3. a send site exists — a function that constructs X and reaches a
     send-family call — and, for `role = "request"`, at least one sending
     class carries a retransmission-timer guard (PROTO-01's idiom: the
     per-message invariant here is "someone can retransmit this", while
     PROTO-01 separately flags each unguarded sender),
  4. the wire name is rendered by the trace name function and the message
     has a fault-matrix row (`row`, checked against the matrix source) or
     an explicit `row_waiver` reason.

Adding a new message type to the variant without cataloguing it, or
cataloguing it without the quad, fails CI. Entries naming structs that no
longer exist go stale loudly. Findings anchor at the struct definition in
the variant header so the fix site is one click away.

The catalogue path comes from `--protocol` (default
tools/analyze/protocol.toml); with no catalogue present the rule skips,
like the call-graph rules with no roots.toml.

String-valued evidence (wire names, matrix row labels) is checked against
the *raw* file text: the analyzer's lexer blanks string-literal contents,
so quoted names are invisible in token streams by design.
"""

from __future__ import annotations

from cpplex import ID
from registry import Finding, Rule

_RECEIVER_FNS = ("get_if", "holds_alternative")


def _variant_alternatives(lexed, variant_name):
    """Parses `using <variant> = std::variant<A, B, ...>` out of a token
    stream. Returns (alternatives in order, line of the using-decl), or
    ([], 0) when not found."""
    toks = lexed.tokens
    n = len(toks)
    for i in range(n - 2):
        if not (toks[i].kind == ID and toks[i].text == variant_name
                and toks[i + 1].text == "="):
            continue
        j = i + 2
        while j < n and toks[j].text != "<":
            if toks[j].text == ";":
                break
            j += 1
        if j >= n or toks[j].text != "<":
            continue
        depth = 0
        group: list[str] = []
        alts: list[str] = []

        def flush():
            ids = [x for x in group if x not in ("std", "::")]
            if ids:
                alts.append(ids[-1])
            group.clear()

        k = j
        while k < n:
            tx = toks[k].text
            if tx == "<":
                depth += 1
            elif tx == ">":
                depth -= 1
                if depth == 0:
                    flush()
                    return alts, toks[i].line
            elif tx == "," and depth == 1:
                flush()
            elif toks[k].kind == ID or tx == "::":
                group.append(toks[k].text)
            k += 1
        break
    return [], 0


def _struct_lines(lexed):
    """struct/class name -> definition line."""
    out = {}
    toks = lexed.tokens
    for i in range(len(toks) - 1):
        if toks[i].kind == ID and toks[i].text in ("struct", "class") \
                and toks[i + 1].kind == ID:
            out.setdefault(toks[i + 1].text, toks[i].line)
    return out


def _receiver_units(program, dirs, names):
    """name -> list of units whose token streams contain a
    get_if<name>/holds_alternative<name> receiver site."""
    found = {n: [] for n in names}
    for unit in program.units:
        models = [m for m in unit.models
                  if m.lexed.path.startswith(dirs)]
        if not models:
            continue
        hit = set()
        for m in models:
            toks = m.lexed.tokens
            for i in range(len(toks) - 2):
                if toks[i].kind == ID and toks[i].text in _RECEIVER_FNS \
                        and toks[i + 1].text == "<" \
                        and toks[i + 2].text in found:
                    hit.add(toks[i + 2].text)
        for n in hit:
            found[n].append(unit)
    return found


def _unit_has_tokens(unit, tokens):
    """True when every token in `tokens` appears somewhere in the unit
    (header or source) as an identifier."""
    missing = set(tokens)
    for m in unit.models:
        if not missing:
            break
        for t in m.lexed.tokens:
            if t.kind == ID and t.text in missing:
                missing.discard(t.text)
                if not missing:
                    break
    return not missing


def _send_sites(program, dirs, names, send_calls):
    """name -> list of (node, first send-site line) for functions that
    construct the message (PROTO-01's construction idiom: the type name
    followed by a declarator or braced temporary) and reach a send call."""
    out = {n: [] for n in names}
    for node in program.nodes:
        if not node.path.startswith(dirs):
            continue
        fn = node.fn
        toks = fn.file.lexed.tokens
        lo, hi = fn.scope.body_start, fn.scope.body_end
        constructed = set()
        for i in range(lo, hi):
            t = toks[i]
            if t.kind != ID or t.text not in out:
                continue
            nxt = toks[i + 1] if i + 1 < hi else None
            if nxt is not None and (nxt.kind == ID or nxt.text == "{"):
                constructed.add(t.text)
        if not constructed:
            continue
        sends = [s for s in node.sites if s.name in send_calls]
        if not sends:
            continue
        for n in constructed:
            out[n].append((node, sends[0].line))
    return out


def check_proto02(ctx, program):
    spec = getattr(ctx, "protocol", None)
    if not spec:
        return
    spec_path = getattr(ctx, "protocol_path", "protocol.toml")
    meta = spec.get("meta", {})
    variant_name = meta.get("variant", "MessageVariant")
    variant_file = meta.get("variant_file", "")
    name_fn_file = meta.get("name_fn_file", "")
    matrix_file = meta.get("fault_matrix_file", "")
    send_calls = set(meta.get("send_calls", ["send"]))
    guard_tokens = set(meta.get("guard_tokens", ["arm"]))
    dirs = tuple(d.rstrip("/") + "/" for d in meta.get("dirs", ["src/"]))
    messages = spec.get("message", [])
    exempt = spec.get("exempt", [])

    def cfg_finding(msg):
        return Finding("PROTO-02", "error", spec_path, 1, msg,
                       ctx.fingerprint(spec_path, 1)
                       if (ctx.root / spec_path).exists() else "")

    # -- meta files must exist -------------------------------------------
    ok = True
    for key, rel in (("variant_file", variant_file),
                     ("name_fn_file", name_fn_file),
                     ("fault_matrix_file", matrix_file)):
        if not rel or not (ctx.root / rel).exists():
            yield cfg_finding(f"[meta] {key} = '{rel}' does not exist — "
                              f"fix the catalogue after the move")
            ok = False
    if not ok:
        return

    lexed = ctx.lexed(variant_file)
    alts, variant_line = _variant_alternatives(lexed, variant_name)
    if not alts:
        yield cfg_finding(f"[meta] variant '{variant_name}' not found in "
                          f"{variant_file}")
        return
    struct_lines = _struct_lines(lexed)

    def anchor(struct, msg):
        line = struct_lines.get(struct, variant_line)
        return Finding("PROTO-02", "error", variant_file, line, msg,
                       ctx.fingerprint(variant_file, line))

    catalogued = {m.get("struct", ""): m for m in messages}
    exempt_by = {e.get("struct", ""): e for e in exempt}

    # -- coverage: every alternative is catalogued or exempt -------------
    for a in alts:
        if a == "monostate":
            continue
        if a in catalogued and a in exempt_by:
            yield cfg_finding(f"{a} is both [[message]] and [[exempt]] — "
                              f"pick one")
        if a not in catalogued and a not in exempt_by:
            yield anchor(a, f"message type {a} is in {variant_name} but not "
                            f"catalogued in {spec_path} — add a [[message]] "
                            f"entry with its reliability contract (send "
                            f"guard, dedup, wire name, fault-matrix row) "
                            f"or an [[exempt]] entry with a reason")
    # -- staleness -------------------------------------------------------
    alt_set = set(alts)
    for name in list(catalogued) + list(exempt_by):
        if name and name not in alt_set:
            yield cfg_finding(f"catalogue entry '{name}' names no "
                              f"{variant_name} alternative — stale after a "
                              f"rename; update {spec_path}")
    for e in exempt:
        if not e.get("reason"):
            yield cfg_finding(f"[[exempt]] {e.get('struct', '?')} has no "
                              f"reason — exemptions must be justified")

    live = {n: m for n, m in catalogued.items() if n in alt_set}
    receivers = _receiver_units(program, dirs, set(live))
    senders = _send_sites(program, dirs, set(live), send_calls)
    name_fn_text = ctx.raw_text(name_fn_file)
    matrix_text = ctx.raw_text(matrix_file)
    # Local import: the guard walker is PROTO-01's, reused verbatim so the
    # two rules can never disagree about what "guarded" means.
    from rules_callgraph import _class_has_guard

    request_names = {n for n, m in live.items()
                     if m.get("role") == "request"}
    for name, m in sorted(live.items()):
        role = m.get("role", "")
        if role not in ("request", "response"):
            yield cfg_finding(f"[[message]] {name}: role must be 'request' "
                              f"or 'response', got '{role}'")
            continue
        # 1. receiver exists
        units = receivers.get(name, [])
        if not units:
            yield anchor(name, f"{name} has no receiver: no "
                               f"get_if<{name}>/holds_alternative<{name}> "
                               f"under {'/'.join(d.rstrip('/') for d in dirs)}"
                               f" — an unhandled control message is a "
                               f"silent packet drop")
        # 2. duplicate-safety evidence
        dedup = list(m.get("dedup", []))
        idem = m.get("idempotent", "")
        if dedup and units:
            if not any(_unit_has_tokens(u, dedup) for u in units):
                yield anchor(name,
                             f"{name}: declared dedup state "
                             f"({', '.join(dedup)}) not found in any unit "
                             f"that handles {name} — the receiver is not "
                             f"provably duplicate-safe; update the entry "
                             f"or restore the sequence cache")
        elif not dedup and not idem:
            yield anchor(name,
                         f"{name} declares neither dedup state tokens nor "
                         f"an idempotent justification — retransmissions "
                         f"would replay its side effects")
        # 3. send site + retransmission guard
        sites = senders.get(name, [])
        if not sites:
            yield anchor(name,
                         f"{name} is never constructed and handed to a "
                         f"send-family call ({', '.join(sorted(send_calls))})"
                         f" under {'/'.join(d.rstrip('/') for d in dirs)} — "
                         f"catalogued messages must have a sender")
        elif role == "request":
            classes = sorted({n.cls for n, _ in sites if n.cls})
            if not any(_class_has_guard(program, c, guard_tokens)
                       for c in classes):
                yield anchor(name,
                             f"request {name} is sent by "
                             f"{', '.join(classes) or 'free functions'} but "
                             f"no sending class has a retransmission-timer "
                             f"guard ({'/'.join(sorted(guard_tokens))}) — a "
                             f"lost {name} stalls the handover choreography")
        if role == "response":
            re_by = m.get("reelicited_by", "")
            if re_by not in request_names:
                yield anchor(name,
                             f"response {name}: reelicited_by = '{re_by}' "
                             f"names no catalogued request — a response's "
                             f"loss story is its request's retransmission")
        # 4. wire name + fault-matrix row
        wire = m.get("wire", "")
        if not wire or f'"{wire}"' not in name_fn_text:
            yield anchor(name,
                         f"{name}: wire name '{wire}' is not rendered by "
                         f"{name_fn_file} — traces and the fault matrix "
                         f"address messages by this string")
        row = m.get("row", "")
        waiver = m.get("row_waiver", "")
        if row:
            if f'"{row}"' not in matrix_text:
                yield anchor(name,
                             f"{name}: fault-matrix row '{row}' not found "
                             f"in {matrix_file} — every catalogued message "
                             f"must be exercised by the single-fault matrix")
        elif not waiver:
            yield anchor(name,
                         f"{name} has no fault-matrix row and no "
                         f"row_waiver — add the matrix cells or justify "
                         f"their absence")


def register(registry):
    registry.add(Rule("PROTO-02", "error",
                      "every MessageVariant alternative is catalogued in "
                      "protocol.toml with its reliability quad (guarded "
                      "send, dedup'd receiver, wire name, fault-matrix row)",
                      check_program=check_proto02))
