"""Whole-program call graph for fhmip_analyze.

Builds, from the per-unit symbol models (cppmodel), a repo-wide call
graph: every function/method definition becomes a node; call sites are
extracted from body token streams and resolved by name + arity, narrowed
by receiver type where the model knows it (locals, params, fields,
`using` aliases like PacketPtr -> Packet). Resolution is deliberately
conservative:

  * a call through a receiver whose type resolves to a program class goes
    to that class's methods; if any program class declares the method
    virtual, the edge fans out to every program method of that name
    (interface dispatch is over-approximated, never missed);
  * a member call whose receiver type is unknown (chained calls, opaque
    expressions) fans out to every program method of that name;
  * an unqualified call resolves to the enclosing class's method, else to
    free functions of that name, else is treated as external (std::);
  * std::function invocations are NOT edges — but lambda bodies are
    attributed to the function that wrote the lambda, so allocations in a
    callback are charged to its creation site. Callbacks installed by
    setup code and invoked on a hot path are the known under-
    approximation; roots.toml can add the installee as an extra root.

Reachability queries run BFS from declared root sets (roots.toml) and
keep parent pointers so every finding can print its root -> ... -> sink
path. The graph also carries the mutable-global inventory (namespace-
scope variables, function-local statics, class-static fields) that
CONC-01 checks against sweep-closure reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpplex import ID

# Identifier tokens that look like calls but never are.
_NOT_CALLS = {
    "if", "while", "for", "switch", "return", "catch", "sizeof", "alignof",
    "decltype", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "static_assert", "throw", "new", "delete", "defined",
    "noexcept", "assert", "typeid", "co_await", "co_return", "operator",
}

# std:: container/vocabulary types: a receiver of one of these is an
# external call (no program edge), but PERF-01 inspects the type text.
_STD_CONTAINERS = {
    "vector", "map", "unordered_map", "set", "unordered_set", "multimap",
    "deque", "list", "array", "string", "basic_string", "queue",
    "priority_queue", "stack", "optional", "variant", "span", "pair",
    "tuple", "function", "bitset", "initializer_list", "string_view",
    "ostringstream", "istringstream", "stringstream",
}
# Wrappers we look *through* to find the pointee/wrapped class.
_TYPE_WRAPPERS = {
    "std", "const", "static", "mutable", "volatile", "inline", "typename",
    "struct", "class", "unique_ptr", "shared_ptr", "weak_ptr",
    "reference_wrapper", "not_null", "atomic",
}

_SYNC_TYPE_WORDS = ("atomic", "mutex", "thread_local", "once_flag",
                    "condition_variable", "atomic_flag", "latch", "barrier")

_NS_STMT_SKIP = {
    "using", "typedef", "template", "friend", "static_assert", "extern",
    "namespace", "enum", "class", "struct", "union", "public", "private",
    "protected", "operator", "asm",
}


@dataclass
class CallSite:
    name: str
    arity: int
    kind: str  # plain | class | unknown-recv | container | external
    recv_class: str = ""  # for kind == class
    recv_type: str = ""  # declared type text of the receiver, if known
    recv_name: str = ""  # receiver identifier, if a plain name
    line: int = 0
    tok_index: int = 0
    has_lambda_arg: bool = False


@dataclass
class FuncNode:
    idx: int
    fn: object  # cppmodel.FunctionInfo
    unit: object
    cls: str  # owner class name or ""
    sites: list[CallSite] = field(default_factory=list)
    targets: list[int] = field(default_factory=list)  # resolved node idxs

    @property
    def name(self) -> str:
        return self.fn.name

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.fn.name}" if self.cls else self.fn.name

    @property
    def path(self) -> str:
        return self.fn.file.lexed.path

    @property
    def line(self) -> int:
        return self.fn.line


@dataclass
class GlobalVar:
    name: str
    type_text: str
    path: str
    line: int
    kind: str  # namespace-scope | local-static | class-static
    owner: str = ""  # defining function/class qual, for statics

    def is_protected(self) -> bool:
        low = self.type_text
        return any(w in low for w in _SYNC_TYPE_WORDS)


@dataclass
class ReachResult:
    """BFS result for one root set: reached node idx -> parent idx (or -1
    for a root), plus the root name each reached node traces back to."""

    parents: dict[int, int]
    root_name: dict[int, str]
    unmatched_roots: list[str]

    def __contains__(self, idx: int) -> bool:
        return idx in self.parents

    def path(self, program: "Program", idx: int) -> list[str]:
        chain = []
        cur = idx
        seen = set()
        while cur != -1 and cur not in seen:
            seen.add(cur)
            chain.append(program.nodes[cur].qual)
            cur = self.parents.get(cur, -1)
        return list(reversed(chain))


class Program:
    """All units merged: nodes, indices, resolved edges, global-variable
    inventory, `using` aliases, and cached reachability queries."""

    def __init__(self, units, config: dict | None = None):
        self.units = units
        self.config = config or {}
        self.nodes: list[FuncNode] = []
        self.free: dict[str, list[FuncNode]] = {}
        self.methods: dict[str, list[FuncNode]] = {}
        self.by_class: dict[tuple[str, str], list[FuncNode]] = {}
        self.class_names: set[str] = set()
        self.class_fields: dict[str, dict[str, str]] = {}
        self.class_methods: dict[str, list[FuncNode]] = {}
        self.virtual_names: set[str] = set()
        self.aliases: dict[str, str] = {}  # alias -> program class
        self.alias_text: dict[str, str] = {}  # alias -> full rhs text
        self.globals: list[GlobalVar] = []
        self._by_fn: dict[int, FuncNode] = {}
        self._reach_cache: dict[tuple, ReachResult] = {}
        self._collect_symbols()
        self._collect_aliases()
        self._collect_globals()
        self._extract_sites()
        self._resolve_edges()

    # -- construction --------------------------------------------------------

    def _collect_symbols(self):
        for unit in self.units:
            for m in unit.models:
                for cname, ci in m.classes.items():
                    if ci.scope is None and not ci.fields and not ci.decls:
                        continue  # phantom class seen only via X::f
                    self.class_names.add(cname)
                    self.class_fields.setdefault(cname, {}).update(ci.fields)
                    for d in ci.decls:
                        if d.is_virtual:
                            self.virtual_names.add(d.name)
            for fn in unit.functions():
                owner = getattr(fn, "owner", None)
                cls = owner.name if owner is not None else ""
                node = FuncNode(len(self.nodes), fn, unit, cls)
                self.nodes.append(node)
                self._by_fn[id(fn)] = node
                if cls:
                    self.class_names.add(cls)
                    self.methods.setdefault(fn.name, []).append(node)
                    self.by_class.setdefault((cls, fn.name), []).append(node)
                    self.class_methods.setdefault(cls, []).append(node)
                    if getattr(fn.scope, "is_virtual", False):
                        self.virtual_names.add(fn.name)
                else:
                    self.free.setdefault(fn.name, []).append(node)

    def _collect_aliases(self):
        for unit in self.units:
            for m in unit.models:
                toks = m.lexed.tokens
                n = len(toks)
                for i, t in enumerate(toks):
                    if t.kind != ID or t.text != "using" or i + 2 >= n:
                        continue
                    if toks[i + 1].kind != ID or toks[i + 2].text != "=":
                        continue
                    name = toks[i + 1].text
                    j = i + 3
                    rhs = []
                    while j < n and toks[j].text != ";":
                        rhs.append(toks[j].text)
                        j += 1
                    text = " ".join(rhs)
                    self.alias_text.setdefault(name, text)
        # Resolve alias -> class through wrappers (PacketPtr -> Packet).
        for name, text in self.alias_text.items():
            cls = self._scan_type_words(text)
            if cls:
                self.aliases[name] = cls

    def _scan_type_words(self, type_text: str) -> str:
        for sep in ("<", ">", "::", "*", "&", ",", "(", ")"):
            type_text = type_text.replace(sep, " ")
        for w in type_text.split():
            if w in self.class_names:
                return w
            if w in self.aliases:
                return self.aliases[w]
            if w in _TYPE_WRAPPERS:
                continue
            if w in _STD_CONTAINERS:
                return ""  # std container receiver: external
            # unknown word (size_t, int, ...): keep scanning
        return ""

    def type_class(self, type_text: str) -> str:
        """Program class a declared type ultimately designates, looking
        through aliases, smart pointers and cv-qualifiers; "" when the
        type is external or a std container."""
        if not type_text:
            return ""
        first = type_text.split()[0] if type_text.split() else ""
        if first in self.aliases:
            return self.aliases[first]
        return self._scan_type_words(type_text)

    def expanded_type(self, type_text: str) -> str:
        """Type text with a leading single-word alias expanded, so
        container probes see through e.g. `using Grid = std::vector<Job>`."""
        words = type_text.split()
        if words and words[0] in self.alias_text:
            return self.alias_text[words[0]] + " " + " ".join(words[1:])
        return type_text

    # -- globals (CONC-01 inventory) -----------------------------------------

    def _collect_globals(self):
        for unit in self.units:
            for m in unit.models:
                self._scan_ns_scope(m, m.root)
                for cname, ci in m.classes.items():
                    for fname, ftype in ci.fields.items():
                        w = ftype.split()
                        if "static" in w and "const" not in w \
                                and "constexpr" not in w:
                            self.globals.append(GlobalVar(
                                fname, ftype, m.lexed.path,
                                ci.field_lines.get(fname, 1),
                                "class-static", cname))
        for node in self.nodes:
            self._scan_local_statics(node)

    def _scan_ns_scope(self, model, scope):
        if scope.kind not in ("namespace", "block") or scope.name not in (
                "", "<file>") and scope.kind == "block":
            return
        toks = model.lexed.tokens
        spans = sorted((c.head_start, c.body_end) for c in scope.children)
        i = scope.body_start
        stmt = []
        si = 0
        while i < scope.body_end:
            while si < len(spans) and spans[si][1] < i:
                si += 1
            if si < len(spans) and spans[si][0] <= i <= spans[si][1]:
                i = spans[si][1] + 1
                stmt = []
                continue
            t = toks[i]
            if t.text == ";":
                self._record_ns_stmt(model, stmt)
                stmt = []
            else:
                stmt.append(t)
            i += 1
        for c in scope.children:
            if c.kind == "namespace":
                self._scan_ns_scope(model, c)

    def _record_ns_stmt(self, model, stmt):
        while stmt and stmt[0].text in ("inline", "static", "thread_local",
                                        "constinit", "__extension__",
                                        "__attribute__"):
            stmt = stmt[1:]
        if not stmt or stmt[0].kind != ID or stmt[0].text in _NS_STMT_SKIP:
            return
        words = [t.text for t in stmt]
        if "const" in words or "constexpr" in words or "typedef" in words \
                or "using" in words:
            return
        # Function declaration, not a variable: '(' before any initializer.
        for t in stmt:
            if t.text == "(":
                return
            if t.text in ("=", "{"):
                break
        from cppmodel import _parse_decl
        d = _parse_decl(stmt)
        if d is None:
            return
        name, ttype, line = d
        self.globals.append(GlobalVar(name, ttype, model.lexed.path, line,
                                      "namespace-scope"))

    def _scan_local_statics(self, node):
        fn = node.fn
        toks = fn.file.lexed.tokens
        i = fn.scope.body_start
        end = fn.scope.body_end
        stmt = []
        while i < end:
            t = toks[i]
            if t.text in (";", "{", "}"):
                if stmt and stmt[0].text in ("static", "thread_local") \
                        and len(stmt) > 1:
                    words = [s.text for s in stmt]
                    if "const" not in words and "constexpr" not in words \
                            and "thread_local" not in words[:1]:
                        from cppmodel import _parse_decl
                        d = _parse_decl(stmt[1:])
                        if d is not None and "(" not in words[:words.index(
                                d[0]) if d[0] in words else len(words)]:
                            self.globals.append(GlobalVar(
                                d[0], "static " + d[1], node.path, d[2],
                                "local-static", node.qual))
                stmt = []
            else:
                stmt.append(t)
            i += 1

    # -- call sites ----------------------------------------------------------

    def _extract_sites(self):
        for node in self.nodes:
            fn = node.fn
            toks = fn.file.lexed.tokens
            lo, hi = fn.scope.body_start, fn.scope.body_end
            i = lo
            while i < hi:
                t = toks[i]
                if t.kind != ID or t.text in _NOT_CALLS:
                    i += 1
                    continue
                lp = -1
                if i + 1 < hi and toks[i + 1].text == "(":
                    lp = i + 1
                elif i + 1 < hi and toks[i + 1].text == "<":
                    # templated call: name<...>( — bounded balanced scan.
                    depth, j = 1, i + 2
                    limit = min(hi, i + 64)
                    while j < limit and depth > 0:
                        tx = toks[j].text
                        if tx == "<":
                            depth += 1
                        elif tx == ">":
                            depth -= 1
                        elif tx == ">>":
                            depth -= 2
                        elif tx in (";", "{", "}"):
                            break
                        j += 1
                    if depth <= 0 and j < hi and toks[j].text == "(":
                        lp = j
                if lp == -1:
                    i += 1
                    continue
                close = self._match_paren(toks, lp, hi)
                if close == -1:
                    i += 1
                    continue
                arity, has_lambda = self._scan_args(toks, lp, close)
                site = CallSite(t.text, arity, "plain", line=t.line,
                                tok_index=i, has_lambda_arg=has_lambda)
                prev = toks[i - 1] if i > 0 else None
                if prev is not None and prev.text in (".", "->"):
                    base = toks[i - 2] if i >= 2 else None
                    if base is not None and base.text == "this":
                        site.kind = "class"
                        site.recv_class = node.cls
                    elif base is not None and base.kind == ID:
                        site.recv_name = base.text
                        ty = self._entity_type(node, base.text)
                        site.recv_type = ty
                        cls = self.type_class(ty)
                        if cls:
                            site.kind = "class"
                            site.recv_class = cls
                        elif ty:
                            exp = self.expanded_type(ty)
                            if any(c in exp.split() or c + " <" in exp
                                   or c + "<" in exp
                                   for c in _STD_CONTAINERS):
                                site.kind = "container"
                            else:
                                site.kind = "unknown-recv"
                        else:
                            site.kind = "unknown-recv"
                    else:
                        site.kind = "unknown-recv"
                elif prev is not None and prev.text == "::":
                    qual = toks[i - 2].text if i >= 2 else ""
                    if qual in self.class_names:
                        site.kind = "class"
                        site.recv_class = qual
                    else:
                        site.kind = "external"
                node.sites.append(site)
                i += 1

    @staticmethod
    def _match_paren(toks, lp, hi):
        depth = 0
        j = lp
        while j < hi:
            if toks[j].text == "(":
                depth += 1
            elif toks[j].text == ")":
                depth -= 1
                if depth == 0:
                    return j
            j += 1
        return -1

    @staticmethod
    def _scan_args(toks, lp, close):
        if close == lp + 1:
            return 0, False
        depth = 0
        commas = 0
        has_lambda = False
        for j in range(lp, close):
            tx = toks[j].text
            if tx in ("(", "[", "{"):
                depth += 1
            elif tx in (")", "]", "}"):
                depth -= 1
            elif tx == "," and depth == 1:
                commas += 1
            if tx == "[" and j > lp and toks[j - 1].text in ("(", ","):
                has_lambda = True
        return commas + 1, has_lambda

    def _entity_type(self, node, name: str) -> str:
        fn = node.fn
        if name in fn.locals:
            return fn.locals[name]
        if name in fn.params:
            return fn.params[name]
        if node.cls:
            fields = self.class_fields.get(node.cls, {})
            if name in fields:
                return fields[name]
        return ""

    # -- resolution ----------------------------------------------------------

    def _resolve_edges(self):
        for node in self.nodes:
            out = set()
            for site in node.sites:
                for tgt in self.resolve_site(node, site):
                    out.add(tgt.idx)
            node.targets = sorted(out)

    def resolve_site(self, node, site) -> list[FuncNode]:
        name = site.name
        if site.kind == "external" or site.kind == "container":
            return []
        if site.kind == "class":
            cands = list(self.by_class.get((site.recv_class, name), []))
            if name in self.virtual_names:
                have = {c.idx for c in cands}
                cands += [c for c in self.methods.get(name, [])
                          if c.idx not in have]
            if cands:
                return self._arity_filter(cands, site)
            # Unmodeled base class: fall back to any method of that name.
            return self._arity_filter(self.methods.get(name, []), site)
        if site.kind == "unknown-recv":
            return self._arity_filter(self.methods.get(name, []), site)
        # plain: own class first, then free functions, else external.
        if node.cls:
            cands = self.by_class.get((node.cls, name), [])
            if cands:
                return self._arity_filter(cands, site)
        cands = self.free.get(name, [])
        if cands:
            return self._arity_filter(cands, site)
        return []

    @staticmethod
    def _arity_filter(cands, site):
        kept = [c for c in cands
                if c.fn.n_params - c.fn.n_defaults <= site.arity
                <= c.fn.n_params]
        # Param parsing is heuristic; when the filter empties the set keep
        # everything rather than silently dropping an edge.
        return kept if kept else list(cands)

    # -- reachability --------------------------------------------------------

    def node_for(self, fn) -> FuncNode | None:
        """The graph node wrapping a cppmodel FunctionInfo, if any."""
        return self._by_fn.get(id(fn))

    def lookup(self, qual: str) -> list[FuncNode]:
        """Root-set name resolution: `Cls::name` or a bare free-function /
        method name."""
        if "::" in qual:
            cls, name = qual.split("::", 1)
            return list(self.by_class.get((cls, name), []))
        return list(self.free.get(qual, [])) or \
            list(self.methods.get(qual, []))

    def reach(self, root_names: list[str]) -> ReachResult:
        key = tuple(root_names)
        if key in self._reach_cache:
            return self._reach_cache[key]
        parents: dict[int, int] = {}
        root_of: dict[int, str] = {}
        unmatched: list[str] = []
        queue: list[int] = []
        for rname in root_names:
            nodes = self.lookup(rname)
            if not nodes:
                unmatched.append(rname)
                continue
            for nd in sorted(nodes, key=lambda n: (n.path, n.line)):
                if nd.idx not in parents:
                    parents[nd.idx] = -1
                    root_of[nd.idx] = rname
                    queue.append(nd.idx)
        qi = 0
        while qi < len(queue):
            cur = queue[qi]
            qi += 1
            for tgt in self.nodes[cur].targets:
                if tgt not in parents:
                    parents[tgt] = cur
                    root_of[tgt] = root_of[cur]
                    queue.append(tgt)
        res = ReachResult(parents, root_of, unmatched)
        self._reach_cache[key] = res
        return res
