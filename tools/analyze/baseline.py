"""Checked-in suppression baseline for fhmip_analyze.

Format (one entry per line; `#` starts a comment, blanks ignored):

    <rule-id>  <repo-relative-path>  <fingerprint>  <justification...>

The fingerprint is the crc32 (8 hex chars) of the whitespace-normalized
source line the finding points at — stable under line-number drift, stale
the moment the flagged code changes. A fingerprint of `*` suppresses every
finding of that rule in that file (used for files whose whole purpose
violates a rule, e.g. the stats table printers under direct-stdio).

Every entry must carry a justification. Entries that match no current
finding are *stale* and fail the run, so suppressions cannot silently
outlive the code they excuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class BaselineEntry:
    rule_id: str
    path: str
    fingerprint: str  # 8-hex crc32 or "*"
    justification: str
    lineno: int  # line in the baseline file (for stale reports)
    used: bool = False


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None
    parse_errors: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        b = cls(path=path)
        if not path.exists():
            return b
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 3)
            if len(parts) < 4:
                b.parse_errors.append(
                    f"{path}:{lineno}: baseline entry needs "
                    f"'<rule> <path> <fingerprint> <justification>'")
                continue
            b.entries.append(BaselineEntry(parts[0], parts[1], parts[2],
                                           parts[3], lineno))
        return b

    def match(self, finding) -> bool:
        """Marks the finding suppressed if an entry covers it; flags the
        entry as used."""
        hit = False
        for e in self.entries:
            if e.rule_id != finding.rule_id or e.path != finding.path:
                continue
            if e.fingerprint == "*" or e.fingerprint == finding.fingerprint:
                e.used = True
                hit = True
        return hit

    def stale_entries(self) -> list[BaselineEntry]:
        return [e for e in self.entries if not e.used]


def write_baseline(path: Path, findings, header: str = ""):
    """Writes a baseline covering `findings` (those not already suppressed
    inline). Groups by file for readability; justification is a TODO
    placeholder the committer must fill in."""
    lines = [
        "# fhmip_analyze suppression baseline.",
        "# <rule-id>  <path>  <fingerprint|*>  <justification>",
        "# Regenerate skeleton entries with: fhmip_analyze.py <root> "
        "--write-baseline",
    ]
    if header:
        lines.append("# " + header)
    lines.append("")
    seen = set()
    for f in sorted(findings, key=lambda f: (f.path, f.rule_id, f.line)):
        k = (f.rule_id, f.path, f.fingerprint)
        if k in seen:
            continue
        seen.add(k)
        lines.append(f"# L{f.line}: {f.message}")
        lines.append(f"{f.rule_id}  {f.path}  {f.fingerprint}  "
                     f"TODO: justify or fix")
        lines.append("")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
