"""Checked-in suppression baseline for fhmip_analyze.

Format (one entry per line; `#` starts a comment, blanks ignored):

    <rule-id>  <repo-relative-path>  <fingerprint>  <justification...>

The fingerprint is the crc32 (8 hex chars) of the whitespace-normalized
source line the finding points at — stable under line-number drift, stale
the moment the flagged code changes. A fingerprint of `*` suppresses every
finding of that rule in that file (used for files whose whole purpose
violates a rule, e.g. the stats table printers under direct-stdio).

Every entry must carry a justification. Entries that match no current
finding are *stale* and fail the run, so suppressions cannot silently
outlive the code they excuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class BaselineEntry:
    rule_id: str
    path: str
    fingerprint: str  # 8-hex crc32 or "*"
    justification: str
    lineno: int  # line in the baseline file (for stale reports)
    used: bool = False


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None
    parse_errors: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        b = cls(path=path)
        if not path.exists():
            return b
        for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 3)
            if len(parts) < 4:
                b.parse_errors.append(
                    f"{path}:{lineno}: baseline entry needs "
                    f"'<rule> <path> <fingerprint> <justification>'")
                continue
            b.entries.append(BaselineEntry(parts[0], parts[1], parts[2],
                                           parts[3], lineno))
        return b

    def match(self, finding) -> bool:
        """Marks the finding suppressed if an entry covers it; flags the
        entry as used."""
        hit = False
        for e in self.entries:
            if e.rule_id != finding.rule_id or e.path != finding.path:
                continue
            if e.fingerprint == "*" or e.fingerprint == finding.fingerprint:
                e.used = True
                hit = True
        return hit

    def stale_entries(self) -> list[BaselineEntry]:
        return [e for e in self.entries if not e.used]


def fix_baseline(path: Path, findings) -> dict:
    """Regenerates the baseline in place after a refactor, preserving the
    hand-written structure (section comments, entry order) and every
    existing justification:

      * entries matching a current finding are kept verbatim;
      * a stale entry whose rule+file still has an uncovered finding gets
        its fingerprint rewritten in place (the code merely changed shape)
        — justification kept, anchor comment refreshed;
      * stale entries with nothing left to cover are deleted, along with
        their auto-generated `# L<n>:` anchor comments;
      * findings no existing entry covers are appended at the end with a
        TODO justification for the committer to fill in.

    `findings` must exclude inline-NOLINT-suppressed ones. Returns counts
    {kept, rewritten, deleted, added} for the caller to report."""
    bl = Baseline.load(path)
    for f in findings:
        bl.match(f)
    covered = {(e.rule_id, e.path, e.fingerprint)
               for e in bl.entries if e.used}
    uncovered: dict = {}
    for f in findings:
        key = (f.rule_id, f.path, f.fingerprint)
        if key in covered or (f.rule_id, f.path, "*") in covered:
            continue
        uncovered.setdefault(key, f)
    pending = sorted(uncovered.values(),
                     key=lambda f: (f.rule_id, f.path, f.line))

    rewrites: dict[int, object] = {}  # baseline lineno -> new finding
    deletes: set[int] = set()
    for e in sorted((e for e in bl.entries if not e.used),
                    key=lambda e: e.lineno):
        take = next((f for f in pending
                     if f.rule_id == e.rule_id and f.path == e.path), None)
        if take is not None:
            pending.remove(take)
            rewrites[e.lineno] = take
        else:
            deletes.add(e.lineno)

    src = path.read_text(encoding="utf-8").splitlines() \
        if path.exists() else []
    out = []
    for lineno, raw in enumerate(src, 1):
        if lineno in deletes:
            # Drop the entry and its auto-generated anchor comment(s).
            while out and out[-1].lstrip().startswith("# L"):
                out.pop()
            continue
        if lineno in rewrites:
            e = next(x for x in bl.entries if x.lineno == lineno)
            f = rewrites[lineno]
            if out and out[-1].lstrip().startswith("# L"):
                out[-1] = f"# L{f.line}: {f.message}"
            out.append(f"{e.rule_id}  {e.path}  {f.fingerprint}  "
                       f"{e.justification}")
            continue
        out.append(raw)
    # Collapse blank runs left by deletions.
    collapsed = []
    for line in out:
        if not line.strip() and collapsed and not collapsed[-1].strip():
            continue
        collapsed.append(line)
    if pending:
        if collapsed and collapsed[-1].strip():
            collapsed.append("")
        collapsed.append("# --- new findings (fhmip_analyze --fix-baseline)"
                         " — justify or fix ---")
        for f in pending:
            collapsed.append(f"# L{f.line}: {f.message}")
            collapsed.append(f"{f.rule_id}  {f.path}  {f.fingerprint}  "
                             f"TODO: justify or fix")
    path.write_text("\n".join(collapsed).rstrip("\n") + "\n",
                    encoding="utf-8")
    return {
        "kept": sum(1 for e in bl.entries if e.used),
        "rewritten": len(rewrites),
        "deleted": len(deletes),
        "added": len(pending),
    }


def write_baseline(path: Path, findings, header: str = ""):
    """Writes a baseline covering `findings` (those not already suppressed
    inline). Groups by file for readability; justification is a TODO
    placeholder the committer must fill in."""
    lines = [
        "# fhmip_analyze suppression baseline.",
        "# <rule-id>  <path>  <fingerprint|*>  <justification>",
        "# Regenerate skeleton entries with: fhmip_analyze.py <root> "
        "--write-baseline",
    ]
    if header:
        lines.append("# " + header)
    lines.append("")
    seen = set()
    for f in sorted(findings, key=lambda f: (f.path, f.rule_id, f.line)):
        k = (f.rule_id, f.path, f.fingerprint)
        if k in seen:
            continue
        seen.add(k)
        lines.append(f"# L{f.line}: {f.message}")
        lines.append(f"{f.rule_id}  {f.path}  {f.fingerprint}  "
                     f"TODO: justify or fix")
        lines.append("")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
