"""Rule registry and finding model for fhmip_analyze.

A rule is an object with:
  * ``rule_id``       stable identifier (``LIFE-01``, ``pragma-once``, ...)
  * ``severity``      ``error`` or ``warning`` (reported; both gate unless
                      suppressed)
  * ``description``   one-liner for --list-rules and the SARIF rule table
  * either ``check_file(ctx, path)`` (text rules, run once per file) or
    ``check_unit(ctx, unit)`` (semantic rules, run once per translation
    unit), yielding Finding objects.

Suppression is decided centrally (driver): inline ``// NOLINT-FHMIP(rule)``
on the finding line or the line above, then the checked-in baseline file.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field


@dataclass
class Finding:
    rule_id: str
    severity: str
    path: str  # repo-relative posix path
    line: int
    message: str
    fingerprint: str = ""  # crc32 of the normalized source line
    suppressed: str = ""  # "", "nolint" or "baseline"
    # Call-graph evidence for reachability rules: the qualified-name chain
    # root -> ... -> flagged function, rendered in text and SARIF output.
    path_trace: list[str] = field(default_factory=list)

    def key(self) -> tuple[str, str, str]:
        return (self.rule_id, self.path, self.fingerprint)


def line_fingerprint(raw_line: str) -> str:
    """Stable per-line fingerprint: crc32 over the whitespace-normalized
    line text, so findings survive line-number drift but go stale when the
    flagged code actually changes."""
    norm = " ".join(raw_line.split())
    return format(zlib.crc32(norm.encode("utf-8")) & 0xFFFFFFFF, "08x")


@dataclass
class Rule:
    rule_id: str
    severity: str
    description: str
    # Analysis tier ("lint", "semantic", "callgraph", "dataflow") — set by
    # the driver per rule module; selects SARIF artifact grouping and the
    # --tier filter.
    tier: str = ""
    scope_dirs: tuple[str, ...] = ()  # empty = all scanned dirs
    check_file: object = None  # callable(ctx, path) -> iterable[Finding]
    check_unit: object = None  # callable(ctx, unit) -> iterable[Finding]
    # Whole-program rules (call-graph reachability): run once against the
    # merged Program after every unit is built.
    check_program: object = None  # callable(ctx, program) -> iter[Finding]


class Registry:
    def __init__(self):
        self.rules: list[Rule] = []

    def add(self, rule: Rule):
        if any(r.rule_id == rule.rule_id for r in self.rules):
            raise ValueError(f"duplicate rule id {rule.rule_id}")
        self.rules.append(rule)

    def by_id(self, rule_id: str) -> Rule | None:
        for r in self.rules:
            if r.rule_id == rule_id:
                return r
        return None
