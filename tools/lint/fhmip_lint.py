#!/usr/bin/env python3
"""fhmip project lint.

Repo-specific correctness rules that generic compilers/tidies don't enforce.
Registered as a ctest (`fhmip_lint`) so `ctest` runs build + tests + lint
uniformly. Exit status 0 = clean, 1 = violations (printed as
`file:line: [rule] message`), 2 = usage error.

Rules
  pragma-once        every header under src/ starts with #pragma once
  self-include-first the first #include of src/<mod>/<name>.cpp is its own
                     header (catches hidden transitive-include dependencies)
  banned-random      rand()/srand()/random_shuffle — use fhmip::Rng, which is
                     seeded and deterministic per Simulation
  raw-new-delete     no raw new/delete in src/ — ownership goes through
                     containers and smart pointers
  simtime-float-eq   no ==/!= on SimTime's floating-point views (.sec(),
                     .millis_f(), .micros_f()); compare SimTime directly
                     (integer ns) instead
  stale-eventid      EventId handles compared/assigned with literal 0 —
                     use kInvalidEvent so stale-handle bugs stay greppable
  using-namespace-std no `using namespace std`
  direct-stdio       src/ must report through Logger/PacketTrace, not
                     printf/cout/cerr (stats table printers are exempt)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# (rule, path) pairs exempt from a rule, relative to the repo root.
ALLOWLIST = {
    # kInvalidEvent's own definition.
    ("stale-eventid", "src/sim/scheduler.hpp"),
    # The table/series printers exist to write to stdout.
    ("direct-stdio", "src/stats/table.cpp"),
    ("direct-stdio", "src/stats/table.hpp"),
    ("direct-stdio", "src/stats/recorder.cpp"),
    # The logging layer and the audit hub are the stderr reporters.
    ("direct-stdio", "src/sim/logging.cpp"),
    ("direct-stdio", "src/sim/check.cpp"),
}


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers match the source."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[str] = []

    def report(self, rule: str, path: Path, lineno: int, msg: str):
        rel = path.relative_to(self.root).as_posix()
        if (rule, rel) in ALLOWLIST:
            return
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # -- per-file rules ------------------------------------------------------

    def check_pragma_once(self, path: Path, text: str):
        if path.suffix != ".hpp":
            return
        for lineno, line in enumerate(text.splitlines(), 1):
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            if stripped != "#pragma once":
                self.report("pragma-once", path, lineno,
                            "header must start with #pragma once")
            return
        self.report("pragma-once", path, 1, "empty header")

    def check_self_include_first(self, path: Path, text: str, code: str):
        if path.suffix != ".cpp" or "src" not in path.parts:
            return
        own = path.relative_to(self.root / "src").with_suffix(".hpp")
        if not (self.root / "src" / own).exists():
            return  # .cpp without a paired header (e.g. a main)
        raw_lines = text.splitlines()
        # Scan the comment-stripped code to find the first live #include,
        # then read the (string-literal) path from the raw line.
        for lineno, line in enumerate(code.splitlines(), 1):
            if re.match(r"\s*#\s*include\s+<", line):
                self.report("self-include-first", path, lineno,
                            f'first include must be "{own.as_posix()}"')
                return
            if re.match(r'\s*#\s*include\s+"', line):
                m = re.match(r'\s*#\s*include\s+"([^"]+)"',
                             raw_lines[lineno - 1])
                if m and m.group(1) != own.as_posix():
                    self.report("self-include-first", path, lineno,
                                f'first include must be "{own.as_posix()}", '
                                f'got "{m.group(1)}"')
                return

    def check_regex_rules(self, path: Path, code: str):
        in_src = "src" in path.relative_to(self.root).parts
        for lineno, line in enumerate(code.splitlines(), 1):
            if re.search(r"\b(?:std::)?s?rand\s*\(|\brandom_shuffle\b", line):
                self.report("banned-random", path, lineno,
                            "use fhmip::Rng (deterministic, per-Simulation)")
            if re.search(r"\busing\s+namespace\s+std\b", line):
                self.report("using-namespace-std", path, lineno,
                            "qualify std:: names explicitly")
            if re.search(r"\.(?:sec|millis_f|micros_f)\(\)\s*[!=]=|"
                         r"[!=]=\s*[\w.:()]+\.(?:sec|millis_f|micros_f)\(\)",
                         line):
                self.report("simtime-float-eq", path, lineno,
                            "compare SimTime values directly (integer ns), "
                            "not their floating-point views")
            if "EventId" in line and re.search(
                    r"EventId\s+\w+(?:\s*=\s*|\s*\{\s*)0\b", line):
                self.report("stale-eventid", path, lineno,
                            "initialise EventId handles from kInvalidEvent")
            if re.search(r"\b\w+(?:\.|->)\w*(?:timer|event\w*id)\w*\s*[!=]="
                         r"\s*0\b", line, re.IGNORECASE):
                self.report("stale-eventid", path, lineno,
                            "compare EventId handles against kInvalidEvent")
            if in_src:
                if re.search(r"\bnew\s+[A-Za-z_(]", line) and \
                        not re.search(r"\boperator\s+new\b", line):
                    self.report("raw-new-delete", path, lineno,
                                "raw new — use containers/smart pointers")
                if re.search(r"\bdelete\s+[A-Za-z_*]|\bdelete\[\]", line) and \
                        not re.search(r"=\s*delete\b", line):
                    self.report("raw-new-delete", path, lineno,
                                "raw delete — use containers/smart pointers")
                if re.search(r"\bstd::(?:printf|puts|cout|cerr)\b|"
                             r"(?<!\w)f?printf\s*\(", line):
                    self.report("direct-stdio", path, lineno,
                                "report through Logger or PacketTrace")
                if re.search(r"#\s*include\s+<iostream>", line):
                    self.report("direct-stdio", path, lineno,
                                "<iostream> banned in src/ (static-init cost); "
                                "report through Logger or PacketTrace")

    # -- driver --------------------------------------------------------------

    def run(self) -> int:
        dirs = ["src", "tests", "bench", "examples", "tools"]
        files = []
        for d in dirs:
            base = self.root / d
            if base.exists():
                files += sorted(base.rglob("*.hpp")) + sorted(
                    base.rglob("*.cpp"))
        if not files:
            print("fhmip_lint: no sources found", file=sys.stderr)
            return 2
        for path in files:
            text = path.read_text(encoding="utf-8")
            code = strip_comments_and_strings(text)
            self.check_pragma_once(path, text)
            self.check_self_include_first(path, text, code)
            self.check_regex_rules(path, code)
        for v in self.violations:
            print(v)
        print(f"fhmip_lint: {len(files)} files, "
              f"{len(self.violations)} violation(s)")
        return 1 if self.violations else 0


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo-root>", file=sys.stderr)
        return 2
    root = Path(sys.argv[1]).resolve()
    if not (root / "src").is_dir():
        print(f"fhmip_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
