
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/buffer_manager.cpp" "src/CMakeFiles/fhmip.dir/buffer/buffer_manager.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/buffer/buffer_manager.cpp.o.d"
  "/root/repo/src/buffer/handoff_buffer.cpp" "src/CMakeFiles/fhmip.dir/buffer/handoff_buffer.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/buffer/handoff_buffer.cpp.o.d"
  "/root/repo/src/buffer/policy.cpp" "src/CMakeFiles/fhmip.dir/buffer/policy.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/buffer/policy.cpp.o.d"
  "/root/repo/src/buffer/rate_estimator.cpp" "src/CMakeFiles/fhmip.dir/buffer/rate_estimator.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/buffer/rate_estimator.cpp.o.d"
  "/root/repo/src/buffer/traffic_class.cpp" "src/CMakeFiles/fhmip.dir/buffer/traffic_class.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/buffer/traffic_class.cpp.o.d"
  "/root/repo/src/fastho/ar_agent.cpp" "src/CMakeFiles/fhmip.dir/fastho/ar_agent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fastho/ar_agent.cpp.o.d"
  "/root/repo/src/fastho/auth.cpp" "src/CMakeFiles/fhmip.dir/fastho/auth.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fastho/auth.cpp.o.d"
  "/root/repo/src/fastho/messages.cpp" "src/CMakeFiles/fhmip.dir/fastho/messages.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fastho/messages.cpp.o.d"
  "/root/repo/src/fastho/mh_agent.cpp" "src/CMakeFiles/fhmip.dir/fastho/mh_agent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fastho/mh_agent.cpp.o.d"
  "/root/repo/src/fastho/reliability.cpp" "src/CMakeFiles/fhmip.dir/fastho/reliability.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fastho/reliability.cpp.o.d"
  "/root/repo/src/fault/link_fault.cpp" "src/CMakeFiles/fhmip.dir/fault/link_fault.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/fault/link_fault.cpp.o.d"
  "/root/repo/src/mip/binding.cpp" "src/CMakeFiles/fhmip.dir/mip/binding.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/binding.cpp.o.d"
  "/root/repo/src/mip/correspondent.cpp" "src/CMakeFiles/fhmip.dir/mip/correspondent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/correspondent.cpp.o.d"
  "/root/repo/src/mip/foreign_agent.cpp" "src/CMakeFiles/fhmip.dir/mip/foreign_agent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/foreign_agent.cpp.o.d"
  "/root/repo/src/mip/home_agent.cpp" "src/CMakeFiles/fhmip.dir/mip/home_agent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/home_agent.cpp.o.d"
  "/root/repo/src/mip/map_agent.cpp" "src/CMakeFiles/fhmip.dir/mip/map_agent.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/map_agent.cpp.o.d"
  "/root/repo/src/mip/mobile_ip.cpp" "src/CMakeFiles/fhmip.dir/mip/mobile_ip.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/mip/mobile_ip.cpp.o.d"
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/fhmip.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/address.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/fhmip.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/fhmip.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/fhmip.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/fhmip.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/priority_queue.cpp" "src/CMakeFiles/fhmip.dir/net/priority_queue.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/priority_queue.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/fhmip.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/fhmip.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/net/routing.cpp.o.d"
  "/root/repo/src/obs/ledger.cpp" "src/CMakeFiles/fhmip.dir/obs/ledger.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/obs/ledger.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/fhmip.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/timeline.cpp" "src/CMakeFiles/fhmip.dir/obs/timeline.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/obs/timeline.cpp.o.d"
  "/root/repo/src/obs/trace_file.cpp" "src/CMakeFiles/fhmip.dir/obs/trace_file.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/obs/trace_file.cpp.o.d"
  "/root/repo/src/scenario/corridor_topology.cpp" "src/CMakeFiles/fhmip.dir/scenario/corridor_topology.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/scenario/corridor_topology.cpp.o.d"
  "/root/repo/src/scenario/experiment.cpp" "src/CMakeFiles/fhmip.dir/scenario/experiment.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/scenario/experiment.cpp.o.d"
  "/root/repo/src/scenario/paper_topology.cpp" "src/CMakeFiles/fhmip.dir/scenario/paper_topology.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/scenario/paper_topology.cpp.o.d"
  "/root/repo/src/scenario/wlan_topology.cpp" "src/CMakeFiles/fhmip.dir/scenario/wlan_topology.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/scenario/wlan_topology.cpp.o.d"
  "/root/repo/src/sim/check.cpp" "src/CMakeFiles/fhmip.dir/sim/check.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/check.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/fhmip.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/fhmip.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/fhmip.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/fhmip.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/fhmip.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/fhmip.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/time.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/fhmip.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sim/trace.cpp.o.d"
  "/root/repo/src/stats/flow_table.cpp" "src/CMakeFiles/fhmip.dir/stats/flow_table.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/stats/flow_table.cpp.o.d"
  "/root/repo/src/stats/handover_outcomes.cpp" "src/CMakeFiles/fhmip.dir/stats/handover_outcomes.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/stats/handover_outcomes.cpp.o.d"
  "/root/repo/src/stats/recorder.cpp" "src/CMakeFiles/fhmip.dir/stats/recorder.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/stats/recorder.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/fhmip.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/stats/table.cpp.o.d"
  "/root/repo/src/sweep/cli.cpp" "src/CMakeFiles/fhmip.dir/sweep/cli.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sweep/cli.cpp.o.d"
  "/root/repo/src/sweep/json.cpp" "src/CMakeFiles/fhmip.dir/sweep/json.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sweep/json.cpp.o.d"
  "/root/repo/src/sweep/sweep_runner.cpp" "src/CMakeFiles/fhmip.dir/sweep/sweep_runner.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/sweep/sweep_runner.cpp.o.d"
  "/root/repo/src/transport/cbr.cpp" "src/CMakeFiles/fhmip.dir/transport/cbr.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/transport/cbr.cpp.o.d"
  "/root/repo/src/transport/diffserv.cpp" "src/CMakeFiles/fhmip.dir/transport/diffserv.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/transport/diffserv.cpp.o.d"
  "/root/repo/src/transport/sink.cpp" "src/CMakeFiles/fhmip.dir/transport/sink.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/transport/sink.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/CMakeFiles/fhmip.dir/transport/tcp.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/transport/tcp.cpp.o.d"
  "/root/repo/src/transport/udp.cpp" "src/CMakeFiles/fhmip.dir/transport/udp.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/transport/udp.cpp.o.d"
  "/root/repo/src/wireless/access_point.cpp" "src/CMakeFiles/fhmip.dir/wireless/access_point.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/wireless/access_point.cpp.o.d"
  "/root/repo/src/wireless/l2_phases.cpp" "src/CMakeFiles/fhmip.dir/wireless/l2_phases.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/wireless/l2_phases.cpp.o.d"
  "/root/repo/src/wireless/mobility.cpp" "src/CMakeFiles/fhmip.dir/wireless/mobility.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/wireless/mobility.cpp.o.d"
  "/root/repo/src/wireless/wlan.cpp" "src/CMakeFiles/fhmip.dir/wireless/wlan.cpp.o" "gcc" "src/CMakeFiles/fhmip.dir/wireless/wlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
