file(REMOVE_RECURSE
  "libfhmip.a"
)
