# Empty dependencies file for fhmip.
# This may be replaced when dependencies are built.
