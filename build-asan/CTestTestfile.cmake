# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fhmip_analyze "/root/.pyenv/shims/python3" "/root/repo/tools/analyze/fhmip_analyze.py" "/root/repo")
set_tests_properties(fhmip_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;61;add_test;/root/repo/CMakeLists.txt;0;")
add_test(fhmip_lint "/root/.pyenv/shims/python3" "/root/repo/tools/analyze/fhmip_analyze.py" "/root/repo")
set_tests_properties(fhmip_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;67;add_test;/root/repo/CMakeLists.txt;0;")
add_test(fhmip_analyze_fixtures "/root/.pyenv/shims/python3" "/root/repo/tests/tools/fhmip_analyze_test.py")
set_tests_properties(fhmip_analyze_fixtures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;73;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
