# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/net_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/wireless_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/transport_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/mip_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/buffer_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/fastho_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_matrix_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/sweep_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/obs_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_tests[1]_include.cmake")
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Ff][Uu][Ll][Ll])$")
  add_test(fault_matrix_full "/root/repo/build-asan/tests/fault_matrix_full_tests")
  set_tests_properties(fault_matrix_full PROPERTIES  LABELS "fault-matrix-full" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;91;add_test;/root/repo/tests/CMakeLists.txt;0;")
endif()
