file(REMOVE_RECURSE
  "CMakeFiles/obs_tests.dir/obs/golden_trace_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/golden_trace_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/ledger_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/ledger_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/metrics_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/metrics_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/timeline_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/timeline_test.cpp.o.d"
  "CMakeFiles/obs_tests.dir/obs/trace_obs_test.cpp.o"
  "CMakeFiles/obs_tests.dir/obs/trace_obs_test.cpp.o.d"
  "obs_tests"
  "obs_tests.pdb"
  "obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
