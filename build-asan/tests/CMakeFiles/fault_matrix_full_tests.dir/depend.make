# Empty dependencies file for fault_matrix_full_tests.
# This may be replaced when dependencies are built.
