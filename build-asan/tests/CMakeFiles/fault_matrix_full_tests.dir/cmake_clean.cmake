file(REMOVE_RECURSE
  "CMakeFiles/fault_matrix_full_tests.dir/fault/fault_matrix_test.cpp.o"
  "CMakeFiles/fault_matrix_full_tests.dir/fault/fault_matrix_test.cpp.o.d"
  "fault_matrix_full_tests"
  "fault_matrix_full_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_matrix_full_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
