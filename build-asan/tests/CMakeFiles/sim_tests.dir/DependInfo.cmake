
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/check_level0_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/check_level0_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/check_level0_test.cpp.o.d"
  "/root/repo/tests/sim/check_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/check_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/check_test.cpp.o.d"
  "/root/repo/tests/sim/logging_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/time_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
