file(REMOVE_RECURSE
  "CMakeFiles/fault_matrix_tests.dir/fault/fault_matrix_test.cpp.o"
  "CMakeFiles/fault_matrix_tests.dir/fault/fault_matrix_test.cpp.o.d"
  "fault_matrix_tests"
  "fault_matrix_tests.pdb"
  "fault_matrix_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_matrix_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
