# Empty dependencies file for fault_matrix_tests.
# This may be replaced when dependencies are built.
