file(REMOVE_RECURSE
  "CMakeFiles/mip_tests.dir/mip/binding_test.cpp.o"
  "CMakeFiles/mip_tests.dir/mip/binding_test.cpp.o.d"
  "CMakeFiles/mip_tests.dir/mip/correspondent_test.cpp.o"
  "CMakeFiles/mip_tests.dir/mip/correspondent_test.cpp.o.d"
  "CMakeFiles/mip_tests.dir/mip/foreign_agent_test.cpp.o"
  "CMakeFiles/mip_tests.dir/mip/foreign_agent_test.cpp.o.d"
  "CMakeFiles/mip_tests.dir/mip/home_agent_test.cpp.o"
  "CMakeFiles/mip_tests.dir/mip/home_agent_test.cpp.o.d"
  "CMakeFiles/mip_tests.dir/mip/map_agent_test.cpp.o"
  "CMakeFiles/mip_tests.dir/mip/map_agent_test.cpp.o.d"
  "mip_tests"
  "mip_tests.pdb"
  "mip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
