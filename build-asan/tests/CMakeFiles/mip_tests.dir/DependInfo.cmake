
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mip/binding_test.cpp" "tests/CMakeFiles/mip_tests.dir/mip/binding_test.cpp.o" "gcc" "tests/CMakeFiles/mip_tests.dir/mip/binding_test.cpp.o.d"
  "/root/repo/tests/mip/correspondent_test.cpp" "tests/CMakeFiles/mip_tests.dir/mip/correspondent_test.cpp.o" "gcc" "tests/CMakeFiles/mip_tests.dir/mip/correspondent_test.cpp.o.d"
  "/root/repo/tests/mip/foreign_agent_test.cpp" "tests/CMakeFiles/mip_tests.dir/mip/foreign_agent_test.cpp.o" "gcc" "tests/CMakeFiles/mip_tests.dir/mip/foreign_agent_test.cpp.o.d"
  "/root/repo/tests/mip/home_agent_test.cpp" "tests/CMakeFiles/mip_tests.dir/mip/home_agent_test.cpp.o" "gcc" "tests/CMakeFiles/mip_tests.dir/mip/home_agent_test.cpp.o.d"
  "/root/repo/tests/mip/map_agent_test.cpp" "tests/CMakeFiles/mip_tests.dir/mip/map_agent_test.cpp.o" "gcc" "tests/CMakeFiles/mip_tests.dir/mip/map_agent_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
