# Empty compiler generated dependencies file for mip_tests.
# This may be replaced when dependencies are built.
