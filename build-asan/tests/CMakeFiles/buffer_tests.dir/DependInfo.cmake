
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/buffer/buffer_manager_test.cpp" "tests/CMakeFiles/buffer_tests.dir/buffer/buffer_manager_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_tests.dir/buffer/buffer_manager_test.cpp.o.d"
  "/root/repo/tests/buffer/handoff_buffer_test.cpp" "tests/CMakeFiles/buffer_tests.dir/buffer/handoff_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_tests.dir/buffer/handoff_buffer_test.cpp.o.d"
  "/root/repo/tests/buffer/policy_test.cpp" "tests/CMakeFiles/buffer_tests.dir/buffer/policy_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_tests.dir/buffer/policy_test.cpp.o.d"
  "/root/repo/tests/buffer/rate_estimator_test.cpp" "tests/CMakeFiles/buffer_tests.dir/buffer/rate_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_tests.dir/buffer/rate_estimator_test.cpp.o.d"
  "/root/repo/tests/buffer/traffic_class_test.cpp" "tests/CMakeFiles/buffer_tests.dir/buffer/traffic_class_test.cpp.o" "gcc" "tests/CMakeFiles/buffer_tests.dir/buffer/traffic_class_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
