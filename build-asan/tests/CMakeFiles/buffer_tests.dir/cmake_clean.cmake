file(REMOVE_RECURSE
  "CMakeFiles/buffer_tests.dir/buffer/buffer_manager_test.cpp.o"
  "CMakeFiles/buffer_tests.dir/buffer/buffer_manager_test.cpp.o.d"
  "CMakeFiles/buffer_tests.dir/buffer/handoff_buffer_test.cpp.o"
  "CMakeFiles/buffer_tests.dir/buffer/handoff_buffer_test.cpp.o.d"
  "CMakeFiles/buffer_tests.dir/buffer/policy_test.cpp.o"
  "CMakeFiles/buffer_tests.dir/buffer/policy_test.cpp.o.d"
  "CMakeFiles/buffer_tests.dir/buffer/rate_estimator_test.cpp.o"
  "CMakeFiles/buffer_tests.dir/buffer/rate_estimator_test.cpp.o.d"
  "CMakeFiles/buffer_tests.dir/buffer/traffic_class_test.cpp.o"
  "CMakeFiles/buffer_tests.dir/buffer/traffic_class_test.cpp.o.d"
  "buffer_tests"
  "buffer_tests.pdb"
  "buffer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
