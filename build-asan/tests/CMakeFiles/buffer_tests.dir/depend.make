# Empty dependencies file for buffer_tests.
# This may be replaced when dependencies are built.
