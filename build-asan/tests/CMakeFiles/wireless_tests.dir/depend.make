# Empty dependencies file for wireless_tests.
# This may be replaced when dependencies are built.
