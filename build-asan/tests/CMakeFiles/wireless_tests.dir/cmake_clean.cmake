file(REMOVE_RECURSE
  "CMakeFiles/wireless_tests.dir/wireless/coverage_test.cpp.o"
  "CMakeFiles/wireless_tests.dir/wireless/coverage_test.cpp.o.d"
  "CMakeFiles/wireless_tests.dir/wireless/l2_phases_test.cpp.o"
  "CMakeFiles/wireless_tests.dir/wireless/l2_phases_test.cpp.o.d"
  "CMakeFiles/wireless_tests.dir/wireless/mobility_test.cpp.o"
  "CMakeFiles/wireless_tests.dir/wireless/mobility_test.cpp.o.d"
  "CMakeFiles/wireless_tests.dir/wireless/wlan_test.cpp.o"
  "CMakeFiles/wireless_tests.dir/wireless/wlan_test.cpp.o.d"
  "wireless_tests"
  "wireless_tests.pdb"
  "wireless_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
