
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/corridor_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/corridor_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/corridor_test.cpp.o.d"
  "/root/repo/tests/integration/figures_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/figures_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/figures_test.cpp.o.d"
  "/root/repo/tests/integration/invariants_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o.d"
  "/root/repo/tests/integration/model_based_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/model_based_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/model_based_test.cpp.o.d"
  "/root/repo/tests/integration/roaming_fuzz_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/roaming_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/roaming_fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/scenario_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o.d"
  "/root/repo/tests/integration/stats_util_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/stats_util_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/stats_util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
