file(REMOVE_RECURSE
  "CMakeFiles/transport_tests.dir/transport/cbr_test.cpp.o"
  "CMakeFiles/transport_tests.dir/transport/cbr_test.cpp.o.d"
  "CMakeFiles/transport_tests.dir/transport/tcp_test.cpp.o"
  "CMakeFiles/transport_tests.dir/transport/tcp_test.cpp.o.d"
  "CMakeFiles/transport_tests.dir/transport/tcp_timer_test.cpp.o"
  "CMakeFiles/transport_tests.dir/transport/tcp_timer_test.cpp.o.d"
  "CMakeFiles/transport_tests.dir/transport/udp_test.cpp.o"
  "CMakeFiles/transport_tests.dir/transport/udp_test.cpp.o.d"
  "transport_tests"
  "transport_tests.pdb"
  "transport_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
