# Empty dependencies file for fastho_tests.
# This may be replaced when dependencies are built.
