file(REMOVE_RECURSE
  "CMakeFiles/fastho_tests.dir/fastho/extensions_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/extensions_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/handover_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/handover_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/intra_handoff_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/intra_handoff_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/mh_agent_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/mh_agent_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/ncoa_validation_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/ncoa_validation_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/negotiation_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/negotiation_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/robustness_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/robustness_test.cpp.o.d"
  "CMakeFiles/fastho_tests.dir/fastho/watchdog_test.cpp.o"
  "CMakeFiles/fastho_tests.dir/fastho/watchdog_test.cpp.o.d"
  "fastho_tests"
  "fastho_tests.pdb"
  "fastho_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastho_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
