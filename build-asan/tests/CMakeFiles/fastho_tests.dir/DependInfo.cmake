
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fastho/extensions_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/extensions_test.cpp.o.d"
  "/root/repo/tests/fastho/handover_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/handover_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/handover_test.cpp.o.d"
  "/root/repo/tests/fastho/intra_handoff_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/intra_handoff_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/intra_handoff_test.cpp.o.d"
  "/root/repo/tests/fastho/mh_agent_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/mh_agent_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/mh_agent_test.cpp.o.d"
  "/root/repo/tests/fastho/ncoa_validation_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/ncoa_validation_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/ncoa_validation_test.cpp.o.d"
  "/root/repo/tests/fastho/negotiation_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/negotiation_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/negotiation_test.cpp.o.d"
  "/root/repo/tests/fastho/robustness_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/robustness_test.cpp.o.d"
  "/root/repo/tests/fastho/watchdog_test.cpp" "tests/CMakeFiles/fastho_tests.dir/fastho/watchdog_test.cpp.o" "gcc" "tests/CMakeFiles/fastho_tests.dir/fastho/watchdog_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
