file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net/address_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/address_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/format_determinism_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/format_determinism_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/link_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/link_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/network_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/network_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/node_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/node_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/packet_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/priority_queue_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/priority_queue_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/queue_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/queue_test.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/routing_test.cpp.o"
  "CMakeFiles/net_tests.dir/net/routing_test.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
