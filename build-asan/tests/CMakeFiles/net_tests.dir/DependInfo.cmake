
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/address_test.cpp" "tests/CMakeFiles/net_tests.dir/net/address_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/address_test.cpp.o.d"
  "/root/repo/tests/net/format_determinism_test.cpp" "tests/CMakeFiles/net_tests.dir/net/format_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/format_determinism_test.cpp.o.d"
  "/root/repo/tests/net/link_test.cpp" "tests/CMakeFiles/net_tests.dir/net/link_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/link_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/net_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/node_test.cpp" "tests/CMakeFiles/net_tests.dir/net/node_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/node_test.cpp.o.d"
  "/root/repo/tests/net/packet_test.cpp" "tests/CMakeFiles/net_tests.dir/net/packet_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/packet_test.cpp.o.d"
  "/root/repo/tests/net/priority_queue_test.cpp" "tests/CMakeFiles/net_tests.dir/net/priority_queue_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/priority_queue_test.cpp.o.d"
  "/root/repo/tests/net/queue_test.cpp" "tests/CMakeFiles/net_tests.dir/net/queue_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/queue_test.cpp.o.d"
  "/root/repo/tests/net/routing_test.cpp" "tests/CMakeFiles/net_tests.dir/net/routing_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/routing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/fhmip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
