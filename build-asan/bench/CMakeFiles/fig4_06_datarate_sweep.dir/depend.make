# Empty dependencies file for fig4_06_datarate_sweep.
# This may be replaced when dependencies are built.
