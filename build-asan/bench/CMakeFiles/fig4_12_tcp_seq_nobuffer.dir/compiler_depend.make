# Empty compiler generated dependencies file for fig4_12_tcp_seq_nobuffer.
# This may be replaced when dependencies are built.
