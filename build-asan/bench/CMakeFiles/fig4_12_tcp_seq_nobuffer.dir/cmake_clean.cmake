file(REMOVE_RECURSE
  "CMakeFiles/fig4_12_tcp_seq_nobuffer.dir/fig4_12_tcp_seq_nobuffer.cpp.o"
  "CMakeFiles/fig4_12_tcp_seq_nobuffer.dir/fig4_12_tcp_seq_nobuffer.cpp.o.d"
  "fig4_12_tcp_seq_nobuffer"
  "fig4_12_tcp_seq_nobuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_12_tcp_seq_nobuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
