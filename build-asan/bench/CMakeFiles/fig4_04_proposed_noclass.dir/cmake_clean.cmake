file(REMOVE_RECURSE
  "CMakeFiles/fig4_04_proposed_noclass.dir/fig4_04_proposed_noclass.cpp.o"
  "CMakeFiles/fig4_04_proposed_noclass.dir/fig4_04_proposed_noclass.cpp.o.d"
  "fig4_04_proposed_noclass"
  "fig4_04_proposed_noclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_04_proposed_noclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
