# Empty compiler generated dependencies file for fig4_04_proposed_noclass.
# This may be replaced when dependencies are built.
