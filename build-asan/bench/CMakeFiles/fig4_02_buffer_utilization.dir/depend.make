# Empty dependencies file for fig4_02_buffer_utilization.
# This may be replaced when dependencies are built.
