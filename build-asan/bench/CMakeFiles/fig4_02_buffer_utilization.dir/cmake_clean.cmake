file(REMOVE_RECURSE
  "CMakeFiles/fig4_02_buffer_utilization.dir/fig4_02_buffer_utilization.cpp.o"
  "CMakeFiles/fig4_02_buffer_utilization.dir/fig4_02_buffer_utilization.cpp.o.d"
  "fig4_02_buffer_utilization"
  "fig4_02_buffer_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_02_buffer_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
