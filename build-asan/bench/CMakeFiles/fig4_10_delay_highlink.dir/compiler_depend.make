# Empty compiler generated dependencies file for fig4_10_delay_highlink.
# This may be replaced when dependencies are built.
