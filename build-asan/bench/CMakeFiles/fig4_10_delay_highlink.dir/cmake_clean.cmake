file(REMOVE_RECURSE
  "CMakeFiles/fig4_10_delay_highlink.dir/fig4_10_delay_highlink.cpp.o"
  "CMakeFiles/fig4_10_delay_highlink.dir/fig4_10_delay_highlink.cpp.o.d"
  "fig4_10_delay_highlink"
  "fig4_10_delay_highlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_10_delay_highlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
