file(REMOVE_RECURSE
  "CMakeFiles/fig4_09_delay_lowlink.dir/fig4_09_delay_lowlink.cpp.o"
  "CMakeFiles/fig4_09_delay_lowlink.dir/fig4_09_delay_lowlink.cpp.o.d"
  "fig4_09_delay_lowlink"
  "fig4_09_delay_lowlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_09_delay_lowlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
