# Empty dependencies file for fig4_09_delay_lowlink.
# This may be replaced when dependencies are built.
