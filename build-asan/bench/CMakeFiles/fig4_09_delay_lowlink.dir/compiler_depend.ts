# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_09_delay_lowlink.
