# Empty dependencies file for ablation_simultaneous_binding.
# This may be replaced when dependencies are built.
