file(REMOVE_RECURSE
  "CMakeFiles/ablation_simultaneous_binding.dir/ablation_simultaneous_binding.cpp.o"
  "CMakeFiles/ablation_simultaneous_binding.dir/ablation_simultaneous_binding.cpp.o.d"
  "ablation_simultaneous_binding"
  "ablation_simultaneous_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simultaneous_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
