# Empty compiler generated dependencies file for fig4_05_proposed_class.
# This may be replaced when dependencies are built.
