file(REMOVE_RECURSE
  "CMakeFiles/fig4_05_proposed_class.dir/fig4_05_proposed_class.cpp.o"
  "CMakeFiles/fig4_05_proposed_class.dir/fig4_05_proposed_class.cpp.o.d"
  "fig4_05_proposed_class"
  "fig4_05_proposed_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_05_proposed_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
