file(REMOVE_RECURSE
  "CMakeFiles/fig4_14_tcp_throughput.dir/fig4_14_tcp_throughput.cpp.o"
  "CMakeFiles/fig4_14_tcp_throughput.dir/fig4_14_tcp_throughput.cpp.o.d"
  "fig4_14_tcp_throughput"
  "fig4_14_tcp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_14_tcp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
