file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_threshold.dir/ablation_alpha_threshold.cpp.o"
  "CMakeFiles/ablation_alpha_threshold.dir/ablation_alpha_threshold.cpp.o.d"
  "ablation_alpha_threshold"
  "ablation_alpha_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
