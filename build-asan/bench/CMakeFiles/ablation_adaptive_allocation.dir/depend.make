# Empty dependencies file for ablation_adaptive_allocation.
# This may be replaced when dependencies are built.
