file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_allocation.dir/ablation_adaptive_allocation.cpp.o"
  "CMakeFiles/ablation_adaptive_allocation.dir/ablation_adaptive_allocation.cpp.o.d"
  "ablation_adaptive_allocation"
  "ablation_adaptive_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
