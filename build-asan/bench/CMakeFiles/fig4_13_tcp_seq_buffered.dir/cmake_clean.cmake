file(REMOVE_RECURSE
  "CMakeFiles/fig4_13_tcp_seq_buffered.dir/fig4_13_tcp_seq_buffered.cpp.o"
  "CMakeFiles/fig4_13_tcp_seq_buffered.dir/fig4_13_tcp_seq_buffered.cpp.o.d"
  "fig4_13_tcp_seq_buffered"
  "fig4_13_tcp_seq_buffered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_13_tcp_seq_buffered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
