# Empty compiler generated dependencies file for fig4_13_tcp_seq_buffered.
# This may be replaced when dependencies are built.
