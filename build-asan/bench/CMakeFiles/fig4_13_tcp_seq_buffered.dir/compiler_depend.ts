# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_13_tcp_seq_buffered.
