file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_discipline.dir/ablation_queue_discipline.cpp.o"
  "CMakeFiles/ablation_queue_discipline.dir/ablation_queue_discipline.cpp.o.d"
  "ablation_queue_discipline"
  "ablation_queue_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
