# Empty dependencies file for ablation_queue_discipline.
# This may be replaced when dependencies are built.
