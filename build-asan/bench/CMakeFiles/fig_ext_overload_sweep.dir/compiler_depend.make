# Empty compiler generated dependencies file for fig_ext_overload_sweep.
# This may be replaced when dependencies are built.
