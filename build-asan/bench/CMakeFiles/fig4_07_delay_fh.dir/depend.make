# Empty dependencies file for fig4_07_delay_fh.
# This may be replaced when dependencies are built.
