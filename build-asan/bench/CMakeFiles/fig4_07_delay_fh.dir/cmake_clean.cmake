file(REMOVE_RECURSE
  "CMakeFiles/fig4_07_delay_fh.dir/fig4_07_delay_fh.cpp.o"
  "CMakeFiles/fig4_07_delay_fh.dir/fig4_07_delay_fh.cpp.o.d"
  "fig4_07_delay_fh"
  "fig4_07_delay_fh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_07_delay_fh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
