file(REMOVE_RECURSE
  "CMakeFiles/fig4_03_fh_drops.dir/fig4_03_fh_drops.cpp.o"
  "CMakeFiles/fig4_03_fh_drops.dir/fig4_03_fh_drops.cpp.o.d"
  "fig4_03_fh_drops"
  "fig4_03_fh_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_03_fh_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
