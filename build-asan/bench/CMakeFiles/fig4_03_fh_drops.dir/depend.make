# Empty dependencies file for fig4_03_fh_drops.
# This may be replaced when dependencies are built.
