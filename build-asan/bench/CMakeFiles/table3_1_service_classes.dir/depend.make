# Empty dependencies file for table3_1_service_classes.
# This may be replaced when dependencies are built.
