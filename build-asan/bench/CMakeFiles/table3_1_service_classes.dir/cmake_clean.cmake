file(REMOVE_RECURSE
  "CMakeFiles/table3_1_service_classes.dir/table3_1_service_classes.cpp.o"
  "CMakeFiles/table3_1_service_classes.dir/table3_1_service_classes.cpp.o.d"
  "table3_1_service_classes"
  "table3_1_service_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_1_service_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
