file(REMOVE_RECURSE
  "CMakeFiles/ablation_anticipation.dir/ablation_anticipation.cpp.o"
  "CMakeFiles/ablation_anticipation.dir/ablation_anticipation.cpp.o.d"
  "ablation_anticipation"
  "ablation_anticipation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anticipation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
