# Empty compiler generated dependencies file for ablation_anticipation.
# This may be replaced when dependencies are built.
