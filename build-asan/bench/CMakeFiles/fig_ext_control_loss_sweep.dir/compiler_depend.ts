# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig_ext_control_loss_sweep.
