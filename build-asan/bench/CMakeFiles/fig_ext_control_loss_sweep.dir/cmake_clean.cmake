file(REMOVE_RECURSE
  "CMakeFiles/fig_ext_control_loss_sweep.dir/fig_ext_control_loss_sweep.cpp.o"
  "CMakeFiles/fig_ext_control_loss_sweep.dir/fig_ext_control_loss_sweep.cpp.o.d"
  "fig_ext_control_loss_sweep"
  "fig_ext_control_loss_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ext_control_loss_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
