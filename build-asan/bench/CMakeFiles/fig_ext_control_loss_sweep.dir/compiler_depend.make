# Empty compiler generated dependencies file for fig_ext_control_loss_sweep.
# This may be replaced when dependencies are built.
