# Empty dependencies file for table3_3_policy_matrix.
# This may be replaced when dependencies are built.
