file(REMOVE_RECURSE
  "CMakeFiles/table3_3_policy_matrix.dir/table3_3_policy_matrix.cpp.o"
  "CMakeFiles/table3_3_policy_matrix.dir/table3_3_policy_matrix.cpp.o.d"
  "table3_3_policy_matrix"
  "table3_3_policy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_3_policy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
