file(REMOVE_RECURSE
  "CMakeFiles/fig4_08_delay_proposed.dir/fig4_08_delay_proposed.cpp.o"
  "CMakeFiles/fig4_08_delay_proposed.dir/fig4_08_delay_proposed.cpp.o.d"
  "fig4_08_delay_proposed"
  "fig4_08_delay_proposed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_08_delay_proposed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
