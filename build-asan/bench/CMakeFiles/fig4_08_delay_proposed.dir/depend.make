# Empty dependencies file for fig4_08_delay_proposed.
# This may be replaced when dependencies are built.
