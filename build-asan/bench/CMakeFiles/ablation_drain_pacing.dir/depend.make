# Empty dependencies file for ablation_drain_pacing.
# This may be replaced when dependencies are built.
