file(REMOVE_RECURSE
  "CMakeFiles/ablation_drain_pacing.dir/ablation_drain_pacing.cpp.o"
  "CMakeFiles/ablation_drain_pacing.dir/ablation_drain_pacing.cpp.o.d"
  "ablation_drain_pacing"
  "ablation_drain_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drain_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
