# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-asan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig4_06_datarate_sweep "/root/repo/build-asan/bench/fig4_06_datarate_sweep" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_fig4_06_datarate_sweep PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;25;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig_ext_control_loss_sweep "/root/repo/build-asan/bench/fig_ext_control_loss_sweep" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_fig_ext_control_loss_sweep PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;35;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig_ext_overload_sweep "/root/repo/build-asan/bench/fig_ext_overload_sweep" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_fig_ext_overload_sweep PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;36;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_alpha_threshold "/root/repo/build-asan/bench/ablation_alpha_threshold" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_alpha_threshold PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;39;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_simultaneous_binding "/root/repo/build-asan/bench/ablation_simultaneous_binding" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_simultaneous_binding PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;40;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_anticipation "/root/repo/build-asan/bench/ablation_anticipation" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_anticipation PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;41;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_adaptive_allocation "/root/repo/build-asan/bench/ablation_adaptive_allocation" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_adaptive_allocation PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;42;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_queue_discipline "/root/repo/build-asan/bench/ablation_queue_discipline" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_queue_discipline PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;43;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_drain_pacing "/root/repo/build-asan/bench/ablation_drain_pacing" "--smoke" "--jobs" "2")
set_tests_properties(bench_smoke_ablation_drain_pacing PROPERTIES  LABELS "bench-smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;44;fhmip_sweep_bench;/root/repo/bench/CMakeLists.txt;0;")
