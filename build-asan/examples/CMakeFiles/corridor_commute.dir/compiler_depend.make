# Empty compiler generated dependencies file for corridor_commute.
# This may be replaced when dependencies are built.
