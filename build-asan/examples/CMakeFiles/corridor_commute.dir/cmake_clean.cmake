file(REMOVE_RECURSE
  "CMakeFiles/corridor_commute.dir/corridor_commute.cpp.o"
  "CMakeFiles/corridor_commute.dir/corridor_commute.cpp.o.d"
  "corridor_commute"
  "corridor_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corridor_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
