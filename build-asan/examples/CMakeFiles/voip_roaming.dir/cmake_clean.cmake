file(REMOVE_RECURSE
  "CMakeFiles/voip_roaming.dir/voip_roaming.cpp.o"
  "CMakeFiles/voip_roaming.dir/voip_roaming.cpp.o.d"
  "voip_roaming"
  "voip_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
