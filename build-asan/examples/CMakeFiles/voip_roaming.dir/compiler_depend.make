# Empty compiler generated dependencies file for voip_roaming.
# This may be replaced when dependencies are built.
