file(REMOVE_RECURSE
  "CMakeFiles/smooth_baseline.dir/smooth_baseline.cpp.o"
  "CMakeFiles/smooth_baseline.dir/smooth_baseline.cpp.o.d"
  "smooth_baseline"
  "smooth_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smooth_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
