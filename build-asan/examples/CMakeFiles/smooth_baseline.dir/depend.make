# Empty dependencies file for smooth_baseline.
# This may be replaced when dependencies are built.
