file(REMOVE_RECURSE
  "CMakeFiles/tcp_wlan_handoff.dir/tcp_wlan_handoff.cpp.o"
  "CMakeFiles/tcp_wlan_handoff.dir/tcp_wlan_handoff.cpp.o.d"
  "tcp_wlan_handoff"
  "tcp_wlan_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_wlan_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
