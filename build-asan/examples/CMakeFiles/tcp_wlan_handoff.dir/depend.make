# Empty dependencies file for tcp_wlan_handoff.
# This may be replaced when dependencies are built.
