#pragma once

#include <string>

namespace fhmip::sweep {

/// Shared command line of the sweep-shaped bench binaries:
///
///   --jobs N      worker threads (default: hardware concurrency; 1 = serial)
///   --json PATH   write the machine-readable sweep report to PATH
///   --smoke       shrink the parameter grid to a seconds-long CI sanity run
///   --metrics     embed each run's metrics-registry JSON in the report
///   --rss-budget-mb N
///                 fail (exit nonzero) when the sweep's process peak RSS
///                 exceeds N MiB; overrides the bench's default budget
///                 (0 disables the gate)
///
/// Aggregate stdout is byte-identical for every --jobs value; only wall
/// times (stderr + JSON) differ. The per-run metrics payloads are derived
/// purely from the simulation, so they too are identical at any job count.
struct Options {
  int jobs = 0;  // 0 = hardware concurrency
  std::string json_path;
  bool smoke = false;
  bool metrics = false;
  /// Peak-RSS gate in MiB; negative = flag absent (benches keep their
  /// default budget), 0 = gate explicitly disabled.
  int rss_budget_mb = -1;
};

/// Outcome of parsing: on failure `error` is non-empty and `usage` holds
/// the flag reference, for the caller to print (src/ does not write to
/// stdio; the bench mains do).
struct ParseResult {
  Options options;
  std::string error;
};

ParseResult parse_args(int argc, const char* const* argv);

/// The flag reference, one flag per line.
std::string usage(const std::string& argv0);

}  // namespace fhmip::sweep
