#include "sweep/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fhmip::sweep {

namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
/// Labels here are ASCII grid descriptions, but garbage in must not make
/// garbage JSON out.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-format double: JSON numbers, locale-independent, no exponents for
/// the magnitudes wall times take.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string report_to_json(const std::string& bench_name,
                           const SweepReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << escape(bench_name) << "\",\n";
  os << "  \"jobs\": " << report.jobs << ",\n";
  os << "  \"total_wall_ms\": " << num(report.total_wall_ms) << ",\n";
  if (report.peak_rss_mb > 0) {
    os << "  \"peak_rss_mb\": " << num(report.peak_rss_mb) << ",\n";
  }
  if (report.rss_budget_mb > 0) {
    os << "  \"rss_budget_mb\": " << num(report.rss_budget_mb) << ",\n";
    os << "  \"rss_within_budget\": "
       << (report.rss_within_budget() ? "true" : "false") << ",\n";
  }
  os << "  \"runs\": [";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const RunRecord& r = report.runs[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"index\": " << r.index << ", \"label\": \""
       << escape(r.label) << "\", \"wall_ms\": " << num(r.wall_ms);
    if (r.peak_rss_mb > 0) {
      os << ", \"peak_rss_mb\": " << num(r.peak_rss_mb);
    }
    if (!r.metrics_json.empty()) {
      // Already a JSON object (obs::MetricsRegistry::to_json()); embedded
      // raw, not as a string.
      os << ", \"metrics\": " << r.metrics_json;
    }
    os << "}";
  }
  os << (report.runs.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

bool write_json(const std::string& path, const std::string& bench_name,
                const SweepReport& report) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << report_to_json(bench_name, report);
  return static_cast<bool>(f);
}

}  // namespace fhmip::sweep
