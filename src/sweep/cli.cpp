#include "sweep/cli.hpp"

#include <cstdlib>
#include <string>

namespace fhmip::sweep {

namespace {

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (v < -(1 << 20) || v > (1 << 20)) return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

ParseResult parse_args(int argc, const char* const* argv) {
  ParseResult r;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        r.error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      const char* v = take_value("--jobs");
      if (v == nullptr) return r;
      if (!parse_int(v, r.options.jobs) || r.options.jobs < 1) {
        r.error = "--jobs expects a positive integer, got '" +
                  std::string(v) + "'";
        return r;
      }
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
               arg.find_first_not_of("0123456789", 2) == std::string::npos) {
      // -jN shorthand, make-style.
      if (!parse_int(arg.substr(2), r.options.jobs) || r.options.jobs < 1) {
        r.error = "--jobs expects a positive integer, got '" +
                  arg.substr(2) + "'";
        return r;
      }
    } else if (arg == "--json") {
      const char* v = take_value("--json");
      if (v == nullptr) return r;
      r.options.json_path = v;
    } else if (arg == "--smoke") {
      r.options.smoke = true;
    } else if (arg == "--metrics") {
      r.options.metrics = true;
    } else if (arg == "--rss-budget-mb") {
      const char* v = take_value("--rss-budget-mb");
      if (v == nullptr) return r;
      if (!parse_int(v, r.options.rss_budget_mb) ||
          r.options.rss_budget_mb < 0) {
        r.error = "--rss-budget-mb expects a non-negative integer, got '" +
                  std::string(v) + "'";
        return r;
      }
    } else {
      r.error = "unknown argument '" + arg + "'";
      return r;
    }
  }
  return r;
}

std::string usage(const std::string& argv0) {
  return "usage: " + argv0 +
         " [--jobs N] [--json PATH] [--smoke] [--metrics]"
         " [--rss-budget-mb N]\n"
         "  --jobs N, -jN  worker threads for the sweep "
         "(default: hardware concurrency)\n"
         "  --json PATH    write the machine-readable sweep report to PATH\n"
         "  --smoke        tiny grid for CI smoke runs\n"
         "  --metrics      embed each run's metrics registry in the JSON "
         "report\n"
         "  --rss-budget-mb N\n"
         "                 fail when process peak RSS exceeds N MiB "
         "(0 disables the gate)\n";
}

}  // namespace fhmip::sweep
