#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/check.hpp"

namespace fhmip::sweep {

namespace {

// Wall-clock timing is reported on stderr / the JSON report only, never on
// the deterministic stdout stream (see DESIGN.md § Determinism).
double ms_since(std::chrono::steady_clock::time_point t0) {  // NOLINT-FHMIP(DET-01)
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)  // NOLINT-FHMIP(DET-01)
      .count();
}

constexpr double kBytesPerMiB = 1024.0 * 1024.0;

}  // namespace

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#else
  return 0;
#endif
}

SweepRunner::SweepRunner(int jobs) {
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? static_cast<int>(hw) : 1;
  }
  jobs_ = jobs;
}

void SweepRunner::run_indexed(std::size_t n, std::vector<std::string> labels,
                              const std::function<void(std::size_t)>& body) {
  FHMIP_AUDIT("sweep", labels.size() == n);
  report_ = SweepReport{};
  report_.jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
  if (report_.jobs < 1) report_.jobs = 1;
  report_.runs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    report_.runs[i].index = i;
    report_.runs[i].label = std::move(labels[i]);
  }
  if (n == 0) return;

  std::vector<std::exception_ptr> errors(n);
  const auto sweep_t0 = std::chrono::steady_clock::now();  // NOLINT-FHMIP(DET-01)
  const auto worker = [&](std::atomic<std::size_t>& next) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const auto t0 = std::chrono::steady_clock::now();  // NOLINT-FHMIP(DET-01)
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      report_.runs[i].wall_ms = ms_since(t0);
      report_.runs[i].peak_rss_mb =
          static_cast<double>(peak_rss_bytes()) / kBytesPerMiB;
    }
  };

  std::atomic<std::size_t> next{0};
  if (report_.jobs == 1) {
    // Single-job sweeps run inline: same code path minus the thread hop,
    // which keeps debugger/profiler stacks flat for -j1 repros.
    worker(next);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(report_.jobs));
    for (int w = 0; w < report_.jobs; ++w) {
      pool.emplace_back([&] { worker(next); });
    }
    for (auto& t : pool) t.join();
  }
  report_.total_wall_ms = ms_since(sweep_t0);
  report_.peak_rss_mb = static_cast<double>(peak_rss_bytes()) / kBytesPerMiB;

  // Deterministic failure order: the lowest-index exception wins, exactly
  // as a serial loop would have failed first.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

std::string SweepReport::format_summary() const {
  std::ostringstream os;
  os << "sweep: " << runs.size() << " runs on " << jobs << " job(s), "
     << total_wall_ms << " ms total\n";
  double sum = 0, slowest = 0;
  std::size_t slowest_i = 0;
  for (const RunRecord& r : runs) {
    sum += r.wall_ms;
    if (r.wall_ms > slowest) {
      slowest = r.wall_ms;
      slowest_i = r.index;
    }
  }
  if (!runs.empty()) {
    os << "sweep: " << sum << " ms of run time, mean "
       << sum / static_cast<double>(runs.size()) << " ms, slowest " << slowest
       << " ms (run " << slowest_i;
    if (!runs[slowest_i].label.empty()) {
      os << ": " << runs[slowest_i].label;
    }
    os << ")\n";
  }
  if (peak_rss_mb > 0) {
    os << "sweep: peak rss " << peak_rss_mb << " MiB";
    if (rss_budget_mb > 0) {
      os << " (budget " << rss_budget_mb << " MiB: "
         << (rss_within_budget() ? "OK" : "EXCEEDED") << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fhmip::sweep
