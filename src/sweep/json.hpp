#pragma once

#include <string>

#include "sweep/sweep_runner.hpp"

namespace fhmip::sweep {

/// Serializes a sweep report as a machine-readable JSON document:
///
///   {
///     "bench": "<name>",
///     "jobs": 8,
///     "total_wall_ms": 1234.5,
///     "runs": [
///       {"index": 0, "label": "loss=0% seed=3 rtx=on", "wall_ms": 41.2},
///       ...
///     ]
///   }
///
/// This is the `BENCH_<name>.json` payload the bench harnesses emit under
/// `--json <path>`; downstream tooling tracks per-run wall time across
/// commits from it.
std::string report_to_json(const std::string& bench_name,
                           const SweepReport& report);

/// Writes `report_to_json` to `path` (truncating). Returns false (with no
/// partial file guarantees) if the file cannot be opened or written.
bool write_json(const std::string& path, const std::string& bench_name,
                const SweepReport& report);

}  // namespace fhmip::sweep
