#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace fhmip::sweep {

/// Wall-time record for one run of a sweep, in submission (grid) order.
struct RunRecord {
  std::size_t index = 0;
  std::string label;
  double wall_ms = 0;
  /// Process-wide peak resident set sampled when this run finished, in MiB.
  /// Monotone over a -j1 sweep (per-run high-water marks); with parallel
  /// jobs it is attribution-free but still bounds the whole sweep. 0 where
  /// the platform offers no getrusage.
  double peak_rss_mb = 0;
  /// The run's metrics-registry export (obs::MetricsRegistry::to_json()),
  /// attached by the bench under --metrics; empty otherwise.
  std::string metrics_json;
};

/// Peak resident set size of this process in bytes (getrusage ru_maxrss);
/// 0 on platforms without it. Memory use is timing-like: report it on
/// stderr/JSON only, never the deterministic stdout stream.
std::uint64_t peak_rss_bytes();

/// Timing report for one SweepRunner::run() call. Per-run wall times vary
/// between executions, so none of this may reach stdout of a bench binary
/// (stdout must stay byte-identical across -j values); benches print
/// `format_summary()` to stderr and/or serialize the report with
/// `write_json` (sweep/json.hpp).
struct SweepReport {
  std::vector<RunRecord> runs;  // indexed by run index
  double total_wall_ms = 0;     // whole-sweep wall time
  int jobs = 1;                 // worker count actually used
  /// Process peak RSS after the sweep drained, in MiB (0 = unsupported).
  double peak_rss_mb = 0;
  /// Budget the bench gates against (--rss-budget-mb; 0 = no gate). Both
  /// values land in the JSON report so memory-growth regressions are
  /// visible across commits and fail loudly when gated.
  double rss_budget_mb = 0;

  /// peak_rss_mb is within the configured budget (vacuously true without
  /// a budget or without RSS support).
  bool rss_within_budget() const {
    return rss_budget_mb <= 0 || peak_rss_mb <= rss_budget_mb;
  }

  /// Human-readable per-run + aggregate summary (for stderr).
  std::string format_summary() const;
};

/// Fans a list of independent run closures across a fixed pool of worker
/// threads and collects their results into a vector ordered by submission
/// index, so aggregate output is byte-identical for 1 and N jobs.
///
/// Safety model: each closure must be share-nothing — it constructs its own
/// `Simulation` (scheduler, RNG, stats, logger) and touches nothing mutable
/// outside it. Under that contract no locking is needed around the runs;
/// the runner itself only hands out indices (one atomic) and writes each
/// result/timing into a pre-sized slot owned by exactly one run.
///
/// If any run throws, the first exception in *index order* is rethrown
/// after all workers drain, so failure behaviour is identical at any job
/// count. Runs after a failure still execute (they are independent).
class SweepRunner {
 public:
  /// `jobs` <= 0 selects the hardware concurrency.
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// One named unit of work. The label is carried into the report/JSON;
  /// the closure's return value lands at the job's index in the result
  /// vector.
  template <typename R>
  struct Job {
    std::string label;
    std::function<R()> fn;
  };

  template <typename R>
  std::vector<R> run(std::vector<Job<R>> grid) {
    std::vector<std::optional<R>> out(grid.size());
    std::vector<std::string> labels;
    labels.reserve(grid.size());
    for (auto& j : grid) labels.push_back(std::move(j.label));
    run_indexed(grid.size(), std::move(labels), [&](std::size_t i) {
      out[i].emplace(grid[i].fn());
    });
    std::vector<R> results;
    results.reserve(out.size());
    for (auto& r : out) results.push_back(std::move(*r));
    return results;
  }

  /// Timing/label report of the most recent run() call.
  const SweepReport& report() const { return report_; }

  /// Arms the peak-RSS gate on the most recent report (MiB; <= 0 = no
  /// gate). Benches resolve --rss-budget-mb against their default budget
  /// and call this before serializing/checking the report.
  void set_rss_budget_mb(double mb) { report_.rss_budget_mb = mb; }

  /// Attaches per-run metrics payloads (index-aligned with the grid) to the
  /// most recent report, for `write_json` to embed. Extra entries are
  /// ignored; missing ones leave the run without a metrics field.
  void attach_metrics(std::vector<std::string> per_run) {
    const std::size_t n = std::min(per_run.size(), report_.runs.size());
    for (std::size_t i = 0; i < n; ++i) {
      report_.runs[i].metrics_json = std::move(per_run[i]);
    }
  }

 private:
  /// Type-erased core: executes body(0..n-1) across the pool, records per-
  /// run wall times, propagates the lowest-index exception.
  void run_indexed(std::size_t n, std::vector<std::string> labels,
                   const std::function<void(std::size_t)>& body);

  int jobs_;
  SweepReport report_;
};

}  // namespace fhmip::sweep
