#include "wireless/l2_phases.hpp"

namespace fhmip {

namespace {

SimTime uniform_between(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  return SimTime::nanos(rng.uniform_int(lo.ns(), hi.ns()));
}

}  // namespace

L2PhaseModel::Sample L2PhaseModel::sample(Rng& rng) const {
  Sample s;
  s.probe = uniform_between(rng, probe_min, probe_max);
  s.auth = uniform_between(rng, auth_min, auth_max);
  s.assoc = uniform_between(rng, assoc_min, assoc_max);
  return s;
}

L2PhaseModel L2PhaseModel::fixed(SimTime total) {
  L2PhaseModel m;
  // Probe dominates; keep the small exchanges at zero so the total is
  // exactly `total` deterministically.
  m.probe_min = m.probe_max = total;
  m.auth_min = m.auth_max = SimTime{};
  m.assoc_min = m.assoc_max = SimTime{};
  return m;
}

}  // namespace fhmip
