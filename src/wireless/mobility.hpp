#pragma once

#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace fhmip {

struct Vec2 {
  double x = 0;
  double y = 0;
  friend constexpr bool operator==(Vec2, Vec2) = default;
};

double distance(Vec2 a, Vec2 b);

/// Deterministic position-over-time model sampled by the WLAN layer.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position(SimTime t) const = 0;
};

class StaticPosition final : public MobilityModel {
 public:
  explicit StaticPosition(Vec2 p) : p_(p) {}
  Vec2 position(SimTime) const override { return p_; }

 private:
  Vec2 p_;
};

/// Constant-velocity motion from `start` beginning at `t0` (positions before
/// t0 stay at `start`).
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(Vec2 start, Vec2 velocity_mps, SimTime t0 = SimTime{});
  Vec2 position(SimTime t) const override;

 private:
  Vec2 start_;
  Vec2 vel_;
  SimTime t0_;
};

/// Ping-pong motion between endpoints `a` and `b` at constant speed — the
/// "moving back and forth between the two access routers" workload of §4.2.2.
class BounceMobility final : public MobilityModel {
 public:
  BounceMobility(Vec2 a, Vec2 b, double speed_mps, SimTime t0 = SimTime{});
  Vec2 position(SimTime t) const override;

  /// Time for one full leg (a→b).
  SimTime leg_duration() const;

 private:
  Vec2 a_;
  Vec2 b_;
  double speed_;
  SimTime t0_;
};

/// Piecewise-linear motion through waypoints at per-leg speeds; the host
/// stops at the final waypoint.
class WaypointMobility final : public MobilityModel {
 public:
  struct Leg {
    Vec2 to;
    double speed_mps;
  };
  WaypointMobility(Vec2 start, std::vector<Leg> legs, SimTime t0 = SimTime{});
  Vec2 position(SimTime t) const override;

 private:
  struct Segment {
    Vec2 from;
    Vec2 to;
    SimTime begin;
    SimTime end;
  };
  std::vector<Segment> segments_;
  Vec2 final_;
  SimTime t0_;
};

}  // namespace fhmip
