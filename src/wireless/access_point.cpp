#include "wireless/access_point.hpp"

// AccessPoint is header-only; this TU anchors the vtable for
// ArAttachListener.

namespace fhmip {}
