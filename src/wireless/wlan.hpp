#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "wireless/access_point.hpp"
#include "wireless/l2_phases.hpp"
#include "wireless/mobility.hpp"

namespace fhmip {

/// Link-layer events delivered to the mobile host's protocol agent.
class L2Callbacks {
 public:
  virtual ~L2Callbacks() = default;
  /// L2 source trigger (L2-ST): a candidate AP came into range while still
  /// attached — the anticipation window opens (§3.2.2.1).
  virtual void on_l2_trigger(NodeId target_ap, Node& target_ar) = 0;
  /// The radio will go down in `guard` time; last chance to send the FBU.
  virtual void on_predisconnect(NodeId target_ap, Node& target_ar) = 0;
  /// Attached (or re-attached) under `ap` / access router `ar`.
  virtual void on_attached(NodeId ap, Node& ar) = 0;
  virtual void on_detached() = 0;
};

struct WlanConfig {
  SimTime tick = SimTime::millis(10);
  /// Link-layer handoff blackout. The paper cites 60–400 ms measured and
  /// simulates 200 ms (§4.1).
  SimTime l2_handoff_delay = SimTime::millis(200);
  /// When set, each handoff's blackout is sampled from the empirical
  /// probe/auth/assoc model instead of the fixed delay above.
  std::optional<L2PhaseModel> l2_phase_model;
  /// Start the handoff this many meters before the coverage edge.
  double exit_margin_m = 2.0;
  /// Margin-zone handoffs require the candidate AP to be at least this much
  /// closer than the serving one. Without it a host lingering where two
  /// exit margins overlap flaps A->B->A indefinitely (each flap runs the
  /// full buffer-allocation handshake); with it every handoff strictly
  /// shrinks the serving distance, so flap chains terminate. Zero keeps the
  /// historical nearest-wins behaviour. Hard detaches (out of coverage)
  /// ignore the hysteresis — any covering AP beats none.
  double handoff_hysteresis_m = 0.0;
  /// Delay between on_predisconnect (FBU transmission) and radio-down.
  SimTime predisconnect_guard = SimTime::millis(2);
  double bandwidth_bps = 11e6;
  SimTime delay = SimTime::millis(1);
  std::size_t queue_limit = 200;
  SimTime ra_interval = SimTime::seconds(1);  // §4.1: one per second
  bool send_router_adv = true;
};

/// Owns access points, mobile-host radios and the association state machine:
/// position sampling, L2 triggers, handoff blackouts, per-(AP,MH) radio
/// links, and periodic router advertisements.
class WlanManager {
 public:
  WlanManager(Simulation& sim, WlanConfig cfg);
  ~WlanManager();

  AccessPoint& add_ap(Node& ar_node, Vec2 pos, double radius_m,
                      ArAttachListener* listener);

  void add_mh(Node& mh_node, std::unique_ptr<MobilityModel> mobility,
              L2Callbacks* callbacks);

  /// Starts the tick loop and performs initial association.
  void start();
  void stop();

  /// Schedules a handoff to `target_ap` at `at`, regardless of geometry —
  /// used by the pure-L2-handoff experiments (Figures 4.12–4.14).
  void force_handoff(MhId mh, NodeId target_ap, SimTime at);

  // Introspection.
  Vec2 mh_position(MhId mh) const;
  NodeId attached_ap(MhId mh) const;  // kNoNode while detached
  bool in_handoff(MhId mh) const;
  AccessPoint* ap(NodeId id);
  /// The MH→AR radio link for `(ap, mh)`, created on demand like the
  /// association path would — fault harnesses attach TxFilters to it to
  /// kill/duplicate/delay MH-originated control messages. nullptr when the
  /// AP or MH is unknown.
  SimplexLink* uplink(NodeId ap, MhId mh);
  /// The AR→MH counterpart (PrRtAdv, FBack, FnaAck, drained packets).
  SimplexLink* downlink(NodeId ap, MhId mh);
  std::size_t handoffs_started() const { return handoffs_; }
  /// Blackout actually used by the most recent handoff (fixed or sampled).
  SimTime last_blackout() const { return last_blackout_; }

  const WlanConfig& config() const { return cfg_; }

 private:
  struct RadioPair {
    std::unique_ptr<SimplexLink> down;  // AR -> MH
    std::unique_ptr<SimplexLink> up;    // MH -> AR
  };
  struct MhRecord {
    Node* node = nullptr;
    std::unique_ptr<MobilityModel> mobility;
    L2Callbacks* cb = nullptr;
    NodeId attached = kNoNode;
    bool in_handoff = false;
    std::set<NodeId> triggered;  // APs already L2-ST'd since last attach
  };

  void tick();
  void evaluate(MhId mh, MhRecord& rec);
  AccessPoint* best_candidate(Vec2 pos, NodeId exclude);
  void start_handoff(MhId mh, MhRecord& rec, AccessPoint& target);
  void detach(MhId mh, MhRecord& rec);
  void attach(MhId mh, MhRecord& rec, AccessPoint& target);
  RadioPair& radio(const AccessPoint& ap, MhId mh);
  void send_router_adv(AccessPoint& ap);
  /// Records a change of `rec.attached` in the per-AP attachment sets that
  /// send_router_adv iterates (kNoNode = detached).
  void set_attached(MhId mh, MhRecord& rec, NodeId new_ap);
  void rebuild_ap_grid();
  /// APs whose coverage disc could contain `pos` (the 3x3 cell
  /// neighbourhood of the spatial hash), in insertion (= id) order — the
  /// same order a full scan of `aps_` would visit them. Returns a reusable
  /// scratch vector.
  const std::vector<AccessPoint*>& nearby_aps(Vec2 pos);

  Simulation& sim_;
  WlanConfig cfg_;
  std::vector<std::unique_ptr<AccessPoint>> aps_;
  std::map<MhId, MhRecord> mhs_;
  std::map<std::pair<NodeId, MhId>, RadioPair> radios_;
  // Scaling indexes over the flat containers above (a city-scale field has
  // hundreds of APs and thousands of MHs; every per-tick lookup must stay
  // O(local density), not O(field size)):
  //  * ap_index_: id -> AP, replacing the linear ap() scan;
  //  * ap_grid_: spatial hash of AP centers with cell = max AP radius, so
  //    any AP covering a point lies in the 3x3 neighbourhood of its cell;
  //  * attached_mhs_: per-AP attachment sets (MhId-ordered, matching the
  //    old whole-map walk) for router advertisement fan-out.
  std::unordered_map<NodeId, AccessPoint*> ap_index_;
  std::unordered_map<std::uint64_t, std::vector<AccessPoint*>> ap_grid_;
  double grid_cell_ = 0;
  bool grid_dirty_ = false;
  std::vector<AccessPoint*> nearby_scratch_;
  std::map<NodeId, std::set<MhId>> attached_mhs_;
  bool running_ = false;
  // Pending self-scheduled events, cancelled in the destructor so no timer
  // callback can fire into a dead manager. The tick loop and each AP's RA
  // chain keep exactly one pending event; one-shot events (forced handoffs
  // and the detach/attach phases) are appended and cancelled wholesale —
  // cancelling an already-run id is a no-op.
  EventId tick_ev_ = kInvalidEvent;
  std::map<NodeId, EventId> ra_evs_;
  std::vector<EventId> oneshot_evs_;
  std::size_t handoffs_ = 0;
  SimTime last_blackout_;
  obs::Counter* m_handoffs_ = nullptr;       // wlan/handoffs
  obs::Histogram* m_blackout_ms_ = nullptr;  // wlan/blackout_ms
  NodeId next_ap_id_ = 10000;  // AP ids live in a separate space from nodes
};

}  // namespace fhmip
