#include "wireless/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace fhmip {

double distance(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

LinearMobility::LinearMobility(Vec2 start, Vec2 velocity_mps, SimTime t0)
    : start_(start), vel_(velocity_mps), t0_(t0) {}

Vec2 LinearMobility::position(SimTime t) const {
  if (t <= t0_) return start_;
  const double dt = (t - t0_).sec();
  return Vec2{start_.x + vel_.x * dt, start_.y + vel_.y * dt};
}

BounceMobility::BounceMobility(Vec2 a, Vec2 b, double speed_mps, SimTime t0)
    : a_(a), b_(b), speed_(speed_mps), t0_(t0) {}

SimTime BounceMobility::leg_duration() const {
  return SimTime::from_seconds(distance(a_, b_) / speed_);
}

Vec2 BounceMobility::position(SimTime t) const {
  if (t <= t0_) return a_;
  const double leg = distance(a_, b_) / speed_;
  if (leg <= 0) return a_;
  double phase = std::fmod((t - t0_).sec(), 2 * leg);
  bool toward_b = true;
  if (phase > leg) {
    phase -= leg;
    toward_b = false;
  }
  const double f = phase / leg;
  const Vec2 from = toward_b ? a_ : b_;
  const Vec2 to = toward_b ? b_ : a_;
  return Vec2{from.x + (to.x - from.x) * f, from.y + (to.y - from.y) * f};
}

WaypointMobility::WaypointMobility(Vec2 start, std::vector<Leg> legs,
                                   SimTime t0)
    : final_(start), t0_(t0) {
  Vec2 cur = start;
  SimTime at = t0;
  for (const Leg& l : legs) {
    const double d = distance(cur, l.to);
    const SimTime dur =
        l.speed_mps > 0 ? SimTime::from_seconds(d / l.speed_mps) : SimTime{};
    segments_.push_back({cur, l.to, at, at + dur});
    at += dur;
    cur = l.to;
  }
  final_ = cur;
}

Vec2 WaypointMobility::position(SimTime t) const {
  if (segments_.empty() || t <= t0_) {
    return segments_.empty() ? final_ : segments_.front().from;
  }
  // Segment ends are non-decreasing, so the active segment — the first one
  // with t < end — binary-searches in O(log segments). Random-waypoint
  // walks carry hundreds of segments and this runs once per MH per WLAN
  // tick.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime v, const Segment& s) { return v < s.end; });
  if (it == segments_.end()) return final_;
  const Segment& s = *it;
  const double total = (s.end - s.begin).sec();
  if (total <= 0) return s.to;
  const double f = (t - s.begin).sec() / total;
  return Vec2{s.from.x + (s.to.x - s.from.x) * f,
              s.from.y + (s.to.y - s.from.y) * f};
}

}  // namespace fhmip
