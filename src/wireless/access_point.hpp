#pragma once

#include "net/node.hpp"
#include "wireless/mobility.hpp"

namespace fhmip {

class SimplexLink;

/// Receives attachment events for mobile hosts under an access router.
/// Implemented by the Fast Handover AR agent.
class ArAttachListener {
 public:
  virtual ~ArAttachListener() = default;
  /// The MH completed a link-layer attach under one of this AR's APs.
  /// `downlink` is the wireless link the AR should use to reach it.
  virtual void on_mh_attached(MhId mh, NodeId ap, SimplexLink& downlink) = 0;
  /// The MH went dark (handoff blackout or left coverage).
  virtual void on_mh_detached(MhId mh) = 0;
};

/// An IEEE 802.11 access point: fixed position, circular coverage, bridges
/// to its access router's node. Per-MH radio links are owned by WlanManager.
class AccessPoint {
 public:
  AccessPoint(NodeId id, Node& ar_node, Vec2 pos, double radius_m,
              ArAttachListener* listener)
      : id_(id),
        ar_node_(ar_node),
        pos_(pos),
        radius_(radius_m),
        listener_(listener) {}

  NodeId id() const { return id_; }
  Node& ar_node() const { return ar_node_; }
  Vec2 position() const { return pos_; }
  double radius() const { return radius_; }
  ArAttachListener* listener() const { return listener_; }

  bool covers(Vec2 p) const { return distance(p, pos_) <= radius_; }
  double distance_to(Vec2 p) const { return distance(p, pos_); }

 private:
  NodeId id_;
  Node& ar_node_;
  Vec2 pos_;
  double radius_;
  ArAttachListener* listener_;
};

}  // namespace fhmip
