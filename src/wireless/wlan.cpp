#include "wireless/wlan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fhmip {
namespace {

// Spatial-hash cell key. Coordinates are truncated to 32 bits; two cells
// collide only when their indices differ by 2^32 cells — unreachable for
// any physical field.
std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

}  // namespace

WlanManager::WlanManager(Simulation& sim, WlanConfig cfg)
    : sim_(sim), cfg_(cfg) {
  obs::MetricsRegistry& m = sim_.metrics();
  m_handoffs_ = &m.counter("wlan/handoffs");
  m_blackout_ms_ = &m.histogram(
      "wlan/blackout_ms", {10, 20, 50, 100, 200, 300, 400, 500, 1000});
}

AccessPoint& WlanManager::add_ap(Node& ar_node, Vec2 pos, double radius_m,
                                 ArAttachListener* listener) {
  aps_.push_back(std::make_unique<AccessPoint>(next_ap_id_++, ar_node, pos,
                                               radius_m, listener));
  AccessPoint& ap = *aps_.back();
  ap_index_[ap.id()] = &ap;
  grid_dirty_ = true;
  return ap;
}

void WlanManager::rebuild_ap_grid() {
  ap_grid_.clear();
  // Cell edge = the largest coverage radius (>= 1 m so degenerate radii
  // don't explode the cell count). Any AP covering a point is then at most
  // one cell away from it in either axis.
  grid_cell_ = 1.0;
  for (const auto& ap : aps_) grid_cell_ = std::max(grid_cell_, ap->radius());
  for (const auto& ap : aps_) {
    const Vec2 p = ap->position();
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / grid_cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / grid_cell_));
    ap_grid_[cell_key(cx, cy)].push_back(ap.get());
  }
  grid_dirty_ = false;
}

const std::vector<AccessPoint*>& WlanManager::nearby_aps(Vec2 pos) {
  if (grid_dirty_) rebuild_ap_grid();
  nearby_scratch_.clear();
  const auto cx = static_cast<std::int64_t>(std::floor(pos.x / grid_cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(pos.y / grid_cell_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      auto it = ap_grid_.find(cell_key(cx + dx, cy + dy));
      if (it == ap_grid_.end()) continue;
      nearby_scratch_.insert(nearby_scratch_.end(), it->second.begin(),
                             it->second.end());
    }
  }
  // Ids are handed out in insertion order, so id order reproduces the exact
  // visit order of a full scan over `aps_`.
  std::sort(nearby_scratch_.begin(), nearby_scratch_.end(),
            [](const AccessPoint* a, const AccessPoint* b) {
              return a->id() < b->id();
            });
  return nearby_scratch_;
}

void WlanManager::add_mh(Node& mh_node, std::unique_ptr<MobilityModel> mob,
                         L2Callbacks* callbacks) {
  MhRecord rec;
  rec.node = &mh_node;
  rec.mobility = std::move(mob);
  rec.cb = callbacks;
  mhs_.emplace(mh_node.id(), std::move(rec));
}

WlanManager::~WlanManager() {
  sim_.cancel(tick_ev_);
  for (auto& [ap, ev] : ra_evs_) sim_.cancel(ev);
  for (EventId ev : oneshot_evs_) sim_.cancel(ev);
}

void WlanManager::start() {
  running_ = true;
  for (auto& [mh, rec] : mhs_) evaluate(mh, rec);
  tick_ev_ = sim_.in(cfg_.tick, [this] { tick(); });
  if (cfg_.send_router_adv) {
    for (auto& ap : aps_) {
      // Stagger advertisement phases so ARs don't beacon in lockstep.
      const SimTime phase =
          SimTime::from_seconds(sim_.rng().uniform(0.0, cfg_.ra_interval.sec()));
      AccessPoint* a = ap.get();
      ra_evs_[a->id()] = sim_.in(phase, [this, a] { send_router_adv(*a); });
    }
  }
}

void WlanManager::stop() { running_ = false; }

void WlanManager::tick() {
  if (!running_) return;
  for (auto& [mh, rec] : mhs_) evaluate(mh, rec);
  tick_ev_ = sim_.in(cfg_.tick, [this] { tick(); });
}

AccessPoint* WlanManager::best_candidate(Vec2 pos, NodeId exclude) {
  AccessPoint* best = nullptr;
  double best_dist = std::numeric_limits<double>::max();
  for (AccessPoint* ap : nearby_aps(pos)) {
    if (ap->id() == exclude) continue;
    const double d = ap->distance_to(pos);
    if (d <= ap->radius() && d < best_dist) {
      best = ap;
      best_dist = d;
    }
  }
  return best;
}

void WlanManager::evaluate(MhId mh, MhRecord& rec) {
  if (rec.in_handoff) return;
  const Vec2 pos = rec.mobility->position(sim_.now());

  if (rec.attached == kNoNode) {
    if (AccessPoint* target = best_candidate(pos, kNoNode)) {
      attach(mh, rec, *target);
    }
    return;
  }

  AccessPoint* cur = ap(rec.attached);
  const double d = cur->distance_to(pos);

  // Fire the anticipation trigger (L2-ST) once per candidate AP per visit.
  // Only APs in the 3x3 cell neighbourhood can cover us, so the grid walk
  // fires exactly the triggers the full scan would.
  for (AccessPoint* other : nearby_aps(pos)) {
    if (other->id() == rec.attached) continue;
    if (other->covers(pos) && !rec.triggered.count(other->id())) {
      rec.triggered.insert(other->id());
      if (rec.cb) rec.cb->on_l2_trigger(other->id(), other->ar_node());
    }
  }

  if (d > cur->radius()) {
    // Fell out of coverage without anticipating: hard detach, and if some
    // AP covers us, hand off immediately (non-anticipated path).
    if (AccessPoint* target = best_candidate(pos, rec.attached)) {
      start_handoff(mh, rec, *target);
    } else {
      detach(mh, rec);
      set_attached(mh, rec, kNoNode);
      if (rec.cb) rec.cb->on_detached();
    }
    return;
  }

  if (d > cur->radius() - cfg_.exit_margin_m) {
    if (AccessPoint* target = best_candidate(pos, rec.attached)) {
      if (cfg_.handoff_hysteresis_m <= 0 ||
          target->distance_to(pos) + cfg_.handoff_hysteresis_m < d) {
        start_handoff(mh, rec, *target);
      }
    }
  }
}

void WlanManager::force_handoff(MhId mh, NodeId target_ap, SimTime at) {
  oneshot_evs_.push_back(sim_.at(at, [this, mh, target_ap] {
    auto it = mhs_.find(mh);
    if (it == mhs_.end() || it->second.in_handoff) return;
    if (AccessPoint* target = ap(target_ap)) {
      if (target->id() != it->second.attached) {
        start_handoff(mh, it->second, *target);
      }
    }
  }));
}

void WlanManager::start_handoff(MhId mh, MhRecord& rec, AccessPoint& target) {
  rec.in_handoff = true;
  ++handoffs_;
  // Blackout: fixed (§4.1's 200 ms) or sampled from the empirical
  // probe/auth/assoc decomposition of Mishra et al.
  const SimTime blackout = cfg_.l2_phase_model
                               ? cfg_.l2_phase_model->sample(sim_.rng()).total()
                               : cfg_.l2_handoff_delay;
  last_blackout_ = blackout;
  m_handoffs_->inc();
  m_blackout_ms_->observe(blackout.millis_f());
  if (rec.cb) rec.cb->on_predisconnect(target.id(), target.ar_node());
  const NodeId target_id = target.id();
  oneshot_evs_.push_back(
      sim_.in(cfg_.predisconnect_guard, [this, mh, target_id, blackout] {
        auto& r = mhs_.at(mh);
        detach(mh, r);
        if (r.cb) r.cb->on_detached();
        oneshot_evs_.push_back(sim_.in(blackout, [this, mh, target_id] {
          attach(mh, mhs_.at(mh), *ap(target_id));
        }));
      }));
}

void WlanManager::detach(MhId mh, MhRecord& rec) {
  if (rec.attached == kNoNode) return;
  AccessPoint* cur = ap(rec.attached);
  RadioPair& pair = radio(*cur, mh);
  pair.down->set_up(false);
  pair.up->set_up(false);
  if (cur->listener()) cur->listener()->on_mh_detached(mh);
}

void WlanManager::attach(MhId mh, MhRecord& rec, AccessPoint& target) {
  RadioPair& pair = radio(target, mh);
  pair.down->set_up(true);
  pair.up->set_up(true);
  set_attached(mh, rec, target.id());
  rec.in_handoff = false;
  rec.triggered.clear();
  // The MH's way out is the uplink radio.
  rec.node->routes().set_default_route(Route::via(*pair.up));
  if (target.listener()) {
    target.listener()->on_mh_attached(mh, target.id(), *pair.down);
  }
  if (rec.cb) rec.cb->on_attached(target.id(), target.ar_node());
}

SimplexLink* WlanManager::uplink(NodeId ap_id, MhId mh) {
  AccessPoint* a = ap(ap_id);
  if (a == nullptr || mhs_.count(mh) == 0) return nullptr;
  return radio(*a, mh).up.get();
}

SimplexLink* WlanManager::downlink(NodeId ap_id, MhId mh) {
  AccessPoint* a = ap(ap_id);
  if (a == nullptr || mhs_.count(mh) == 0) return nullptr;
  return radio(*a, mh).down.get();
}

WlanManager::RadioPair& WlanManager::radio(const AccessPoint& ap, MhId mh) {
  const auto key = std::make_pair(ap.id(), mh);
  auto it = radios_.find(key);
  if (it == radios_.end()) {
    RadioPair pair;
    Node& mh_node = *mhs_.at(mh).node;
    pair.down = std::make_unique<SimplexLink>(
        sim_, mh_node, cfg_.bandwidth_bps, cfg_.delay, cfg_.queue_limit,
        ap.ar_node().name() + ">mh" + std::to_string(mh));
    pair.up = std::make_unique<SimplexLink>(
        sim_, ap.ar_node(), cfg_.bandwidth_bps, cfg_.delay, cfg_.queue_limit,
        "mh" + std::to_string(mh) + ">" + ap.ar_node().name());
    pair.down->set_up(false);
    pair.up->set_up(false);
    it = radios_.emplace(key, std::move(pair)).first;
  }
  return it->second;
}

void WlanManager::send_router_adv(AccessPoint& ap) {
  if (!running_) return;
  // The per-AP set mirrors `rec.attached` exactly (including hosts whose
  // record still points here during a handoff blackout), in MhId order —
  // the same hosts, in the same order, a full walk of `mhs_` would hit.
  if (auto sit = attached_mhs_.find(ap.id()); sit != attached_mhs_.end()) {
    for (MhId mh : sit->second) {
      MhRecord& rec = mhs_.at(mh);
      RouterAdvMsg adv;
      adv.ar_node = ap.ar_node().id();
      adv.ar_addr = ap.ar_node().address();
      adv.prefix = adv.ar_addr.net;
      adv.buffer_capable = true;  // the "B" flag (§2.4)
      auto p = make_control(sim_, ap.ar_node().address(),
                            rec.node->address(), adv, 80);
      radio(ap, mh).down->transmit(std::move(p));
    }
  }
  ra_evs_[ap.id()] = sim_.in(cfg_.ra_interval, [this, &ap] { send_router_adv(ap); });
}

void WlanManager::set_attached(MhId mh, MhRecord& rec, NodeId new_ap) {
  if (rec.attached == new_ap) return;
  if (rec.attached != kNoNode) attached_mhs_[rec.attached].erase(mh);
  if (new_ap != kNoNode) attached_mhs_[new_ap].insert(mh);
  rec.attached = new_ap;
}

Vec2 WlanManager::mh_position(MhId mh) const {
  auto it = mhs_.find(mh);
  return it == mhs_.end() ? Vec2{} : it->second.mobility->position(sim_.now());
}

NodeId WlanManager::attached_ap(MhId mh) const {
  auto it = mhs_.find(mh);
  return it == mhs_.end() ? kNoNode : it->second.attached;
}

bool WlanManager::in_handoff(MhId mh) const {
  auto it = mhs_.find(mh);
  return it != mhs_.end() && it->second.in_handoff;
}

AccessPoint* WlanManager::ap(NodeId id) {
  auto it = ap_index_.find(id);
  return it == ap_index_.end() ? nullptr : it->second;
}

}  // namespace fhmip
