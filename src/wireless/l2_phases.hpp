#pragma once

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// Empirical IEEE 802.11 handoff-latency model after Mishra, Shin & Arbaugh
/// (UMIACS-TR-2002-75), the thesis's citation [13]/[20] for the "60–400 ms"
/// range: the blackout decomposes into a probe (scan) phase that dominates
/// and varies wildly with the card/AP combination, plus small
/// authentication and (re)association exchanges. Each handoff samples the
/// three phases independently and uniformly from the configured ranges.
struct L2PhaseModel {
  // Defaults bracket the paper's measured envelope.
  SimTime probe_min = SimTime::millis(50);
  SimTime probe_max = SimTime::millis(350);
  SimTime auth_min = SimTime::millis(2);
  SimTime auth_max = SimTime::millis(20);
  SimTime assoc_min = SimTime::millis(2);
  SimTime assoc_max = SimTime::millis(30);

  struct Sample {
    SimTime probe;
    SimTime auth;
    SimTime assoc;
    SimTime total() const { return probe + auth + assoc; }
  };

  Sample sample(Rng& rng) const;

  SimTime min_total() const { return probe_min + auth_min + assoc_min; }
  SimTime max_total() const { return probe_max + auth_max + assoc_max; }

  /// A model matching the fixed 200 ms the thesis simulates (§4.1).
  static L2PhaseModel fixed(SimTime total);
};

}  // namespace fhmip
