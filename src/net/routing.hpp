#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace fhmip {

class SimplexLink;

/// A routing-table entry. Exactly one of the members is meaningful:
///  * `link`    — forward over this outgoing link;
///  * `handler` — hand the packet to a protocol hook (MAP interception, AR
///                delivery/handoff redirection, host routes for PCoA, ...).
struct Route {
  SimplexLink* link = nullptr;
  std::function<void(PacketPtr)> handler;

  static Route via(SimplexLink& l) { return Route{&l, nullptr}; }
  static Route to(std::function<void(PacketPtr)> h) {
    return Route{nullptr, std::move(h)};
  }
  bool valid() const { return link != nullptr || handler != nullptr; }
};

/// Longest-prefix-first lookup over our two-level address space:
/// host routes (full address) beat prefix routes (net) beat the default.
class RoutingTable {
 public:
  void set_prefix_route(std::uint32_t net, Route r) {
    prefix_[net] = std::move(r);
  }
  void set_host_route(Address a, Route r) { host_[a.key()] = std::move(r); }
  void remove_host_route(Address a) { host_.erase(a.key()); }
  void remove_prefix_route(std::uint32_t net) { prefix_.erase(net); }
  void set_default_route(Route r) { default_ = std::move(r); }
  void clear_prefix_routes() { prefix_.clear(); }

  bool has_host_route(Address a) const { return host_.count(a.key()) > 0; }

  /// Returns nullptr when no route matches.
  const Route* lookup(Address dst) const;

  std::size_t num_host_routes() const { return host_.size(); }
  std::size_t num_prefix_routes() const { return prefix_.size(); }

  /// Dump for debugging/tests: one `kind key -> target` line per route,
  /// host routes first, each section sorted by key. The backing maps are
  /// unordered (lookup is the hot path), so the dump takes a sorted
  /// snapshot — output is independent of insertion order and hash layout
  /// (DET-02).
  std::string format_table() const;

 private:
  std::unordered_map<std::uint64_t, Route> host_;
  std::unordered_map<std::uint32_t, Route> prefix_;
  // An invalid Route (no link, no handler) means "no default". Plain member
  // rather than std::optional: optional<Route>'s move-assign trips GCC 12's
  // -Wmaybe-uninitialized through the std::function payload under -O2.
  Route default_;
};

}  // namespace fhmip
