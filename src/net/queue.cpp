#include "net/queue.hpp"

namespace fhmip {

bool DropTailQueue::push(PacketPtr& p) {
  if (q_.size() >= limit_) {
    ++rejected_;
    return false;
  }
  bytes_ += p->size_bytes;
  ++enqueued_;
  q_.push_back(std::move(p));
  return true;
}

PacketPtr DropTailQueue::pop() {
  if (q_.empty()) return nullptr;
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

}  // namespace fhmip
