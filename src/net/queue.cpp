#include "net/queue.hpp"

namespace fhmip {

bool DropTailQueue::push(PacketPtr& p) {
  if (q_.size() >= limit_) {
    ++rejected_;
    return false;
  }
  bytes_ += p->size_bytes;
  ++enqueued_;
  q_.push_back(std::move(p));
  audit_invariants();
  return true;
}

PacketPtr DropTailQueue::pop() {
  if (q_.empty()) return nullptr;
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  ++dequeued_;
  FHMIP_AUDIT_MSG("net", bytes_ >= p->size_bytes,
                  "byte gauge " + std::to_string(bytes_) +
                      " below packet size " + std::to_string(p->size_bytes));
  bytes_ -= p->size_bytes;
  audit_invariants();
  return p;
}

}  // namespace fhmip
