#include "net/queue.hpp"

namespace fhmip {

bool DropTailQueue::push(PacketPtr& p) {
  if (size_ >= limit_) {
    ++rejected_;
    return false;
  }
  bytes_ += p->size_bytes;
  ++enqueued_;
  Packet* raw = p.release();
  raw->pool_next = nullptr;
  if (tail_ == nullptr) {
    head_ = raw;
  } else {
    tail_->pool_next = raw;
  }
  tail_ = raw;
  ++size_;
  audit_invariants();
  return true;
}

PacketPtr DropTailQueue::pop() {
  if (head_ == nullptr) return nullptr;
  ++dequeued_;
  PacketPtr p = detach_head();
  FHMIP_AUDIT_MSG("net", bytes_ >= p->size_bytes,
                  "byte gauge " + std::to_string(bytes_) +
                      " below packet size " + std::to_string(p->size_bytes));
  bytes_ -= p->size_bytes;
  audit_invariants();
  return p;
}

}  // namespace fhmip
