#include "net/routing.hpp"

namespace fhmip {

const Route* RoutingTable::lookup(Address dst) const {
  if (auto it = host_.find(dst.key()); it != host_.end()) return &it->second;
  if (auto it = prefix_.find(dst.net); it != prefix_.end()) return &it->second;
  if (default_.valid()) return &default_;
  return nullptr;
}

}  // namespace fhmip
