#include "net/routing.hpp"

#include <algorithm>
#include <vector>

#include "net/link.hpp"

namespace fhmip {

const Route* RoutingTable::lookup(Address dst) const {
  if (auto it = host_.find(dst.key()); it != host_.end()) return &it->second;
  if (auto it = prefix_.find(dst.net); it != prefix_.end()) return &it->second;
  if (default_.valid()) return &default_;
  return nullptr;
}

namespace {

std::string describe(const Route& r) {
  if (r.link != nullptr) {
    return r.link->name().empty() ? "link" : "link " + r.link->name();
  }
  return r.handler ? "handler" : "invalid";
}

}  // namespace

std::string RoutingTable::format_table() const {
  // Sorted snapshot: the unordered maps iterate in hash order, which
  // depends on insertion history; the dump must not.
  std::string out;
  std::vector<std::uint64_t> hosts;
  hosts.reserve(host_.size());
  for (const auto& [key, route] : host_) hosts.push_back(key);
  std::sort(hosts.begin(), hosts.end());
  for (std::uint64_t key : hosts) {
    const Address a{static_cast<std::uint32_t>(key >> 32),
                    static_cast<std::uint32_t>(key)};
    out += "host " + a.to_string() + " -> " + describe(host_.at(key)) + "\n";
  }
  std::vector<std::uint32_t> nets;
  nets.reserve(prefix_.size());
  for (const auto& [net, route] : prefix_) nets.push_back(net);
  std::sort(nets.begin(), nets.end());
  for (std::uint32_t net : nets) {
    out += "prefix " + std::to_string(net) + " -> " +
           describe(prefix_.at(net)) + "\n";
  }
  if (default_.valid()) out += "default -> " + describe(default_) + "\n";
  return out;
}

}  // namespace fhmip
