#include "net/network.hpp"

#include <limits>
#include <queue>
#include <unordered_map>

namespace fhmip {

Node& Network::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(sim_, next_node_id_++, name));
  return *nodes_.back();
}

DuplexLink& Network::connect(Node& a, Node& b, double bandwidth_bps,
                             SimTime delay, std::size_t queue_limit,
                             QueueDiscipline discipline) {
  links_.push_back(std::make_unique<DuplexLink>(
      sim_, a, b, bandwidth_bps, delay, queue_limit,
      a.name() + "-" + b.name(), discipline));
  return *links_.back();
}

void Network::compute_routes() {
  // Adjacency: node index -> (neighbor index, link toward neighbor, cost).
  std::unordered_map<const Node*, std::size_t> index;
  for (std::size_t i = 0; i < nodes_.size(); ++i) index[nodes_[i].get()] = i;

  struct Edge {
    std::size_t to;
    SimplexLink* link;
    std::int64_t cost;
  };
  std::vector<std::vector<Edge>> adj(nodes_.size());
  for (auto& l : links_) {
    const std::size_t ia = index.at(&l->a());
    const std::size_t ib = index.at(&l->b());
    // Cost: propagation delay plus one microsecond "hop" charge so
    // zero-delay links still cost something and route lengths stay finite
    // and comparable.
    const std::int64_t cab =
        (l->a_to_b().delay() + SimTime::micros(1)).ns();
    adj[ia].push_back({ib, &l->a_to_b(), cab});
    adj[ib].push_back({ia, &l->b_to_a(), cab});
  }

  for (std::size_t src = 0; src < nodes_.size(); ++src) {
    // Dijkstra from src; record the first-hop link used to reach each node.
    constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
    std::vector<std::int64_t> dist(nodes_.size(), kInf);
    std::vector<SimplexLink*> first_hop(nodes_.size(), nullptr);
    using Item = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const Edge& e : adj[u]) {
        const std::int64_t nd = d + e.cost;
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          first_hop[e.to] = (u == src) ? e.link : first_hop[u];
          pq.push({nd, e.to});
        }
      }
    }
    // Install a prefix route on src for every advertised net owned by a
    // reachable node. Nets owned by src itself get no route here (local
    // delivery / agent handlers take care of them).
    for (std::size_t dst = 0; dst < nodes_.size(); ++dst) {
      if (dst == src || first_hop[dst] == nullptr) continue;
      for (const auto& [addr, advertised] : nodes_[dst]->addresses()) {
        if (!advertised) continue;
        bool owned_by_src = false;
        for (const auto& [own, adv] : nodes_[src]->addresses()) {
          if (adv && own.net == addr.net) owned_by_src = true;
        }
        if (!owned_by_src) {
          nodes_[src]->routes().set_prefix_route(addr.net,
                                                 Route::via(*first_hop[dst]));
        }
      }
    }
  }
}

}  // namespace fhmip
