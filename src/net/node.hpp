#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "net/routing.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

/// A network node: addresses, a routing table, local delivery demux.
///
/// Delivery pipeline (`receive`):
///   1. if the destination is one of this node's addresses:
///        a. tunneled packet → decapsulate and re-forward (tunnel endpoint);
///        b. control message → offer to registered control handlers;
///        c. data → port demux.
///   2. otherwise forward: host route → prefix route → default route;
///      TTL is decremented and exhaustion drops the packet.
class Node {
 public:
  /// Handler for control messages. Return true to consume the packet.
  using ControlHandler = std::function<bool(PacketPtr&)>;
  using PortHandler = std::function<void(PacketPtr)>;
  /// Handle for a registered control handler; 0 is never issued.
  using ControlHandlerId = std::uint64_t;

  Node(Simulation& sim, NodeId id, std::string name);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulation& sim() { return sim_; }

  /// Registers an address owned by this node. `advertised` addresses make
  /// the node the routing owner of the address's net (see
  /// Network::compute_routes); mobile hosts register care-of addresses
  /// unadvertised.
  void add_address(Address a, bool advertised = true);
  void remove_address(Address a);
  bool has_address(Address a) const;
  /// First advertised address (the node's "router address").
  Address address() const;
  const std::vector<std::pair<Address, bool>>& addresses() const {
    return addrs_;
  }

  RoutingTable& routes() { return routes_; }
  const RoutingTable& routes() const { return routes_; }

  /// Entry point for packets arriving from links.
  void receive(PacketPtr p);

  /// Entry point for locally originated packets (agents): routed like any
  /// transit packet but without a TTL decrement on the first hop.
  void send(PacketPtr p);

  void register_port(std::uint16_t port, PortHandler h);
  void unregister_port(std::uint16_t port);
  /// Registers a control handler; the returned id removes it again. Agents
  /// that capture `this` MUST remove their handler on destruction, or a
  /// client destroyed before its node leaves a dangling callback.
  ControlHandlerId add_control_handler(ControlHandler h);
  void remove_control_handler(ControlHandlerId id);

  /// Packet-mangling hook applied to every packet this node forwards
  /// (before route lookup). Used for edge functions such as Diffserv
  /// marking; pass nullptr to clear.
  void set_forward_filter(std::function<void(Packet&)> f) {
    forward_filter_ = std::move(f);
  }

  std::uint64_t packets_forwarded() const { return forwarded_; }
  std::uint64_t packets_received_local() const { return received_local_; }
  /// Unclaimed control messages destroyed at this node (kDiscard events).
  std::uint64_t packets_discarded() const { return discarded_; }

 private:
  void forward(PacketPtr p, bool decrement_ttl);
  void deliver_local(PacketPtr p);
  void drop(PacketPtr p, DropReason reason);

  Simulation& sim_;
  NodeId id_;
  std::string name_;
  std::vector<std::pair<Address, bool>> addrs_;
  RoutingTable routes_;
  std::unordered_map<std::uint16_t, PortHandler> ports_;
  std::vector<std::pair<ControlHandlerId, ControlHandler>> control_handlers_;
  ControlHandlerId next_control_handler_id_ = 1;
  std::function<void(Packet&)> forward_filter_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t received_local_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace fhmip
