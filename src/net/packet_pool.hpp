#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/check.hpp"

namespace fhmip {

/// Slab allocator for packets — the scheduler-slab idiom (sim/scheduler.hpp)
/// applied to the data plane. Packets live in fixed-size chunks with stable
/// addresses; freed slots are recycled through an intrusive free list
/// (Packet::pool_next), so the steady-state cost of a send is a free-list
/// pop instead of a malloc, and the packet's tunnel stack / message storage
/// is reused in place.
///
/// Ownership discipline is unchanged from the heap era: `acquire()` returns
/// a PacketPtr (unique_ptr with a pool-aware deleter) and exactly one owner
/// holds it until the deleter returns the slot. On top of that, every slot
/// carries a generation counter bumped on each release, so a `Handle`
/// (slot, generation) taken while a packet is live goes observably stale
/// the moment the packet dies — the same protection EventId gives scheduler
/// slots.
///
/// Audits (FHMIP_AUDIT, level >= 1): double-release of a slot, release of a
/// foreign/corrupt pointer, and slot leaks at pool destruction (live packets
/// must all have been returned — the pool outlives every owner because it is
/// the first member of Simulation). Level 2 recounts the free list.
///
/// Not thread-safe; one pool per Simulation (share-nothing sweeps).
class PacketPool {
 public:
  /// Weak, generation-checked reference to a pooled packet (diagnostics and
  /// tests; ownership stays with the PacketPtr).
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// Returns an owning pointer to a fresh (default-field) packet. Recycles
  /// a freed slot when one exists; grows the slab by one chunk otherwise.
  PacketPtr acquire();

  /// The generation-checked view of a live packet. Pre: p was acquired from
  /// this pool and is still live.
  Handle handle_of(const Packet& p) const {
    FHMIP_AUDIT("pool", p.pool_home == this && p.pool_slot < meta_.size());
    return Handle{p.pool_slot, meta_[p.pool_slot].gen};
  }

  /// Resolves a handle: the packet if that incarnation is still live,
  /// nullptr once the slot was released (or re-acquired — the generation
  /// bump makes the old handle stale).
  Packet* get(Handle h) {
    if (h.slot >= meta_.size()) return nullptr;
    SlotMeta& m = meta_[h.slot];
    if (!m.live || m.gen != h.gen) return nullptr;
    return slot_ptr(h.slot);
  }

  std::size_t live() const { return live_; }
  std::size_t free_slots() const { return free_count_; }
  /// Total slots ever materialised (live + free).
  std::size_t capacity() const { return meta_.size(); }
  std::uint64_t total_acquired() const { return acquired_; }
  /// Acquisitions served from the free list rather than slab growth.
  std::uint64_t total_recycled() const { return recycled_; }

  /// Slab consistency audits (no-op at audit level 0; free-list recount at
  /// level 2).
  void audit_invariants() const;

 private:
  friend struct PacketDeleter;

  // 256 packets per chunk: large enough to amortise growth, small enough
  // that paper-scale runs (tens of packets in flight) stay in one chunk.
  static constexpr std::size_t kChunkPackets = 256;

  struct SlotMeta {
    std::uint32_t gen = 0;
    bool live = false;
  };

  Packet* slot_ptr(std::uint32_t slot) {
    return &chunks_[slot / kChunkPackets][slot % kChunkPackets];
  }

  void grow();
  void release(Packet* p) noexcept;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<SlotMeta> meta_;     // indexed by Packet::pool_slot
  Packet* free_head_ = nullptr;    // intrusive via Packet::pool_next
  std::size_t free_count_ = 0;
  std::size_t live_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace fhmip
