#pragma once

#include <cstdint>
#include <variant>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace fhmip {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0;
/// A mobile host is identified by its node id in control messages (the
/// protocol equivalent is the link-layer address / home address pair).
using MhId = NodeId;

// ---------------------------------------------------------------------------
// Buffer management extension payloads (§3.2.2, piggybacked on Fast Handover
// messages per the thesis; also usable standalone as in the smooth-handover
// baseline, §2.4).
// ---------------------------------------------------------------------------

/// Buffer Initialization (BI) / Buffer Request (BR) contents: the mobile host
/// asks for `size_pkts` of buffer space. `start_time` is the safety valve for
/// fast-moving hosts (the PAR begins buffering then even without an FBU);
/// `lifetime` bounds how long the allocation may be held. Both zero = cancel.
struct BufferRequest {
  std::uint32_t size_pkts = 0;
  SimTime start_time;  // absolute; zero = no auto-start
  SimTime lifetime;    // relative; zero = cancel request
};

/// Buffer Acknowledgement (BA) contents: what each router actually granted.
struct BufferGrant {
  std::uint32_t nar_pkts = 0;
  std::uint32_t par_pkts = 0;
  bool nar_ok = false;
  bool par_ok = false;
};

// ---------------------------------------------------------------------------
// Router discovery / Fast Handover control messages (§2.3, §3.2).
// ---------------------------------------------------------------------------

/// Router Advertisement. `buffer_capable` is the "B" flag from the
/// smooth-handover baseline (§2.4 step I).
struct RouterAdvMsg {
  NodeId ar_node = kNoNode;
  Address ar_addr;
  std::uint32_t prefix = 0;
  bool buffer_capable = false;
};

/// Control-message transaction sequence number. A sender stamps a fresh
/// value on each new exchange and reuses it verbatim on retransmissions;
/// receivers treat an already-seen sequence idempotently (resend the cached
/// answer, never redo side effects). 0 means "unsequenced" (legacy senders).
using CtrlSeq = std::uint32_t;
inline constexpr CtrlSeq kNoCtrlSeq = 0;

/// RtSolPr (+ piggybacked BI when `has_bi`). The MH names the link-layer
/// target it anticipates attaching to (AP id), the PAR resolves it to an AR.
struct RtSolPrMsg {
  MhId mh = kNoNode;
  NodeId target_ap = kNoNode;
  BufferRequest bi;
  bool has_bi = false;
  /// Handover authentication token (0 = none); verified by the NAR.
  std::uint64_t auth_token = 0;
  CtrlSeq seq = kNoCtrlSeq;
};

/// PrRtAdv: NAR prefix information + result of the buffer negotiation.
struct PrRtAdvMsg {
  MhId mh = kNoNode;
  NodeId nar_node = kNoNode;
  Address nar_addr;
  std::uint32_t nar_prefix = 0;
  Address ncoa;           // the validated new care-of address
  bool intra_ar = false;  // §3.2.2.4: pure link-layer handoff, same AR
  BufferGrant grant;
  CtrlSeq seq = kNoCtrlSeq;  // echoes the RtSolPr being answered
};

/// Handover Initiate (+ piggybacked Buffer Request when `has_br`).
struct HiMsg {
  MhId mh = kNoNode;
  Address pcoa;
  Address ncoa;  // proposed NCoA (zero if unknown)
  Address par_addr;
  BufferRequest br;
  bool has_br = false;
  /// The MH's authentication token, relayed from RtSolPr for the NAR.
  std::uint64_t auth_token = 0;
  CtrlSeq seq = kNoCtrlSeq;
};

/// Handover Acknowledge (+ piggybacked Buffer Ack). `ncoa` is the address
/// the NAR validated (or substituted, when the proposed one collided with
/// an address already in use on its subnet — §2.3.2's NCoA verification).
struct HackMsg {
  MhId mh = kNoNode;
  bool accepted = false;
  Address ncoa;
  std::uint32_t granted_pkts = 0;
  bool buffer_ok = false;
  CtrlSeq seq = kNoCtrlSeq;  // echoes the HI being answered
};

/// Fast Binding Update: start redirecting PCoA traffic through the tunnel.
struct FbuMsg {
  MhId mh = kNoNode;
  Address pcoa;
  Address nar_addr;            // where to tunnel (needed when no HI ran)
  bool from_new_link = false;  // non-anticipated handoff path
  CtrlSeq seq = kNoCtrlSeq;
};

struct FbackMsg {
  MhId mh = kNoNode;
  bool ok = false;
  CtrlSeq seq = kNoCtrlSeq;  // echoes the FBU being answered
};

/// Fast Neighbour Advertisement (+ piggybacked Buffer Forward when `has_bf`).
struct FnaMsg {
  MhId mh = kNoNode;
  bool has_bf = false;
  CtrlSeq seq = kNoCtrlSeq;
};

/// NAR → MH acknowledgement of an FNA (RFC 5568's NAACK option). Lets the
/// MH stop retransmitting the FNA+BF; a duplicate FNA is answered with a
/// fresh ack but no repeated side effects.
struct FnaAckMsg {
  MhId mh = kNoNode;
  CtrlSeq seq = kNoCtrlSeq;  // echoes the FNA being answered
};

/// Buffer Forward: release the buffer to the mobile host (§3.2.2.3). Sent
/// NAR→PAR on FNA+BF receipt; also MH→AR in the link-layer handoff case.
/// In the standalone smooth-handover baseline the MH sets `forward_to` to
/// its new care-of address and the buffered packets are tunneled there.
struct BfMsg {
  MhId mh = kNoNode;
  Address forward_to;
};

/// NAR→PAR notification that the NAR-side buffer filled up (Case 1.b: the
/// PAR buffers the rest of the high-priority packets).
struct BufferFullMsg {
  MhId mh = kNoNode;
};

// Standalone BI/BA (smooth-handover baseline mode, §2.4).
struct BiMsg {
  MhId mh = kNoNode;
  BufferRequest req;
};
struct BaMsg {
  MhId mh = kNoNode;
  bool ok = false;
  std::uint32_t granted_pkts = 0;
};

// ---------------------------------------------------------------------------
// Mobile IP / HMIPv6 messages (§2.1, §2.2).
// ---------------------------------------------------------------------------

/// MH → MAP (or CN) binding update: regional address now maps to `lcoa`.
/// With `simultaneous` set the binding is added as a secondary care-of
/// address and traffic is bicast to every binding — the "simultaneous
/// binding" alternative of §3.1.1 (a non-simultaneous update clears any
/// secondary binding).
struct BindingUpdateMsg {
  MhId mh = kNoNode;
  Address regional;  // RCoA / home address being bound
  Address lcoa;
  SimTime lifetime;
  bool simultaneous = false;
};

struct BindingAckMsg {
  MhId mh = kNoNode;
  bool accepted = false;
};

/// MIPv4 agent discovery (§2.1.1 stage 1): agents advertise periodically;
/// hosts may solicit instead of waiting.
struct AgentAdvertisementMsg {
  NodeId agent_node = kNoNode;
  Address agent_addr;
  Address care_of_addr;  // the CoA offered to visitors (FA-CoA)
  bool is_home_agent = false;
  bool is_foreign_agent = false;
  SimTime registration_lifetime;
  std::uint32_t sequence = 0;
};
struct AgentSolicitationMsg {
  MhId mh = kNoNode;
};

/// MIPv4-style registration (home agent path; lifetime zero = deregister).
/// `home_agent` lets a relaying foreign agent know where to forward.
struct RegistrationRequestMsg {
  MhId mh = kNoNode;
  Address home_addr;
  Address home_agent;
  Address coa;
  SimTime lifetime;
};
struct RegistrationReplyMsg {
  MhId mh = kNoNode;
  Address home_addr;
  bool accepted = false;
  SimTime lifetime;
};

// ---------------------------------------------------------------------------
// Transport payloads.
// ---------------------------------------------------------------------------

/// TCP segment header (data and ACK share the struct; pure ACKs have len 0).
struct TcpSegMsg {
  std::uint32_t seq = 0;  // first byte of payload
  std::uint32_t ack = 0;  // next expected byte (valid when is_ack)
  std::uint32_t len = 0;  // payload bytes
  bool is_ack = false;
};

/// The message payload carried by a packet. `std::monostate` = plain data.
using MessageVariant =
    std::variant<std::monostate, RouterAdvMsg, RtSolPrMsg, PrRtAdvMsg, HiMsg,
                 HackMsg, FbuMsg, FbackMsg, FnaMsg, FnaAckMsg, BfMsg,
                 BufferFullMsg, BiMsg, BaMsg, BindingUpdateMsg, BindingAckMsg,
                 AgentAdvertisementMsg, AgentSolicitationMsg,
                 RegistrationRequestMsg, RegistrationReplyMsg, TcpSegMsg>;

/// True for protocol-control payloads (everything except plain data / TCP).
bool is_control(const MessageVariant& m);

/// Human-readable message-type name for traces.
const char* message_name(const MessageVariant& m);

}  // namespace fhmip
