#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "net/priority_queue.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

class Node;

/// Transmit-queue discipline for a link (§3.3's Diffserv note: the scheme
/// can ride on class-aware forwarding).
enum class QueueDiscipline { kDropTail, kClassPriority };

/// A unidirectional link with finite bandwidth, fixed propagation delay and
/// a drop-tail queue — the ns-2 link model. A packet occupies the
/// transmitter for size*8/bandwidth seconds, then arrives delay later.
///
/// Wireless behaviour: when `set_up(false)` (MH out of range / L2 handoff
/// blackout), packets attempted or in flight are dropped with
/// DropReason::kWirelessDown — the single-radio disconnection of §2.4.
class SimplexLink {
 public:
  SimplexLink(Simulation& sim, Node& to, double bandwidth_bps, SimTime delay,
              std::size_t queue_limit, std::string name = {},
              QueueDiscipline discipline = QueueDiscipline::kDropTail);

  /// Hands the packet to the link. May drop (queue overflow / link down /
  /// random loss).
  void transmit(PacketPtr p);

  void set_up(bool up);
  bool up() const { return up_; }

  /// Random per-packet loss (wireless corruption model); 0 disables.
  void set_loss_rate(double p) { loss_rate_ = p; }
  double loss_rate() const { return loss_rate_; }

  /// Scripted fault hook (src/fault): inspects every packet handed to the
  /// link before queueing; returning true kills it as kFaultInjected. An
  /// empty function clears the hook.
  using TxFilter = std::function<bool(const Packet&)>;
  void set_tx_filter(TxFilter f) { tx_filter_ = std::move(f); }
  bool has_tx_filter() const { return static_cast<bool>(tx_filter_); }

  double bandwidth_bps() const { return bandwidth_; }
  SimTime delay() const { return delay_; }
  SimTime tx_time(std::uint32_t bytes) const;
  Node& destination() const { return to_; }
  const std::string& name() const { return name_; }

  /// The drop-tail queue (valid for the default discipline, else nullptr).
  DropTailQueue* queue();
  /// The class-priority queue (valid for kClassPriority, else nullptr).
  ClassPriorityQueue* priority_queue();
  std::size_t queue_size() const;

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_dropped() const { return dropped_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  bool busy() const { return busy_; }

  ~SimplexLink();

 private:
  bool queue_push(PacketPtr& p);
  PacketPtr queue_pop();
  void drop_queued();
  void start_tx(PacketPtr p);
  void finish_tx();
  void deliver_front();

  /// Appends an owned packet to the in-flight (propagation) FIFO.
  void fly_append(PacketPtr p) {
    Packet* raw = p.release();
    raw->pool_next = nullptr;
    if (fly_tail_ == nullptr) {
      fly_head_ = raw;
    } else {
      fly_tail_->pool_next = raw;
    }
    fly_tail_ = raw;
  }

  /// Unlinks the oldest in-flight packet and rewraps it.
  PacketPtr fly_detach_head() {
    Packet* raw = fly_head_;
    fly_head_ = raw->pool_next;
    if (fly_head_ == nullptr) fly_tail_ = nullptr;
    raw->pool_next = nullptr;
    return PacketPtr(raw);
  }

  void drop(PacketPtr p, DropReason reason);

  Simulation& sim_;
  Node& to_;
  double bandwidth_;
  SimTime delay_;
  std::variant<DropTailQueue, ClassPriorityQueue> queue_;
  std::string name_;
  // Registry-owned series (null for anonymous links: metrics need a stable
  // name to key on, and unnamed links are throwaway test fixtures).
  obs::Counter* m_delivered_ = nullptr;  // link/<name>/delivered_pkts
  obs::Counter* m_dropped_ = nullptr;    // link/<name>/dropped_pkts
  obs::Counter* m_bytes_ = nullptr;      // link/<name>/bytes
  obs::Gauge* m_queue_ = nullptr;        // link/<name>/queue_pkts
  // Packet occupying the transmitter (set while busy_), and the intrusive
  // FIFO of packets that finished serializing and are propagating toward
  // `to_`. Chained through Packet::pool_next: the completion events are
  // plain `[this]` lambdas (no per-packet heap holder), and the link — not
  // the scheduler — owns packets in flight. Propagation delay is constant
  // per link and serialize-end times are monotonic, so deliveries fire in
  // FIFO order and deliver_front() always matches its event.
  PacketPtr serializing_;
  Packet* fly_head_ = nullptr;
  Packet* fly_tail_ = nullptr;
  bool up_ = true;
  bool busy_ = false;
  double loss_rate_ = 0.0;
  TxFilter tx_filter_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

/// A pair of simplex links, the usual wired duplex link.
class DuplexLink {
 public:
  DuplexLink(Simulation& sim, Node& a, Node& b, double bandwidth_bps,
             SimTime delay, std::size_t queue_limit, std::string name = {},
             QueueDiscipline discipline = QueueDiscipline::kDropTail);

  SimplexLink& toward(const Node& n);
  SimplexLink& a_to_b() { return ab_; }
  SimplexLink& b_to_a() { return ba_; }
  Node& a() const { return a_; }
  Node& b() const { return b_; }

 private:
  Node& a_;
  Node& b_;
  SimplexLink ab_;
  SimplexLink ba_;
};

}  // namespace fhmip
