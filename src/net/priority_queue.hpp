#pragma once

#include <array>

#include "net/queue.hpp"

namespace fhmip {

/// Strict-priority queue over the Table 3.1 service classes, the Diffserv
/// PHB-style discipline §3.3 anticipates: real-time is always served first,
/// then high priority, then best effort (unspecified maps to best effort).
/// Each class has its own FIFO share of the packet limit, so a best-effort
/// burst cannot starve real-time *admission* either.
class ClassPriorityQueue {
 public:
  /// `limit_pkts` is the total; each class gets a proportional share
  /// (remainders go to the real-time band).
  explicit ClassPriorityQueue(std::size_t limit_pkts = 50);

  /// Admission into the packet's class band; false = that band is full.
  bool push(PacketPtr& p);

  /// Serves the highest-priority non-empty band.
  PacketPtr pop();

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t limit() const { return limit_; }
  std::size_t band_size(TrafficClass c) const;
  std::size_t band_limit(TrafficClass c) const;

  std::uint64_t total_enqueued() const { return enqueued_; }
  std::uint64_t total_rejected() const { return rejected_; }

  template <typename Fn>
  void drain(Fn&& fn) {
    for (auto& band : bands_) {
      band.drain(fn);
    }
  }

  /// Cross-band accounting audits (no-op at audit level 0).
  void audit_invariants() const;

 private:
  static std::size_t band_index(TrafficClass c);

  std::size_t limit_;
  std::array<DropTailQueue, 3> bands_;  // RT, HP, BE
  std::uint64_t enqueued_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace fhmip
