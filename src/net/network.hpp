#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

/// Owns a topology's nodes and wired links and computes static shortest-path
/// routes (Dijkstra, weighted by link propagation delay, hop count as
/// tiebreaker). Wireless links are owned by the WLAN layer and layered on
/// top via host/default routes.
class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Node& add_node(const std::string& name);

  DuplexLink& connect(Node& a, Node& b, double bandwidth_bps, SimTime delay,
                      std::size_t queue_limit = 100,
                      QueueDiscipline discipline = QueueDiscipline::kDropTail);

  /// Installs prefix routes on every node for every advertised address net.
  /// Call after the wired topology is final; idempotent.
  void compute_routes();

  Simulation& sim() { return sim_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  Node& node(std::size_t index) { return *nodes_.at(index); }

 private:
  Simulation& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<DuplexLink>> links_;
  NodeId next_node_id_ = 1;
};

}  // namespace fhmip
