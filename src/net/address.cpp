#include "net/address.hpp"

#include <cstdio>

namespace fhmip {

std::string Address::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u:%u", net, host);
  return buf;
}

}  // namespace fhmip
