#include "net/packet.hpp"

#include <cassert>

#include "sim/simulation.hpp"

namespace fhmip {

bool is_control(const MessageVariant& m) {
  return !std::holds_alternative<std::monostate>(m) &&
         !std::holds_alternative<TcpSegMsg>(m);
}

const char* message_name(const MessageVariant& m) {
  struct Visitor {
    const char* operator()(std::monostate) const { return "data"; }
    const char* operator()(const RouterAdvMsg&) const { return "RtAdv"; }
    const char* operator()(const RtSolPrMsg&) const { return "RtSolPr"; }
    const char* operator()(const PrRtAdvMsg&) const { return "PrRtAdv"; }
    const char* operator()(const HiMsg&) const { return "HI"; }
    const char* operator()(const HackMsg&) const { return "HAck"; }
    const char* operator()(const FbuMsg&) const { return "FBU"; }
    const char* operator()(const FbackMsg&) const { return "FBAck"; }
    const char* operator()(const FnaMsg&) const { return "FNA"; }
    const char* operator()(const FnaAckMsg&) const { return "FNAAck"; }
    const char* operator()(const BfMsg&) const { return "BF"; }
    const char* operator()(const BufferFullMsg&) const { return "BufferFull"; }
    const char* operator()(const BiMsg&) const { return "BI"; }
    const char* operator()(const BaMsg&) const { return "BA"; }
    const char* operator()(const BindingUpdateMsg&) const { return "BU"; }
    const char* operator()(const BindingAckMsg&) const { return "BAck"; }
    const char* operator()(const AgentAdvertisementMsg&) const {
      return "AgentAdv";
    }
    const char* operator()(const AgentSolicitationMsg&) const {
      return "AgentSol";
    }
    const char* operator()(const RegistrationRequestMsg&) const {
      return "RegReq";
    }
    const char* operator()(const RegistrationReplyMsg&) const {
      return "RegRep";
    }
    const char* operator()(const TcpSegMsg&) const { return "TCP"; }
  };
  return std::visit(Visitor{}, m);
}

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kUnspecified:
      return "unspecified";
    case TrafficClass::kRealTime:
      return "real-time";
    case TrafficClass::kHighPriority:
      return "high-priority";
    case TrafficClass::kBestEffort:
      return "best-effort";
  }
  return "?";
}

TrafficClass effective_class(TrafficClass c) {
  return c == TrafficClass::kUnspecified ? TrafficClass::kBestEffort : c;
}

void Packet::encapsulate(Address outer) {
  tunnel_stack.push_back(dst);
  dst = outer;
  size_bytes += kIpHeaderBytes;
}

void Packet::decapsulate() {
  assert(!tunnel_stack.empty());
  dst = tunnel_stack.back();
  tunnel_stack.pop_back();
  size_bytes -= kIpHeaderBytes;
}

PacketPtr Packet::clone(std::uint64_t new_uid) const {
  auto p = std::make_unique<Packet>();
  p->uid = new_uid;
  p->src = src;
  p->dst = dst;
  p->size_bytes = size_bytes;
  p->ttl = ttl;
  p->tclass = tclass;
  p->flow = flow;
  p->seq = seq;
  p->src_port = src_port;
  p->dst_port = dst_port;
  p->created_at = created_at;
  p->directive = directive;
  p->tunnel_stack = tunnel_stack;
  p->msg = msg;
  return p;
}

void trace_packet(Simulation& sim, TraceKind kind, const char* where,
                  const Packet& p, std::optional<DropReason> reason) {
  if (!sim.trace().enabled()) return;
  TraceEvent e;
  e.at = sim.now();
  e.kind = kind;
  e.where = where;
  e.uid = p.uid;
  e.flow = p.flow;
  e.seq = p.seq;
  e.bytes = p.size_bytes;
  e.msg = message_name(p.msg);
  e.reason = reason;
  sim.trace().emit(e);
}

PacketPtr make_packet(Simulation& sim, Address src, Address dst,
                      std::uint32_t size_bytes) {
  auto p = std::make_unique<Packet>();
  p->uid = sim.next_uid();
  p->src = src;
  p->dst = dst;
  p->size_bytes = size_bytes;
  p->created_at = sim.now();
  // No kCreate here: flow/seq/msg are stamped by the caller, so the
  // creation trace is emitted by the transports (udp/tcp), make_control,
  // and the bicast clone site once the packet is fully described.
  return p;
}

PacketPtr make_control(Simulation& sim, Address src, Address dst,
                       MessageVariant msg, std::uint32_t size_bytes) {
  auto p = make_packet(sim, src, dst, size_bytes);
  p->msg = std::move(msg);
  trace_packet(sim, TraceKind::kCreate, "origin", *p);
  return p;
}

}  // namespace fhmip
