#include "net/packet.hpp"

#include <cassert>
#include <string>

#include "net/packet_pool.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

bool is_control(const MessageVariant& m) {
  return !std::holds_alternative<std::monostate>(m) &&
         !std::holds_alternative<TcpSegMsg>(m);
}

const char* message_name(const MessageVariant& m) {
  struct Visitor {
    const char* operator()(std::monostate) const { return "data"; }
    const char* operator()(const RouterAdvMsg&) const { return "RtAdv"; }
    const char* operator()(const RtSolPrMsg&) const { return "RtSolPr"; }
    const char* operator()(const PrRtAdvMsg&) const { return "PrRtAdv"; }
    const char* operator()(const HiMsg&) const { return "HI"; }
    const char* operator()(const HackMsg&) const { return "HAck"; }
    const char* operator()(const FbuMsg&) const { return "FBU"; }
    const char* operator()(const FbackMsg&) const { return "FBAck"; }
    const char* operator()(const FnaMsg&) const { return "FNA"; }
    const char* operator()(const FnaAckMsg&) const { return "FNAAck"; }
    const char* operator()(const BfMsg&) const { return "BF"; }
    const char* operator()(const BufferFullMsg&) const { return "BufferFull"; }
    const char* operator()(const BiMsg&) const { return "BI"; }
    const char* operator()(const BaMsg&) const { return "BA"; }
    const char* operator()(const BindingUpdateMsg&) const { return "BU"; }
    const char* operator()(const BindingAckMsg&) const { return "BAck"; }
    const char* operator()(const AgentAdvertisementMsg&) const {
      return "AgentAdv";
    }
    const char* operator()(const AgentSolicitationMsg&) const {
      return "AgentSol";
    }
    const char* operator()(const RegistrationRequestMsg&) const {
      return "RegReq";
    }
    const char* operator()(const RegistrationReplyMsg&) const {
      return "RegRep";
    }
    const char* operator()(const TcpSegMsg&) const { return "TCP"; }
  };
  return std::visit(Visitor{}, m);
}

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kUnspecified:
      return "unspecified";
    case TrafficClass::kRealTime:
      return "real-time";
    case TrafficClass::kHighPriority:
      return "high-priority";
    case TrafficClass::kBestEffort:
      return "best-effort";
  }
  return "?";
}

TrafficClass effective_class(TrafficClass c) {
  return c == TrafficClass::kUnspecified ? TrafficClass::kBestEffort : c;
}

TunnelStack::TunnelStack(const TunnelStack& o)
    : depth_(o.depth_), inline_(o.inline_) {
  if (o.spill_ != nullptr) spill_ = std::make_unique<std::vector<Address>>(*o.spill_);
}

TunnelStack& TunnelStack::operator=(const TunnelStack& o) {
  if (this == &o) return *this;
  depth_ = o.depth_;
  inline_ = o.inline_;
  spill_ = o.spill_ != nullptr
               ? std::make_unique<std::vector<Address>>(*o.spill_)
               : nullptr;
  return *this;
}

TunnelStack::TunnelStack(TunnelStack&& o) noexcept
    : depth_(o.depth_), inline_(o.inline_), spill_(std::move(o.spill_)) {
  o.depth_ = 0;
}

TunnelStack& TunnelStack::operator=(TunnelStack&& o) noexcept {
  if (this == &o) return *this;
  depth_ = o.depth_;
  inline_ = o.inline_;
  spill_ = std::move(o.spill_);
  o.depth_ = 0;
  return *this;
}

void TunnelStack::push_spill(Address a) {
  // Cold overflow: FHMIP nests at most HA-over-MAP tunnels (depth 2), so
  // the 4-slot inline array absorbs every real topology and this
  // allocation only fires in adversarial unit tests.
  if (spill_ == nullptr)
    spill_ = std::make_unique<std::vector<Address>>();  // NOLINT-FHMIP(PERF-01)
  spill_->push_back(a);
}

void Packet::encapsulate(Address outer) {
  tunnel_stack.push(dst);
  dst = outer;
  size_bytes += kIpHeaderBytes;
}

void Packet::decapsulate() {
  assert(!tunnel_stack.empty());
  dst = tunnel_stack.back();
  tunnel_stack.pop();
  size_bytes -= kIpHeaderBytes;
}

PacketPtr Packet::clone(std::uint64_t new_uid) const {
  // A clone with a recycled or zero uid would alias an existing packet in
  // the ledger/trace stream: conservation would double-count one uid and
  // lose the other. Callers must stamp a fresh sim.next_uid().
  FHMIP_AUDIT_MSG("net", new_uid != 0 && new_uid != uid,
                  "clone uid " + std::to_string(new_uid) +
                      " not fresh (source uid " + std::to_string(uid) + ")");
  // Poolless sources (standalone test packets) clone to the heap; the
  // deleter branches on pool_home, so both flavours free correctly.
  PacketPtr p =
      pool_home != nullptr ? pool_home->acquire()
                           : PacketPtr(new Packet);  // NOLINT-FHMIP(raw-new-delete)
  static_cast<PacketFields&>(*p) = static_cast<const PacketFields&>(*this);
  p->uid = new_uid;
  return p;
}

void trace_packet(Simulation& sim, TraceKind kind, const char* where,
                  const Packet& p, std::optional<DropReason> reason) {
  if (!sim.trace().enabled()) return;
  TraceEvent e;
  e.at = sim.now();
  e.kind = kind;
  e.where = where;
  e.uid = p.uid;
  e.flow = p.flow;
  e.seq = p.seq;
  e.bytes = p.size_bytes;
  e.msg = message_name(p.msg);
  e.reason = reason;
  sim.trace().emit(e);
}

PacketPtr make_packet(Simulation& sim, Address src, Address dst,
                      std::uint32_t size_bytes) {
  PacketPtr p = sim.packet_pool().acquire();
  p->uid = sim.next_uid();
  p->src = src;
  p->dst = dst;
  p->size_bytes = size_bytes;
  p->created_at = sim.now();
  // No kCreate here: flow/seq/msg are stamped by the caller, so the
  // creation trace is emitted by the transports (udp/tcp), make_control,
  // and the bicast clone site once the packet is fully described.
  return p;
}

PacketPtr make_control(Simulation& sim, Address src, Address dst,
                       MessageVariant msg, std::uint32_t size_bytes) {
  auto p = make_packet(sim, src, dst, size_bytes);
  p->msg = std::move(msg);
  trace_packet(sim, TraceKind::kCreate, "origin", *p);
  return p;
}

}  // namespace fhmip
