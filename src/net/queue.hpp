#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"

namespace fhmip {

/// FIFO drop-tail queue with a packet-count limit (ns-2's DropTail).
/// Rejected packets are returned to the caller so it can account the drop.
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t limit_pkts = 50) : limit_(limit_pkts) {}

  /// Returns true if stored; false if the queue is full (packet untouched).
  bool push(PacketPtr& p);

  PacketPtr pop();

  std::size_t size() const { return q_.size(); }
  std::size_t limit() const { return limit_; }
  void set_limit(std::size_t limit_pkts) { limit_ = limit_pkts; }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= limit_; }
  std::uint64_t bytes() const { return bytes_; }

  std::uint64_t total_enqueued() const { return enqueued_; }
  std::uint64_t total_rejected() const { return rejected_; }

  /// Drops everything currently queued, invoking `fn` per packet.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (!q_.empty()) {
      fn(std::move(q_.front()));
      q_.pop_front();
    }
    bytes_ = 0;
  }

 private:
  std::deque<PacketPtr> q_;
  std::size_t limit_;
  std::uint64_t bytes_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace fhmip
