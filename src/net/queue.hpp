#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/check.hpp"

namespace fhmip {

/// FIFO drop-tail queue with a packet-count limit (ns-2's DropTail).
/// Rejected packets are returned to the caller so it can account the drop.
///
/// Storage is intrusive: a queued packet is chained through its own
/// `pool_next` link, so enqueue/dequeue are pointer swings with no node
/// allocation (the deque-of-unique_ptr this replaces allocated a block per
/// 64 packets and touched the allocator on every growth). Ownership
/// semantics are unchanged — push() adopts the packet, pop() returns it as
/// an owning PacketPtr, and the destructor releases anything still queued.
///
/// Byte and packet accounting are audited: `enqueued == dequeued + size`
/// and the byte gauge matches the queued packets (zero when empty; level-2
/// audits recount the sum by walking the chain).
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t limit_pkts = 50) : limit_(limit_pkts) {}

  DropTailQueue(const DropTailQueue&) = delete;
  DropTailQueue& operator=(const DropTailQueue&) = delete;
  DropTailQueue(DropTailQueue&& o) noexcept
      : head_(o.head_),
        tail_(o.tail_),
        size_(o.size_),
        limit_(o.limit_),
        bytes_(o.bytes_),
        enqueued_(o.enqueued_),
        rejected_(o.rejected_),
        dequeued_(o.dequeued_) {
    o.head_ = o.tail_ = nullptr;
    o.size_ = 0;
    o.bytes_ = 0;
  }
  DropTailQueue& operator=(DropTailQueue&&) = delete;

  ~DropTailQueue() { clear(); }

  /// Returns true if stored; false if the queue is full (packet untouched).
  bool push(PacketPtr& p);

  PacketPtr pop();

  std::size_t size() const { return size_; }
  std::size_t limit() const { return limit_; }
  void set_limit(std::size_t limit_pkts) { limit_ = limit_pkts; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= limit_; }
  std::uint64_t bytes() const { return bytes_; }

  std::uint64_t total_enqueued() const { return enqueued_; }
  std::uint64_t total_rejected() const { return rejected_; }
  /// Packets that left the queue (pops + drains).
  std::uint64_t total_dequeued() const { return dequeued_; }

  /// Drops everything currently queued, invoking `fn` per packet.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (head_ != nullptr) {
      ++dequeued_;
      fn(detach_head());
    }
    bytes_ = 0;
    audit_invariants();
  }

  /// Byte/packet accounting audits (no-op at audit level 0).
  void audit_invariants() const {
    FHMIP_AUDIT_MSG("net", enqueued_ == dequeued_ + size_,
                    "enqueued=" + std::to_string(enqueued_) +
                        " dequeued=" + std::to_string(dequeued_) +
                        " size=" + std::to_string(size_));
    FHMIP_AUDIT_MSG("net", size_ != 0 || bytes_ == 0,
                    "empty queue holds " + std::to_string(bytes_) + "B");
#if FHMIP_AUDIT_LEVEL >= 2
    std::uint64_t sum = 0;
    std::size_t count = 0;
    for (const Packet* p = head_; p != nullptr; p = p->pool_next) {
      sum += p->size_bytes;
      ++count;
    }
    FHMIP_AUDIT2_MSG("net", sum == bytes_ && count == size_,
                     "byte recount=" + std::to_string(sum) +
                         " gauge=" + std::to_string(bytes_) +
                         " chain=" + std::to_string(count) +
                         " size=" + std::to_string(size_));
#endif
  }

 private:
  /// Unlinks the head packet and rewraps it in its owning handle.
  PacketPtr detach_head() {
    Packet* raw = head_;
    head_ = raw->pool_next;
    if (head_ == nullptr) tail_ = nullptr;
    raw->pool_next = nullptr;
    --size_;
    return PacketPtr(raw);
  }

  void clear() {
    while (head_ != nullptr) detach_head();  // PacketPtr frees on scope exit
    bytes_ = 0;
  }

  Packet* head_ = nullptr;
  Packet* tail_ = nullptr;
  std::size_t size_ = 0;
  std::size_t limit_;
  std::uint64_t bytes_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dequeued_ = 0;
};

}  // namespace fhmip
