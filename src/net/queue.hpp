#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/check.hpp"

namespace fhmip {

/// FIFO drop-tail queue with a packet-count limit (ns-2's DropTail).
/// Rejected packets are returned to the caller so it can account the drop.
///
/// Byte and packet accounting are audited: `enqueued == dequeued + size`
/// and the byte gauge matches the queued packets (zero when empty; level-2
/// audits recount the sum).
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t limit_pkts = 50) : limit_(limit_pkts) {}

  /// Returns true if stored; false if the queue is full (packet untouched).
  bool push(PacketPtr& p);

  PacketPtr pop();

  std::size_t size() const { return q_.size(); }
  std::size_t limit() const { return limit_; }
  void set_limit(std::size_t limit_pkts) { limit_ = limit_pkts; }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= limit_; }
  std::uint64_t bytes() const { return bytes_; }

  std::uint64_t total_enqueued() const { return enqueued_; }
  std::uint64_t total_rejected() const { return rejected_; }
  /// Packets that left the queue (pops + drains).
  std::uint64_t total_dequeued() const { return dequeued_; }

  /// Drops everything currently queued, invoking `fn` per packet.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (!q_.empty()) {
      ++dequeued_;
      fn(std::move(q_.front()));
      q_.pop_front();
    }
    bytes_ = 0;
    audit_invariants();
  }

  /// Byte/packet accounting audits (no-op at audit level 0).
  void audit_invariants() const {
    FHMIP_AUDIT_MSG("net", enqueued_ == dequeued_ + q_.size(),
                    "enqueued=" + std::to_string(enqueued_) +
                        " dequeued=" + std::to_string(dequeued_) +
                        " size=" + std::to_string(q_.size()));
    FHMIP_AUDIT_MSG("net", !q_.empty() || bytes_ == 0,
                    "empty queue holds " + std::to_string(bytes_) + "B");
#if FHMIP_AUDIT_LEVEL >= 2
    std::uint64_t sum = 0;
    for (const auto& p : q_) sum += p->size_bytes;
    FHMIP_AUDIT2_MSG("net", sum == bytes_,
                     "byte recount=" + std::to_string(sum) +
                         " gauge=" + std::to_string(bytes_));
#endif
  }

 private:
  std::deque<PacketPtr> q_;
  std::size_t limit_;
  std::uint64_t bytes_ = 0;
  std::uint64_t enqueued_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dequeued_ = 0;
};

}  // namespace fhmip
