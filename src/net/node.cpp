#include "net/node.hpp"

#include <algorithm>

#include "net/link.hpp"

namespace fhmip {

namespace {

TraceEvent node_trace(SimTime at, TraceKind kind, const std::string& where,
                      const Packet& p) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.where = where.c_str();
  e.uid = p.uid;
  e.flow = p.flow;
  e.seq = p.seq;
  e.bytes = p.size_bytes;
  e.msg = message_name(p.msg);
  return e;
}

}  // namespace

Node::Node(Simulation& sim, NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)) {}

void Node::add_address(Address a, bool advertised) {
  if (!has_address(a)) addrs_.emplace_back(a, advertised);
}

void Node::remove_address(Address a) {
  std::erase_if(addrs_, [a](const auto& pr) { return pr.first == a; });
}

bool Node::has_address(Address a) const {
  return std::any_of(addrs_.begin(), addrs_.end(),
                     [a](const auto& pr) { return pr.first == a; });
}

Address Node::address() const {
  for (const auto& [a, adv] : addrs_)
    if (adv) return a;
  return addrs_.empty() ? kNoAddress : addrs_.front().first;
}

void Node::register_port(std::uint16_t port, PortHandler h) {
  ports_[port] = std::move(h);
}

void Node::unregister_port(std::uint16_t port) { ports_.erase(port); }

Node::ControlHandlerId Node::add_control_handler(ControlHandler h) {
  const ControlHandlerId id = next_control_handler_id_++;
  control_handlers_.emplace_back(id, std::move(h));
  return id;
}

void Node::remove_control_handler(ControlHandlerId id) {
  std::erase_if(control_handlers_,
                [id](const auto& pr) { return pr.first == id; });
}

void Node::receive(PacketPtr p) {
  if (has_address(p->dst)) {
    if (p->tunneled()) {
      // Tunnel endpoint: strip the outer header and re-admit the inner
      // packet (it may be for us — e.g. a care-of address — or in transit).
      p->decapsulate();
      receive(std::move(p));
      return;
    }
    deliver_local(std::move(p));
    return;
  }
  forward(std::move(p), /*decrement_ttl=*/true);
}

void Node::send(PacketPtr p) {
  if (has_address(p->dst) && !p->tunneled()) {
    deliver_local(std::move(p));
    return;
  }
  forward(std::move(p), /*decrement_ttl=*/false);
}

void Node::forward(PacketPtr p, bool decrement_ttl) {
  if (forward_filter_) forward_filter_(*p);
  if (decrement_ttl) {
    if (p->ttl == 0) {
      drop(std::move(p), DropReason::kTtlExpired);
      return;
    }
    --p->ttl;
  }
  const Route* r = routes_.lookup(p->dst);
  if (r == nullptr || !r->valid()) {
    drop(std::move(p), DropReason::kNoRoute);
    return;
  }
  ++forwarded_;
  if (sim_.trace().enabled()) {
    sim_.trace().emit(node_trace(sim_.now(), TraceKind::kForward, name_, *p));
  }
  if (r->link != nullptr) {
    r->link->transmit(std::move(p));
  } else {
    r->handler(std::move(p));
  }
}

void Node::deliver_local(PacketPtr p) {
  ++received_local_;
  // Snapshot the trace fields up front: a claiming control handler moves
  // the packet away, and the consumption event must only fire once we know
  // the packet actually terminated here (a portless data packet drops as
  // kNoRoute instead — it must not also count as delivered).
  const bool traced = sim_.trace().enabled();
  TraceEvent e;
  if (traced) e = node_trace(sim_.now(), TraceKind::kLocalDeliver, name_, *p);
  if (p->is_control()) {
    // Index loop: a handler may register another handler while we iterate
    // (agent construction from a callback), which invalidates iterators.
    for (std::size_t i = 0; i < control_handlers_.size(); ++i) {
      if (control_handlers_[i].second(p)) {
        if (traced) sim_.trace().emit(e);
        return;
      }
    }
    // Unclaimed control message: harmless (e.g. advertisement nobody
    // listens to), but the ledger still needs a terminal event — recorded
    // as kDiscard since control is flow-less and carries no drop reason.
    ++discarded_;
    if (traced) {
      e.kind = TraceKind::kDiscard;
      sim_.trace().emit(e);
    }
    // The kDiscard emit above is the terminal event; the packet dies in
    // place (the snapshot `e`, not the packet, is what's traced).
    return;  // NOLINT-FHMIP(FLOW-01)
  }
  auto it = ports_.find(p->dst_port);
  if (it != ports_.end()) {
    if (traced) sim_.trace().emit(e);
    it->second(std::move(p));
    return;
  }
  drop(std::move(p), DropReason::kNoRoute);
}

void Node::drop(PacketPtr p, DropReason reason) {
  sim_.stats().record_drop(p->flow, reason);
  if (sim_.trace().enabled()) {
    TraceEvent e = node_trace(sim_.now(), TraceKind::kDrop, name_, *p);
    e.reason = reason;
    sim_.trace().emit(e);
  }
  if (sim_.logger().enabled(LogLevel::kDebug)) {
    sim_.log(LogLevel::kDebug,
             name_ + " dropped " + std::string(message_name(p->msg)) +
                 " dst=" + p->dst.to_string() + " (" + to_string(reason) +
                 ")");
  }
}

}  // namespace fhmip
