#include "net/priority_queue.hpp"

namespace fhmip {

ClassPriorityQueue::ClassPriorityQueue(std::size_t limit_pkts)
    : limit_(limit_pkts),
      bands_{DropTailQueue(limit_pkts - 2 * (limit_pkts / 3)),
             DropTailQueue(limit_pkts / 3), DropTailQueue(limit_pkts / 3)} {}

std::size_t ClassPriorityQueue::band_index(TrafficClass c) {
  switch (effective_class(c)) {
    case TrafficClass::kRealTime:
      return 0;
    case TrafficClass::kHighPriority:
      return 1;
    default:
      return 2;
  }
}

bool ClassPriorityQueue::push(PacketPtr& p) {
  const bool ok = bands_[band_index(p->tclass)].push(p);
  if (ok) {
    ++enqueued_;
  } else {
    ++rejected_;
  }
  audit_invariants();
  return ok;
}

void ClassPriorityQueue::audit_invariants() const {
  // The per-band DropTail counters must sum to this queue's own: a mismatch
  // means a packet was admitted or rejected without going through push().
  FHMIP_AUDIT_MSG(
      "net",
      enqueued_ == bands_[0].total_enqueued() + bands_[1].total_enqueued() +
                       bands_[2].total_enqueued(),
      "enqueued=" + std::to_string(enqueued_));
  FHMIP_AUDIT_MSG(
      "net",
      rejected_ == bands_[0].total_rejected() + bands_[1].total_rejected() +
                       bands_[2].total_rejected(),
      "rejected=" + std::to_string(rejected_));
  FHMIP_AUDIT_MSG("net", size() <= limit_,
                  "size=" + std::to_string(size()) +
                      " limit=" + std::to_string(limit_));
}

PacketPtr ClassPriorityQueue::pop() {
  for (auto& band : bands_) {
    if (!band.empty()) return band.pop();
  }
  return nullptr;
}

std::size_t ClassPriorityQueue::size() const {
  return bands_[0].size() + bands_[1].size() + bands_[2].size();
}

std::size_t ClassPriorityQueue::band_size(TrafficClass c) const {
  return bands_[band_index(c)].size();
}

std::size_t ClassPriorityQueue::band_limit(TrafficClass c) const {
  return bands_[band_index(c)].limit();
}

}  // namespace fhmip
