#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/address.hpp"
#include "net/messages.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace fhmip {

/// IPv6 traffic-class values as defined by the thesis (Table 3.1).
enum class TrafficClass : std::uint8_t {
  kUnspecified = 0,   // treated as best effort
  kRealTime = 1,
  kHighPriority = 2,
  kBestEffort = 3,
};

const char* to_string(TrafficClass c);

/// Returns the class used for buffering decisions: kUnspecified maps to
/// kBestEffort (Table 3.1, value 0).
TrafficClass effective_class(TrafficClass c);

/// How a packet redirected through the PAR→NAR tunnel should be handled at
/// the receiving router while the MH is detached (Table 3.3 outcomes).
enum class ForwardDirective : std::uint8_t {
  kNone = 0,       // normal forwarding
  kBufferAtNar,    // buffer at the NAR if the MH is not attached yet
  kForwardOnly,    // deliver if attached, otherwise the packet is lost
  kBounceToPar,    // NAR buffer full: send back for PAR-side buffering
  kDrain,          // buffered packet being released after BF
};

inline constexpr std::uint32_t kIpHeaderBytes = 40;  // per tunnel layer

/// A simulated packet. Packets are move-only and owned by exactly one
/// entity (link, queue, buffer, or agent) at a time.
struct Packet {
  std::uint64_t uid = 0;
  Address src;
  Address dst;
  std::uint32_t size_bytes = 0;
  std::uint8_t ttl = 64;
  TrafficClass tclass = TrafficClass::kUnspecified;
  FlowId flow = kNoFlow;
  std::uint32_t seq = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  SimTime created_at;
  ForwardDirective directive = ForwardDirective::kNone;
  std::vector<Address> tunnel_stack;  // inner destinations, outermost last
  MessageVariant msg;

  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  Packet(Packet&&) = default;
  Packet& operator=(Packet&&) = default;

  bool is_control() const { return fhmip::is_control(msg); }
  bool tunneled() const { return !tunnel_stack.empty(); }

  /// IP-in-IP encapsulation: the packet is readdressed to `outer` and the
  /// original destination pushed on the tunnel stack (+40 B header).
  void encapsulate(Address outer);

  /// Pops one tunnel layer, restoring the inner destination (-40 B header).
  /// Precondition: tunneled().
  void decapsulate();

  /// Deep copy with a fresh uid (used e.g. for FBAck sent to two receivers).
  std::unique_ptr<Packet> clone(std::uint64_t new_uid) const;
};

using PacketPtr = std::unique_ptr<Packet>;

class Simulation;

/// Emits a packet-level trace event through the simulation's trace hub
/// (no-op without sinks). Shared by every creation/drop/discard site so the
/// packet ledger sees a complete event stream.
void trace_packet(Simulation& sim, TraceKind kind, const char* where,
                  const Packet& p, std::optional<DropReason> reason = {});

/// Convenience factory: stamps uid and creation time from the simulation.
PacketPtr make_packet(Simulation& sim, Address src, Address dst,
                      std::uint32_t size_bytes);

/// Control-message factory: small packet carrying `msg`.
PacketPtr make_control(Simulation& sim, Address src, Address dst,
                       MessageVariant msg, std::uint32_t size_bytes = 64);

}  // namespace fhmip
