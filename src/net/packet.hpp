#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/address.hpp"
#include "net/messages.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace fhmip {

/// IPv6 traffic-class values as defined by the thesis (Table 3.1).
enum class TrafficClass : std::uint8_t {
  kUnspecified = 0,   // treated as best effort
  kRealTime = 1,
  kHighPriority = 2,
  kBestEffort = 3,
};

const char* to_string(TrafficClass c);

/// Returns the class used for buffering decisions: kUnspecified maps to
/// kBestEffort (Table 3.1, value 0).
TrafficClass effective_class(TrafficClass c);

/// How a packet redirected through the PAR→NAR tunnel should be handled at
/// the receiving router while the MH is detached (Table 3.3 outcomes).
enum class ForwardDirective : std::uint8_t {
  kNone = 0,       // normal forwarding
  kBufferAtNar,    // buffer at the NAR if the MH is not attached yet
  kForwardOnly,    // deliver if attached, otherwise the packet is lost
  kBounceToPar,    // NAR buffer full: send back for PAR-side buffering
  kDrain,          // buffered packet being released after BF
};

inline constexpr std::uint32_t kIpHeaderBytes = 40;  // per tunnel layer

/// The per-packet tunnel stack (inner destinations, outermost last) with
/// inline storage for the depths the protocol actually produces: MAP
/// encapsulation plus the PAR→NAR inter-AR tunnel is depth 2, bicast clones
/// add no extra layer, so four inline slots cover every choreography with
/// headroom. Deeper stacks (none today) spill to a heap vector so behaviour
/// is depth-independent — but the common path never touches the allocator,
/// which is what makes encap/decap copy-free on pooled packets.
class TunnelStack {
 public:
  static constexpr std::size_t kInlineDepth = 4;

  TunnelStack() = default;
  TunnelStack(const TunnelStack& o);
  TunnelStack& operator=(const TunnelStack& o);
  TunnelStack(TunnelStack&& o) noexcept;
  TunnelStack& operator=(TunnelStack&& o) noexcept;
  ~TunnelStack() = default;

  bool empty() const { return depth_ == 0; }
  std::size_t size() const { return depth_; }

  void push(Address a) {
    if (depth_ < kInlineDepth) {
      inline_[depth_] = a;
    } else {
      push_spill(a);
    }
    ++depth_;
  }

  /// Top of the stack (the innermost pending destination). Pre: !empty().
  Address back() const {
    return depth_ <= kInlineDepth ? inline_[depth_ - 1]
                                  : (*spill_)[depth_ - kInlineDepth - 1];
  }

  /// Pre: !empty().
  void pop() {
    if (depth_ > kInlineDepth) spill_->pop_back();
    --depth_;
  }

  /// Bottom-up indexing (0 = outermost pushed first). Pre: i < size().
  Address operator[](std::size_t i) const {
    return i < kInlineDepth ? inline_[i] : (*spill_)[i - kInlineDepth];
  }

  friend bool operator==(const TunnelStack& a, const TunnelStack& b) {
    if (a.depth_ != b.depth_) return false;
    for (std::size_t i = 0; i < a.depth_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

 private:
  void push_spill(Address a);  // cold: depth beyond the inline slots

  std::uint32_t depth_ = 0;
  std::array<Address, kInlineDepth> inline_{};
  std::unique_ptr<std::vector<Address>> spill_;
};

/// The payload of a simulated packet — everything that describes the packet
/// on the wire. Split from `Packet` so that moving/cloning a packet's
/// contents can never disturb the pool-identity fields below: a pooled
/// packet keeps its slab slot for life, whatever is assigned into it.
struct PacketFields {
  std::uint64_t uid = 0;
  Address src;
  Address dst;
  std::uint32_t size_bytes = 0;
  std::uint8_t ttl = 64;
  TrafficClass tclass = TrafficClass::kUnspecified;
  FlowId flow = kNoFlow;
  std::uint32_t seq = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  SimTime created_at;
  ForwardDirective directive = ForwardDirective::kNone;
  TunnelStack tunnel_stack;  // inner destinations, outermost last
  MessageVariant msg;
};

class PacketPool;

/// A simulated packet. Packets are move-only and owned by exactly one
/// entity (link, queue, buffer, or agent) at a time; ownership is carried
/// by `PacketPtr`, whose deleter returns pooled packets to their slab.
struct Packet : PacketFields {
  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  /// Moves transfer the payload only; pool identity stays with each object.
  Packet(Packet&& o) noexcept
      : PacketFields(std::move(static_cast<PacketFields&>(o))) {}
  Packet& operator=(Packet&& o) noexcept {
    PacketFields::operator=(std::move(static_cast<PacketFields&>(o)));
    return *this;
  }

  bool is_control() const { return fhmip::is_control(msg); }
  bool tunneled() const { return !tunnel_stack.empty(); }

  /// IP-in-IP encapsulation: the packet is readdressed to `outer` and the
  /// original destination pushed on the tunnel stack (+40 B header).
  void encapsulate(Address outer);

  /// Pops one tunnel layer, restoring the inner destination (-40 B header).
  /// Precondition: tunneled().
  void decapsulate();

  /// Deep copy with a fresh uid (used e.g. for FBAck sent to two receivers
  /// and MAP bicast). `new_uid` must differ from this packet's uid — a
  /// clone that shares a uid would corrupt ledger conservation (audited).
  /// Pooled packets clone from their own pool; detached packets from the
  /// heap.
  std::unique_ptr<Packet, struct PacketDeleter> clone(
      std::uint64_t new_uid) const;

  // -- pool identity (owned by PacketPool; meaningless on heap packets) --
  PacketPool* pool_home = nullptr;  // null: heap-allocated, deleter deletes
  std::uint32_t pool_slot = 0;      // slab index within pool_home
  /// Intrusive link shared by the pool free list and the intrusive packet
  /// queues (DropTailQueue / HandoffBuffer): a packet is on at most one of
  /// those chains at any time, and never while owned through a PacketPtr.
  Packet* pool_next = nullptr;
};

/// PacketPtr's deleter: pooled packets go back to their slab (slot recycled,
/// generation bumped), heap packets are deleted. Stateless, so a PacketPtr
/// can be rebuilt from a raw pointer after an intrusive-queue traversal.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

class Simulation;

/// Emits a packet-level trace event through the simulation's trace hub
/// (no-op without sinks). Shared by every creation/drop/discard site so the
/// packet ledger sees a complete event stream.
void trace_packet(Simulation& sim, TraceKind kind, const char* where,
                  const Packet& p, std::optional<DropReason> reason = {});

/// Convenience factory: acquires a packet from the simulation's pool and
/// stamps uid and creation time. uid order is identical to the historical
/// heap factory, so traces and ledgers are unchanged by pooling.
PacketPtr make_packet(Simulation& sim, Address src, Address dst,
                      std::uint32_t size_bytes);

/// Control-message factory: small packet carrying `msg`.
PacketPtr make_control(Simulation& sim, Address src, Address dst,
                       MessageVariant msg, std::uint32_t size_bytes = 64);

}  // namespace fhmip
