#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fhmip {

/// A two-level network address: a 32-bit network (prefix) part and a 32-bit
/// host part. This models the IPv6 prefix/interface-identifier split the
/// thesis relies on (care-of addresses share the host part and take the
/// network part of the access router's subnet).
struct Address {
  std::uint32_t net = 0;
  std::uint32_t host = 0;

  constexpr bool valid() const { return net != 0; }
  constexpr std::uint64_t key() const {
    return (static_cast<std::uint64_t>(net) << 32) | host;
  }
  friend constexpr bool operator==(Address, Address) = default;
  friend constexpr auto operator<=>(Address, Address) = default;

  std::string to_string() const;
};

inline constexpr Address kNoAddress{};

/// Builds the on-link care-of address for host `host` in subnet `net`
/// (HMIPv6 LCoA formation: router prefix + interface identifier).
constexpr Address make_coa(std::uint32_t net, std::uint32_t host) {
  return Address{net, host};
}

}  // namespace fhmip

template <>
struct std::hash<fhmip::Address> {
  std::size_t operator()(const fhmip::Address& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.key());
  }
};
