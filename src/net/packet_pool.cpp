#include "net/packet_pool.hpp"

#include <new>
#include <string>

namespace fhmip {

PacketPool::~PacketPool() {
  // Every owner (queue, buffer, link, agent, pending event) must have
  // returned its packets by now: the pool is the first member of
  // Simulation, so it is destroyed after the scheduler (whose pending
  // actions own in-flight packets), and topology objects holding packets
  // are destroyed before their Simulation. A non-zero live count here is a
  // leaked slot.
  FHMIP_AUDIT_MSG("pool", live_ == 0,
                  "destroyed with " + std::to_string(live_) +
                      " live packet slots (leak)");
}

void PacketPool::grow() {
  const std::size_t base = meta_.size();
  auto chunk = std::make_unique<Packet[]>(kChunkPackets);
  // Thread the new chunk onto the free list back-to-front so slots are
  // handed out in index order — keeps slot assignment (and any diagnostics
  // keyed on it) deterministic.
  for (std::size_t i = kChunkPackets; i-- > 0;) {
    Packet& p = chunk[i];
    p.pool_home = this;
    p.pool_slot = static_cast<std::uint32_t>(base + i);
    p.pool_next = free_head_;
    free_head_ = &p;
  }
  chunks_.push_back(std::move(chunk));
  meta_.resize(base + kChunkPackets);
  free_count_ += kChunkPackets;
}

PacketPtr PacketPool::acquire() {
  if (free_head_ == nullptr) grow();
  Packet* p = free_head_;
  free_head_ = p->pool_next;
  --free_count_;
  p->pool_next = nullptr;
  SlotMeta& m = meta_[p->pool_slot];
  // Generation zero means the slot has never been released: it came from
  // chunk growth, not recycling.
  if (m.gen != 0) ++recycled_;
  FHMIP_AUDIT_MSG("pool", !m.live,
                  "free-list slot " + std::to_string(p->pool_slot) +
                      " already live (slab corruption)");
  m.live = true;
  ++live_;
  ++acquired_;
  return PacketPtr(p);
}

void PacketPool::release(Packet* p) noexcept {
  FHMIP_AUDIT_MSG("pool", p->pool_home == this && p->pool_slot < meta_.size(),
                  "release of foreign packet (slot " +
                      std::to_string(p->pool_slot) + ")");
  SlotMeta& m = meta_[p->pool_slot];
  FHMIP_AUDIT_MSG("pool", m.live,
                  "double release of slot " + std::to_string(p->pool_slot));
  m.live = false;
  ++m.gen;  // stale every Handle taken during this incarnation
  --live_;
  // Scrub the payload so the next acquire starts from default fields —
  // reuse must be indistinguishable from fresh construction. Destroy +
  // value-init placement-new on the base subobject (rather than assigning
  // a default-constructed temporary) frees a spilled tunnel stack, if
  // any, and lets the compiler lower the reset to plain stores.
  PacketFields& fields = *p;
  fields.~PacketFields();
  // Placement new: re-initialises the existing subobject, allocates
  // nothing. NOLINT-FHMIP(raw-new-delete,PERF-01)
  new (&fields) PacketFields();  // NOLINT-FHMIP(raw-new-delete,PERF-01)
  p->pool_next = free_head_;
  free_head_ = p;
  ++free_count_;
}

void PacketPool::audit_invariants() const {
  FHMIP_AUDIT_MSG("pool", live_ + free_count_ == meta_.size(),
                  "live=" + std::to_string(live_) +
                      " free=" + std::to_string(free_count_) +
                      " capacity=" + std::to_string(meta_.size()));
#if FHMIP_AUDIT_LEVEL >= 2
  std::size_t walked = 0;
  for (const Packet* p = free_head_; p != nullptr; p = p->pool_next) {
    FHMIP_AUDIT2_MSG("pool", !meta_[p->pool_slot].live,
                     "live slot " + std::to_string(p->pool_slot) +
                         " on the free list");
    ++walked;
  }
  FHMIP_AUDIT2_MSG("pool", walked == free_count_,
                   "free-list recount=" + std::to_string(walked) +
                       " gauge=" + std::to_string(free_count_));
#endif
}

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p == nullptr) return;
  if (p->pool_home != nullptr) {
    p->pool_home->release(p);
  } else {
    // The deleter IS the smart-pointer machinery: PacketPtr routes every
    // destruction here, and poolless packets were built with plain new.
    delete p;  // NOLINT-FHMIP(raw-new-delete)
  }
}

}  // namespace fhmip
