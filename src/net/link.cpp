#include "net/link.hpp"

#include <cmath>
#include <utility>

#include "net/node.hpp"

namespace fhmip {

namespace {

TraceEvent trace_event(SimTime at, TraceKind kind, const std::string& where,
                       const Packet& p) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.where = where.c_str();
  e.uid = p.uid;
  e.flow = p.flow;
  e.seq = p.seq;
  e.bytes = p.size_bytes;
  e.msg = message_name(p.msg);
  return e;
}

std::variant<DropTailQueue, ClassPriorityQueue> make_queue(
    QueueDiscipline discipline, std::size_t limit) {
  if (discipline == QueueDiscipline::kClassPriority) {
    return ClassPriorityQueue(limit);
  }
  return DropTailQueue(limit);
}

}  // namespace

SimplexLink::SimplexLink(Simulation& sim, Node& to, double bandwidth_bps,
                         SimTime delay, std::size_t queue_limit,
                         std::string name, QueueDiscipline discipline)
    : sim_(sim),
      to_(to),
      bandwidth_(bandwidth_bps),
      delay_(delay),
      queue_(make_queue(discipline, queue_limit)),
      name_(std::move(name)) {
  if (!name_.empty()) {
    obs::MetricsRegistry& m = sim_.metrics();
    m_delivered_ = &m.counter("link/" + name_ + "/delivered_pkts");
    m_dropped_ = &m.counter("link/" + name_ + "/dropped_pkts");
    m_bytes_ = &m.counter("link/" + name_ + "/bytes");
    m_queue_ = &m.gauge("link/" + name_ + "/queue_pkts");
  }
}

DropTailQueue* SimplexLink::queue() {
  return std::get_if<DropTailQueue>(&queue_);
}

ClassPriorityQueue* SimplexLink::priority_queue() {
  return std::get_if<ClassPriorityQueue>(&queue_);
}

std::size_t SimplexLink::queue_size() const {
  return std::visit([](const auto& q) { return q.size(); }, queue_);
}

bool SimplexLink::queue_push(PacketPtr& p) {
  return std::visit([&p](auto& q) { return q.push(p); }, queue_);
}

PacketPtr SimplexLink::queue_pop() {
  return std::visit([](auto& q) { return q.pop(); }, queue_);
}

void SimplexLink::drop_queued() {
  std::visit(
      [this](auto& q) {
        q.drain([this](PacketPtr p) {
          drop(std::move(p), DropReason::kWirelessDown);
        });
      },
      queue_);
  if (m_queue_ != nullptr) m_queue_->set(0);
}

SimTime SimplexLink::tx_time(std::uint32_t bytes) const {
  return SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / bandwidth_);
}

void SimplexLink::transmit(PacketPtr p) {
  if (!up_) {
    drop(std::move(p), DropReason::kWirelessDown);
    return;
  }
  if (tx_filter_ && tx_filter_(*p)) {
    drop(std::move(p), DropReason::kFaultInjected);
    return;
  }
  if (loss_rate_ > 0.0 && sim_.rng().chance(loss_rate_)) {
    drop(std::move(p), DropReason::kRandomLoss);
    return;
  }
  if (busy_) {
    if (queue_push(p)) {
      if (m_queue_ != nullptr) m_queue_->add(1);
    } else {
      drop(std::move(p), DropReason::kQueueOverflow);
    }
    return;
  }
  start_tx(std::move(p));
}

void SimplexLink::start_tx(PacketPtr p) {
  busy_ = true;
  if (sim_.trace().enabled()) {
    sim_.trace().emit(
        trace_event(sim_.now(), TraceKind::kTransmit, name_, *p));
  }
  const SimTime tx = tx_time(p->size_bytes);
  // The link holds the packet while it occupies the transmitter; the
  // completion event captures only `this` (no per-packet heap holder), so
  // scheduling a hop allocates nothing. Packets still in the link when the
  // simulation ends are reclaimed by ~SimplexLink.
  serializing_ = std::move(p);
  // A bare `this` capture fits std::function's inline storage (no
  // allocation), and links outlive the event loop: topologies hold their
  // links for the whole Simulation::run(), and unfired events are
  // destroyed, never invoked. NOLINT-FHMIP(PERF-01,LIFE-01)
  sim_.in(tx, [this] { finish_tx(); });  // NOLINT-FHMIP(PERF-01,LIFE-01)
}

void SimplexLink::finish_tx() {
  // Serialization finished: the packet is committed to the air/wire and
  // will be delivered even if the link is torn down meanwhile (ns-2
  // semantics: link-down affects packets that have not started
  // transmission, not ones already in flight). It moves to the in-flight
  // FIFO; the matching deliver_front() fires `delay_` later.
  fly_append(std::move(serializing_));
  // Same lifetime/SBO argument as start_tx's completion event.
  sim_.in(delay_, [this] { deliver_front(); });  // NOLINT-FHMIP(PERF-01,LIFE-01)
  busy_ = false;
  if (PacketPtr next = queue_pop()) {
    if (m_queue_ != nullptr) m_queue_->add(-1);
    start_tx(std::move(next));
  }
}

void SimplexLink::deliver_front() {
  FHMIP_AUDIT_MSG("net", fly_head_ != nullptr,
                  "link " + name_ + ": delivery event with empty fly queue");
  PacketPtr pkt = fly_detach_head();
  ++delivered_;
  bytes_delivered_ += pkt->size_bytes;
  if (m_delivered_ != nullptr) {
    m_delivered_->inc();
    m_bytes_->inc(pkt->size_bytes);
  }
  if (sim_.trace().enabled()) {
    sim_.trace().emit(
        trace_event(sim_.now(), TraceKind::kDeliver, name_, *pkt));
  }
  to_.receive(std::move(pkt));
}

SimplexLink::~SimplexLink() {
  // Packets still serializing or propagating when the topology is torn
  // down (simulation ended mid-flight). `serializing_` frees itself.
  while (fly_head_ != nullptr) fly_detach_head();
}

void SimplexLink::drop(PacketPtr p, DropReason reason) {
  ++dropped_;
  if (m_dropped_ != nullptr) m_dropped_->inc();
  sim_.stats().record_drop(p->flow, reason);
  if (sim_.trace().enabled()) {
    TraceEvent e = trace_event(sim_.now(), TraceKind::kDrop, name_, *p);
    e.reason = reason;
    sim_.trace().emit(e);
  }
  if (sim_.logger().enabled(LogLevel::kDebug)) {
    sim_.log(LogLevel::kDebug, "link " + name_ + " dropped " +
                                   std::string(message_name(p->msg)) + " (" +
                                   to_string(reason) + ")");
  }
}

void SimplexLink::set_up(bool up) {
  up_ = up;
  if (!up_) {
    // Everything sitting in the transmit queue dies with the link.
    drop_queued();
  }
}

DuplexLink::DuplexLink(Simulation& sim, Node& a, Node& b, double bandwidth_bps,
                       SimTime delay, std::size_t queue_limit,
                       std::string name, QueueDiscipline discipline)
    : a_(a),
      b_(b),
      ab_(sim, b, bandwidth_bps, delay, queue_limit, name + ">", discipline),
      ba_(sim, a, bandwidth_bps, delay, queue_limit, name + "<", discipline) {}

SimplexLink& DuplexLink::toward(const Node& n) {
  return (&n == &b_) ? ab_ : ba_;
}

}  // namespace fhmip
