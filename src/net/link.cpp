#include "net/link.hpp"

#include <cmath>
#include <utility>

#include "net/node.hpp"

namespace fhmip {

namespace {

TraceEvent trace_event(SimTime at, TraceKind kind, const std::string& where,
                       const Packet& p) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.where = where.c_str();
  e.uid = p.uid;
  e.flow = p.flow;
  e.seq = p.seq;
  e.bytes = p.size_bytes;
  e.msg = message_name(p.msg);
  return e;
}

std::variant<DropTailQueue, ClassPriorityQueue> make_queue(
    QueueDiscipline discipline, std::size_t limit) {
  if (discipline == QueueDiscipline::kClassPriority) {
    return ClassPriorityQueue(limit);
  }
  return DropTailQueue(limit);
}

}  // namespace

SimplexLink::SimplexLink(Simulation& sim, Node& to, double bandwidth_bps,
                         SimTime delay, std::size_t queue_limit,
                         std::string name, QueueDiscipline discipline)
    : sim_(sim),
      to_(to),
      bandwidth_(bandwidth_bps),
      delay_(delay),
      queue_(make_queue(discipline, queue_limit)),
      name_(std::move(name)) {
  if (!name_.empty()) {
    obs::MetricsRegistry& m = sim_.metrics();
    m_delivered_ = &m.counter("link/" + name_ + "/delivered_pkts");
    m_dropped_ = &m.counter("link/" + name_ + "/dropped_pkts");
    m_bytes_ = &m.counter("link/" + name_ + "/bytes");
    m_queue_ = &m.gauge("link/" + name_ + "/queue_pkts");
  }
}

DropTailQueue* SimplexLink::queue() {
  return std::get_if<DropTailQueue>(&queue_);
}

ClassPriorityQueue* SimplexLink::priority_queue() {
  return std::get_if<ClassPriorityQueue>(&queue_);
}

std::size_t SimplexLink::queue_size() const {
  return std::visit([](const auto& q) { return q.size(); }, queue_);
}

bool SimplexLink::queue_push(PacketPtr& p) {
  return std::visit([&p](auto& q) { return q.push(p); }, queue_);
}

PacketPtr SimplexLink::queue_pop() {
  return std::visit([](auto& q) { return q.pop(); }, queue_);
}

void SimplexLink::drop_queued() {
  std::visit(
      [this](auto& q) {
        q.drain([this](PacketPtr p) {
          drop(std::move(p), DropReason::kWirelessDown);
        });
      },
      queue_);
  if (m_queue_ != nullptr) m_queue_->set(0);
}

SimTime SimplexLink::tx_time(std::uint32_t bytes) const {
  return SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / bandwidth_);
}

void SimplexLink::transmit(PacketPtr p) {
  if (!up_) {
    drop(std::move(p), DropReason::kWirelessDown);
    return;
  }
  if (tx_filter_ && tx_filter_(*p)) {
    drop(std::move(p), DropReason::kFaultInjected);
    return;
  }
  if (loss_rate_ > 0.0 && sim_.rng().chance(loss_rate_)) {
    drop(std::move(p), DropReason::kRandomLoss);
    return;
  }
  if (busy_) {
    if (queue_push(p)) {
      if (m_queue_ != nullptr) m_queue_->add(1);
    } else {
      drop(std::move(p), DropReason::kQueueOverflow);
    }
    return;
  }
  start_tx(std::move(p));
}

void SimplexLink::start_tx(PacketPtr p) {
  busy_ = true;
  if (sim_.trace().enabled()) {
    sim_.trace().emit(
        trace_event(sim_.now(), TraceKind::kTransmit, name_, *p));
  }
  const SimTime tx = tx_time(p->size_bytes);
  // Move the packet into the completion event. A shared_ptr holder (not a
  // released raw pointer) keeps ownership inside the copyable callable, so
  // packets in flight are reclaimed even when the simulation ends before
  // the event fires.
  auto holder = std::make_shared<PacketPtr>(std::move(p));
  sim_.in(tx, [this, holder] { finish_tx(std::move(*holder)); });
}

void SimplexLink::finish_tx(PacketPtr p) {
  // Serialization finished: the packet is committed to the air/wire and
  // will be delivered even if the link is torn down meanwhile (ns-2
  // semantics: link-down affects packets that have not started
  // transmission, not ones already in flight).
  auto holder = std::make_shared<PacketPtr>(std::move(p));
  sim_.in(delay_, [this, holder] {
    PacketPtr pkt = std::move(*holder);
    ++delivered_;
    bytes_delivered_ += pkt->size_bytes;
    if (m_delivered_ != nullptr) {
      m_delivered_->inc();
      m_bytes_->inc(pkt->size_bytes);
    }
    if (sim_.trace().enabled()) {
      sim_.trace().emit(
          trace_event(sim_.now(), TraceKind::kDeliver, name_, *pkt));
    }
    to_.receive(std::move(pkt));
  });
  busy_ = false;
  if (PacketPtr next = queue_pop()) {
    if (m_queue_ != nullptr) m_queue_->add(-1);
    start_tx(std::move(next));
  }
}

void SimplexLink::drop(PacketPtr p, DropReason reason) {
  ++dropped_;
  if (m_dropped_ != nullptr) m_dropped_->inc();
  sim_.stats().record_drop(p->flow, reason);
  if (sim_.trace().enabled()) {
    TraceEvent e = trace_event(sim_.now(), TraceKind::kDrop, name_, *p);
    e.reason = reason;
    sim_.trace().emit(e);
  }
  if (sim_.logger().enabled(LogLevel::kDebug)) {
    sim_.log(LogLevel::kDebug, "link " + name_ + " dropped " +
                                   std::string(message_name(p->msg)) + " (" +
                                   to_string(reason) + ")");
  }
}

void SimplexLink::set_up(bool up) {
  up_ = up;
  if (!up_) {
    // Everything sitting in the transmit queue dies with the link.
    drop_queued();
  }
}

DuplexLink::DuplexLink(Simulation& sim, Node& a, Node& b, double bandwidth_bps,
                       SimTime delay, std::size_t queue_limit,
                       std::string name, QueueDiscipline discipline)
    : a_(a),
      b_(b),
      ab_(sim, b, bandwidth_bps, delay, queue_limit, name + ">", discipline),
      ba_(sim, a, bandwidth_bps, delay, queue_limit, name + "<", discipline) {}

SimplexLink& DuplexLink::toward(const Node& n) {
  return (&n == &b_) ? ab_ : ba_;
}

}  // namespace fhmip
