#pragma once

#include "net/packet.hpp"

namespace fhmip {

/// Table 3.1 — values in the class-of-service field. The enum itself lives
/// with the packet header (net/packet.hpp); this header adds the
/// classification helpers the buffer scheme uses.

/// The class-of-service value carried in the IPv6 traffic-class field, as
/// assigned by Table 3.1.
inline constexpr std::uint8_t class_of_service_value(TrafficClass c) {
  return static_cast<std::uint8_t>(c);
}

/// Parses a class-of-service field value; out-of-range values are treated
/// as unspecified (best effort), matching Table 3.1 row 0.
TrafficClass traffic_class_from_value(std::uint8_t v);

/// Diffserv interoperability (§3.3 "by mapping the classes of service with
/// the per-hop behaviour (PHB) in Diffserv"): maps a Diffserv codepoint to
/// the scheme's class — EF → real-time, AF → high priority, else best
/// effort.
enum class DiffservPhb { kDefault, kExpeditedForwarding, kAssuredForwarding };
TrafficClass traffic_class_from_phb(DiffservPhb phb);
DiffservPhb phb_from_traffic_class(TrafficClass c);

}  // namespace fhmip
