#include "buffer/handoff_buffer.hpp"

#include <algorithm>

namespace fhmip {

HandoffBuffer::PushResult HandoffBuffer::push(PacketPtr& p) {
  if (full()) return PushResult::kRejected;
  q_.push_back(std::move(p));
  ++stored_;
  peak_ = std::max<std::uint32_t>(peak_, size());
  audit_invariants();
  return PushResult::kStored;
}

HandoffBuffer::PushResult HandoffBuffer::push_evict_oldest_realtime(
    PacketPtr& p, PacketPtr& evicted) {
  if (!full()) {
    q_.push_back(std::move(p));
    ++stored_;
    peak_ = std::max<std::uint32_t>(peak_, size());
    audit_invariants();
    return PushResult::kStored;
  }
  auto it = std::find_if(q_.begin(), q_.end(), [](const PacketPtr& q) {
    return effective_class(q->tclass) == TrafficClass::kRealTime;
  });
  if (it == q_.end()) return PushResult::kRejected;
  evicted = std::move(*it);
  q_.erase(it);
  ++evictions_;
  ++removed_;
  q_.push_back(std::move(p));
  ++stored_;
  audit_invariants();
  return PushResult::kStoredEvicting;
}

PacketPtr HandoffBuffer::pop() {
  if (q_.empty()) return nullptr;
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  ++removed_;
  audit_invariants();
  return p;
}

}  // namespace fhmip
