#include "buffer/handoff_buffer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

HandoffBuffer::~HandoffBuffer() {
  while (head_ != nullptr) detach_head();  // PacketPtr frees on scope exit
}

void HandoffBuffer::trace_store(const Packet& p) {
  // Called before the chain append, so empty() reflects the pre-store
  // state: the first packet of a fill opens the timeline span.
  if (empty() && mh_ != kNoNode)
    sim_->timeline().record(sim_->now(), mh_, obs::HoEventKind::kBufferFill,
                            where_);
  trace_packet(*sim_, TraceKind::kBufferEnter, where_.c_str(), p);
  if (occupancy_ != nullptr) occupancy_->add(1);
}

void HandoffBuffer::trace_remove(const Packet& p) {
  trace_packet(*sim_, TraceKind::kBufferExit, where_.c_str(), p);
  if (occupancy_ != nullptr) occupancy_->add(-1);
}

HandoffBuffer::PushResult HandoffBuffer::push(PacketPtr& p) {
  if (full()) return PushResult::kRejected;
  if (sim_ != nullptr) trace_store(*p);
  append(p);
  ++stored_;
  peak_ = std::max<std::uint32_t>(peak_, size_);
  audit_invariants();
  return PushResult::kStored;
}

HandoffBuffer::PushResult HandoffBuffer::push_evict_oldest_realtime(
    PacketPtr& p, PacketPtr& evicted) {
  if (!full()) {
    if (sim_ != nullptr) trace_store(*p);
    append(p);
    ++stored_;
    peak_ = std::max<std::uint32_t>(peak_, size_);
    audit_invariants();
    return PushResult::kStored;
  }
  // Walk for the oldest real-time packet, tracking the predecessor so the
  // victim can be unlinked from the middle of the chain.
  Packet* prev = nullptr;
  Packet* victim = head_;
  while (victim != nullptr &&
         effective_class(victim->tclass) != TrafficClass::kRealTime) {
    prev = victim;
    victim = victim->pool_next;
  }
  if (victim == nullptr) return PushResult::kRejected;
  if (prev == nullptr) {
    head_ = victim->pool_next;
  } else {
    prev->pool_next = victim->pool_next;
  }
  if (tail_ == victim) tail_ = prev;
  victim->pool_next = nullptr;
  --size_;
  evicted = PacketPtr(victim);
  ++evictions_;
  ++removed_;
  if (sim_ != nullptr) {
    trace_remove(*evicted);
    trace_store(*p);
  }
  append(p);
  ++stored_;
  audit_invariants();
  return PushResult::kStoredEvicting;
}

PacketPtr HandoffBuffer::pop() {
  if (head_ == nullptr) return nullptr;
  PacketPtr p = detach_head();
  ++removed_;
  if (sim_ != nullptr) trace_remove(*p);
  audit_invariants();
  return p;
}

}  // namespace fhmip
