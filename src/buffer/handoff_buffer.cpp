#include "buffer/handoff_buffer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

void HandoffBuffer::trace_store(const Packet& p) {
  // Called before the deque insert, so empty() reflects the pre-store
  // state: the first packet of a fill opens the timeline span.
  if (q_.empty() && mh_ != kNoNode)
    sim_->timeline().record(sim_->now(), mh_, obs::HoEventKind::kBufferFill,
                            where_);
  trace_packet(*sim_, TraceKind::kBufferEnter, where_.c_str(), p);
  if (occupancy_ != nullptr) occupancy_->add(1);
}

void HandoffBuffer::trace_remove(const Packet& p) {
  trace_packet(*sim_, TraceKind::kBufferExit, where_.c_str(), p);
  if (occupancy_ != nullptr) occupancy_->add(-1);
}

HandoffBuffer::PushResult HandoffBuffer::push(PacketPtr& p) {
  if (full()) return PushResult::kRejected;
  if (sim_ != nullptr) trace_store(*p);
  q_.push_back(std::move(p));
  ++stored_;
  peak_ = std::max<std::uint32_t>(peak_, size());
  audit_invariants();
  return PushResult::kStored;
}

HandoffBuffer::PushResult HandoffBuffer::push_evict_oldest_realtime(
    PacketPtr& p, PacketPtr& evicted) {
  if (!full()) {
    if (sim_ != nullptr) trace_store(*p);
    q_.push_back(std::move(p));
    ++stored_;
    peak_ = std::max<std::uint32_t>(peak_, size());
    audit_invariants();
    return PushResult::kStored;
  }
  auto it = std::find_if(q_.begin(), q_.end(), [](const PacketPtr& q) {
    return effective_class(q->tclass) == TrafficClass::kRealTime;
  });
  if (it == q_.end()) return PushResult::kRejected;
  evicted = std::move(*it);
  q_.erase(it);
  ++evictions_;
  ++removed_;
  if (sim_ != nullptr) {
    trace_remove(*evicted);
    trace_store(*p);
  }
  q_.push_back(std::move(p));
  ++stored_;
  audit_invariants();
  return PushResult::kStoredEvicting;
}

PacketPtr HandoffBuffer::pop() {
  if (q_.empty()) return nullptr;
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  ++removed_;
  if (sim_ != nullptr) trace_remove(*p);
  audit_invariants();
  return p;
}

}  // namespace fhmip
