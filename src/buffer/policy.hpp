#pragma once

#include <cstdint>

#include "buffer/traffic_class.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// Which buffers participate in a handoff — the four lines of Figure 4.2.
/// kDual is the proposed scheme; kNarOnly matches the original Fast
/// Handover buffering; kNone is Fast Handover without buffering.
enum class BufferMode { kNone, kNarOnly, kParOnly, kDual };
const char* to_string(BufferMode m);

/// Table 3.2 — which routers were able to grant buffer space.
struct AllocationCase {
  bool nar_has_space = false;
  bool par_has_space = false;

  /// 1..4 as in Table 3.2 (1 = both yes ... 4 = both no).
  int case_number() const {
    if (nar_has_space && par_has_space) return 1;
    if (nar_has_space) return 2;
    if (par_has_space) return 3;
    return 4;
  }
};

/// The redirection decision made by the PAR for one packet (Table 3.3).
enum class BufferAction {
  /// Tunnel to the NAR; the NAR buffers it (real-time semantics: a full
  /// buffer evicts the oldest real-time packet).
  kBufferAtNar,
  /// Tunnel to the NAR; buffer there until full, then (after the NAR's
  /// Buffer Full notification) buffer the remainder at the PAR (Case 1.b).
  kBufferAtBoth,
  /// Buffer at the PAR, but only while the available space exceeds the
  /// reserve constant `a` (Cases 1.c / 3.c).
  kBufferAtParIfHeadroom,
  /// Buffer at the PAR unconditionally (Case 3.b).
  kBufferAtPar,
  /// Tunnel to the NAR without buffering; lost if the MH is detached.
  kForwardOnly,
  /// Drop at the PAR (Case 4.c: ease the network load).
  kDrop,
};
const char* to_string(BufferAction a);

/// Scheme parameters shared by the MH request and both routers.
struct BufferSchemeConfig {
  BufferMode mode = BufferMode::kDual;
  /// Enable per-class treatment (Figures 4.4 vs 4.5 toggle this).
  bool classify = true;
  /// The `a` constant of Case 1.c/3.c — best-effort packets are buffered at
  /// the PAR only while more than this many slots stay free.
  std::uint32_t reserve_a = 5;
  /// Total buffer pool per access router, in packets.
  std::uint32_t pool_pkts = 20;
  /// Buffer size each MH requests in its BI message.
  std::uint32_t request_pkts = 20;
  /// Grant less than the full request when the pool is low (extension; the
  /// thesis negotiates all-or-nothing, see §5 future work).
  bool allow_partial_grant = false;
  /// Per-MH ceiling on aggregate leased slots across all roles (overload
  /// fairness: one host cannot starve the shared pool). 0 = unlimited.
  std::uint32_t quota_pkts = 0;
  /// Grace added on top of `lifetime` before the allocation-lease reaper may
  /// reclaim an unreleased grant. The slack keeps the reaper strictly a
  /// backstop: the per-context lifetime timer (an accounted, graceful
  /// teardown) always gets to fire first when the agent is healthy.
  SimTime lease_grace = SimTime::seconds(1);
  /// How often the lease reaper sweeps for expired grants (only while
  /// deadline-bearing leases exist).
  SimTime lease_reap_period = SimTime::millis(500);
  /// Buffer allocation lifetime (BI lifetime field). Must cover the whole
  /// anticipation window: from the L2 trigger (overlap entry) through the
  /// blackout and release — pedestrian speeds need several seconds.
  SimTime lifetime = SimTime::seconds(10);
  /// Per-packet processing delay when releasing a buffer (§4.2.3: routers
  /// cannot dump all buffered packets at the same time).
  SimTime drain_gap = SimTime::micros(200);

  // --- §5 future-work extension: precise allocation ---
  /// When set, the PAR replaces the MH's requested size with its own
  /// estimate of the host's downstream rate × `expected_blackout`,
  /// clamped to [min_request_pkts, request]. Idle or slow hosts then
  /// reserve far less of the shared pool.
  bool adaptive_request = false;
  SimTime expected_blackout = SimTime::millis(300);
  std::uint32_t min_request_pkts = 4;
};

/// Table 3.3 — the buffering operation for one packet given the allocation
/// case and the packet's (effective) class. With classification disabled
/// every packet uses the high-priority row, i.e. "use both buffers, NAR
/// first" (§4.2.2's class-disabled runs). Non-dual modes degenerate to
/// single-buffer operation regardless of class.
BufferAction decide_buffering(const BufferSchemeConfig& cfg,
                              AllocationCase alloc, TrafficClass cls);

}  // namespace fhmip
