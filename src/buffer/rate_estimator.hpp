#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace fhmip {

/// Windowed packet-rate estimator with exponential smoothing. Access
/// routers keep one per attached mobile host to size buffer requests
/// precisely (§5's first future-work item: "a more precise buffer
/// allocation when a mobile host handoffs").
class RateEstimator {
 public:
  explicit RateEstimator(SimTime window = SimTime::millis(500),
                         double smoothing = 0.5)
      : window_(window), alpha_(smoothing) {}

  /// Records one packet observed at `now`.
  void on_packet(SimTime now);

  /// Smoothed packets-per-second estimate as of `now`. Falls to zero as
  /// the stream goes quiet.
  double rate_pps(SimTime now) const;

  /// Packets expected within `horizon` at the current estimate, rounded
  /// up — the precise buffer size for an anticipated disconnection.
  std::uint32_t packets_in(SimTime horizon, SimTime now) const;

  std::uint64_t total_packets() const { return total_; }

 private:
  void roll(SimTime now) const;

  SimTime window_;
  double alpha_;
  mutable SimTime window_start_;
  mutable std::uint32_t count_ = 0;
  mutable double smoothed_pps_ = 0;
  mutable bool primed_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace fhmip
