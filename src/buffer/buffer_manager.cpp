#include "buffer/buffer_manager.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

void BufferManager::set_observer(Simulation* sim, const std::string& name) {
  sim_ = sim;
  obs_name_ = name;
  if (sim_ == nullptr) {
    grants_metric_ = rejections_metric_ = nullptr;
    leased_metric_ = occupancy_metric_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = sim_->metrics();
  grants_metric_ = &m.counter("buffer/" + name + "/grants");
  rejections_metric_ = &m.counter("buffer/" + name + "/rejections");
  leased_metric_ = &m.gauge("buffer/" + name + "/leased_slots");
  occupancy_metric_ = &m.gauge("buffer/" + name + "/occupancy_pkts");
  for (auto& [k, buf] : leases_)
    buf.set_observer(sim_, obs_name_, occupancy_metric_,
                     static_cast<MhId>(k >> 2));
}

std::uint32_t BufferManager::allocate(LeaseKey k, std::uint32_t requested) {
  release(k);
  if (requested == 0) return 0;
  std::uint32_t grant = 0;
  if (available() >= requested) {
    grant = requested;
  } else if (allow_partial_ && available() > 0) {
    grant = available();
  }
  if (grant == 0) {
    ++rejections_;
    if (rejections_metric_ != nullptr) rejections_metric_->inc();
    return 0;
  }
  leased_ += grant;
  peak_leased_ = std::max(peak_leased_, leased_);
  auto it = leases_.emplace(k, HandoffBuffer(grant)).first;
  if (sim_ != nullptr)
    it->second.set_observer(sim_, obs_name_, occupancy_metric_,
                            static_cast<MhId>(k >> 2));
  ++grants_;
  if (grants_metric_ != nullptr) grants_metric_->inc();
  if (leased_metric_ != nullptr)
    leased_metric_->set(static_cast<std::int64_t>(leased_));
  audit_invariants();
  return grant;
}

void BufferManager::release(LeaseKey k) {
  auto it = leases_.find(k);
  if (it == leases_.end()) return;
  FHMIP_AUDIT_MSG("buffer", it->second.capacity() <= leased_,
                  "releasing " + std::to_string(it->second.capacity()) +
                      " with only " + std::to_string(leased_) + " leased");
  // A released lease can only drop its occupancy contribution if packets
  // remain (callers flush first; raw destruction still keeps the shared
  // gauge honest).
  if (occupancy_metric_ != nullptr && it->second.size() > 0)
    occupancy_metric_->add(-static_cast<std::int64_t>(it->second.size()));
  leased_ -= it->second.capacity();
  leases_.erase(it);
  if (leased_metric_ != nullptr)
    leased_metric_->set(static_cast<std::int64_t>(leased_));
  audit_invariants();
}

HandoffBuffer* BufferManager::buffer(LeaseKey k) {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

const HandoffBuffer* BufferManager::buffer(LeaseKey k) const {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

void BufferManager::audit_invariants() const {
  FHMIP_AUDIT_MSG("buffer", leased_ <= pool_,
                  "leased=" + std::to_string(leased_) +
                      " pool=" + std::to_string(pool_));
#if FHMIP_AUDIT_LEVEL >= 2
  std::uint64_t sum = 0;
  for (const auto& [key, buf] : leases_) sum += buf.capacity();
  FHMIP_AUDIT2_MSG("buffer", sum == leased_,
                   "lease sum=" + std::to_string(sum) +
                       " leased=" + std::to_string(leased_));
#endif
}

}  // namespace fhmip
