#include "buffer/buffer_manager.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

BufferManager::~BufferManager() {
  if (sim_ != nullptr && reaper_event_ != kInvalidEvent)
    sim_->cancel(reaper_event_);
}

void BufferManager::set_observer(Simulation* sim, const std::string& name) {
  if (sim_ != nullptr && sim != sim_ && reaper_event_ != kInvalidEvent) {
    sim_->cancel(reaper_event_);
    reaper_event_ = kInvalidEvent;
  }
  sim_ = sim;
  obs_name_ = name;
  if (sim_ == nullptr) {
    grants_metric_ = rejections_metric_ = nullptr;
    partial_grants_metric_ = reaped_metric_ = nullptr;
    leased_metric_ = occupancy_metric_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = sim_->metrics();
  grants_metric_ = &m.counter("buffer/" + name + "/grants");
  rejections_metric_ = &m.counter("buffer/" + name + "/rejections");
  partial_grants_metric_ = &m.counter("buffer/" + name + "/partial_grants");
  reaped_metric_ = &m.counter("buffer/" + name + "/leases_reaped");
  leased_metric_ = &m.gauge("buffer/" + name + "/leased_slots");
  occupancy_metric_ = &m.gauge("buffer/" + name + "/occupancy_pkts");
  for (auto& [k, buf] : leases_)
    buf.set_observer(sim_, obs_name_, occupancy_metric_,
                     static_cast<MhId>(k >> 2));
  ensure_reaper();
}

std::uint32_t BufferManager::leased_by(MhId mh) const {
  std::uint32_t sum = 0;
  // All roles of one MH share the top LeaseKey bits; the map orders them
  // contiguously.
  auto it = leases_.lower_bound(key(mh, ArRole::kPar));
  for (; it != leases_.end() && lease_mh(it->first) == mh; ++it)
    sum += it->second.capacity();
  return sum;
}

std::uint32_t BufferManager::allocate(LeaseKey k, std::uint32_t requested,
                                      SimTime expires) {
  release(k);
  if (requested == 0) return 0;
  // The quota caps this MH's aggregate holding across roles; the pool caps
  // everyone's. The effective ceiling is the tighter of the two.
  std::uint32_t ceiling = available();
  if (quota_ > 0) {
    const std::uint32_t held = leased_by(lease_mh(k));
    const std::uint32_t quota_room = held >= quota_ ? 0 : quota_ - held;
    ceiling = std::min(ceiling, quota_room);
  }
  std::uint32_t grant = 0;
  if (ceiling >= requested) {
    grant = requested;
  } else if (allow_partial_ && ceiling > 0) {
    grant = ceiling;
  }
  if (grant == 0) {
    ++rejections_;
    if (rejections_metric_ != nullptr) rejections_metric_->inc();
    return 0;
  }
  leased_ += grant;
  peak_leased_ = std::max(peak_leased_, leased_);
  auto it = leases_.emplace(k, HandoffBuffer(grant)).first;
  if (sim_ != nullptr)
    it->second.set_observer(sim_, obs_name_, occupancy_metric_,
                            static_cast<MhId>(k >> 2));
  ++grants_;
  if (grants_metric_ != nullptr) grants_metric_->inc();
  if (grant < requested) {
    ++partial_grants_;
    if (partial_grants_metric_ != nullptr) partial_grants_metric_->inc();
  }
  if (leased_metric_ != nullptr)
    leased_metric_->set(static_cast<std::int64_t>(leased_));
  if (!expires.is_zero()) {
    index_deadline(k, expires);
    ensure_reaper();
  }
  audit_invariants();
  return grant;
}

bool BufferManager::renew(LeaseKey k, SimTime expires) {
  if (leases_.count(k) == 0) return false;
  if (expires.is_zero()) {
    if (auto it = deadlines_.find(k); it != deadlines_.end()) {
      unindex_deadline(k, it->second);
      deadlines_.erase(it);
    }
  } else {
    index_deadline(k, expires);
    ensure_reaper();
  }
  ++renewals_;
  return true;
}

void BufferManager::index_deadline(LeaseKey k, SimTime deadline) {
  if (auto it = deadlines_.find(k); it != deadlines_.end()) {
    unindex_deadline(k, it->second);
    it->second = deadline;
  } else {
    deadlines_.emplace(k, deadline);
  }
  deadline_index_.emplace(deadline, k);
}

void BufferManager::unindex_deadline(LeaseKey k, SimTime deadline) {
  const auto [lo, hi] = deadline_index_.equal_range(deadline);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == k) {
      deadline_index_.erase(it);
      return;
    }
  }
}

SimTime BufferManager::lease_deadline(LeaseKey k) const {
  auto it = deadlines_.find(k);
  return it == deadlines_.end() ? SimTime() : it->second;
}

void BufferManager::release(LeaseKey k) {
  auto it = leases_.find(k);
  if (it == leases_.end()) return;
  FHMIP_AUDIT_MSG("buffer", it->second.capacity() <= leased_,
                  "releasing " + std::to_string(it->second.capacity()) +
                      " with only " + std::to_string(leased_) + " leased");
  // A released lease can only drop its occupancy contribution if packets
  // remain (callers flush first; raw destruction still keeps the shared
  // gauge honest).
  if (occupancy_metric_ != nullptr && it->second.size() > 0)
    occupancy_metric_->add(-static_cast<std::int64_t>(it->second.size()));
  leased_ -= it->second.capacity();
  leases_.erase(it);
  if (auto dit = deadlines_.find(k); dit != deadlines_.end()) {
    unindex_deadline(k, dit->second);
    deadlines_.erase(dit);
  }
  if (leased_metric_ != nullptr)
    leased_metric_->set(static_cast<std::int64_t>(leased_));
  audit_invariants();
}

void BufferManager::ensure_reaper() {
  if (sim_ == nullptr || deadlines_.empty()) return;
  if (reaper_event_ != kInvalidEvent) return;
  reaper_event_ = sim_->in(reap_period_, [this] { reap_sweep(); });
}

void BufferManager::reap_sweep() {
  reaper_event_ = kInvalidEvent;
  const SimTime now = sim_->now();
  // Collect first: the handler tears down agent contexts, which release
  // leases and mutate the maps under us. The deadline index is sorted, so
  // only the expired prefix is visited (strictly now > deadline, exactly
  // like the old full walk); keys are then re-sorted so the handler runs
  // in the same LeaseKey order the deadline-map walk used to produce.
  std::vector<LeaseKey> expired;
  for (auto it = deadline_index_.begin();
       it != deadline_index_.end() && now > it->first; ++it) {
    expired.push_back(it->second);
  }
  std::sort(expired.begin(), expired.end());
  for (LeaseKey k : expired) {
    if (leases_.count(k) == 0) continue;  // handler of an earlier key won
    ++reaped_;
    if (reaped_metric_ != nullptr) reaped_metric_->inc();
    if (reap_handler_) reap_handler_(k);
    if (leases_.count(k) > 0) release(k);  // handler didn't — force it
  }
  ensure_reaper();
}

HandoffBuffer* BufferManager::buffer(LeaseKey k) {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

const HandoffBuffer* BufferManager::buffer(LeaseKey k) const {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

void BufferManager::audit_invariants() const {
  FHMIP_AUDIT_MSG("buffer", leased_ <= pool_,
                  "leased=" + std::to_string(leased_) +
                      " pool=" + std::to_string(pool_));
#if FHMIP_AUDIT_LEVEL >= 2
  std::uint64_t sum = 0;
  for (const auto& [key, buf] : leases_) sum += buf.capacity();
  FHMIP_AUDIT2_MSG("buffer", sum == leased_,
                   "lease sum=" + std::to_string(sum) +
                       " leased=" + std::to_string(leased_));
  for (const auto& [key, deadline] : deadlines_)
    FHMIP_AUDIT2_MSG("buffer", leases_.count(key) > 0,
                     "deadline for unleased key " + std::to_string(key));
  // The sorted index must mirror deadlines_ exactly: same cardinality and
  // every (key -> deadline) entry present at its deadline.
  FHMIP_AUDIT2_MSG("buffer", deadline_index_.size() == deadlines_.size(),
                   "deadline index size " +
                       std::to_string(deadline_index_.size()) + " != " +
                       std::to_string(deadlines_.size()));
  for (const auto& [key, deadline] : deadlines_) {
    bool indexed = false;
    const auto [lo, hi] = deadline_index_.equal_range(deadline);
    for (auto it = lo; it != hi; ++it) indexed |= it->second == key;
    FHMIP_AUDIT2_MSG("buffer", indexed,
                     "deadline for key " + std::to_string(key) +
                         " missing from the sorted index");
  }
#endif
}

}  // namespace fhmip
