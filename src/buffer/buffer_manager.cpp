#include "buffer/buffer_manager.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace fhmip {

std::uint32_t BufferManager::allocate(LeaseKey k, std::uint32_t requested) {
  release(k);
  if (requested == 0) return 0;
  std::uint32_t grant = 0;
  if (available() >= requested) {
    grant = requested;
  } else if (allow_partial_ && available() > 0) {
    grant = available();
  }
  if (grant == 0) {
    ++rejections_;
    return 0;
  }
  leased_ += grant;
  peak_leased_ = std::max(peak_leased_, leased_);
  leases_.emplace(k, HandoffBuffer(grant));
  ++grants_;
  audit_invariants();
  return grant;
}

void BufferManager::release(LeaseKey k) {
  auto it = leases_.find(k);
  if (it == leases_.end()) return;
  FHMIP_AUDIT_MSG("buffer", it->second.capacity() <= leased_,
                  "releasing " + std::to_string(it->second.capacity()) +
                      " with only " + std::to_string(leased_) + " leased");
  leased_ -= it->second.capacity();
  leases_.erase(it);
  audit_invariants();
}

HandoffBuffer* BufferManager::buffer(LeaseKey k) {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

const HandoffBuffer* BufferManager::buffer(LeaseKey k) const {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

void BufferManager::audit_invariants() const {
  FHMIP_AUDIT_MSG("buffer", leased_ <= pool_,
                  "leased=" + std::to_string(leased_) +
                      " pool=" + std::to_string(pool_));
#if FHMIP_AUDIT_LEVEL >= 2
  std::uint64_t sum = 0;
  for (const auto& [key, buf] : leases_) sum += buf.capacity();
  FHMIP_AUDIT2_MSG("buffer", sum == leased_,
                   "lease sum=" + std::to_string(sum) +
                       " leased=" + std::to_string(leased_));
#endif
}

}  // namespace fhmip
