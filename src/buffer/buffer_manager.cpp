#include "buffer/buffer_manager.hpp"

#include <algorithm>

namespace fhmip {

std::uint32_t BufferManager::allocate(LeaseKey k, std::uint32_t requested) {
  release(k);
  if (requested == 0) return 0;
  std::uint32_t grant = 0;
  if (available() >= requested) {
    grant = requested;
  } else if (allow_partial_ && available() > 0) {
    grant = available();
  }
  if (grant == 0) {
    ++rejections_;
    return 0;
  }
  leased_ += grant;
  peak_leased_ = std::max(peak_leased_, leased_);
  leases_.emplace(k, HandoffBuffer(grant));
  ++grants_;
  return grant;
}

void BufferManager::release(LeaseKey k) {
  auto it = leases_.find(k);
  if (it == leases_.end()) return;
  leased_ -= it->second.capacity();
  leases_.erase(it);
}

HandoffBuffer* BufferManager::buffer(LeaseKey k) {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

const HandoffBuffer* BufferManager::buffer(LeaseKey k) const {
  auto it = leases_.find(k);
  return it == leases_.end() ? nullptr : &it->second;
}

}  // namespace fhmip
