#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "buffer/handoff_buffer.hpp"
#include "buffer/policy.hpp"
#include "net/messages.hpp"

namespace fhmip {

namespace obs {
class Counter;
}

/// The role an access router plays for a given mobile host's handoff; one
/// router can simultaneously be PAR for departing hosts, NAR for arriving
/// ones, and the anchor of a pure link-layer handoff (§3.2.2.4).
enum class ArRole : std::uint8_t { kPar = 0, kNar = 1, kIntra = 2 };

/// Per-access-router buffer pool. Mobile hosts lease buffer space out of a
/// shared pool of `pool_pkts` slots (the scarce resource whose utilization
/// Figure 4.2 measures). Grants are all-or-nothing as in the thesis unless
/// `allow_partial` is set (listed as future work in §5).
class BufferManager {
 public:
  using LeaseKey = std::uint64_t;
  static LeaseKey key(MhId mh, ArRole role) {
    return (static_cast<LeaseKey>(mh) << 2) | static_cast<LeaseKey>(role);
  }

  BufferManager(std::uint32_t pool_pkts, bool allow_partial = false)
      : pool_(pool_pkts), allow_partial_(allow_partial) {}

  /// Wires this pool into `sim`'s observability plane under
  /// `buffer/<name>/...`: grant/rejection counters, a leased-slots gauge,
  /// and a shared occupancy gauge fed by every leased HandoffBuffer, whose
  /// stores/removals also emit kBufferEnter/kBufferExit trace events.
  void set_observer(Simulation* sim, const std::string& name);

  /// Tries to lease `requested` slots. Returns the granted size (0 = none).
  /// Re-allocating an existing lease releases the old one first (its
  /// contents are discarded through `flush` by the caller beforehand).
  std::uint32_t allocate(LeaseKey k, std::uint32_t requested);

  /// Returns the lease's slots to the pool. Any packets still buffered are
  /// destroyed; callers flush first if they need them.
  void release(LeaseKey k);

  /// nullptr if no lease exists.
  HandoffBuffer* buffer(LeaseKey k);
  const HandoffBuffer* buffer(LeaseKey k) const;
  bool has_lease(LeaseKey k) const { return leases_.count(k) > 0; }

  std::uint32_t pool_pkts() const { return pool_; }
  std::uint32_t leased() const { return leased_; }
  std::uint32_t available() const { return pool_ - leased_; }
  std::size_t active_leases() const { return leases_.size(); }

  std::uint64_t total_grants() const { return grants_; }
  std::uint64_t total_rejections() const { return rejections_; }
  std::uint32_t peak_leased() const { return peak_leased_; }

  /// Pool/lease accounting audits (no-op at audit level 0): leased ≤ pool
  /// always; the level-2 sweep recomputes Σ lease capacities and compares.
  /// Called on every allocate/release; public so tests can sweep directly.
  void audit_invariants() const;

 protected:
  // Protected (not private) so correctness tests can derive a tampering
  // subclass and prove the audits catch deliberate accounting corruption.
  std::uint32_t pool_;
  bool allow_partial_;
  std::uint32_t leased_ = 0;
  std::uint32_t peak_leased_ = 0;
  std::map<LeaseKey, HandoffBuffer> leases_;
  std::uint64_t grants_ = 0;
  std::uint64_t rejections_ = 0;
  Simulation* sim_ = nullptr;
  std::string obs_name_;
  obs::Counter* grants_metric_ = nullptr;
  obs::Counter* rejections_metric_ = nullptr;
  obs::Gauge* leased_metric_ = nullptr;
  obs::Gauge* occupancy_metric_ = nullptr;
};

}  // namespace fhmip
