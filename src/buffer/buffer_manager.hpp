#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "buffer/handoff_buffer.hpp"
#include "buffer/policy.hpp"
#include "net/messages.hpp"
#include "sim/scheduler.hpp"

namespace fhmip {

namespace obs {
class Counter;
}

/// The role an access router plays for a given mobile host's handoff; one
/// router can simultaneously be PAR for departing hosts, NAR for arriving
/// ones, and the anchor of a pure link-layer handoff (§3.2.2.4).
enum class ArRole : std::uint8_t { kPar = 0, kNar = 1, kIntra = 2 };

/// Per-access-router buffer pool. Mobile hosts lease buffer space out of a
/// shared pool of `pool_pkts` slots (the scarce resource whose utilization
/// Figure 4.2 measures). Grants are all-or-nothing as in the thesis unless
/// `allow_partial` is set (listed as future work in §5), in which case the
/// pool answers overload with partial grants instead of rejections.
///
/// Two overload protections layer on top of the pool:
///  - a per-MH quota (`quota_pkts`, 0 = unlimited) bounding the total slots
///    one host can hold across all roles, so a single aggressive requester
///    cannot starve its neighbours;
///  - allocation leases: a grant may carry a deadline, after which a reaper
///    sweep reclaims it if the protocol exchange that should have renewed or
///    released it never happened (AR crash, retry exhaustion, vanished MH).
class BufferManager {
 public:
  using LeaseKey = std::uint64_t;
  /// Called by the reaper for each expired lease before force-release, so
  /// the owning agent can flush packets into an accounted drop bucket and
  /// tear down its per-MH context.
  using ReapHandler = std::function<void(LeaseKey)>;

  static LeaseKey key(MhId mh, ArRole role) {
    return (static_cast<LeaseKey>(mh) << 2) | static_cast<LeaseKey>(role);
  }
  static MhId lease_mh(LeaseKey k) { return static_cast<MhId>(k >> 2); }
  static ArRole lease_role(LeaseKey k) {
    return static_cast<ArRole>(k & 0x3);
  }

  BufferManager(std::uint32_t pool_pkts, bool allow_partial = false,
                std::uint32_t quota_pkts = 0)
      : pool_(pool_pkts), allow_partial_(allow_partial), quota_(quota_pkts) {}
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Wires this pool into `sim`'s observability plane under
  /// `buffer/<name>/...`: grant/rejection counters, a leased-slots gauge,
  /// and a shared occupancy gauge fed by every leased HandoffBuffer, whose
  /// stores/removals also emit kBufferEnter/kBufferExit trace events. Also
  /// required for lease deadlines: the reaper schedules on this simulation.
  void set_observer(Simulation* sim, const std::string& name);

  /// The owning agent's reclaim hook; without one, expired leases are
  /// force-released (buffered packets destroyed unaccounted — tests only).
  void set_reap_handler(ReapHandler handler) {
    reap_handler_ = std::move(handler);
  }
  /// Period of the reaper sweep (only runs while deadline-bearing leases
  /// exist). Must be set before the first deadline allocation to take
  /// effect for it.
  void set_reap_period(SimTime period) { reap_period_ = period; }

  /// Tries to lease `requested` slots, bounded by pool headroom and the
  /// per-MH quota. Returns the granted size (0 = none); a grant below
  /// `requested` is a partial grant (only with `allow_partial`).
  /// Re-allocating an existing lease releases the old one first (its
  /// contents are discarded through `flush` by the caller beforehand).
  /// A non-zero `expires` puts the lease on the reaper's watch list; it is
  /// reclaimed if not renewed or released by then (strictly after —
  /// an exact-deadline release still wins).
  std::uint32_t allocate(LeaseKey k, std::uint32_t requested,
                         SimTime expires = SimTime());

  /// Pushes an existing lease's deadline (piggybacked on protocol exchanges
  /// that prove the peer is alive). Zero clears the deadline. Returns false
  /// if no such lease exists.
  bool renew(LeaseKey k, SimTime expires);

  /// The lease's deadline (zero when none, or no such lease).
  SimTime lease_deadline(LeaseKey k) const;

  /// Returns the lease's slots to the pool. Any packets still buffered are
  /// destroyed; callers flush first if they need them.
  void release(LeaseKey k);

  /// nullptr if no lease exists.
  HandoffBuffer* buffer(LeaseKey k);
  const HandoffBuffer* buffer(LeaseKey k) const;
  bool has_lease(LeaseKey k) const { return leases_.count(k) > 0; }

  std::uint32_t pool_pkts() const { return pool_; }
  std::uint32_t quota_pkts() const { return quota_; }
  std::uint32_t leased() const { return leased_; }
  std::uint32_t available() const { return pool_ - leased_; }
  std::size_t active_leases() const { return leases_.size(); }
  /// Slots currently leased to `mh` summed across all of its roles.
  std::uint32_t leased_by(MhId mh) const;

  std::uint64_t total_grants() const { return grants_; }
  std::uint64_t total_rejections() const { return rejections_; }
  std::uint64_t total_partial_grants() const { return partial_grants_; }
  std::uint64_t total_renewals() const { return renewals_; }
  std::uint64_t total_reaped() const { return reaped_; }
  std::uint32_t peak_leased() const { return peak_leased_; }

  /// Pool/lease accounting audits (no-op at audit level 0): leased ≤ pool
  /// always; the level-2 sweep recomputes Σ lease capacities and compares.
  /// Called on every allocate/release; public so tests can sweep directly.
  void audit_invariants() const;

 protected:
  // Protected (not private) so correctness tests can derive a tampering
  // subclass and prove the audits catch deliberate accounting corruption.
  std::uint32_t pool_;
  bool allow_partial_;
  std::uint32_t quota_;
  std::uint32_t leased_ = 0;
  std::uint32_t peak_leased_ = 0;
  std::map<LeaseKey, HandoffBuffer> leases_;
  std::map<LeaseKey, SimTime> deadlines_;
  std::uint64_t grants_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t partial_grants_ = 0;
  std::uint64_t renewals_ = 0;
  std::uint64_t reaped_ = 0;
  Simulation* sim_ = nullptr;
  std::string obs_name_;
  obs::Counter* grants_metric_ = nullptr;
  obs::Counter* rejections_metric_ = nullptr;
  obs::Counter* partial_grants_metric_ = nullptr;
  obs::Counter* reaped_metric_ = nullptr;
  obs::Gauge* leased_metric_ = nullptr;
  obs::Gauge* occupancy_metric_ = nullptr;

 private:
  void ensure_reaper();
  void reap_sweep();
  void index_deadline(LeaseKey k, SimTime deadline);
  void unindex_deadline(LeaseKey k, SimTime deadline);

  ReapHandler reap_handler_;
  SimTime reap_period_ = SimTime::millis(500);
  EventId reaper_event_ = kInvalidEvent;
  /// deadlines_ mirrored in deadline order, so a reap sweep walks only the
  /// expired prefix instead of every watched lease — sweep cost scales
  /// with what expires, not with the deployment size. Kept private (the
  /// tampering-test subclass mutates `deadlines_`; the level-2 audit
  /// cross-checks the two against each other).
  std::multimap<SimTime, LeaseKey> deadline_index_;
};

}  // namespace fhmip
