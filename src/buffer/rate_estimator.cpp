#include "buffer/rate_estimator.hpp"

#include <cmath>

namespace fhmip {

void RateEstimator::roll(SimTime now) const {
  // Close every full window that has elapsed; empty windows decay the
  // estimate toward zero.
  while (now - window_start_ >= window_) {
    const double window_pps =
        static_cast<double>(count_) / window_.sec();
    smoothed_pps_ = primed_ ? alpha_ * window_pps + (1 - alpha_) * smoothed_pps_
                            : window_pps;
    primed_ = true;
    count_ = 0;
    window_start_ += window_;
  }
}

void RateEstimator::on_packet(SimTime now) {
  if (total_ == 0) window_start_ = now;
  roll(now);
  ++count_;
  ++total_;
}

double RateEstimator::rate_pps(SimTime now) const {
  if (total_ == 0) return 0;
  roll(now);
  if (!primed_) {
    // Inside the very first window: use the raw partial count.
    const double elapsed = (now - window_start_).sec();
    return elapsed > 0 ? static_cast<double>(count_) / elapsed : 0;
  }
  return smoothed_pps_;
}

std::uint32_t RateEstimator::packets_in(SimTime horizon, SimTime now) const {
  return static_cast<std::uint32_t>(
      std::ceil(rate_pps(now) * horizon.sec()));
}

}  // namespace fhmip
