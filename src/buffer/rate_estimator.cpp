#include "buffer/rate_estimator.hpp"

#include <cmath>

namespace fhmip {

void RateEstimator::roll(SimTime now) const {
  // Close every full window that has elapsed. Only the first window can
  // carry packets; the k-1 windows after it are empty and each multiplies
  // the estimate by (1-alpha), so the whole idle gap collapses to one
  // closed-form decay — an hours-long silence with a millisecond window
  // must not turn into millions of loop turns inside on_packet/rate_pps.
  const std::int64_t w = window_.ns();
  const std::int64_t elapsed = (now - window_start_).ns();
  if (w <= 0 || elapsed < w) return;
  const std::int64_t k = elapsed / w;

  const double window_pps = static_cast<double>(count_) / window_.sec();
  smoothed_pps_ = primed_ ? alpha_ * window_pps + (1 - alpha_) * smoothed_pps_
                          : window_pps;
  primed_ = true;
  count_ = 0;
  if (k > 1) {
    smoothed_pps_ *= std::pow(1.0 - alpha_, static_cast<double>(k - 1));
  }
  window_start_ += window_ * k;
}

void RateEstimator::on_packet(SimTime now) {
  if (total_ == 0) window_start_ = now;
  roll(now);
  ++count_;
  ++total_;
}

double RateEstimator::rate_pps(SimTime now) const {
  if (total_ == 0) return 0;
  roll(now);
  if (!primed_) {
    // Inside the very first window: use the raw partial count.
    const double elapsed = (now - window_start_).sec();
    return elapsed > 0 ? static_cast<double>(count_) / elapsed : 0;
  }
  return smoothed_pps_;
}

std::uint32_t RateEstimator::packets_in(SimTime horizon, SimTime now) const {
  return static_cast<std::uint32_t>(
      std::ceil(rate_pps(now) * horizon.sec()));
}

}  // namespace fhmip
