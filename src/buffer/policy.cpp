#include "buffer/policy.hpp"

namespace fhmip {

const char* to_string(BufferMode m) {
  switch (m) {
    case BufferMode::kNone:
      return "none";
    case BufferMode::kNarOnly:
      return "nar-only";
    case BufferMode::kParOnly:
      return "par-only";
    case BufferMode::kDual:
      return "dual";
  }
  return "?";
}

const char* to_string(BufferAction a) {
  switch (a) {
    case BufferAction::kBufferAtNar:
      return "buffer-at-NAR";
    case BufferAction::kBufferAtBoth:
      return "buffer-at-both";
    case BufferAction::kBufferAtParIfHeadroom:
      return "buffer-at-PAR-if-headroom";
    case BufferAction::kBufferAtPar:
      return "buffer-at-PAR";
    case BufferAction::kForwardOnly:
      return "forward-only";
    case BufferAction::kDrop:
      return "drop";
  }
  return "?";
}

BufferAction decide_buffering(const BufferSchemeConfig& cfg,
                              AllocationCase alloc, TrafficClass cls) {
  // Degenerate modes first: they model the comparison lines of Figure 4.2
  // and the original Fast Handover protocol (all packets to one buffer).
  switch (cfg.mode) {
    case BufferMode::kNone:
      return BufferAction::kForwardOnly;
    case BufferMode::kNarOnly:
      return alloc.nar_has_space ? BufferAction::kBufferAtNar
                                 : BufferAction::kForwardOnly;
    case BufferMode::kParOnly:
      return alloc.par_has_space ? BufferAction::kBufferAtPar
                                 : BufferAction::kForwardOnly;
    case BufferMode::kDual:
      break;
  }

  const TrafficClass c =
      cfg.classify ? effective_class(cls) : TrafficClass::kHighPriority;

  switch (alloc.case_number()) {
    case 1:  // NAR yes, PAR yes
      switch (c) {
        case TrafficClass::kRealTime:
          return BufferAction::kBufferAtNar;  // 1.a (drop-front on full)
        case TrafficClass::kHighPriority:
          return BufferAction::kBufferAtBoth;  // 1.b
        default:
          return BufferAction::kBufferAtParIfHeadroom;  // 1.c
      }
    case 2:  // NAR yes, PAR no
      switch (c) {
        case TrafficClass::kRealTime:
        case TrafficClass::kHighPriority:
          return BufferAction::kBufferAtNar;  // 2.a / 2.b
        default:
          return BufferAction::kForwardOnly;  // 2.c
      }
    case 3:  // NAR no, PAR yes
      switch (c) {
        case TrafficClass::kRealTime:
          return BufferAction::kForwardOnly;  // 3.a
        case TrafficClass::kHighPriority:
          return BufferAction::kBufferAtPar;  // 3.b
        default:
          return BufferAction::kBufferAtParIfHeadroom;  // 3.c
      }
    default:  // Case 4: no buffer space anywhere
      switch (c) {
        case TrafficClass::kRealTime:
        case TrafficClass::kHighPriority:
          return BufferAction::kForwardOnly;  // 4.a / 4.b
        default:
          return BufferAction::kDrop;  // 4.c
      }
  }
}

}  // namespace fhmip
