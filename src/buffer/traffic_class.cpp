#include "buffer/traffic_class.hpp"

namespace fhmip {

TrafficClass traffic_class_from_value(std::uint8_t v) {
  switch (v) {
    case 1:
      return TrafficClass::kRealTime;
    case 2:
      return TrafficClass::kHighPriority;
    case 3:
      return TrafficClass::kBestEffort;
    default:
      return TrafficClass::kUnspecified;
  }
}

TrafficClass traffic_class_from_phb(DiffservPhb phb) {
  switch (phb) {
    case DiffservPhb::kExpeditedForwarding:
      return TrafficClass::kRealTime;
    case DiffservPhb::kAssuredForwarding:
      return TrafficClass::kHighPriority;
    case DiffservPhb::kDefault:
      return TrafficClass::kBestEffort;
  }
  return TrafficClass::kBestEffort;
}

DiffservPhb phb_from_traffic_class(TrafficClass c) {
  switch (effective_class(c)) {
    case TrafficClass::kRealTime:
      return DiffservPhb::kExpeditedForwarding;
    case TrafficClass::kHighPriority:
      return DiffservPhb::kAssuredForwarding;
    default:
      return DiffservPhb::kDefault;
  }
}

}  // namespace fhmip
