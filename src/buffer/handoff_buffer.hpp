#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/check.hpp"

namespace fhmip {

namespace obs {
class Gauge;
}

/// A per-mobile-host handoff buffer: FIFO storage with a fixed capacity
/// leased from the router's pool. Supports the two overflow behaviours of
/// Table 3.3:
///  * tail rejection (default; caller accounts the drop), and
///  * evicting the oldest *real-time* packet to admit a new one (Case 1.a /
///    2.a: "if buffer full, drop the first real-time packet").
///
/// Packet conservation is audited: every packet ever stored leaves exactly
/// once, through pop(), eviction or flush() — `stored == removed + size`.
class HandoffBuffer {
 public:
  explicit HandoffBuffer(std::uint32_t capacity_pkts)
      : capacity_(capacity_pkts) {}

  enum class PushResult {
    kStored,
    kRejected,        // buffer full, packet not stored (caller still owns it)
    kStoredEvicting,  // stored after evicting the oldest real-time packet
  };

  /// Plain FIFO admission with tail rejection.
  PushResult push(PacketPtr& p);

  /// Admission for real-time packets: when full, the oldest real-time
  /// packet in the buffer is evicted (returned through `evicted`) and the
  /// new packet stored. If the buffer holds no real-time packet to evict,
  /// the new packet is rejected.
  PushResult push_evict_oldest_realtime(PacketPtr& p, PacketPtr& evicted);

  PacketPtr pop();

  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= capacity_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(q_.size()); }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t free_slots() const {
    return capacity_ - static_cast<std::uint32_t>(q_.size());
  }

  std::uint32_t peak_occupancy() const { return peak_; }
  std::uint64_t total_stored() const { return stored_; }
  std::uint64_t total_evictions() const { return evictions_; }
  /// Packets that left the buffer (pops + evictions + flushes).
  std::uint64_t total_removed() const { return removed_; }

  /// Attaches this buffer to a simulation's observability plane: every
  /// store/removal emits a kBufferEnter/kBufferExit trace event tagged
  /// `where`, and `occupancy` (shared across the owning manager's leases)
  /// tracks the buffered-packet level. When `mh` is known, the first store
  /// into an empty buffer also lands a kBufferFill handover-timeline event.
  /// Un-observed buffers pay one branch.
  void set_observer(Simulation* sim, std::string where,
                    obs::Gauge* occupancy = nullptr, MhId mh = kNoNode) {
    sim_ = sim;
    where_ = std::move(where);
    occupancy_ = occupancy;
    mh_ = mh;
  }

  /// Empties the buffer through `fn` (used on lifetime expiry).
  template <typename Fn>
  void flush(Fn&& fn) {
    while (!q_.empty()) {
      ++removed_;
      PacketPtr p = std::move(q_.front());
      q_.pop_front();
      if (sim_ != nullptr) trace_remove(*p);
      fn(std::move(p));
    }
    audit_invariants();
  }

  /// Occupancy/conservation audits (no-op at audit level 0).
  void audit_invariants() const {
    FHMIP_AUDIT_MSG("buffer", q_.size() <= capacity_,
                    "size=" + std::to_string(q_.size()) +
                        " capacity=" + std::to_string(capacity_));
    FHMIP_AUDIT_MSG("buffer", stored_ == removed_ + q_.size(),
                    "stored=" + std::to_string(stored_) +
                        " removed=" + std::to_string(removed_) +
                        " size=" + std::to_string(q_.size()));
  }

 private:
  // Out-of-line so this header does not pull in the Simulation definition.
  void trace_store(const Packet& p);
  void trace_remove(const Packet& p);

  std::deque<PacketPtr> q_;
  std::uint32_t capacity_;
  std::uint32_t peak_ = 0;
  std::uint64_t stored_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t removed_ = 0;
  Simulation* sim_ = nullptr;
  std::string where_;
  obs::Gauge* occupancy_ = nullptr;
  MhId mh_ = kNoNode;
};

}  // namespace fhmip
