#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/check.hpp"

namespace fhmip {

namespace obs {
class Gauge;
}

/// A per-mobile-host handoff buffer: FIFO storage with a fixed capacity
/// leased from the router's pool. Supports the two overflow behaviours of
/// Table 3.3:
///  * tail rejection (default; caller accounts the drop), and
///  * evicting the oldest *real-time* packet to admit a new one (Case 1.a /
///    2.a: "if buffer full, drop the first real-time packet").
///
/// Buffered packets are chained intrusively through their own `pool_next`
/// link — no per-node allocation, and a handover burst parks hundreds of
/// packets with zero allocator traffic. Ownership semantics are unchanged:
/// push() adopts the packet, pop()/eviction/flush() return owning handles,
/// and the destructor releases anything still buffered.
///
/// Packet conservation is audited: every packet ever stored leaves exactly
/// once, through pop(), eviction or flush() — `stored == removed + size`.
class HandoffBuffer {
 public:
  explicit HandoffBuffer(std::uint32_t capacity_pkts)
      : capacity_(capacity_pkts) {}

  HandoffBuffer(const HandoffBuffer&) = delete;
  HandoffBuffer& operator=(const HandoffBuffer&) = delete;
  HandoffBuffer(HandoffBuffer&& o) noexcept
      : head_(o.head_),
        tail_(o.tail_),
        size_(o.size_),
        capacity_(o.capacity_),
        peak_(o.peak_),
        stored_(o.stored_),
        evictions_(o.evictions_),
        removed_(o.removed_),
        sim_(o.sim_),
        where_(std::move(o.where_)),
        occupancy_(o.occupancy_),
        mh_(o.mh_) {
    o.head_ = o.tail_ = nullptr;
    o.size_ = 0;
  }
  HandoffBuffer& operator=(HandoffBuffer&&) = delete;

  ~HandoffBuffer();

  enum class PushResult {
    kStored,
    kRejected,        // buffer full, packet not stored (caller still owns it)
    kStoredEvicting,  // stored after evicting the oldest real-time packet
  };

  /// Plain FIFO admission with tail rejection.
  PushResult push(PacketPtr& p);

  /// Admission for real-time packets: when full, the oldest real-time
  /// packet in the buffer is evicted (returned through `evicted`) and the
  /// new packet stored. If the buffer holds no real-time packet to evict,
  /// the new packet is rejected.
  PushResult push_evict_oldest_realtime(PacketPtr& p, PacketPtr& evicted);

  PacketPtr pop();

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }
  std::uint32_t size() const { return size_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t free_slots() const { return capacity_ - size_; }

  std::uint32_t peak_occupancy() const { return peak_; }
  std::uint64_t total_stored() const { return stored_; }
  std::uint64_t total_evictions() const { return evictions_; }
  /// Packets that left the buffer (pops + evictions + flushes).
  std::uint64_t total_removed() const { return removed_; }

  /// Attaches this buffer to a simulation's observability plane: every
  /// store/removal emits a kBufferEnter/kBufferExit trace event tagged
  /// `where`, and `occupancy` (shared across the owning manager's leases)
  /// tracks the buffered-packet level. When `mh` is known, the first store
  /// into an empty buffer also lands a kBufferFill handover-timeline event.
  /// Un-observed buffers pay one branch.
  void set_observer(Simulation* sim, std::string where,
                    obs::Gauge* occupancy = nullptr, MhId mh = kNoNode) {
    sim_ = sim;
    where_ = std::move(where);
    occupancy_ = occupancy;
    mh_ = mh;
  }

  /// Empties the buffer through `fn` (used on lifetime expiry).
  template <typename Fn>
  void flush(Fn&& fn) {
    while (head_ != nullptr) {
      ++removed_;
      PacketPtr p = detach_head();
      if (sim_ != nullptr) trace_remove(*p);
      fn(std::move(p));
    }
    audit_invariants();
  }

  /// Occupancy/conservation audits (no-op at audit level 0).
  void audit_invariants() const {
    FHMIP_AUDIT_MSG("buffer", size_ <= capacity_,
                    "size=" + std::to_string(size_) +
                        " capacity=" + std::to_string(capacity_));
    FHMIP_AUDIT_MSG("buffer", stored_ == removed_ + size_,
                    "stored=" + std::to_string(stored_) +
                        " removed=" + std::to_string(removed_) +
                        " size=" + std::to_string(size_));
#if FHMIP_AUDIT_LEVEL >= 2
    std::uint32_t count = 0;
    for (const Packet* p = head_; p != nullptr; p = p->pool_next) ++count;
    FHMIP_AUDIT2_MSG("buffer", count == size_,
                     "chain=" + std::to_string(count) +
                         " size=" + std::to_string(size_));
#endif
  }

 private:
  // Out-of-line so this header does not pull in the Simulation definition.
  void trace_store(const Packet& p);
  void trace_remove(const Packet& p);

  /// Appends an owned packet to the tail of the chain.
  void append(PacketPtr& p) {
    Packet* raw = p.release();
    raw->pool_next = nullptr;
    if (tail_ == nullptr) {
      head_ = raw;
    } else {
      tail_->pool_next = raw;
    }
    tail_ = raw;
    ++size_;
  }

  /// Unlinks the head packet and rewraps it in its owning handle.
  PacketPtr detach_head() {
    Packet* raw = head_;
    head_ = raw->pool_next;
    if (head_ == nullptr) tail_ = nullptr;
    raw->pool_next = nullptr;
    --size_;
    return PacketPtr(raw);
  }

  Packet* head_ = nullptr;
  Packet* tail_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_;
  std::uint32_t peak_ = 0;
  std::uint64_t stored_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t removed_ = 0;
  Simulation* sim_ = nullptr;
  std::string where_;
  obs::Gauge* occupancy_ = nullptr;
  MhId mh_ = kNoNode;
};

}  // namespace fhmip
