#pragma once

#include <string>
#include <unordered_map>

#include "buffer/traffic_class.hpp"
#include "net/node.hpp"

namespace fhmip {

/// Diffserv ingress edge (§5's second future-work item: "the proposed
/// method should be able to cooperate with a DiffServ network; the mapping
/// between DiffServ traffic and the buffering mechanism should be
/// defined").
///
/// Installed on an edge router, the marker classifies forwarded packets by
/// destination port into a PHB and rewrites the traffic-class field with
/// the corresponding Table 3.1 value, so unmarked application traffic
/// still receives class-aware handoff buffering downstream.
class DiffservMarker {
 public:
  explicit DiffservMarker(Node& edge);
  ~DiffservMarker();

  DiffservMarker(const DiffservMarker&) = delete;
  DiffservMarker& operator=(const DiffservMarker&) = delete;

  /// Classifies traffic to `dst_port` under `phb`.
  void add_rule(std::uint16_t dst_port, DiffservPhb phb);
  void remove_rule(std::uint16_t dst_port);

  /// PHB for unmatched traffic (default: leave the packet unmodified).
  void set_default_phb(DiffservPhb phb);

  std::uint64_t packets_marked() const { return marked_; }
  std::size_t num_rules() const { return rules_.size(); }

  /// Dump for debugging/tests: one `port -> phb` line per rule, sorted by
  /// port (the rule map is unordered; the dump must not depend on its hash
  /// layout — DET-02), followed by the default PHB if one is set.
  std::string format_rules() const;

 private:
  void mark(Packet& p);

  Node& edge_;
  std::unordered_map<std::uint16_t, DiffservPhb> rules_;
  bool has_default_ = false;
  DiffservPhb default_phb_ = DiffservPhb::kDefault;
  std::uint64_t marked_ = 0;
};

}  // namespace fhmip
