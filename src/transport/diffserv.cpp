#include "transport/diffserv.hpp"

namespace fhmip {

DiffservMarker::DiffservMarker(Node& edge) : edge_(edge) {
  edge_.set_forward_filter([this](Packet& p) { mark(p); });
}

DiffservMarker::~DiffservMarker() { edge_.set_forward_filter(nullptr); }

void DiffservMarker::add_rule(std::uint16_t dst_port, DiffservPhb phb) {
  rules_[dst_port] = phb;
}

void DiffservMarker::remove_rule(std::uint16_t dst_port) {
  rules_.erase(dst_port);
}

void DiffservMarker::set_default_phb(DiffservPhb phb) {
  has_default_ = true;
  default_phb_ = phb;
}

void DiffservMarker::mark(Packet& p) {
  if (p.is_control()) return;  // signaling is never remarked
  auto it = rules_.find(p.dst_port);
  if (it != rules_.end()) {
    p.tclass = traffic_class_from_phb(it->second);
    ++marked_;
  } else if (has_default_) {
    p.tclass = traffic_class_from_phb(default_phb_);
    ++marked_;
  }
}

}  // namespace fhmip
