#include "transport/diffserv.hpp"

#include <algorithm>
#include <vector>

namespace fhmip {

DiffservMarker::DiffservMarker(Node& edge) : edge_(edge) {
  edge_.set_forward_filter([this](Packet& p) { mark(p); });
}

DiffservMarker::~DiffservMarker() { edge_.set_forward_filter(nullptr); }

void DiffservMarker::add_rule(std::uint16_t dst_port, DiffservPhb phb) {
  rules_[dst_port] = phb;
}

void DiffservMarker::remove_rule(std::uint16_t dst_port) {
  rules_.erase(dst_port);
}

void DiffservMarker::set_default_phb(DiffservPhb phb) {
  has_default_ = true;
  default_phb_ = phb;
}

namespace {

const char* phb_name(DiffservPhb phb) {
  switch (phb) {
    case DiffservPhb::kExpeditedForwarding: return "EF";
    case DiffservPhb::kAssuredForwarding: return "AF";
    case DiffservPhb::kDefault: return "BE";
  }
  return "?";
}

}  // namespace

std::string DiffservMarker::format_rules() const {
  // Sorted snapshot: rules_ iterates in hash order, which depends on
  // insertion history; the dump must not.
  std::vector<std::uint16_t> ports;
  ports.reserve(rules_.size());
  for (const auto& [port, phb] : rules_) ports.push_back(port);
  std::sort(ports.begin(), ports.end());
  std::string out;
  for (std::uint16_t port : ports) {
    out += std::to_string(port);
    out += " -> ";
    out += phb_name(rules_.at(port));
    out += "\n";
  }
  if (has_default_) {
    out += "default -> ";
    out += phb_name(default_phb_);
    out += "\n";
  }
  return out;
}

void DiffservMarker::mark(Packet& p) {
  if (p.is_control()) return;  // signaling is never remarked
  auto it = rules_.find(p.dst_port);
  if (it != rules_.end()) {
    p.tclass = traffic_class_from_phb(it->second);
    ++marked_;
  } else if (has_default_) {
    p.tclass = traffic_class_from_phb(default_phb_);
    ++marked_;
  }
}

}  // namespace fhmip
