#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace fhmip {

/// TCP Reno sender with a BSD-style coarse retransmission timer
/// (§4.2.4: "TCP Reno, tick interval 500 ms, minimum RTO 1 second").
/// The application is FTP-like: unlimited data unless `total_bytes` is set.
///
/// Implemented behaviour: slow start, congestion avoidance, fast retransmit
/// on the third duplicate ACK, Reno fast recovery with window inflation,
/// exponential timer backoff, go-back-N after a timeout. Sequence numbers
/// are byte offsets as in real TCP.
class TcpSender {
 public:
  struct Config {
    Address dst;
    std::uint16_t dst_port = 0;
    std::uint16_t src_port = 0;
    std::uint32_t mss = 1000;
    std::uint32_t rwnd_pkts = 64;  // receiver window, in segments
    SimTime tick = SimTime::millis(500);
    SimTime min_rto = SimTime::seconds(1);
    std::uint32_t initial_ssthresh_pkts = 32;
    /// NewReno partial-ack handling: stay in fast recovery across partial
    /// ACKs and retransmit the next hole (RFC 2582). Off = classic Reno,
    /// the variant the thesis simulates.
    bool newreno = false;
    FlowId flow = kNoFlow;      // data segments
    FlowId ack_flow = kNoFlow;  // what the sink stamps on ACKs
    std::uint64_t total_bytes = 0;  // 0 = unbounded
  };

  struct TracePoint {
    SimTime at;
    std::uint32_t seq;  // bytes; divide by mss for segment numbers
  };

  TcpSender(Node& node, Config cfg);
  ~TcpSender();

  void start(SimTime at);

  // Introspection / traces for the figures.
  const std::vector<TracePoint>& send_trace() const { return send_trace_; }
  const std::vector<TracePoint>& ack_trace() const { return ack_trace_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  double cwnd_bytes() const { return cwnd_; }
  std::uint32_t ssthresh_bytes() const { return ssthresh_; }
  int timeouts() const { return timeouts_; }
  int fast_retransmits() const { return fast_retransmits_; }
  bool in_fast_recovery() const { return in_recovery_; }
  SimTime current_rto() const;

 private:
  void try_send();
  void send_segment(std::uint32_t seq, bool retransmission);
  void handle_packet(PacketPtr p);
  void on_ack(std::uint32_t ack);
  void arm_timer();
  void disarm_timer();
  void on_timeout();
  std::uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  std::uint64_t app_limit() const;

  Node& node_;
  Config cfg_;
  bool started_ = false;

  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  double cwnd_ = 0;          // bytes
  std::uint32_t ssthresh_;   // bytes
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;

  // RTT estimation (one outstanding sample, Karn's rule).
  bool rtt_pending_ = false;
  std::uint32_t rtt_seq_ = 0;
  SimTime rtt_sent_at_;
  bool have_srtt_ = false;
  double srtt_s_ = 0;
  double rttvar_s_ = 0;
  int backoff_ = 1;

  EventId rtx_timer_ = kInvalidEvent;
  EventId start_ev_ = kInvalidEvent;
  int timeouts_ = 0;
  int fast_retransmits_ = 0;

  std::vector<TracePoint> send_trace_;
  std::vector<TracePoint> ack_trace_;
};

/// TCP receiver: cumulative ACK per arriving segment, out-of-order
/// reassembly, delivery trace for the sequence figures.
class TcpSink {
 public:
  TcpSink(Node& node, std::uint16_t port);
  ~TcpSink();

  /// ACKs are stamped with this flow id for drop accounting.
  void set_ack_flow(FlowId f) { ack_flow_ = f; }

  /// RFC 1122 delayed ACKs: acknowledge every second in-order segment or
  /// after `delay`; out-of-order segments still ACK immediately (the
  /// duplicate-ACK signal fast retransmit depends on).
  void set_delayed_ack(bool on, SimTime delay = SimTime::millis(200));

  std::uint64_t acks_sent() const { return acks_sent_; }

  std::uint32_t rcv_nxt() const { return rcv_nxt_; }
  std::uint64_t bytes_in_order() const { return rcv_nxt_; }
  const std::vector<TcpSender::TracePoint>& recv_trace() const {
    return recv_trace_;
  }

 private:
  void handle_packet(PacketPtr p);
  void send_ack(Address to, std::uint16_t to_port);

  Node& node_;
  std::uint16_t port_;
  FlowId ack_flow_ = kNoFlow;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::uint32_t> ooo_;  // seq -> len
  std::vector<TcpSender::TracePoint> recv_trace_;
  bool delayed_ack_ = false;
  SimTime ack_delay_ = SimTime::millis(200);
  bool ack_pending_ = false;
  Address pending_peer_;
  std::uint16_t pending_peer_port_ = 0;
  EventId ack_timer_ = kInvalidEvent;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace fhmip
