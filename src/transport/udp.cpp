#include "transport/udp.hpp"

namespace fhmip {

UdpAgent::UdpAgent(Node& node, std::uint16_t port)
    : node_(node), port_(port) {
  node_.register_port(port_, [this](PacketPtr p) {
    // Post-terminal: Node::deliver_local already recorded kLocalDeliver
    // before invoking the port callback; with no receiver attached the
    // packet may die here without further accounting.
    if (on_receive_) on_receive_(std::move(p));  // NOLINT-FHMIP(FLOW-01)
  });
}

UdpAgent::~UdpAgent() { node_.unregister_port(port_); }

void UdpAgent::send_to(Address dst, std::uint16_t dst_port,
                       std::uint32_t bytes, TrafficClass tclass, FlowId flow,
                       std::uint32_t seq, bool record) {
  const Address src = source_.valid() ? source_ : node_.address();
  auto p = make_packet(node_.sim(), src, dst, bytes);
  p->src_port = port_;
  p->dst_port = dst_port;
  p->tclass = tclass;
  p->flow = flow;
  p->seq = seq;
  trace_packet(node_.sim(), TraceKind::kCreate, node_.name().c_str(), *p);
  if (record) node_.sim().stats().record_sent(flow);
  node_.send(std::move(p));
}

}  // namespace fhmip
