#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>

namespace fhmip {

namespace {
constexpr std::uint32_t kTcpIpHeaderBytes = 40;
}

TcpSender::TcpSender(Node& node, Config cfg) : node_(node), cfg_(cfg) {
  cwnd_ = cfg_.mss;
  ssthresh_ = cfg_.initial_ssthresh_pkts * cfg_.mss;
  node_.register_port(cfg_.src_port,
                      [this](PacketPtr p) { handle_packet(std::move(p)); });
}

TcpSender::~TcpSender() {
  disarm_timer();
  node_.sim().cancel(start_ev_);
  node_.unregister_port(cfg_.src_port);
}

void TcpSender::start(SimTime at) {
  start_ev_ = node_.sim().at(at, [this] {
    started_ = true;
    try_send();
  });
}

std::uint64_t TcpSender::app_limit() const {
  return cfg_.total_bytes == 0 ? UINT64_MAX : cfg_.total_bytes;
}

SimTime TcpSender::current_rto() const {
  double rto_s = 0.0;
  if (have_srtt_) {
    rto_s = srtt_s_ + 4.0 * rttvar_s_;
  } else {
    rto_s = 3.0;  // conventional initial RTO
  }
  rto_s = std::max(rto_s, cfg_.min_rto.sec()) * backoff_;
  // Round up to the coarse tick granularity.
  const double tick = cfg_.tick.sec();
  rto_s = std::ceil(rto_s / tick) * tick;
  return SimTime::from_seconds(rto_s);
}

void TcpSender::try_send() {
  if (!started_) return;
  const std::uint32_t wnd = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(cwnd_), cfg_.rwnd_pkts * cfg_.mss);
  while (snd_nxt_ < snd_una_ + wnd && snd_nxt_ < app_limit()) {
    send_segment(snd_nxt_, /*retransmission=*/false);
    snd_nxt_ += cfg_.mss;
  }
  if (flight_size() > 0 && rtx_timer_ == kInvalidEvent) arm_timer();
}

void TcpSender::send_segment(std::uint32_t seq, bool retransmission) {
  Simulation& sim = node_.sim();
  auto p = make_packet(sim, node_.address(), cfg_.dst,
                       cfg_.mss + kTcpIpHeaderBytes);
  p->src_port = cfg_.src_port;
  p->dst_port = cfg_.dst_port;
  p->flow = cfg_.flow;
  p->seq = seq / cfg_.mss;
  TcpSegMsg seg;
  seg.seq = seq;
  seg.len = cfg_.mss;
  p->msg = seg;
  trace_packet(sim, TraceKind::kCreate, node_.name().c_str(), *p);
  sim.stats().record_sent(cfg_.flow);
  send_trace_.push_back({sim.now(), seq});
  // RTT sampling: one sample at a time, never on retransmissions (Karn).
  if (!retransmission && !rtt_pending_) {
    rtt_pending_ = true;
    rtt_seq_ = seq + cfg_.mss;
    rtt_sent_at_ = sim.now();
  }
  node_.send(std::move(p));
}

void TcpSender::handle_packet(PacketPtr p) {
  const auto* seg = std::get_if<TcpSegMsg>(&p->msg);
  if (seg == nullptr || !seg->is_ack) return;
  ack_trace_.push_back({node_.sim().now(), seg->ack});
  on_ack(seg->ack);
}

void TcpSender::on_ack(std::uint32_t ack) {
  if (ack > snd_una_) {
    // New data acknowledged.
    if (rtt_pending_ && ack >= rtt_seq_) {
      const double sample = (node_.sim().now() - rtt_sent_at_).sec();
      if (have_srtt_) {
        const double err = sample - srtt_s_;
        srtt_s_ += err / 8.0;
        rttvar_s_ += (std::abs(err) - rttvar_s_) / 4.0;
      } else {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
        have_srtt_ = true;
      }
      rtt_pending_ = false;
    }
    if (in_recovery_) {
      if (cfg_.newreno && ack < recover_) {
        // NewReno partial ACK: the next hole is lost too — retransmit it,
        // deflate by the amount acked, stay in recovery.
        const std::uint32_t acked = ack - snd_una_;
        send_segment(ack, /*retransmission=*/true);
        cwnd_ = std::max<double>(cwnd_ - acked + cfg_.mss, cfg_.mss);
        snd_una_ = ack;
        disarm_timer();
        arm_timer();
        return;
      }
      // Full ACK (or classic Reno): fast recovery ends and the window
      // deflates back to ssthresh.
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += cfg_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(cfg_.mss) * cfg_.mss / cwnd_;  // CA
    }
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    dupacks_ = 0;
    backoff_ = 1;
    disarm_timer();
    if (flight_size() > 0) arm_timer();
    try_send();
    return;
  }
  if (ack == snd_una_ && flight_size() > 0) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      // Fast retransmit + fast recovery.
      ssthresh_ = std::max(flight_size() / 2, 2 * cfg_.mss);
      send_segment(snd_una_, /*retransmission=*/true);
      ++fast_retransmits_;
      cwnd_ = ssthresh_ + 3.0 * cfg_.mss;
      in_recovery_ = true;
      recover_ = snd_nxt_;
      disarm_timer();
      arm_timer();
    } else if (in_recovery_) {
      cwnd_ += cfg_.mss;  // window inflation per extra dupack
      try_send();
    }
  }
}

void TcpSender::arm_timer() {
  // BSD-style coarse timer: expiry lands on a tick-grid boundary, so the
  // effective timeout is RTO rounded up to the next tick edge — this is
  // what produces the 1–1.5 s stalls in Figure 4.12.
  const SimTime rto = current_rto();
  const std::int64_t tick_ns = cfg_.tick.ns();
  const std::int64_t expiry_ns = node_.sim().now().ns() + rto.ns();
  const std::int64_t aligned =
      ((expiry_ns + tick_ns - 1) / tick_ns) * tick_ns;
  rtx_timer_ = node_.sim().at(SimTime::nanos(aligned), [this] {
    rtx_timer_ = kInvalidEvent;
    on_timeout();
  });
}

void TcpSender::disarm_timer() {
  if (rtx_timer_ != kInvalidEvent) {
    node_.sim().cancel(rtx_timer_);
    rtx_timer_ = kInvalidEvent;
  }
}

void TcpSender::on_timeout() {
  if (flight_size() == 0) return;
  ++timeouts_;
  ssthresh_ = std::max(flight_size() / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  dupacks_ = 0;
  in_recovery_ = false;
  backoff_ = std::min(backoff_ * 2, 64);
  rtt_pending_ = false;  // Karn: never sample across a retransmit
  // Go-back-N: rewind and retransmit from the first unacknowledged byte.
  snd_nxt_ = snd_una_;
  send_segment(snd_nxt_, /*retransmission=*/true);
  snd_nxt_ += cfg_.mss;
  arm_timer();
}

TcpSink::TcpSink(Node& node, std::uint16_t port) : node_(node), port_(port) {
  node_.register_port(port_,
                      [this](PacketPtr p) { handle_packet(std::move(p)); });
}

TcpSink::~TcpSink() {
  node_.sim().cancel(ack_timer_);
  node_.unregister_port(port_);
}

void TcpSink::set_delayed_ack(bool on, SimTime delay) {
  delayed_ack_ = on;
  ack_delay_ = delay;
}

void TcpSink::send_ack(Address to, std::uint16_t to_port) {
  Simulation& sim = node_.sim();
  auto ack = make_packet(sim, node_.address(), to, kTcpIpHeaderBytes);
  ack->src_port = port_;
  ack->dst_port = to_port;
  ack->flow = ack_flow_;
  TcpSegMsg a;
  a.is_ack = true;
  a.ack = rcv_nxt_;
  ack->msg = a;
  trace_packet(sim, TraceKind::kCreate, node_.name().c_str(), *ack);
  if (ack_flow_ != kNoFlow) sim.stats().record_sent(ack_flow_);
  ++acks_sent_;
  ack_pending_ = false;
  sim.cancel(ack_timer_);
  ack_timer_ = kInvalidEvent;
  node_.send(std::move(ack));
}

void TcpSink::handle_packet(PacketPtr p) {
  const auto* seg = std::get_if<TcpSegMsg>(&p->msg);
  if (seg == nullptr || seg->is_ack) return;
  Simulation& sim = node_.sim();
  recv_trace_.push_back({sim.now(), seg->seq});
  sim.stats().record_delivery(p->flow, sim.now(), p->seq,
                              sim.now() - p->created_at, p->size_bytes);
  const bool in_order = seg->seq == rcv_nxt_;
  if (in_order) {
    rcv_nxt_ += seg->len;
    // Consume any contiguous out-of-order segments.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->first + it->second);
      it = ooo_.erase(it);
    }
  } else if (seg->seq > rcv_nxt_) {
    ooo_[seg->seq] = seg->len;
  }
  const Address peer = p->src;
  const std::uint16_t peer_port = p->src_port;
  if (delayed_ack_ && in_order && ooo_.empty()) {
    if (ack_pending_) {
      send_ack(peer, peer_port);  // every second segment
    } else {
      ack_pending_ = true;
      pending_peer_ = peer;
      pending_peer_port_ = peer_port;
      ack_timer_ = sim.in(ack_delay_, [this] {
        ack_timer_ = kInvalidEvent;
        if (ack_pending_) send_ack(pending_peer_, pending_peer_port_);
      });
    }
    return;
  }
  // Immediate cumulative ACK (always for out-of-order data — duplicate
  // ACKs are the fast-retransmit signal).
  send_ack(peer, peer_port);
}

}  // namespace fhmip
